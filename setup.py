"""Legacy setup shim.

The execution environment has no network and no ``wheel`` package, so
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
Keeping a setup.py lets ``pip install -e . --no-build-isolation`` fall
back to the classic ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
