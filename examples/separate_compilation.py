"""Separate compilation vs whole-program IPRA (paper Sections 3 and 7).

The same two modules are built twice:

1. each module compiled alone at -O3: with unknown callers every
   procedure is open, so IPRA degenerates to the default linkage
   convention (the paper's incomplete-information regime);
2. IR linked first ("linked Ucode"), then the one-pass IPRA sees the
   whole call graph and closed procedures propagate their usage.

Outputs must match; the whole-program build executes fewer scalar
memory operations.

Run:  python examples/separate_compilation.py
"""

from repro import (
    compile_module,
    compile_program,
    link_modules,
    run_program,
    O3_SW,
)

MODULE_MATH = ("math_mod", """
func square(x) { return x * x; }
func cube(x) { return square(x) * x; }
func poly(a, b, c, x) {
    return a * square(x) + b * x + c + cube(x);
}
""")

MODULE_MAIN = ("main_mod", """
extern func poly(4);
func main() {
    var total = 0;
    for (var i = 0; i < 300; i = i + 1) {
        total = total + poly(2, -3, 7, i) % 1000;
    }
    print total;
}
""")


def main() -> None:
    # 1. separate compilation: each unit alone, then link objects
    separately_compiled = [
        compile_module(MODULE_MAIN, O3_SW),
        compile_module(MODULE_MATH, O3_SW),
    ]
    exe = link_modules(separately_compiled)
    sep = run_program(exe, check_contracts=True)

    for cm in separately_compiled:
        for name, plan in cm.plan.plans.items():
            assert plan.mode == "open", "separate units have unknown callers"

    # 2. whole-program: IR linked before allocation (the paper's -O3)
    whole = compile_program([MODULE_MAIN, MODULE_MATH], O3_SW)
    wp = whole.run(check_contracts=True)
    assert sep.output == wp.output

    closed = [n for n, p in whole.plan.plans.items() if p.mode == "closed"]
    print(f"program output: {sep.output}")
    print(f"closed procedures under whole-program IPRA: {closed}")
    print()
    print(f"{'build':<28s} {'cycles':>8s} {'scalar ld/st':>12s}")
    print(f"{'separate compilation':<28s} {sep.cycles:>8d} "
          f"{sep.scalar_memops:>12d}")
    print(f"{'whole-program IPRA (+SW)':<28s} {wp.cycles:>8d} "
          f"{wp.scalar_memops:>12d}")
    saved = 100.0 * (sep.scalar_memops - wp.scalar_memops) / sep.scalar_memops
    print(f"\nscalar traffic removed by whole-program allocation: {saved:.1f}%")


if __name__ == "__main__":
    main()
