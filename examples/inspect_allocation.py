"""Inspect the one-pass inter-procedural allocation on a small program:
call graph, depth-first processing order, open/closed classification,
per-procedure register usage summaries, parameter registers, and the
generated assembly.

Run:  python examples/inspect_allocation.py
"""

from repro import compile_program, O3_SW
from repro.target.codegen import generate_function
from repro.target.registers import registers_in_mask

SOURCE = """
var counter = 0;

func leaf(x) { return x * x + 1; }

func middle(a, b) {
    var s = leaf(a) + leaf(b);
    counter = counter + 1;
    return s;
}

func recurse(n) {
    if (n == 0) { return 0; }
    return middle(n, n - 1) + recurse(n - 1);
}

func main() {
    print recurse(6);
    print counter;
}
"""


def regs(mask: int) -> str:
    names = [r.name for r in registers_in_mask(mask)]
    return "{" + ", ".join(names) + "}"


def main() -> None:
    prog = compile_program(SOURCE, O3_SW)
    plan = prog.plan

    print("depth-first processing order:", " -> ".join(plan.order))
    print()
    for name in plan.order:
        fnplan = plan.plans[name]
        summary = plan.summaries[name]
        print(f"procedure {name}: {fnplan.mode}")
        print(f"  usage summary (call subtree): {regs(summary.used_mask)}")
        if fnplan.mode == "closed":
            params = ", ".join(
                f"{p}={'dead' if spec.dead else (spec.reg.name if spec.reg else 'stack')}"
                for p, spec in zip(
                    fnplan.alloc.fn.params, fnplan.incoming_params
                )
            )
            if params:
                print(f"  parameter registers: {params}")
        if fnplan.entry_exit_saves:
            print(f"  entry/exit saves: "
                  f"{[r.name for r in fnplan.entry_exit_saves]}")
        if fnplan.wrapped:
            for idx, placement in fnplan.wrapped.items():
                print(f"  shrink-wrapped $"
                      f"{registers_in_mask(1 << idx)[0].name}: "
                      f"saves at blocks {sorted(placement.saves)}, "
                      f"restores at {sorted(placement.restores)}")
        assignment = {
            str(v): r.name for v, r in fnplan.alloc.assignment.items()
        }
        print(f"  assignment: {assignment}")
        print()

    print("=" * 60)
    print("generated code for `middle` (closed procedure):")
    print(generate_function(plan.plans["middle"], prog.ir.arrays).render())

    stats = prog.run(check_contracts=True)
    print()
    print(f"executed: {stats.output} in {stats.cycles} cycles, "
          f"{stats.scalar_memops} scalar memory ops")


if __name__ == "__main__":
    main()
