"""Quickstart: compile a MiniC program at the paper's optimisation levels
and compare the pixie-style statistics.

Run:  python examples/quickstart.py
"""

from repro import compile_and_run, O2, O2_SW, O3, O3_SW

SOURCE = """
// A call-intensive toy: sum of fib(0..17) computed twice, once through a
// helper chain (closed procedures) and once recursively (open).
func fib(n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
func double_it(x) { return x * 2; }
func offset(x) { return double_it(x) + 1; }
func chain(x) { return offset(x) - double_it(x) + x; }

func main() {
    var total = 0;
    for (var i = 0; i < 18; i = i + 1) {
        total = total + fib(i) + chain(i);
    }
    print total;
}
"""


def main() -> None:
    print(f"{'config':<22s} {'cycles':>9s} {'scalar ld/st':>12s} "
          f"{'save/restore':>12s} {'cyc/call':>9s}")
    configs = [
        ("-O2 (baseline)", O2),
        ("-O2 + shrink-wrap", O2_SW),
        ("-O3 (IPRA)", O3),
        ("-O3 + shrink-wrap", O3_SW),
    ]
    base = None
    for name, options in configs:
        stats = compile_and_run(SOURCE, options, check_contracts=True)
        if base is None:
            base = stats
        assert stats.output == base.output, "all configs must agree"
        print(
            f"{name:<22s} {stats.cycles:>9d} {stats.scalar_memops:>12d} "
            f"{stats.save_restore_memops:>12d} "
            f"{stats.cycles / stats.calls:>9.1f}"
        )
    print(f"\nprogram output: {base.output}")
    print("outputs identical across configurations; calling-convention "
          "contracts verified dynamically.")


if __name__ == "__main__":
    main()
