"""Shrink-wrapping demonstration (paper Section 5).

A procedure whose callee-saved register usage sits on a cold path: the
classic convention saves at entry and restores at exit on *every*
invocation; shrink-wrapping moves the save/restore to the cold region so
the hot path pays nothing.  Prints the placement and the measured
save/restore traffic both ways.

Run:  python examples/shrinkwrap_demo.py
"""

from repro import compile_program, O2, O2_SW
from repro.target.codegen import generate_function
from repro.target.isa import MemKind
from repro.target.registers import registers_in_mask

SOURCE = """
func expensive(x) { return x * x + x; }

func process(n) {
    // hot path: n < 950 returns immediately
    if (n < 950) { return n + 1; }
    // cold path: a value live across two calls (wants a callee-saved reg)
    var v = n * 3;
    var acc = expensive(v) + expensive(v + 1);
    return v + acc;
}

func main() {
    var total = 0;
    for (var i = 0; i < 1000; i = i + 1) {
        total = total + process(i);
    }
    print total;
}
"""


def sr_ops(stats):
    return (
        stats.stores.get(MemKind.SAVE, 0)
        + stats.loads.get(MemKind.RESTORE, 0)
    )


def main() -> None:
    classic = compile_program(SOURCE, O2)
    wrapped = compile_program(SOURCE, O2_SW)

    plan = wrapped.plan.plans["process"]
    print("shrink-wrap placement for `process`:")
    blocks = [b.name for b in plan.alloc.cfg.blocks]
    print(f"  basic blocks: {blocks}")
    for idx, placement in plan.wrapped.items():
        reg = registers_in_mask(1 << idx)[0]
        print(f"  ${reg.name}: save at "
              f"{[blocks[b] for b in sorted(placement.saves)]}, restore at "
              f"{[blocks[b] for b in sorted(placement.restores)]}")
    if not plan.wrapped:
        print("  (nothing wrapped -- allocator avoided callee-saved regs)")
    print()

    s_classic = classic.run(check_contracts=True)
    s_wrapped = wrapped.run(check_contracts=True)
    assert s_classic.output == s_wrapped.output

    print(f"classic entry/exit saves: {sr_ops(s_classic):>6d} save/restore "
          f"memops, {s_classic.cycles} cycles")
    print(f"shrink-wrapped          : {sr_ops(s_wrapped):>6d} save/restore "
          f"memops, {s_wrapped.cycles} cycles")
    pct = 100.0 * (sr_ops(s_classic) - sr_ops(s_wrapped)) / max(1, sr_ops(s_classic))
    print(f"save/restore traffic removed: {pct:.1f}%")
    print()
    print("generated code for `process` (shrink-wrapped):")
    print(generate_function(plan, wrapped.ir.arrays).render())


if __name__ == "__main__":
    main()
