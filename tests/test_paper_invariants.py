"""Consolidated checks of the paper's stated invariants, run over the
whole benchmark suite (one compilation per program, O3+SW).

These are the properties the paper asserts in prose; each is verified
mechanically against every plan the one-pass allocator produces.
"""

import pytest

from repro.benchsuite import load_benchmarks
from repro.pipeline import compile_program, O3_SW
from repro.target.registers import (
    CALLEE_SAVED_MASK,
    DEFAULT_CLOBBER_MASK,
    V0,
)

BENCHES = load_benchmarks()


@pytest.fixture(scope="module", params=list(BENCHES))
def program(request):
    return compile_program(BENCHES[request.param].source, O3_SW)


def test_dfs_order_closed_callees_first(program):
    """Section 2: every closed procedure is processed after its callees."""
    plan = program.plan
    pos = {n: i for i, n in enumerate(plan.order)}
    cg = plan.call_graph
    for name in plan.order:
        if cg.is_open(name):
            continue
        for callee in cg.callees(name):
            if callee in pos:
                assert pos[callee] < pos[name], (callee, name)


def test_summaries_cover_call_subtree(program):
    """Section 2: a summary includes 'the whole call tree rooted at that
    procedure' -- every closed callee's summary is a subset."""
    plan = program.plan
    cg = plan.call_graph
    for name, summary in plan.summaries.items():
        if not summary.closed:
            continue
        for callee in cg.callees(name):
            callee_summary = plan.summaries.get(callee)
            if callee_summary is None:
                continue
            used = callee_summary.used_mask
            if callee_summary.closed:
                used &= ~callee_summary.saved_locally_mask
            assert summary.used_mask & used == used, (name, callee)


def test_open_procedures_present_default_convention(program):
    """Section 3: open procedures do not specify usage information; the
    allocator assumes all caller-saved used, all callee-saved unused."""
    plan = program.plan
    for name, summary in plan.summaries.items():
        if plan.plans[name].mode == "open":
            assert summary.used_mask == DEFAULT_CLOBBER_MASK


def test_closed_procedures_never_use_entry_exit_protocol(program):
    """Section 2/6: closed procedures run registers caller-saved; any
    local saving is shrink-wrapped, never the classic entry/exit set."""
    for plan in program.plan.plans.values():
        if plan.mode == "closed":
            assert plan.entry_exit_saves == []


def test_saved_registers_are_covered_somewhere(program):
    """Every callee-saved register destroyed in a procedure's frame of
    responsibility is saved locally or reported to ancestors."""
    plan = program.plan
    for name, fnplan in plan.plans.items():
        need = fnplan.alloc.own_assigned_mask & CALLEE_SAVED_MASK
        for m in fnplan.alloc.call_clobbers.values():
            need |= m & CALLEE_SAVED_MASK
        covered = fnplan.saved_mask
        if fnplan.summary is not None:
            covered |= fnplan.summary.used_mask
        assert need & ~covered == 0, name


def test_wrapped_registers_reported_unused(program):
    """Section 6: a locally wrapped register is marked unused upward."""
    plan = program.plan
    for name, fnplan in plan.plans.items():
        if fnplan.mode != "closed" or fnplan.summary is None:
            continue
        for idx in fnplan.wrapped:
            assert not fnplan.summary.used_mask & (1 << idx), (name, idx)


def test_v0_always_reported_clobbered(program):
    for summary in program.plan.summaries.values():
        assert summary.used_mask & (1 << V0.index)


def test_every_placement_is_sound(program):
    """The shrink-wrap discipline holds on every wrapped placement."""
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from helpers import check_placement

    for fnplan in program.plan.plans.values():
        for idx, placement in fnplan.wrapped.items():
            # the placement must be sound for the register's APP footprint
            from repro.interproc.allocator import _app_blocks_for
            from repro.target.registers import ALL_REGISTERS

            app = _app_blocks_for(fnplan.alloc, ALL_REGISTERS[idx])
            check_placement(fnplan.alloc.cfg, app, placement)


def test_dynamic_contracts_hold(program):
    """Every return in a real execution preserves what the plan promises."""
    stats = program.run(check_contracts=True)
    assert stats.output
