"""End-to-end corner cases that historically break code generators."""

from helpers import run_all_levels


def test_indirect_call_with_many_args():
    stats = run_all_levels(
        """
        func wide(a, b, c, d, e, f) {
            return a + b * 10 + c * 100 + d * 1000 + e * 10000 + f * 100000;
        }
        func main() {
            var p = &wide;
            print p(1, 2, 3, 4, 5, 6);
        }
        """
    )
    assert stats["O0"].output == [654321]


def test_indirect_target_held_across_staging():
    # the target pointer must survive argument staging into a0/a1
    stats = run_all_levels(
        """
        func sub2(a, b) { return a - b; }
        func main() {
            var p = &sub2;
            var x = 50;
            var y = 8;
            print p(x, y);
        }
        """
    )
    assert stats["O0"].output == [42]


def test_function_pointer_returned_from_call():
    stats = run_all_levels(
        """
        func inc(x) { return x + 1; }
        func dec(x) { return x - 1; }
        func choose(which) {
            if (which) { return &inc; }
            return &dec;
        }
        func main() {
            var f = choose(1);
            var g = choose(0);
            print f(10);
            print g(10);
        }
        """
    )
    assert stats["O0"].output == [11, 9]


def test_recursion_through_function_pointer():
    stats = run_all_levels(
        """
        var self = 0;
        func countdown(n) {
            if (n == 0) { return 0; }
            var f = self;
            return f(n - 1) + 1;
        }
        func main() {
            self = &countdown;
            print countdown(25);
        }
        """
    )
    assert stats["O0"].output == [25]


def test_deep_expression_spills_temps():
    # a wide, deep expression tree creates many simultaneously live temps
    expr = " + ".join(f"(a * {i} - b * {i + 1})" for i in range(1, 15))
    stats = run_all_levels(
        f"""
        func f(a, b) {{ return {expr}; }}
        func main() {{ print f(7, 3); }}
        """
    )
    a, b = 7, 3
    expected = sum(a * i - b * (i + 1) for i in range(1, 15))
    assert stats["O0"].output == [expected]


def test_call_results_as_nested_arguments():
    stats = run_all_levels(
        """
        func add(a, b) { return a + b; }
        func main() {
            print add(add(add(1, 2), add(3, 4)), add(add(5, 6), add(7, 8)));
        }
        """
    )
    assert stats["O0"].output == [36]


def test_matrix_multiply_via_flat_arrays():
    stats = run_all_levels(
        """
        array m1[16];
        array m2[16];
        array mr[16];
        func at(base, r, c) {
            if (base == 0) { return m1[r * 4 + c]; }
            return m2[r * 4 + c];
        }
        func main() {
            var i;
            for (i = 0; i < 16; i = i + 1) {
                m1[i] = i + 1;
                m2[i] = 16 - i;
            }
            var r; var c; var k;
            var trace = 0;
            for (r = 0; r < 4; r = r + 1) {
                for (c = 0; c < 4; c = c + 1) {
                    var s = 0;
                    for (k = 0; k < 4; k = k + 1) {
                        s = s + at(0, r, k) * at(1, k, c);
                    }
                    mr[r * 4 + c] = s;
                }
                trace = trace + mr[r * 4 + r];
            }
            print trace;
        }
        """
    )
    assert len({tuple(s.output) for s in stats.values()}) == 1


def test_global_aliased_via_calls():
    # the callee writes the global between the caller's read and re-read
    stats = run_all_levels(
        """
        var g = 5;
        func clobber() { g = 100; return 0; }
        func main() {
            var before = g;
            clobber();
            var after = g;
            print before;
            print after;
        }
        """
    )
    assert stats["O0"].output == [5, 100]


def test_char_literals_and_arithmetic():
    stats = run_all_levels(
        """
        func to_upper(ch) {
            if (ch >= 'a' && ch <= 'z') { return ch - 'a' + 'A'; }
            return ch;
        }
        func main() {
            print to_upper('q');
            print to_upper('Q');
            print '\\n';
        }
        """
    )
    assert stats["O0"].output == [ord("Q"), ord("Q"), 10]


def test_local_array_inside_recursion_with_big_frames():
    stats = run_all_levels(
        """
        func layered(n) {
            array buf[20];
            var i;
            for (i = 0; i < 20; i = i + 1) { buf[i] = n * 20 + i; }
            var below = 0;
            if (n > 0) { below = layered(n - 1); }
            var s = 0;
            for (i = 0; i < 20; i = i + 1) { s = s + buf[i]; }
            return s + below;
        }
        func main() { print layered(8); }
        """
    )
    expected = sum(
        sum(n * 20 + i for i in range(20)) for n in range(9)
    )
    assert stats["O0"].output == [expected]


def test_while_with_complex_short_circuit_condition():
    stats = run_all_levels(
        """
        var probes = 0;
        func check(x) { probes = probes + 1; return x < 5; }
        func main() {
            var i = 0;
            while (i < 10 && check(i)) { i = i + 1; }
            print i;
            print probes;
        }
        """
    )
    assert stats["O0"].output == [5, 6]
