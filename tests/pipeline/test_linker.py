"""IR-level and executable-level linking tests."""

import pytest

from helpers import lower

from repro.frontend import LinkError
from repro.pipeline import (
    compile_module,
    compile_program,
    link_executable,
    link_ir_modules,
    link_modules,
    O2,
)
from repro.sim import run_program


def test_ir_link_merges_symbols():
    m2 = lower("var g2 = 2; func h() { return g2; }", "m2")
    # main calls h which m1 does not define: declare it extern
    m1b = lower(
        "var g = 1; extern func h(0); func main() { print g + h(); }", "m1"
    )
    prog = link_ir_modules([m1b, m2])
    assert set(prog.functions) == {"main", "h"}
    assert prog.globals == {"g": 1, "g2": 2}


def test_ir_link_detects_duplicate_function():
    m1 = lower("func f() {}", "m1")
    m2 = lower("func f() {}", "m2")
    with pytest.raises(LinkError, match="duplicate function"):
        link_ir_modules([m1, m2])


def test_ir_link_detects_duplicate_global():
    m1 = lower("var g;", "m1")
    m2 = lower("var g;", "m2")
    with pytest.raises(LinkError, match="duplicate global"):
        link_ir_modules([m1, m2])


def test_ir_link_detects_global_array_clash():
    m1 = lower("var s;", "m1")
    m2 = lower("array s[4];", "m2")
    with pytest.raises(LinkError, match="duplicate global"):
        link_ir_modules([m1, m2])


def test_unresolved_extern_rejected():
    m1 = lower("extern func ghost(0); func main() { ghost(); }", "m1")
    with pytest.raises(LinkError, match="unresolved extern"):
        link_ir_modules([m1])


def test_extern_arity_mismatch_rejected():
    m1 = lower("extern func h(2); func main() { h(1, 2); }", "m1")
    m2 = lower("func h(x) { return x; }", "m2")
    with pytest.raises(LinkError, match="arity"):
        link_ir_modules([m1, m2])


def test_executable_missing_entry_rejected():
    cm = compile_module(("m", "func f() {}"), O2)
    with pytest.raises(LinkError, match="entry point"):
        link_modules([cm])


def test_duplicate_object_symbols_rejected():
    cm1 = compile_module(("m1", "func f() {} func main() { f(); }"), O2)
    cm2 = compile_module(("m2", "func f() {}"), O2)
    with pytest.raises(LinkError, match="duplicate function symbol"):
        link_modules([cm1, cm2])


def test_data_layout_reserves_null_address():
    prog = compile_program("var g = 9; func main() { print g; }", O2)
    for sym, (addr, size) in prog.executable.data_layout.items():
        assert addr >= 1


def test_relocations_fully_resolved():
    prog = compile_program(
        """
        var g = 1;
        array a[3];
        func h(x) { return x + g + a[0]; }
        func main() { var p = &h; print p(1); }
        """,
        O2,
    )
    from repro.target.isa import Opcode

    for ins in prog.executable.instrs:
        if ins.op in (Opcode.B, Opcode.BEQZ, Opcode.BNEZ, Opcode.JAL,
                      Opcode.LA, Opcode.LW, Opcode.SW, Opcode.LI):
            if ins.label is not None:
                assert ins.imm is not None


def test_separate_compilation_matches_whole_program():
    m1 = ("m1", """
        extern func combine(2);
        var base = 100;
        func main() { print combine(base, 23); }
    """)
    m2 = ("m2", """
        func twice(x) { return x * 2; }
        func combine(a, b) { return twice(a) + b; }
    """)
    separate = link_modules([compile_module(m1, O2), compile_module(m2, O2)])
    sep_out = run_program(separate, check_contracts=True).output
    whole = compile_program([m1, m2], O2).run(check_contracts=True).output
    assert sep_out == whole == [223]


def test_cross_module_globals_and_arrays():
    m1 = ("m1", """
        extern func fill(0);
        array shared[4];
        func main() { fill(); print shared[2]; }
    """)
    m2 = ("m2", """
        extern func fill_done(0);
        func fill() {
            shared[2] = 77;
            fill_done();
        }
        func fill_done() {}
    """)
    # m2 references `shared`, declared in m1: MiniC requires the array
    # declaration in scope, so m2 declares it too -- that is a duplicate.
    # Instead verify the supported pattern: data lives with its module.
    m2_ok = ("m2", """
        array shared2[4];
        func fill() { shared2[2] = 77; }
        func get() { return shared2[2]; }
    """)
    m1_ok = ("m1", """
        extern func fill(0);
        extern func get(0);
        func main() { fill(); print get(); }
    """)
    exe = link_modules([compile_module(m1_ok, O2), compile_module(m2_ok, O2)])
    assert run_program(exe).output == [77]
