"""Profile-feedback extension tests."""

from repro.pipeline import compile_and_run, compile_program, O2, O3, O3_SW
from repro.pipeline.profile import (
    BlockProfile,
    attach_profile,
    block_profile_of,
    collect_block_profile,
    profile_guided_options,
)

SRC = """
func helper(x) { return x * 2 + 1; }
func main() {
    var t = 0;
    for (var i = 0; i < 25; i = i + 1) {
        if (i % 5 == 0) { t = t + helper(i); }
        else { t = t - 1; }
    }
    print t;
}
"""


def test_profile_counts_block_executions():
    profile = collect_block_profile(SRC, O2)
    assert "main" in profile
    main_counts = profile["main"]
    # the entry block runs once, the loop condition 26 times
    assert main_counts.get("entry") == 1
    loop_cond = [v for k, v in main_counts.items() if k.startswith("fcond")]
    assert loop_cond and loop_cond[0] == 26
    then_counts = [v for k, v in main_counts.items() if k.startswith("then")]
    assert then_counts and then_counts[0] == 5


def test_profile_of_compiled_program():
    prog = compile_program(SRC, O2)
    profile = block_profile_of(prog)
    assert profile["helper"]["entry"] == 5


def test_profile_guided_build_preserves_behaviour():
    base = compile_and_run(SRC, O3_SW, check_contracts=True)
    profile = collect_block_profile(SRC, O2)
    tuned_opts = profile_guided_options(O3_SW, profile)
    tuned = compile_and_run(SRC, tuned_opts, check_contracts=True)
    assert base.output == tuned.output


def test_profile_guided_never_worse_on_training_input():
    src = """
    func burn(q) {
        if (q <= 0) { return 1; }
        return (q + burn(q - 3)) % 11;
    }
    func work(n) {
        var a = n * 3;
        if (n >= 0) { return burn(a % 5) + a; }
        var hotvar = 0;
        for (var i = 0; i < n; i = i + 1) { hotvar = hotvar + burn(i); }
        return hotvar;
    }
    func main() {
        var t = 0;
        for (var k = 0; k < 100; k = k + 1) { t = t + work(k); }
        print t;
    }
    """
    base = compile_and_run(src, O3, check_contracts=True)
    profile = collect_block_profile(src, O2)
    tuned = compile_and_run(
        src, profile_guided_options(O3, profile), check_contracts=True
    )
    assert base.output == tuned.output
    assert tuned.scalar_memops <= base.scalar_memops * 1.02


def test_block_profile_serializes_with_a_stable_digest():
    prog = compile_program(SRC, O2)
    profile = block_profile_of(prog, attach=False)
    clone = BlockProfile.from_json(profile.to_json())
    assert dict(clone) == dict(profile)
    assert clone.call_args == profile.call_args
    assert clone.digest() == profile.digest()
    # the digest is canonical: key order cannot change it, counts can
    reordered = BlockProfile(
        dict(reversed(list(profile.items()))), call_args=profile.call_args
    )
    assert reordered.digest() == profile.digest()
    bumped = BlockProfile(dict(profile), call_args=profile.call_args)
    bumped["main"] = dict(bumped["main"], entry=999)
    assert bumped.digest() != profile.digest()


def test_block_profile_records_observed_call_arguments():
    prog = compile_program(SRC, O2)
    profile = block_profile_of(prog, attach=False)
    # helper(x) is always called with distinct x values: no constant
    assert "helper" in profile.call_args or profile.call_args == {}
    # a callee with one constant argument is pinned in call_args
    const_src = """
    func scale(v, k) { return v * k; }
    func main() {
        var t = 0;
        for (var i = 0; i < 10; i = i + 1) { t = t + scale(i, 7); }
        print t;
    }
    """
    cp = block_profile_of(compile_program(const_src, O2), attach=False)
    assert cp.call_args["scale"][1] == 7


def test_attach_profile_marks_the_executable():
    prog = compile_program(SRC, O2)
    profile = block_profile_of(prog, attach=False)
    assert getattr(prog.executable, "_block_profile", None) is None
    attach_profile(prog.executable, profile)
    assert prog.executable._block_profile is profile


def test_profile_weights_flow_into_allocation():
    # a block that never executes gets weight 0: values used only there
    # lose their registers to hot-path values
    profile = collect_block_profile(SRC, O2)
    prog = compile_program(SRC, profile_guided_options(O2, profile))
    assert prog.run().output == compile_program(SRC, O2).run().output
