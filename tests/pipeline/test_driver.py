"""End-to-end driver tests: every optimisation level must agree."""

import pytest

from helpers import run_all_levels

from repro.pipeline import compile_program, O0, O2, O3, O3_SW, PAPER_CONFIGS


def test_arith_and_precedence():
    stats = run_all_levels(
        """
        func main() {
            print 2 + 3 * 4;
            print (2 + 3) * 4;
            print 10 - 2 - 3;
            print 7 / 2;
            print -7 / 2;
            print 7 % 3;
            print -7 % 3;
            print 1 << 5;
            print -16 >> 2;
            print 12 & 10;
            print 12 | 10;
            print 12 ^ 10;
            print ~5;
            print !0;
            print !3;
        }
        """
    )
    assert stats["O0"].output == [
        14, 20, 5, 3, -3, 1, -1, 32, -4, 8, 14, 6, -6, 1, 0
    ]


def test_short_circuit_side_effects():
    stats = run_all_levels(
        """
        var count = 0;
        func bump() { count = count + 1; return 1; }
        func main() {
            var a = 0 && bump();
            var b = 1 || bump();
            var c = 1 && bump();
            var d = 0 || bump();
            print count;     // only c and d evaluated bump()
            print a + b * 10 + c * 100 + d * 1000;
        }
        """
    )
    assert stats["O0"].output == [2, 1110]


def test_comparison_chain():
    stats = run_all_levels(
        """
        func main() {
            var x = 5;
            print x < 5;
            print x <= 5;
            print x > 4;
            print x >= 6;
            print x == 5;
            print x != 5;
        }
        """
    )
    assert stats["O0"].output == [0, 1, 1, 0, 1, 0]


def test_loops_break_continue():
    stats = run_all_levels(
        """
        func main() {
            var s = 0;
            for (var i = 0; i < 20; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 13) { break; }
                s = s + i;
            }
            print s;
            var j = 0;
            while (1) {
                j = j + 3;
                if (j > 10) { break; }
            }
            print j;
        }
        """
    )
    assert stats["O0"].output == [1 + 3 + 5 + 7 + 9 + 11 + 13, 12]


def test_recursion_and_globals():
    stats = run_all_levels(
        """
        var depth_max = 0;
        var depth = 0;
        func walk(n) {
            depth = depth + 1;
            if (depth > depth_max) { depth_max = depth; }
            var r = 0;
            if (n > 0) { r = walk(n - 1) + walk(n - 2); } else { r = 1; }
            depth = depth - 1;
            return r;
        }
        func main() {
            print walk(10);
            print depth_max;
            print depth;
        }
        """
    )
    assert stats["O0"].output[1] == 11
    assert stats["O0"].output[2] == 0


def test_function_pointer_dispatch_table():
    stats = run_all_levels(
        """
        array ops[4];
        func add(a, b) { return a + b; }
        func sub(a, b) { return a - b; }
        func mul(a, b) { return a * b; }
        func dispatch(i, a, b) {
            var f = ops[i];
            return f(a, b);
        }
        func main() {
            ops[0] = &add;
            ops[1] = &sub;
            ops[2] = &mul;
            print dispatch(0, 7, 3);
            print dispatch(1, 7, 3);
            print dispatch(2, 7, 3);
        }
        """
    )
    assert stats["O0"].output == [10, 4, 21]


def test_many_parameters_mixed_stack_register():
    stats = run_all_levels(
        """
        func f8(a, b, c, d, e, f, g, h) {
            return ((a * 10 + b) * 10 + c) * 10 + d
                 + e * 10000 + f * 100000 + g * 1000000 + h * 10000000;
        }
        func main() {
            print f8(1, 2, 3, 4, 5, 6, 7, 8);
            print f8(8, 7, 6, 5, 4, 3, 2, 1);
        }
        """
    )
    assert len(set(map(tuple, [s.output for s in stats.values()]))) == 1


def test_mutual_recursion():
    stats = run_all_levels(
        """
        func is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        func is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
        func main() { print is_even(10); print is_even(7); }
        """
    )
    assert stats["O0"].output == [1, 0]


def test_local_arrays_are_reentrant():
    stats = run_all_levels(
        """
        func rev3(a, b, c, depth) {
            array t[3];
            t[0] = a; t[1] = b; t[2] = c;
            if (depth > 0) {
                rev3(c * 10, b * 10, a * 10, depth - 1);
            }
            // locals must be intact after the recursive call
            print t[0] * 100 + t[1] * 10 + t[2];
            return 0;
        }
        func main() { rev3(1, 2, 3, 1); }
        """
    )
    assert stats["O0"].output == [30 * 100 + 20 * 10 + 10, 123]


def test_higher_opt_levels_never_slower_suite():
    src = """
    func work(a, b) { return a * b + a - b; }
    func main() {
        var t = 0;
        for (var i = 0; i < 50; i = i + 1) { t = t + work(i, i + 1); }
        print t;
    }
    """
    stats = run_all_levels(src)
    assert stats["O2"].cycles <= stats["O0"].cycles
    assert stats["O2"].scalar_memops <= stats["O0"].scalar_memops
    assert stats["O3"].scalar_memops <= stats["O2"].scalar_memops


def test_paper_configs_are_runnable():
    src = "func main() { print 9; }"
    for name, options in PAPER_CONFIGS.items():
        prog = compile_program(src, options)
        assert prog.run().output == [9], name


def test_compiled_program_exposes_plan_and_ir():
    prog = compile_program("func main() { print 1; }", O3_SW)
    assert "main" in prog.ir.functions
    assert "main" in prog.plan.plans
    assert prog.options.ipra


def test_entry_option():
    src = "func start() { print 3; } func main() { print 4; }"
    prog = compile_program(src, O2.with_(entry="start"))
    assert prog.run().output == [3]
