"""CLI smoke tests (python -m repro)."""

from pathlib import Path

import pytest

from repro.__main__ import main

PROGRAMS = Path(__file__).resolve().parents[2] / "examples" / "programs"


@pytest.fixture
def src_file(tmp_path):
    f = tmp_path / "prog.mc"
    f.write_text("func main() { print 6 * 7; }")
    return str(f)


def test_run_command(capsys, src_file):
    assert main(["run", src_file]) == 0
    assert capsys.readouterr().out.strip() == "42"


def test_run_with_all_opt_levels(capsys, src_file):
    for level in "0123":
        assert main(["run", src_file, "-O", level, "--check"]) == 0
        assert capsys.readouterr().out.strip() == "42"


def test_stats_command(capsys, src_file):
    assert main(["stats", src_file]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out
    assert "scalar_loads" in out


def test_asm_command(capsys, src_file):
    assert main(["asm", src_file]) == 0
    out = capsys.readouterr().out
    assert "main:" in out
    assert "jr $ra" in out


def test_ir_command(capsys, src_file):
    assert main(["ir", src_file]) == 0
    assert "func main" in capsys.readouterr().out


def test_report_command(capsys, src_file):
    assert main(["report", src_file, "-O", "3"]) == 0
    out = capsys.readouterr().out
    assert "procedure main" in out


def test_dot_command(capsys, src_file):
    assert main(["dot", src_file, "-O", "3"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph")


def test_register_restriction_flags(capsys, src_file):
    assert main(["run", src_file, "-O", "3", "--shrink-wrap",
                 "--callers", "7", "--check"]) == 0
    assert capsys.readouterr().out.strip() == "42"
    assert main(["run", src_file, "-O", "3", "--callees", "7",
                 "--check"]) == 0
    assert capsys.readouterr().out.strip() == "42"


def test_multi_module_cli(capsys, tmp_path):
    m1 = tmp_path / "m1.mc"
    m1.write_text("extern func h(1); func main() { print h(20); }")
    m2 = tmp_path / "m2.mc"
    m2.write_text("func h(x) { return x * 2 + 2; }")
    assert main(["run", str(m1), str(m2), "-O", "3"]) == 0
    assert capsys.readouterr().out.strip() == "42"


@pytest.mark.parametrize("name", ["primes.mc", "sort.mc"])
def test_example_programs(capsys, name):
    path = PROGRAMS / name
    assert path.exists()
    assert main(["run", str(path), "-O", "3", "--shrink-wrap",
                 "--check"]) == 0
    base = capsys.readouterr().out
    assert main(["run", str(path), "-O", "0"]) == 0
    assert capsys.readouterr().out == base
