"""Shared helpers for the test suite (importable as ``import helpers``)."""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.cfg.cfg import CFG
from repro.ir.function import BasicBlock, IRFunction
from repro.ir.instructions import CJump, Jump, Ret
from repro.ir.values import Const
from repro.shrinkwrap.placement import WrapPlacement

from repro.frontend import analyze, parse
from repro.ir import lower_module, optimize_module
from repro.pipeline import (
    compile_and_run,
    O0,
    O1,
    O2,
    O2_SW,
    O3,
    O3_SW,
)

ALL_LEVELS = [O0, O1, O2, O2_SW, O3, O3_SW]
LEVEL_IDS = ["O0", "O1", "O2", "O2_SW", "O3", "O3_SW"]


# --------------------------------------------------------------------------
# Session-wide compile/run sharing (used by tests/ and benchmarks/ alike,
# so each benchsuite program compiles once per pytest session per config)
# --------------------------------------------------------------------------

_ENGINE = None
_COMPILE_MEMO: Dict[tuple, object] = {}
_RUN_MEMO: Dict[tuple, object] = {}


def compile_cached(source, options):
    """Whole-program compile memoised for the pytest session.

    Backed by one shared :class:`repro.Engine`, so even distinct
    (source, options) pairs reuse each other's per-procedure work."""
    global _ENGINE
    key = (source, options)
    program = _COMPILE_MEMO.get(key)
    if program is None:
        if _ENGINE is None:
            from repro import Engine

            _ENGINE = Engine()
        program = _ENGINE.compile(source, options)
        _COMPILE_MEMO[key] = program
    return program


def run_cached(source, options, check_contracts: bool = False):
    """``compile_and_run`` memoised for the pytest session."""
    key = (source, options, check_contracts)
    stats = _RUN_MEMO.get(key)
    if stats is None:
        stats = compile_cached(source, options).run(
            check_contracts=check_contracts
        )
        _RUN_MEMO[key] = stats
    return stats


def once(benchmark, fn):
    """Run ``fn`` exactly once under the pytest-benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def lower(source: str, name: str = "test"):
    """Parse/analyze/lower a source string to an IR module."""
    return lower_module(analyze(parse(source, name)))


def lower_opt(source: str, name: str = "test"):
    mod = lower(source, name)
    optimize_module(mod)
    return mod


def run_all_levels(source, check_contracts: bool = True):
    """Compile and run a program at every optimisation level; assert the
    outputs agree and return the level->stats mapping."""
    stats = {}
    for options, tag in zip(ALL_LEVELS, LEVEL_IDS):
        stats[tag] = compile_and_run(
            source, options, check_contracts=check_contracts
        )
    outputs = {tuple(s.output) for s in stats.values()}
    assert len(outputs) == 1, f"outputs diverge: {outputs}"
    return stats


# --------------------------------------------------------------------------
# Hand-built CFGs for dataflow / shrink-wrap tests
# --------------------------------------------------------------------------

def build_graph(edges: List[Tuple[int, int]], n: int) -> CFG:
    """Build a CFG with blocks 0..n-1 and the given edges.

    Blocks with no successors become return blocks; one successor, jumps;
    more, conditional jumps (first two targets).
    """
    fn = IRFunction(name="g", params=[])
    out: Dict[int, List[int]] = {}
    for a, b in edges:
        out.setdefault(a, []).append(b)
    for i in range(n):
        succs = out.get(i, [])
        if not succs:
            term = Ret(None)
        elif len(succs) == 1:
            term = Jump(f"b{succs[0]}")
        else:
            term = CJump(Const(1), f"b{succs[0]}", f"b{succs[1]}")
        fn.add_block(BasicBlock(f"b{i}", [], term))
    cfg = CFG(fn=fn)
    cfg.blocks = list(fn.blocks)
    cfg.index = {b.name: i for i, b in enumerate(cfg.blocks)}
    cfg.succs = [[] for _ in range(n)]
    cfg.preds = [[] for _ in range(n)]
    for a, b in edges:
        cfg.succs[a].append(b)
        cfg.preds[b].append(a)
    return cfg

# --------------------------------------------------------------------------
# Independent shrink-wrap soundness checker (state enumeration; a
# deliberately different algorithm from the implementation's own
# meet-based detector, so property tests cross-check the two)
# --------------------------------------------------------------------------

class UnsoundPlacement(AssertionError):
    pass


def check_placement(
    cfg: CFG, app_blocks: Set[int], placement: WrapPlacement
) -> None:
    """Raise :class:`UnsoundPlacement` if the placement can misbehave on
    any execution path."""
    exits = set(cfg.exits())
    seen: Set[Tuple[int, bool]] = set()
    # an entry-block save is emitted in the prologue (before the entry
    # label): it runs exactly once, so it becomes the initial state and
    # never re-executes on back edges into the entry
    work = [(cfg.entry, cfg.entry in placement.saves)]
    while work:
        block, saved = work.pop()
        if (block, saved) in seen:
            continue
        seen.add((block, saved))
        state = saved
        if block in placement.saves and block != cfg.entry:
            if state:
                raise UnsoundPlacement(f"double save at block {block}")
            state = True
        if block in app_blocks and not state:
            raise UnsoundPlacement(f"use at block {block} while unsaved")
        if block in placement.restores:
            if not state:
                raise UnsoundPlacement(f"restore at block {block} while unsaved")
            state = False
        if block in exits and not cfg.succs[block]:
            if state:
                raise UnsoundPlacement(f"exit at block {block} while saved")
        for succ in cfg.succs[block]:
            work.append((succ, state))
