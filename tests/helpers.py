"""Shared helpers for the test suite (importable as ``import helpers``)."""

from __future__ import annotations

from repro.frontend import analyze, parse
from repro.ir import lower_module, optimize_module
from repro.pipeline import (
    compile_and_run,
    O0,
    O1,
    O2,
    O2_SW,
    O3,
    O3_SW,
)

ALL_LEVELS = [O0, O1, O2, O2_SW, O3, O3_SW]
LEVEL_IDS = ["O0", "O1", "O2", "O2_SW", "O3", "O3_SW"]


def lower(source: str, name: str = "test"):
    """Parse/analyze/lower a source string to an IR module."""
    return lower_module(analyze(parse(source, name)))


def lower_opt(source: str, name: str = "test"):
    mod = lower(source, name)
    optimize_module(mod)
    return mod


def run_all_levels(source, check_contracts: bool = True):
    """Compile and run a program at every optimisation level; assert the
    outputs agree and return the level->stats mapping."""
    stats = {}
    for options, tag in zip(ALL_LEVELS, LEVEL_IDS):
        stats[tag] = compile_and_run(
            source, options, check_contracts=check_contracts
        )
    outputs = {tuple(s.output) for s in stats.values()}
    assert len(outputs) == 1, f"outputs diverge: {outputs}"
    return stats
