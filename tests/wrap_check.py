"""Independent soundness checker for shrink-wrap placements.

Explores every reachable (block, save-state) pair of a CFG and asserts
the placement discipline:

* no save while already saved (double save would lose the original),
* every APP block executes in the saved state,
* no restore outside the saved state,
* every path reaching an exit ends unsaved (value restored).

This is deliberately a *different* algorithm from the implementation's
violation detector (state enumeration rather than a meet-based abstract
interpretation) so the property tests cross-check one against the other.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.cfg.cfg import CFG
from repro.shrinkwrap.placement import WrapPlacement


class UnsoundPlacement(AssertionError):
    pass


def check_placement(
    cfg: CFG, app_blocks: Set[int], placement: WrapPlacement
) -> None:
    """Raise :class:`UnsoundPlacement` if the placement can misbehave on
    any execution path."""
    exits = set(cfg.exits())
    seen: Set[Tuple[int, bool]] = set()
    # an entry-block save is emitted in the prologue (before the entry
    # label): it runs exactly once, so it becomes the initial state and
    # never re-executes on back edges into the entry
    work = [(cfg.entry, cfg.entry in placement.saves)]
    while work:
        block, saved = work.pop()
        if (block, saved) in seen:
            continue
        seen.add((block, saved))
        state = saved
        if block in placement.saves and block != cfg.entry:
            if state:
                raise UnsoundPlacement(f"double save at block {block}")
            state = True
        if block in app_blocks and not state:
            raise UnsoundPlacement(f"use at block {block} while unsaved")
        if block in placement.restores:
            if not state:
                raise UnsoundPlacement(f"restore at block {block} while unsaved")
            state = False
        if block in exits and not cfg.succs[block]:
            if state:
                raise UnsoundPlacement(f"exit at block {block} while saved")
        for succ in cfg.succs[block]:
            work.append((succ, state))
