"""Call graph, open/closed classification, DFS ordering (Section 3)."""

from helpers import lower

from repro.interproc import build_call_graph, dfs_postorder


def cg_of(src, **kwargs):
    return build_call_graph(lower(src), **kwargs)


def test_entry_point_is_always_open():
    cg = cg_of("func main() {}")
    assert cg.is_open("main")


def test_leaf_procedures_are_closed():
    cg = cg_of("func leaf() {} func main() { leaf(); }")
    assert cg.is_closed("leaf")
    assert cg.is_open("main")


def test_self_recursion_is_open():
    cg = cg_of(
        """
        func r(n) { if (n > 0) { r(n - 1); } return n; }
        func main() { r(5); }
        """
    )
    assert cg.is_open("r")


def test_mutual_recursion_scc_is_open():
    cg = cg_of(
        """
        func even(n) { if (n == 0) { return 1; } return odd(n - 1); }
        func odd(n) { if (n == 0) { return 0; } return even(n - 1); }
        func helper(x) { return x + 1; }
        func main() { print even(8) + helper(1); }
        """
    )
    assert cg.is_open("even")
    assert cg.is_open("odd")
    assert cg.is_closed("helper")


def test_address_taken_is_open():
    cg = cg_of(
        """
        func cb(x) { return x; }
        func plain(x) { return x; }
        func main() { var p = &cb; p(1); plain(2); }
        """
    )
    assert cg.is_open("cb")
    assert cg.is_closed("plain")


def test_externally_visible_makes_everything_open():
    cg = cg_of(
        "func a() {} func b() { a(); } func main() { b(); }",
        externally_visible=True,
    )
    assert cg.is_open("a") and cg.is_open("b") and cg.is_open("main")


def test_edges_and_reverse_edges():
    cg = cg_of(
        "func a() {} func b() { a(); } func main() { a(); b(); }"
    )
    assert cg.callees("main") == {"a", "b"}
    assert cg.callers("a") == {"b", "main"}


def test_dfs_postorder_callees_first():
    cg = cg_of(
        """
        func d() {}
        func c() { d(); }
        func b() { d(); }
        func a() { b(); c(); }
        func main() { a(); }
        """
    )
    order = dfs_postorder(cg)
    pos = {n: i for i, n in enumerate(order)}
    assert pos["d"] < pos["b"]
    assert pos["d"] < pos["c"]
    assert pos["b"] < pos["a"]
    assert pos["c"] < pos["a"]
    assert pos["a"] < pos["main"]
    assert set(order) == {"a", "b", "c", "d", "main"}


def test_unreachable_functions_still_ordered():
    cg = cg_of(
        """
        func orphan_leaf() {}
        func orphan() { orphan_leaf(); }
        func main() {}
        """
    )
    order = dfs_postorder(cg)
    assert set(order) == {"orphan_leaf", "orphan", "main"}
    assert order.index("orphan_leaf") < order.index("orphan")


def test_deep_recursion_cycle_detected_iteratively():
    # a long cycle a0 -> a1 -> ... -> a60 -> a0 (no recursion limit issues)
    n = 60
    parts = []
    for i in range(n):
        nxt = (i + 1) % n
        parts.append(f"func a{i}() {{ a{nxt}(); }}")
    parts.append("func main() { a0(); }")
    cg = cg_of("\n".join(parts))
    for i in range(n):
        assert cg.is_open(f"a{i}")


def test_calls_to_externs_do_not_break_graph():
    cg = cg_of("extern func e(0); func main() { e(); }")
    assert "e" in cg.callees("main")
    assert cg.is_open("main")
