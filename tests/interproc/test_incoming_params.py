"""Incoming-parameter conventions for closed procedures (Section 4)."""

from helpers import lower_opt, run_all_levels

from repro.interproc import PlanOptions, plan_program
from repro.target.registers import FULL_FILE, callee_only_file


def plan(src, register_file=FULL_FILE):
    return plan_program(
        lower_opt(src), PlanOptions(register_file=register_file, ipra=True)
    )


def test_live_params_have_distinct_arrival_registers():
    src = """
    func f(a, b, c, d, e, g) { return a + b + c + d + e + g; }
    func main() { print f(1, 2, 3, 4, 5, 6); }
    """
    p = plan(src)
    specs = p.summaries["f"].params
    regs = [s.reg.index for s in specs if s.reg is not None and not s.dead]
    assert len(regs) == len(set(regs)), "arrival registers must not collide"


def test_spilled_param_arrives_in_free_register():
    # restrict registers so at least one parameter spills; its arrival
    # register must not collide with the allocated parameters
    src = """
    func f(a, b, c, d) {
        var t = a * b + c * d;
        return t + a + b + c + d;
    }
    func main() { print f(1, 2, 3, 4); }
    """
    p = plan(src, register_file=callee_only_file(2))
    specs = p.summaries["f"].params
    live = [s for s in specs if not s.dead]
    regs = [s.reg.index for s in live if s.reg is not None]
    assert len(regs) == len(set(regs))
    # behaviour must be intact under the restriction
    from repro.pipeline import compile_and_run, O2, O3_SW

    base = compile_and_run(src, O2, check_contracts=True)
    restricted = compile_and_run(
        src, O3_SW.with_(register_file=callee_only_file(2)),
        check_contracts=True,
    )
    assert base.output == restricted.output


def test_dead_params_are_not_staged_anywhere():
    src = """
    func pick(a, unused1, b, unused2) { return a + b; }
    func main() { print pick(10, 999, 20, 888); }
    """
    p = plan(src)
    specs = p.summaries["pick"].params
    assert not specs[0].dead and not specs[2].dead
    assert specs[1].dead and specs[3].dead
    assert p.summaries["pick"].staging_mask() & 0xFFFFFFFF  # some staging
    stats = run_all_levels(src)
    assert stats["O0"].output == [30]


def test_param_swap_at_call_boundary():
    # f(b, a) from f's own parameters forces a parallel-move cycle at the
    # call boundary under register parameter passing
    src = """
    func target(x, y) { return x * 10 + y; }
    func caller(a, b) { return target(b, a); }
    func main() { print caller(1, 2); }
    """
    stats = run_all_levels(src)
    assert stats["O0"].output == [21]


def test_chain_passes_parameter_through_same_register():
    # the Section 4 claim: "from caller to callee, the parameter can be
    # left undisturbed in the parameter register"
    src = """
    func inner(v) { return v + 1; }
    func middle(v) { return inner(v) + 1; }
    func outer(v) { return middle(v) + 1; }
    func main() { print outer(39); }
    """
    p = plan(src)
    arrival = {
        name: p.summaries[name].params[0].reg.index
        for name in ("inner", "middle", "outer")
    }
    # all three agree on one register: no moves along the chain
    assert len(set(arrival.values())) == 1
    stats = run_all_levels(src)
    assert stats["O0"].output == [42]


def test_more_than_eleven_live_params_fall_back_to_stack():
    names = [f"p{i}" for i in range(13)]
    src = f"""
    func wide({', '.join(names)}) {{
        return {' + '.join(names)};
    }}
    func main() {{ print wide({', '.join(str(i) for i in range(13))}); }}
    """
    p = plan(src, register_file=callee_only_file(1))
    specs = p.summaries["wide"].params
    assert any(s.on_stack for s in specs)
    stats = run_all_levels(src)
    assert stats["O0"].output == [sum(range(13))]
