"""The paper's Fig. 1: register re-use in simultaneously active procedures.

``main`` calls ``p``; ``p`` computes with a local before and after calling
``q``.  Variables whose ranges do not span the call to the child can share
the child's registers without any save/restore; with equal priorities the
allocator prefers a register already used in the call tree, minimising the
registers per call tree.
"""

from helpers import lower_opt

from repro.interproc import PlanOptions, plan_program
from repro.target.registers import FULL_FILE

SRC = """
func q(y) {
    var c = y * 2;
    return c + 1;
}
func p(x) {
    var a = x + 1;          // dead before the call to q
    var t = q(a);
    var b = t + 2;          // born after the call to q
    return b;
}
func main() {
    print p(5);
}
"""


def test_fig1_registers_shared_across_active_procedures():
    p = plan_program(
        lower_opt(SRC), PlanOptions(register_file=FULL_FILE, ipra=True)
    )
    q_used = p.summaries["q"].used_mask
    p_alloc = p.plans["p"].alloc

    # p's ranges that do not span the call may sit in q's registers --
    # and with the tie-break they actually do.
    non_spanning = [
        v for v, lr in p_alloc.ranges.ranges.items() if not lr.calls
    ]
    reused = [
        v for v in non_spanning
        if v in p_alloc.assignment
        and q_used & (1 << p_alloc.assignment[v].index)
    ]
    assert reused, "expected register re-use between p and q (Fig. 1)"


def test_fig1_no_save_restore_executed():
    from repro.pipeline import compile_program, O3

    prog = compile_program(SRC, O3)
    stats = prog.run(check_contracts=True)
    # ra saves aside, no register save/restore traffic is needed
    from repro.target.isa import MemKind

    save_stores = stats.stores.get(MemKind.SAVE, 0)
    calls = stats.calls
    assert save_stores <= calls  # only the ra saves remain


def test_fig1_tie_break_ablation_changes_sharing():
    base = plan_program(
        lower_opt(SRC),
        PlanOptions(register_file=FULL_FILE, ipra=True, prefer_subtree_reg=True),
    )
    off = plan_program(
        lower_opt(SRC),
        PlanOptions(register_file=FULL_FILE, ipra=True, prefer_subtree_reg=False),
    )
    # with the preference on, p+q together touch no more registers than
    # with it off
    def tree_regs(p):
        return bin(
            p.summaries["q"].used_mask
            | p.plans["p"].alloc.own_assigned_mask
        ).count("1")

    assert tree_regs(base) <= tree_regs(off)
