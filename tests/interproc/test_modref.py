"""Mod/ref global-summary tests (extension)."""

from helpers import lower_opt, run_all_levels

from repro.interproc.modref import (
    cacheable_globals,
    own_global_refs,
    subtree_global_refs,
    TOUCHES_ALL,
)
from repro.pipeline import compile_and_run, compile_program, O3_SW


SRC = """
var g1 = 0;
var g2 = 0;
func pure(x) { return x + 1; }
func touches_g1(x) { g1 = g1 + x; return g1; }
func caller_pure(x) { g2 = g2 + pure(x); return g2; }
func caller_dirty(x) { g2 = g2 + touches_g1(x); return g2; }
func recur(n) { if (n > 0) { return recur(n - 1); } return g1; }
func main() {
    print caller_pure(1);
    print caller_dirty(2);
    print recur(3);
}
"""


def functions():
    return lower_opt(SRC).functions


def test_own_refs():
    fns = functions()
    assert own_global_refs(fns["pure"]) == set()
    assert own_global_refs(fns["touches_g1"]) == {"g1"}
    assert own_global_refs(fns["caller_pure"]) == {"g2"}


def test_subtree_refs_accumulate():
    fns = functions()
    known = {}
    known["pure"] = subtree_global_refs(fns["pure"], known)
    known["touches_g1"] = subtree_global_refs(fns["touches_g1"], known)
    assert known["pure"] == frozenset()
    assert known["touches_g1"] == frozenset({"g1"})
    assert subtree_global_refs(fns["caller_dirty"], known) == frozenset(
        {"g1", "g2"}
    )


def test_unknown_callee_means_touches_all():
    fns = functions()
    # recur calls itself; with no summary for it the result is TOUCHES_ALL
    assert subtree_global_refs(fns["recur"], {}) is TOUCHES_ALL


def test_cacheable_globals():
    fns = functions()
    known = {"pure": frozenset(), "touches_g1": frozenset({"g1"})}
    assert cacheable_globals(fns["caller_pure"], known) == {"g2"}
    # caller_dirty's callee touches g1 but not g2: g2 is still cacheable
    assert cacheable_globals(fns["caller_dirty"], known) == {"g2"}
    # unknown callee blocks everything
    assert cacheable_globals(fns["recur"], {}) == set()


def test_indirect_call_blocks_caching():
    src = """
    var g = 0;
    func cb() { return 1; }
    func f(p) { g = g + p(); return g; }
    func main() { var q = &cb; print f(q); }
    """
    fns = lower_opt(src).functions
    assert cacheable_globals(fns["f"], {"cb": frozenset()}) == set()
    assert subtree_global_refs(fns["f"], {"cb": frozenset()}) is TOUCHES_ALL


def test_extension_preserves_behaviour():
    base = compile_and_run(SRC, O3_SW, check_contracts=True)
    ext = compile_and_run(
        SRC, O3_SW.with_(ipra_globals=True), check_contracts=True
    )
    assert base.output == ext.output
    assert ext.scalar_memops <= base.scalar_memops


def test_extension_caches_global_across_safe_calls():
    src = """
    var acc = 0;
    func pure(x) { return x * 2; }
    func hot(n) {
        for (var i = 0; i < n; i = i + 1) { acc = acc + pure(i); }
        return acc;
    }
    func main() { print hot(50); }
    """
    prog = compile_program(src, O3_SW.with_(ipra_globals=True))
    hot_alloc = prog.plan.plans["hot"].alloc
    assert any(v.name == "acc" for v in hot_alloc.assignment)
    assert prog.run(check_contracts=True).output == [2450]


def test_extension_does_not_cache_dirty_global():
    src = """
    var acc = 0;
    func dirty(x) { acc = acc + 1; return x; }
    func hot(n) {
        for (var i = 0; i < n; i = i + 1) { acc = acc + dirty(i); }
        return acc;
    }
    func main() { print hot(10); }
    """
    prog = compile_program(src, O3_SW.with_(ipra_globals=True))
    hot_alloc = prog.plan.plans["hot"].alloc
    assert not any(v.name == "acc" for v in hot_alloc.assignment)
    base = compile_and_run(src, O3_SW, check_contracts=True)
    ext = prog.run(check_contracts=True)
    assert base.output == ext.output


def test_random_levels_with_extension(fib_source):
    base = compile_and_run(fib_source, O3_SW, check_contracts=True)
    ext = compile_and_run(
        fib_source, O3_SW.with_(ipra_globals=True), check_contracts=True
    )
    assert base.output == ext.output
