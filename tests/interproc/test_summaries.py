"""Usage-summary data structure tests."""

import pytest

from repro.interproc import ParamSpec, ProcSummary, default_param_specs, default_summary
from repro.target.registers import (
    DEFAULT_CLOBBER_MASK,
    PARAM_REGS,
    reg,
    V0,
)


def test_default_param_specs_first_four_in_registers():
    specs = default_param_specs(6)
    assert [s.reg for s in specs[:4]] == list(PARAM_REGS)
    assert specs[4].on_stack and specs[4].stack_slot == 4
    assert specs[5].on_stack and specs[5].stack_slot == 5


def test_stack_slot_requires_stack_param():
    spec = ParamSpec(pos=0, reg=reg("a0"))
    with pytest.raises(ValueError):
        spec.stack_slot


def test_dead_param_is_not_on_stack():
    spec = ParamSpec(pos=2, dead=True)
    assert not spec.on_stack


def test_default_summary_assumes_default_clobber():
    s = default_summary("x", 2)
    assert s.used_mask == DEFAULT_CLOBBER_MASK
    assert not s.closed
    assert len(s.params) == 2


def test_staging_mask_counts_live_register_params():
    s = ProcSummary(
        name="f",
        closed=True,
        used_mask=0,
        params=[
            ParamSpec(pos=0, reg=reg("s3")),
            ParamSpec(pos=1, dead=True),
            ParamSpec(pos=2, reg=None),
        ],
    )
    assert s.staging_mask() == 1 << reg("s3").index


def test_call_clobber_mask_includes_staging_and_v0():
    s = ProcSummary(
        name="f",
        closed=True,
        used_mask=1 << reg("t0").index,
        params=[ParamSpec(pos=0, reg=reg("a1"))],
    )
    m = s.call_clobber_mask()
    assert m & (1 << reg("t0").index)
    assert m & (1 << reg("a1").index)
    assert m & (1 << V0.index)
