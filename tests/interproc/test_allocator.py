"""One-pass IPRA driver tests (Sections 2, 3, 4, 6)."""

from helpers import lower_opt

from repro.interproc import PlanOptions, plan_program
from repro.target.registers import (
    CALLEE_SAVED_MASK,
    DEFAULT_CLOBBER_MASK,
    FULL_FILE,
    registers_in_mask,
    V0,
)


def plan(src, **kwargs):
    opts = PlanOptions(register_file=FULL_FILE, ipra=True, **kwargs)
    return plan_program(lower_opt(src), opts)


CHAIN = """
func level0(x) { return x * 2 + 1; }
func level1(x) { var a = x + 3; return level0(a) + a; }
func level2(x) { var a = x - 1; return level1(a) * level1(a + 1) + a; }
func main() { print level2(10); }
"""


def test_closed_procedures_get_summaries():
    p = plan(CHAIN)
    assert p.summaries["level0"].closed
    assert p.summaries["level1"].closed
    assert not p.summaries["main"].closed


def test_summaries_accumulate_up_the_tree():
    p = plan(CHAIN)
    u0 = p.summaries["level0"].used_mask
    u1 = p.summaries["level1"].used_mask
    u2 = p.summaries["level2"].used_mask
    assert u0 & u1 == u0  # level1's summary includes level0's
    assert u1 & u2 == u1


def test_summary_includes_v0():
    p = plan(CHAIN)
    assert p.summaries["level0"].used_mask & (1 << V0.index)


def test_open_procedure_reports_default_summary():
    p = plan(
        """
        func r(n) { if (n > 0) { return r(n - 1); } return 0; }
        func main() { print r(3); }
        """
    )
    assert p.summaries["r"].used_mask == DEFAULT_CLOBBER_MASK


def test_closed_leaf_has_no_saves():
    p = plan(CHAIN)
    leaf = p.plans["level0"]
    assert leaf.mode == "closed"
    assert leaf.entry_exit_saves == []
    assert leaf.wrapped == {}


def test_dfs_order_processes_callees_first():
    p = plan(CHAIN)
    pos = {n: i for i, n in enumerate(p.order)}
    assert pos["level0"] < pos["level1"] < pos["level2"] < pos["main"]


def test_closed_param_travels_in_allocated_register():
    p = plan(CHAIN)
    spec = p.summaries["level1"].params[0]
    assert spec.reg is not None
    alloc = p.plans["level1"].alloc
    x = next(v for v in alloc.fn.param_vregs if v.index == 0)
    assert alloc.assignment[x].index == spec.reg.index


def test_dead_param_marked_dead():
    p = plan(
        """
        func ignore(a, b) { return a; }
        func main() { print ignore(1, 2); }
        """
    )
    specs = p.summaries["ignore"].params
    assert not specs[0].dead
    assert specs[1].dead


def test_calls_to_open_procs_use_default_clobber():
    p = plan(
        """
        func r(n) { if (n > 0) { r(n - 1); } return n; }
        func caller() { return r(5); }
        func main() { print caller(); }
        """
    )
    caller_alloc = p.plans["caller"].alloc
    masks = set(caller_alloc.call_clobbers.values())
    for m in masks:
        assert m & DEFAULT_CLOBBER_MASK == DEFAULT_CLOBBER_MASK & m
        # callee-saved registers are preserved by open callees
        assert not (m & CALLEE_SAVED_MASK)


def test_open_proc_saves_callee_saved_clobbered_by_closed_children():
    # a closed child that burns enough values to need callee-saved regs,
    # called from an open (recursive) parent
    src = """
    func burn(a, b, c) {
        var x = a + b;
        var y = b + c;
        var z = a + c;
        return hot(x) + hot(y) + hot(z) + x + y + z;
    }
    func hot(v) { return v * 2; }
    func parent(n) {
        if (n > 0) { return parent(n - 1) + burn(n, n + 1, n + 2); }
        return 0;
    }
    func main() { print parent(3); }
    """
    p = plan(src)
    burn_used = p.summaries["burn"].used_mask
    if burn_used & CALLEE_SAVED_MASK:
        parent_plan = p.plans["parent"]
        saved = parent_plan.saved_mask
        assert burn_used & CALLEE_SAVED_MASK & saved == \
            burn_used & CALLEE_SAVED_MASK


def test_section6_wrap_excludes_register_from_summary():
    # closed proc using a callee-saved register only on a cold path:
    # with shrink-wrap + combining it saves locally and reports it unused
    src = """
    func work(x) { return x + 1; }
    func cold(n) {
        if (n > 100) {
            var v = n * 3;
            var w = work(v) + work(v + 1) + work(v + 2);
            return v + w;
        }
        return n;
    }
    func main() {
        var t = 0;
        for (var i = 0; i < 5; i = i + 1) { t = t + cold(i); }
        print t;
    }
    """
    p = plan(src, shrink_wrap=True, combine=True)
    cold_plan = p.plans["cold"]
    assert cold_plan.mode == "closed"
    if cold_plan.wrapped:
        for idx in cold_plan.wrapped:
            assert not (p.summaries["cold"].used_mask & (1 << idx))
            assert p.summaries["cold"].saved_locally_mask & (1 << idx)


def test_without_combining_closed_procs_propagate_everything():
    src = """
    func work(x) { return x + 1; }
    func cold(n) {
        if (n > 100) {
            var v = n * 3;
            var w = work(v) + work(v + 1) + work(v + 2);
            return v + w;
        }
        return n;
    }
    func main() { print cold(1); }
    """
    p = plan(src, shrink_wrap=True, combine=False)
    assert p.plans["cold"].wrapped == {}
    assert p.summaries["cold"].saved_locally_mask == 0


def test_intra_mode_has_no_summaries_in_force():
    opts = PlanOptions(register_file=FULL_FILE, ipra=False)
    p = plan_program(lower_opt(CHAIN), opts)
    for fnplan in p.plans.values():
        assert fnplan.mode == "intra"
        for m in fnplan.alloc.call_clobbers.values():
            assert not (m & CALLEE_SAVED_MASK)


def test_externally_visible_disables_closure():
    p = plan(CHAIN, externally_visible=True)
    for name in ("level0", "level1", "level2"):
        assert p.plans[name].mode == "open"
