"""Worklist-solver efficiency tests.

The seed solver re-ran every transfer function on every pass until a full
pass changed nothing, bounded by ``4 * n + 8`` passes -- O(n^2) transfer
evaluations on a diamond chain.  The worklist solver seeds blocks in
reverse postorder and re-evaluates a block only when a value feeding it
changes, so an acyclic graph converges in one evaluation per block.
"""

from helpers import build_graph

from repro.dataflow import DataflowProblem, solve


def diamond_chain(k):
    """k diamonds in a row: 0 -> {1,2} -> 3 -> {4,5} -> 6 -> ...

    Block count is ``3 * k + 1``; pick ``k = 33`` for a 100-block CFG.
    """
    edges = []
    for d in range(k):
        top = 3 * d
        join = top + 3
        edges += [(top, top + 1), (top, top + 2),
                  (top + 1, join), (top + 2, join)]
    return build_graph(edges, 3 * k + 1)


def counting_problem(forward):
    evals = []

    def transfer(b, val):
        evals.append(b)
        return val | {b}

    problem = DataflowProblem(
        forward=forward,
        top=frozenset(),
        boundary=frozenset({"boundary"}),
        meet=lambda a, b: a | b,
        transfer=transfer,
    )
    return problem, evals


def test_forward_diamond_chain_is_linear():
    cfg = diamond_chain(33)
    n = cfg.num_blocks
    assert n == 100
    problem, evals = counting_problem(forward=True)
    in_vals, out_vals = solve(cfg, problem)
    # correctness: every block sees the boundary token and its own path
    for b in range(n):
        assert "boundary" in in_vals[b]
        assert b in out_vals[b]
    # the seed's round-robin solver performed at least two full passes
    # (one to converge, one to notice), i.e. >= 2 * n evaluations, with a
    # worst-case bound of (4 * n + 8) * n.  The worklist solver does one
    # evaluation per block on this acyclic graph.
    assert len(evals) == n
    assert len(evals) < 4 * n + 8


def test_backward_diamond_chain_is_linear():
    cfg = diamond_chain(33)
    n = cfg.num_blocks
    problem, evals = counting_problem(forward=False)
    in_vals, _ = solve(cfg, problem)
    for b in range(n):
        assert "boundary" in in_vals[b]
    assert len(evals) == n
    assert len(evals) < 4 * n + 8


def test_loop_reevaluates_only_affected_blocks():
    # 0 -> 1 -> 2 -> 1 (back edge), 2 -> 3.  The back edge forces a second
    # evaluation of the loop blocks, but block 0 and 3 never re-run more
    # than the propagation requires.
    cfg = build_graph([(0, 1), (1, 2), (2, 1), (2, 3)], 4)
    problem, evals = counting_problem(forward=True)
    _, out_vals = solve(cfg, problem)
    assert out_vals[3] >= {"boundary", 0, 1, 2, 3} - {"boundary"} | {3}
    # entry evaluated exactly once; total work far below a full-sweep pass
    assert evals.count(0) == 1
    assert len(evals) <= 8
