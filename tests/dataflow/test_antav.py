"""ANT/AV (equations 3.1-3.4) tests on hand-built graphs."""

from helpers import build_graph

from repro.dataflow import solve_ant_av

BIT = 1


def test_straight_line_use_in_middle():
    # 0 -> 1 -> 2(exit), APP at 1
    cfg = build_graph([(0, 1), (1, 2)], 3)
    r = solve_ant_av(cfg, [0, BIT, 0], BIT)
    assert r.antin == [BIT, BIT, 0]
    assert r.antout[0] == BIT
    assert r.antout[2] == 0      # exit boundary
    assert r.avin == [0, 0, BIT]
    assert r.avout == [0, BIT, BIT]


def test_diamond_use_on_one_branch_not_anticipated_at_fork():
    #   0 -> 1, 2 ; 1 -> 3 ; 2 -> 3(exit); APP at 1
    cfg = build_graph([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
    r = solve_ant_av(cfg, [0, BIT, 0, 0], BIT)
    assert r.antin[1] == BIT
    assert r.antout[0] == 0      # only one path uses it
    assert r.avin[3] == 0        # not available on the 0->2 path


def test_diamond_use_on_both_branches_anticipated_at_fork():
    cfg = build_graph([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
    r = solve_ant_av(cfg, [0, BIT, BIT, 0], BIT)
    assert r.antout[0] == BIT
    assert r.avin[3] == BIT      # available on every path into the join


def test_entry_boundary_for_availability():
    # a use in the entry block is available after it but AVIN(entry)=0
    cfg = build_graph([(0, 1)], 2)
    r = solve_ant_av(cfg, [BIT, 0], BIT)
    assert r.avin[0] == 0
    assert r.avout[0] == BIT


def test_loop_keeps_anticipability_through_header():
    # 0 -> 1 (header) -> 2 (body, APP) -> 1 ; 1 -> 3 (exit)
    cfg = build_graph([(0, 1), (1, 2), (2, 1), (1, 3)], 4)
    r = solve_ant_av(cfg, [0, 0, BIT, 0], BIT)
    # not anticipated at the header: the exit path avoids the use
    assert r.antin[1] == 0
    assert r.antin[2] == BIT


def test_multiple_registers_solved_bit_parallel():
    cfg = build_graph([(0, 1), (1, 2)], 3)
    app = [0b01, 0b10, 0]
    r = solve_ant_av(cfg, app, 0b11)
    assert r.antin[0] == 0b11    # both anticipated from entry
    assert r.avout[1] == 0b11
    assert r.avin[1] == 0b01
