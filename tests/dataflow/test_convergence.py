"""Iteration caps raise an actionable ConvergenceError instead of
hanging -- for the generic dataflow solver (non-monotone problem) and
the shrink-wrap range-extension loop (exhausted budget)."""

import pytest

from helpers import lower

from repro.cfg import build_cfg
from repro.cfg.loops import find_loops
from repro.dataflow import DataflowProblem, solve
from repro.dataflow.framework import ConvergenceError
from repro.shrinkwrap.placement import shrink_wrap


def cfg_of(src, name="f"):
    return build_cfg(lower(src).functions[name])


LOOPY = "func f(n) { while (n > 0) { n = n - 1; } return n; }"


def test_non_monotone_forward_problem_raises_convergence_error():
    cfg = cfg_of(LOOPY)
    # the transfer strictly grows on every visit, so no fixed point
    # exists; the budget must catch it and explain itself
    problem = DataflowProblem(
        forward=True,
        top=0,
        boundary=0,
        meet=max,
        transfer=lambda b, val: val + 1,
    )
    with pytest.raises(ConvergenceError) as info:
        solve(cfg, problem)
    err = info.value
    assert err.solver == "dataflow (forward)"
    assert err.iterations > 0
    assert "non-monotone" in err.detail
    assert "failed to converge" in str(err)


def test_non_monotone_backward_problem_raises_convergence_error():
    cfg = cfg_of(LOOPY)
    problem = DataflowProblem(
        forward=False,
        top=0,
        boundary=0,
        meet=max,
        transfer=lambda b, val: val + 1,
    )
    with pytest.raises(ConvergenceError, match="dataflow .backward."):
        solve(cfg, problem)


def test_shrink_wrap_exhausted_budget_raises_convergence_error():
    cfg = cfg_of(LOOPY)
    loops = find_loops(cfg)
    with pytest.raises(ConvergenceError) as info:
        shrink_wrap(cfg, loops, {0: {0}}, max_iterations=0)
    err = info.value
    assert err.solver == "shrink-wrap range extension"
    assert err.iterations == 0
    assert "blocks" in err.detail


def test_shrink_wrap_converges_within_default_budget():
    cfg = cfg_of(LOOPY)
    loops = find_loops(cfg)
    result = shrink_wrap(cfg, loops, {0: {0}, 1: {1}})
    assert 0 < result.iterations <= 64
