"""Generic dataflow solver tests (reaching-constants style toy problem)."""

from helpers import lower

from repro.cfg import build_cfg
from repro.dataflow import DataflowProblem, solve


def cfg_of(src, name="f"):
    return build_cfg(lower(src).functions[name])


def test_forward_reachability():
    cfg = cfg_of(
        "func f(x) { var r; if (x) { r = 1; } else { r = 2; } return r; }"
    )
    # forward "reachable from entry" — everything reachable
    problem = DataflowProblem(
        forward=True,
        top=True,
        boundary=True,
        meet=lambda a, b: a or b,
        transfer=lambda b, val: val,
    )
    in_vals, out_vals = solve(cfg, problem)
    assert all(out_vals)


def test_backward_reaches_exit():
    cfg = cfg_of("func f(n) { while (n > 0) { n = n - 1; } return n; }")
    problem = DataflowProblem(
        forward=False,
        top=False,
        boundary=True,
        meet=lambda a, b: a or b,
        transfer=lambda b, val: val,
    )
    in_vals, _ = solve(cfg, problem)
    assert all(in_vals)


def test_meet_over_paths_intersection():
    # "definitely executed block 1" as an AND-problem over a diamond
    cfg = cfg_of(
        "func f(x) { var r; if (x) { r = 1; } else { r = 2; } return r; }"
    )
    then_block = 1  # one of the two branch blocks

    def transfer(b, val):
        return True if b == then_block else val

    problem = DataflowProblem(
        forward=True,
        top=True,
        boundary=False,
        meet=lambda a, b: a and b,
        transfer=transfer,
    )
    _, out_vals = solve(cfg, problem)
    join_blocks = [b for b in range(cfg.num_blocks) if len(cfg.preds[b]) == 2]
    assert join_blocks
    for j in join_blocks:
        # only one path goes through then_block, so the meet must be False
        assert out_vals[j] is False


def test_fixed_point_on_loops_terminates():
    cfg = cfg_of(
        """
        func f(n) {
            var s = 0;
            while (n > 0) {
                var m = n;
                while (m > 0) { m = m - 1; s = s + 1; }
                n = n - 1;
            }
            return s;
        }
        """
    )
    problem = DataflowProblem(
        forward=True,
        top=frozenset(),
        boundary=frozenset({"seed"}),
        meet=lambda a, b: a | b,
        transfer=lambda b, val: val | {b},
    )
    in_vals, out_vals = solve(cfg, problem)
    assert "seed" in in_vals[cfg.entry]
    # every block accumulates itself
    for b in range(cfg.num_blocks):
        assert b in out_vals[b]
