"""Liveness analysis tests."""

from helpers import lower

from repro.cfg import build_cfg
from repro.dataflow import (
    compute_liveness,
    instruction_live_sets,
    live_across_calls,
)
from repro.ir.values import VKind, VReg


def liveness_of(src, name="f", exit_live=()):
    fn = lower(src).functions[name]
    cfg = build_cfg(fn)
    return cfg, compute_liveness(cfg, exit_live=exit_live)


def names(vregs):
    return {v.name for v in vregs}


def test_param_live_at_entry_when_used():
    cfg, lv = liveness_of("func f(a, b) { return a; }")
    assert "a" in names(lv.live_in[cfg.entry])
    assert "b" not in names(lv.live_in[cfg.entry])


def test_variable_live_through_loop():
    cfg, lv = liveness_of(
        """
        func f(n) {
            var acc = 0;
            while (n > 0) { acc = acc + n; n = n - 1; }
            return acc;
        }
        """
    )
    # acc is live in the loop condition block
    loop_blocks = [b for b in range(cfg.num_blocks) if cfg.succs[b]]
    assert any("acc" in names(lv.live_in[b]) for b in loop_blocks)


def test_dead_after_last_use():
    cfg, lv = liveness_of("func f(a) { var t = a + 1; return t; }")
    # 'a' is not live out of the block that consumes it
    for b in cfg.exits():
        assert "a" not in names(lv.live_out[b])


def test_exit_live_pins_value_to_returns():
    src = "var g; func f() { g = 1; }"
    fn = lower(src).functions["f"]
    g = next(v for v in fn.vregs if v.name == "g")
    cfg = build_cfg(fn)
    lv = compute_liveness(cfg, exit_live=[g])
    for b in cfg.exits():
        assert g in lv.live_out[b]


def test_instruction_live_sets_walk_backwards():
    src = "func f(a, b) { var x = a + b; var y = x + a; return y; }"
    fn = lower(src).functions["f"]
    cfg = build_cfg(fn)
    lv = compute_liveness(cfg)
    block = cfg.blocks[0]
    walked = list(instruction_live_sets(block, lv.live_out[0]))
    assert walked  # at least the two adds
    # the first yielded item corresponds to the LAST instruction
    last_ins, live_before, live_after = walked[0]
    assert "y" in names(live_before) or "y" in names(live_after)


def test_live_across_calls_excludes_result_and_args_consumed():
    src = """
    func g(x) { return x; }
    func f(a, b) {
        var r = g(a);
        return r + b;
    }
    """
    fn = lower(src).functions["f"]
    cfg = build_cfg(fn)
    lv = compute_liveness(cfg)
    across = live_across_calls(cfg, lv)
    (calls,) = [calls for calls in across.values()]
    ins, live = calls[0]
    assert "b" in names(live)       # b used after the call
    assert "r" not in names(live)   # the result is defined by the call
    assert "a" not in names(live)   # consumed by the call


def test_value_live_across_two_calls():
    src = """
    func g(x) { return x; }
    func f(a) {
        var s = a * 2;
        g(1);
        g(2);
        return s;
    }
    """
    fn = lower(src).functions["f"]
    cfg = build_cfg(fn)
    lv = compute_liveness(cfg)
    across = live_across_calls(cfg, lv)
    all_calls = [c for calls in across.values() for c in calls]
    assert len(all_calls) == 2
    for _, live in all_calls:
        assert "s" in names(live)
