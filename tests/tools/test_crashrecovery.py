"""The kill-mid-put crash-recovery gate, end to end.

This really SIGKILLs a child process stalled inside the store's publish
window, then checks the three recovery guarantees: the reopened store
verifies clean, scrub reaps the orphaned temp, and a fresh process
warm-starts bit-identically from the survivor store.
"""

from pathlib import Path

from repro.tools.crashrecovery import run_crashrecovery


def test_crashrecovery_gate_passes(tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    violations = run_crashrecovery(
        seed=0, configs=["C"], names=["nim"],
        store_dir=str(store), verbose=False,
    )
    assert violations == []
    # the survivor store is healthy and holds the salvaged artifacts
    assert not list(Path(store).glob("*/*.tmp"))
    assert any(store.glob("*/*.blob"))


def test_crashrecovery_kill_targets_both_namespaces(tmp_path):
    # seed 1 draws the plan namespace (seed 0 draws codegen above)
    store = tmp_path / "store"
    store.mkdir()
    violations = run_crashrecovery(
        seed=1, configs=["C"], names=["nim"],
        store_dir=str(store), verbose=False,
    )
    assert violations == []
