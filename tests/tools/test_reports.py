"""Diagnostic-report tests."""

import asyncio

import pytest

from repro.pipeline import compile_program, O2, O3_SW
from repro.tools import (
    allocation_report,
    call_graph_dot,
    describe_options,
    disassemble,
    interference_summary,
    program_report,
    service_report,
    store_report,
)

SRC = """
func leaf(x) { return x * 2; }
func mid(a, b) { return leaf(a) + leaf(b) + a; }
func rec(n) { if (n > 0) { return rec(n - 1) + 1; } return 0; }
func main() { print mid(1, 2) + rec(3); }
"""


@pytest.fixture(scope="module")
def prog():
    return compile_program(SRC, O3_SW)


def test_allocation_report_contains_decisions(prog):
    text = allocation_report(prog.plan.plans["mid"])
    assert "procedure mid [closed]" in text
    assert "value" in text
    assert "summary (subtree may destroy)" in text


def test_program_report_covers_all_functions(prog):
    text = program_report(prog)
    for name in ("leaf", "mid", "rec", "main"):
        assert f"procedure {name}" in text


def test_describe_options(prog):
    assert describe_options(prog) == "-O3 +shrink-wrap"
    o2 = compile_program(SRC, O2)
    assert describe_options(o2) == "-O2"


def test_call_graph_dot_structure(prog):
    dot = call_graph_dot(prog.plan)
    assert dot.startswith("digraph")
    assert '"main" -> "mid"' in dot
    assert '"mid" -> "leaf"' in dot
    # open procedures drawn double-circled
    assert 'doublecircle' in dot
    assert dot.count('"rec"') >= 2  # node + self edge


def test_disassemble_whole_program(prog):
    text = disassemble(prog.executable)
    assert "main:" in text
    assert "jr $ra" in text
    assert "jal" in text


def test_disassemble_single_function(prog):
    text = disassemble(prog.executable, "leaf")
    assert "leaf" in text
    assert "mid:" not in text


def test_interference_summary(prog):
    text = interference_summary(prog.plan.plans["mid"])
    assert text.startswith("mid:")
    assert "ranges" in text


def test_store_report_counters(tmp_path):
    from repro.store import ArtifactStore

    store = ArtifactStore(tmp_path)
    store.put("plan", ("k",), {"v": 1})
    assert store.get("plan", ("k",)) is not None
    store.scrub()
    text = store_report(store)
    assert "1 hits" in text
    assert "1 writes" in text
    assert "1 scrub passes" in text
    assert "0 quarantined" in text
    assert "locking:" in text


def test_service_report_counters(tmp_path):
    from repro.service import CompileService

    async def scenario():
        svc = CompileService(O2, store_path=tmp_path)
        await svc.compile(SRC)
        await svc.join()
        return svc

    svc = asyncio.run(scenario())
    text = service_report(svc)
    assert "service: 1 requests" in text
    assert "1 compiled" in text
    assert "0 trips; all closed" in text
    assert "store:" in text          # attached store rolls up too
