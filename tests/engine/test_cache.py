"""Cache accounting and invalidation-cascade behaviour of the engine."""

import json

from repro import Compiler, O2, O3_SW
from repro.engine.frontend import split_chunks

#: diamond call graph -- main -> {left, right}, left -> leaf, right -> leaf2
PROGRAM = """
var g = 1;

func leaf(x) {{ return x + {leaf_body}; }}

func leaf2(x) {{ return x * 2; }}

func left(a) {{ return leaf(a) + g; }}

func right(a) {{ return leaf2(a) - g; }}

func main() {{ print left(2) + right(3); }}
"""


def stage(session, name):
    return session.stats.records[-1].stages[name]


def compile_once(session, leaf_body="1"):
    session.add_source(("main", PROGRAM.format(leaf_body=leaf_body)))
    return session.compile()


def test_cold_then_warm_accounting():
    session = Compiler(O3_SW)
    compile_once(session)
    assert stage(session, "frontend").misses == 5
    assert stage(session, "frontend").hits == 0
    assert stage(session, "plan").misses == 5
    assert stage(session, "codegen").misses == 5
    assert session.stats.records[-1].invalidated == 5

    compile_once(session)  # identical text: everything hits
    assert stage(session, "frontend").misses == 0
    assert stage(session, "frontend").hits == 5
    assert stage(session, "plan").misses == 0
    assert stage(session, "plan").hits == 5
    assert stage(session, "codegen").misses == 0
    assert session.stats.records[-1].invalidated == 0


def test_single_edit_invalidates_only_ancestor_chain():
    session = Compiler(O3_SW)
    compile_once(session, leaf_body="1")
    compile_once(session, leaf_body="g * 3")
    # only the edited chunk re-lowers
    assert stage(session, "frontend").misses == 1
    assert stage(session, "frontend").hits == 4
    # re-planned: leaf itself plus the ancestors whose view of a callee
    # summary changed -- never the right/leaf2 branch of the diamond
    replanned = stage(session, "plan").misses
    assert 1 <= replanned <= 3
    assert stage(session, "plan").hits == 5 - replanned
    assert session.stats.records[-1].invalidated == replanned


def test_option_flip_invalidates_plans_not_frontend():
    session = Compiler(O2)
    compile_once(session)
    session.set_options(shrink_wrap=True)
    compile_once(session)
    assert stage(session, "frontend").misses == 0
    assert stage(session, "frontend").hits == 5
    assert stage(session, "plan").misses == 5
    # flipping back re-hits the earlier plans
    session.set_options(shrink_wrap=False)
    compile_once(session)
    assert stage(session, "plan").misses == 0
    assert stage(session, "plan").hits == 5


def test_compile_module_caches_too():
    session = Compiler(O3_SW)
    src = ("m", "func f(a) { return a + 1; } func g(a) { return f(a); }")
    session.compile_module(src)
    session.compile_module(src)
    assert stage(session, "frontend").hits == 2
    assert stage(session, "plan").hits == 2
    assert stage(session, "codegen").hits == 2


def test_stats_json_round_trip(tmp_path):
    session = Compiler(O3_SW)
    compile_once(session)
    compile_once(session, leaf_body="2")
    payload = json.loads(session.stats.to_json())
    assert payload["compiles"] == 2
    assert payload["invalidation_cascades"][0] == 5
    assert payload["invalidation_cascades"][1] >= 1
    assert set(payload["stages"]) == {
        "frontend", "plan", "codegen", "link", "store",
    }
    out = tmp_path / "stats.json"
    session.stats.write_json(out)
    assert json.loads(out.read_text()) == payload


def test_split_chunks_shapes():
    header, chunks = split_chunks(PROGRAM.format(leaf_body="1"))
    assert [c.name for c in chunks] == [
        "leaf", "leaf2", "left", "right", "main"
    ]
    assert [c.arity for c in chunks] == [1, 1, 1, 1, 0]
    assert "var g = 1;" in header
    assert "func" not in header

    # extern declarations stay in the header, comments and char literals
    # do not confuse the scanner
    src = """
    extern func helper(2); // a comment with func inside
    /* func not_a_func() { } */
    func real(a) { return a + 'x'; }
    """
    header, chunks = split_chunks(src)
    assert [c.name for c in chunks] == ["real"]
    assert "extern func helper(2);" in header

    # unterminated comment: refuse to split, caller falls back
    assert split_chunks("func f() { } /* dangling") is None
    assert split_chunks("func broken() {") is None
