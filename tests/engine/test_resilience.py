"""The resilient engine's fault boundary.

A fault in any per-procedure stage must demote that procedure to the
open convention (sound, conservative) instead of aborting the session;
the fault-free path must stay bit-identical to a non-resilient build;
and a transient fault must not poison the session caches.
"""

import pickle

import pytest

from repro import faults
from repro.engine.resilience import (
    CompileReport,
    GuardedCache,
    ResiliencePolicy,
)
from repro.engine.session import Compiler
from repro.pipeline.driver import _reference_compile_program
from repro.pipeline.options import O3_SW

SRC = """
func leaf(x) { return x * 3 + 1; }
func mid(x) { var t; t = leaf(x) + leaf(x + 1); return t; }
func main() {
  var s; var i;
  s = 0;
  i = 0;
  while (i < 5) { s = s + mid(i); i = i + 1; }
  print s;
}
"""


def snap(exe):
    return ([repr(i) for i in exe.instrs], exe.preserved_masks)


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.clear()


def reference():
    return _reference_compile_program(SRC, O3_SW)


def resilient_compile(plan=None, **kwargs):
    session = Compiler(O3_SW, resilient=True, **kwargs).add_sources(SRC)
    if plan is None:
        return session.compile()
    with faults.active(plan):
        return session.compile()


def test_fault_free_resilient_build_is_bit_identical():
    built = resilient_compile()
    assert built.report is not None
    assert not built.report.degradations
    assert built.report.retries == 0
    assert snap(built.executable) == snap(reference().executable)


def test_plan_fault_demotes_to_open_and_stays_sound():
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_PLAN, match="leaf")]
    )
    built = resilient_compile(plan)
    assert plan.fired == [("plan", "leaf", "raise")]
    (d,) = built.report.degradations
    assert d.procedure == "leaf"
    assert d.stage == "plan"
    assert d.fallback == "open"
    assert "InjectedFault" in d.error
    # the demoted program is conservative, never wrong
    assert built.run().output == reference().run().output
    # the degraded procedure really is open: callers treat it as a
    # callee-saved barrier, so its plan is mode "open"
    assert built.plan.plans["leaf"].mode == "open"


def test_codegen_fault_restarts_and_demotes():
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_CODEGEN, match="mid")]
    )
    built = resilient_compile(plan)
    (d,) = built.report.degradations
    assert (d.procedure, d.stage) == ("mid", "codegen")
    assert built.run().output == reference().run().output


def test_coloring_fault_is_caught_by_the_plan_boundary():
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_COLORING, match="main")]
    )
    built = resilient_compile(plan)
    (d,) = built.report.degradations
    assert d.procedure == "main"
    # rung 1 replans open, which still runs coloring; the fault is
    # consumed by then (count=1), so either rung may have succeeded
    assert d.fallback in ("open", "open-noshrinkwrap")
    assert built.run().output == reference().run().output


def test_session_caches_are_not_poisoned_by_a_fault():
    session = Compiler(O3_SW, resilient=True).add_sources(SRC)
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_PLAN, match="leaf")]
    )
    with faults.active(plan):
        faulted = session.compile()
    assert faulted.report.degradations
    # same session, no faults: clean bit-identical artifact
    clean = session.compile()
    assert not clean.report.degradations
    assert snap(clean.executable) == snap(reference().executable)


def test_non_resilient_engine_propagates_the_fault():
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_PLAN, match="leaf")]
    )
    session = Compiler(O3_SW).add_sources(SRC)
    with faults.active(plan):
        with pytest.raises(faults.InjectedFault):
            session.compile()


def test_demotion_exhaustion_reraises_the_original_error():
    # a persistent coloring fault fails every rung (even the reference
    # convention runs the allocator), so the procedure is genuinely
    # uncompilable and the original error must surface
    plan = faults.FaultPlan(specs=[faults.FaultSpec(
        site=faults.SITE_COLORING, match="leaf", count=None,
    )])
    session = Compiler(O3_SW, resilient=True).add_sources(SRC)
    with faults.active(plan):
        with pytest.raises(faults.InjectedFault):
            session.compile()


def test_cache_corruption_is_detected_and_recomputed():
    session = Compiler(O3_SW, resilient=True).add_sources(SRC)
    session.compile()
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_CACHE_PLAN, kind="corrupt",
                         match="leaf"),
        faults.FaultSpec(site=faults.SITE_CACHE_CODEGEN, kind="corrupt",
                         match="mid"),
    ])
    with faults.active(plan):
        rebuilt = session.compile()
    assert rebuilt.report.cache_corruptions == 2
    assert not rebuilt.report.degradations
    assert snap(rebuilt.executable) == snap(reference().executable)
    # per-compile record carries the same counter
    assert session.stats.records[-1].cache_corruptions == 2
    assert session.stats.fault_totals()["cache_corruptions"] == 2


def test_worker_fault_is_retried_inline():
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_WORKER, match="mid")]
    )
    built = resilient_compile(plan, max_workers=4)
    assert built.report.retries == 1
    assert not built.report.degradations
    assert snap(built.executable) == snap(reference().executable)


def test_worker_hang_hits_the_watchdog_and_recovers():
    policy = ResiliencePolicy(task_timeout=0.2, max_retries=2,
                              backoff_seconds=0.0)
    plan = faults.FaultPlan(specs=[faults.FaultSpec(
        site=faults.SITE_WORKER, kind="hang", match="mid",
        hang_seconds=1.5,
    )])
    built = resilient_compile(plan, max_workers=4, policy=policy)
    assert built.report.retries >= 1
    assert not built.report.degradations
    assert snap(built.executable) == snap(reference().executable)


def test_degradations_surface_in_engine_stats():
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_PLAN, match="leaf")]
    )
    session = Compiler(O3_SW, resilient=True).add_sources(SRC)
    with faults.active(plan):
        session.compile()
    record = session.stats.records[-1]
    assert record.degraded == 1
    totals = session.stats.fault_totals()
    assert totals["degraded"] == 1
    assert "faults" in session.stats.to_dict()


def test_guarded_cache_detects_corruption():
    cache = GuardedCache(lambda v: v * 2)
    cache.put("k", 21)
    assert cache.get("k") == 21
    assert cache.corrupt("k")
    assert cache.get("k") is None       # detected, invalidated
    assert cache.corruptions == 1
    assert "k" not in cache
    cache.put("k", 21)                  # retry repopulates cleanly
    assert cache.get("k") == 21
    assert not cache.corrupt("missing")


def test_report_dedups_by_procedure_and_stage():
    report = CompileReport()
    report.record("f", "plan", ValueError("a"), "open")
    report.record("f", "plan", ValueError("b"), "open-noshrinkwrap")
    report.record("f", "codegen", ValueError("c"), "open")
    assert len(report.degradations) == 2
    assert report.degradations[0].fallback == "open-noshrinkwrap"
    assert report.degraded_procedures() == {"f"}
    assert report.to_dict()["retries"] == 0


def test_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(task_timeout=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(backoff_seconds=-0.1)


def test_fault_plan_pickles_with_independent_counters():
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_PLAN, count=1)], seed=7
    )
    copy = pickle.loads(pickle.dumps(plan))
    assert copy.seed == 7
    assert copy.specs == plan.specs
    with faults.active(copy):
        with pytest.raises(faults.InjectedFault):
            faults.check(faults.SITE_PLAN, "x")
        faults.check(faults.SITE_PLAN, "x")   # count consumed on the copy
    with faults.active(plan):
        with pytest.raises(faults.InjectedFault):
            faults.check(faults.SITE_PLAN, "y")   # original still armed


def test_fault_spec_validation():
    with pytest.raises(ValueError):
        faults.FaultSpec(site="nope")
    with pytest.raises(ValueError):
        faults.FaultSpec(site=faults.SITE_PLAN, kind="explode")
