"""Fingerprints must be identical across OS processes.

Every store key is built from :mod:`repro.engine.fingerprint` digests;
if any of them depended on process state (``id()``, ``hash()``
randomisation, dict order), a second process would silently miss every
warm entry.  This spawns real subprocesses and asserts the full digest
stack -- source text, options, lowered IR functions, and final plan
keys -- matches across them, under all six paper configurations.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = """
var g = 2;
array buf[8];
func leaf(a) { return a + g; }
func mid(a, b) {
    if (a > b) { return leaf(a) - b; }
    buf[a] = b;
    return leaf(b) + buf[a];
}
func main() { print mid(3, 1) + mid(1, 3); return 0; }
"""

#: executed verbatim both in this process (via exec, SOURCE preset) and
#: in child processes (via -c, SOURCE read from stdin), so parent and
#: child compute the digests with the same code
_SCRIPT = """
import json, sys
from repro.engine.core import Engine
from repro.engine.fingerprint import (
    function_fingerprint, options_fingerprint, text_digest,
)
from repro.pipeline.options import PAPER_CONFIGS
from repro.store.store import key_digest

if "SOURCE" not in globals():
    SOURCE = sys.stdin.read()
out = {"text": text_digest(SOURCE), "configs": {}}
for config in sorted(PAPER_CONFIGS):
    options = PAPER_CONFIGS[config]
    engine = Engine(options)
    program = engine.compile(SOURCE)
    out["configs"][config] = {
        "options": options_fingerprint(options),
        "functions": {
            name: function_fingerprint(fn)
            for name, fn in program.ir.functions.items()
        },
        "plan_keys": {
            name: key_digest("plan", key)
            for name, key in engine._last_keys.items()
        },
    }
if __name__ == "__child__":
    json.dump(out, sys.stdout, sort_keys=True)
"""


def _digests_in_subprocess() -> dict:
    src_root = Path(__file__).resolve().parents[2] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(src_root)] + [p for p in
                           env.get("PYTHONPATH", "").split(os.pathsep) if p]
    )
    # fresh hash randomisation per process: a hash()-dependent digest
    # cannot pass this test across runs
    env.pop("PYTHONHASHSEED", None)
    script = '__name__ = "__child__"\n' + _SCRIPT
    proc = subprocess.run(
        [sys.executable, "-c", script], input=SRC,
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _digests_in_this_process() -> dict:
    scope = {"SOURCE": SRC}
    exec(compile(_SCRIPT, "<parent>", "exec"), scope)
    # round-trip through JSON so the comparison sees what a child emits
    return json.loads(json.dumps(scope["out"], sort_keys=True))


def test_two_subprocesses_agree():
    a = _digests_in_subprocess()
    b = _digests_in_subprocess()
    assert a == b
    assert set(a["configs"]) == set("ABCDE") | {"base"}
    for payload in a["configs"].values():
        assert set(payload["functions"]) == {"leaf", "mid", "main"}
        assert set(payload["plan_keys"]) == {"leaf", "mid", "main"}


def test_parent_process_matches_subprocess():
    assert _digests_in_this_process() == _digests_in_subprocess()


def test_configs_have_distinct_option_digests():
    here = _digests_in_this_process()
    digests = [p["options"] for p in here["configs"].values()]
    assert len(set(digests)) == len(digests)


def test_convention_changes_every_fingerprint_layer():
    from repro.engine.fingerprint import (
        options_fingerprint, plan_options_fingerprint,
    )
    from repro.interproc.allocator import PlanOptions
    from repro.pipeline.options import PAPER_CONFIGS
    from repro.target.registers import DEFAULT_CONVENTION, split_convention

    alt = split_convention(13, 4)
    base = PAPER_CONFIGS["C"]
    assert options_fingerprint(base) != options_fingerprint(
        base.with_(convention=alt)
    )
    assert plan_options_fingerprint(
        PlanOptions(convention=DEFAULT_CONVENTION)
    ) != plan_options_fingerprint(PlanOptions(convention=alt))
    # the name is presentation only -- it must NOT re-key anything
    renamed = split_convention(13, 4, name="same-but-renamed")
    assert options_fingerprint(
        base.with_(convention=alt)
    ) == options_fingerprint(base.with_(convention=renamed))


def test_two_conventions_never_collide_in_one_engine():
    """One engine, same source, two conventions: the plan keys must
    differ per function, and each compile must reproduce the build a
    fresh engine makes for its convention (no cross-candidate cache
    pollution -- the autotuner relies on this)."""
    from repro.engine.core import Engine
    from repro.pipeline.options import PAPER_CONFIGS
    from repro.target.registers import split_convention
    from repro.tools.warmstart import executable_digest

    alt_options = PAPER_CONFIGS["C"].with_(
        convention=split_convention(4, 4)
    )
    engine = Engine(PAPER_CONFIGS["C"])
    a = engine.compile(SRC)
    keys_a = dict(engine._last_keys)
    b = engine.compile(SRC, alt_options)
    keys_b = dict(engine._last_keys)
    for name in keys_a:
        assert keys_a[name] != keys_b[name]
    assert a.run().output == b.run().output

    fresh_a = Engine(PAPER_CONFIGS["C"]).compile(SRC)
    fresh_b = Engine(alt_options).compile(SRC)
    assert executable_digest(a.executable) == executable_digest(
        fresh_a.executable
    )
    assert executable_digest(b.executable) == executable_digest(
        fresh_b.executable
    )
    # the two conventions really produce different code
    assert executable_digest(a.executable) != executable_digest(
        b.executable
    )
