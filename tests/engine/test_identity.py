"""Warm = cold, bit for bit.

The incremental engine's whole contract is that its caches only skip
work: every warm compile must produce an executable identical -- same
instructions, same data layout, same entry, same contract masks -- to
what the original sequential pipeline produces from scratch.  These
tests drive edit sequences through one session and compare every step
against :func:`repro.pipeline.driver._reference_compile_program`.
"""

from hypothesis import given, settings, strategies as st

from repro import Compiler, PAPER_CONFIGS
from repro.pipeline.driver import _reference_compile_program


def exe_snapshot(exe):
    return (
        [repr(i) for i in exe.instrs],
        exe.entry_pc,
        exe.func_entries,
        exe.data_layout,
        exe.data_init,
        exe.data_size,
        exe.preserved_masks,
        exe.labels,
    )


def assert_exe_identical(warm, cold):
    assert exe_snapshot(warm) == exe_snapshot(cold)


BASE = """
var g = 2;
array buf[6];

func leaf(x) {{
  return x * {leaf_k} + g;
}}

func left(a) {{
  var t;
  t = leaf(a) + leaf(a + {left_k});
  buf[1] = t;
  return t;
}}

func right(a) {{
  var u; var v;
  u = leaf(a - {right_k});
  v = u * u;
  return v + g;
}}

func rec(n) {{
  if (n <= 0) {{ return {rec_k}; }}
  return rec(n - 1) + leaf(n);
}}

func main() {{
  print left({main_k}) + right(3) + rec(2);
}}
"""

KNOBS = ("leaf_k", "left_k", "right_k", "rec_k", "main_k")


def render(knobs):
    return BASE.format(**knobs)


def test_every_config_warm_equals_cold_across_edits():
    for cname, options in PAPER_CONFIGS.items():
        session = Compiler(options)
        knobs = dict.fromkeys(KNOBS, 1)
        for step, knob in enumerate(KNOBS):
            knobs[knob] = step + 3
            src = render(knobs)
            session.add_source(("main", src))
            warm = session.compile()
            cold = _reference_compile_program(("main", src), options)
            assert_exe_identical(warm.executable, cold.executable)
            assert warm.run().output == cold.run().output, cname


def test_parallel_schedule_is_bit_identical():
    # force the thread pool even on single-core runners: the SCC-level
    # schedule must not be able to change output
    src = render(dict.fromkeys(KNOBS, 2))
    for workers in (1, 4):
        session = Compiler(PAPER_CONFIGS["C"], max_workers=workers)
        session.add_source(("main", src))
        warm = session.compile()
        cold = _reference_compile_program(("main", src), PAPER_CONFIGS["C"])
        assert_exe_identical(warm.executable, cold.executable)


def test_option_flips_stay_identical():
    session = Compiler(PAPER_CONFIGS["base"])
    src = render(dict.fromkeys(KNOBS, 1))
    session.add_source(("main", src))
    for cname in ("C", "base", "B", "A", "C", "E", "D", "C"):
        options = PAPER_CONFIGS[cname]
        warm = session.compile(options)
        cold = _reference_compile_program(("main", src), options)
        assert_exe_identical(warm.executable, cold.executable)


def test_multi_module_warm_equals_cold():
    util = """
    var shared = 5;
    func util(a) { return a + shared; }
    """
    for main_k in (1, 7):
        main = f"""
        extern func util(1);
        func main() {{ print util({main_k}); }}
        """
        sources = [("main", main), ("util", util)]
        options = PAPER_CONFIGS["C"]
        session = Compiler(options)
        session.add_sources(sources)
        warm = session.compile()
        cold = _reference_compile_program(sources, options)
        assert_exe_identical(warm.executable, cold.executable)
        session.add_sources(sources)  # replace in place, no-op edit
        assert_exe_identical(session.compile().executable, cold.executable)


@settings(max_examples=20, deadline=None)
@given(
    config=st.sampled_from(sorted(PAPER_CONFIGS)),
    edits=st.lists(
        st.tuples(st.integers(0, len(KNOBS) - 1), st.integers(0, 9)),
        min_size=1,
        max_size=6,
    ),
)
def test_random_edit_sequences_bit_identical(config, edits):
    options = PAPER_CONFIGS[config]
    session = Compiler(options)
    knobs = dict.fromkeys(KNOBS, 1)
    for knob_idx, value in edits:
        knobs[KNOBS[knob_idx]] = value
        src = render(knobs)
        session.add_source(("main", src))
        warm = session.compile()
        cold = _reference_compile_program(("main", src), options)
        assert_exe_identical(warm.executable, cold.executable)
