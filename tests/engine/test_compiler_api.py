"""The `repro.Compiler` session façade and eager options validation."""

import pytest

import repro
from repro import Compiler, CompilerOptions, O2, O3_SW, OptionsError
from repro.pipeline.driver import (
    compile_and_run,
    compile_module,
    compile_program,
    link_modules,
)
from repro.target.registers import RegisterFile

SRC = "func main() { print 41 + 1; }"


def test_compiler_is_exported():
    assert "Compiler" in repro.__all__
    assert repro.Compiler is Compiler
    assert "OptionsError" in repro.__all__


def test_session_matches_one_shot_helpers():
    prog = Compiler(O3_SW).add_source(SRC).compile()
    ref = compile_program(SRC, O3_SW)
    assert [repr(i) for i in prog.executable.instrs] == [
        repr(i) for i in ref.executable.instrs
    ]
    assert Compiler(O3_SW).add_source(SRC).run().output == [42]
    assert compile_and_run(SRC, O3_SW).output == [42]


def test_source_naming_and_replacement():
    c = Compiler(O2)
    c.add_source("func main() { print 1; }")
    c.add_source("func helper(a) { return a; }")
    assert [name for name, _ in c.sources] == ["main", "module1"]
    c.add_source(("main", SRC))  # replaces in place, keeps position
    assert [name for name, _ in c.sources] == ["main", "module1"]
    assert c.sources[0][1] == SRC


def test_separate_compilation_and_link_roundtrip():
    util = ("util", "func util(a) { return a * 2; }")
    main = ("main", "extern func util(1); func main() { print util(21); }")
    session = Compiler(O3_SW)
    mods = [session.compile_module(main), session.compile_module(util)]
    exe = session.link(mods)
    ref = link_modules([compile_module(main, O3_SW), compile_module(util, O3_SW)])
    assert [repr(i) for i in exe.instrs] == [repr(i) for i in ref.instrs]

    from repro.sim import run_program

    assert run_program(exe).output == [42]


def test_compile_without_sources_raises():
    with pytest.raises(OptionsError):
        Compiler(O2).compile()


def test_set_options_validates_and_chains():
    c = Compiler(O2).set_options(shrink_wrap=True)
    assert c.options.shrink_wrap
    with pytest.raises(OptionsError):
        c.set_options(opt_level=7)
    assert c.options.opt_level == 2  # rejected update leaves options alone


@pytest.mark.parametrize(
    "options",
    [
        CompilerOptions(opt_level=5),
        CompilerOptions(opt_level=-1),
        CompilerOptions(opt_level=True),
        CompilerOptions(opt_level=2, register_file=RegisterFile(())),
        CompilerOptions(entry=""),
        CompilerOptions(entry=42),
        CompilerOptions(block_weights={"f": {"b": -1}}),
        CompilerOptions(block_weights={"f": [1, 2]}),
        CompilerOptions(block_weights="nope"),
    ],
)
def test_bad_options_rejected_at_construction(options):
    with pytest.raises(OptionsError):
        Compiler(options)


def test_empty_register_file_fine_below_o2():
    c = Compiler(CompilerOptions(opt_level=1, register_file=RegisterFile(())))
    assert c.add_source(SRC).run().output == [42]


def test_unknown_entry_raises_options_error():
    with pytest.raises(OptionsError):
        Compiler(O2.with_(entry="missing")).add_source(SRC).compile()
