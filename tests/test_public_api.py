"""Public API surface tests."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_docstring_example_works():
    from repro import compile_and_run, O2, O3_SW

    src = "func main() { print 42; }"
    base = compile_and_run(src, O2)
    opt = compile_and_run(src, O3_SW)
    assert base.output == opt.output == [42]


def test_paper_config_names():
    from repro import PAPER_CONFIGS

    assert set(PAPER_CONFIGS) == {"base", "A", "B", "C", "D", "E"}
    assert not PAPER_CONFIGS["base"].shrink_wrap
    assert PAPER_CONFIGS["A"].shrink_wrap and not PAPER_CONFIGS["A"].ipra
    assert PAPER_CONFIGS["B"].ipra and not PAPER_CONFIGS["B"].shrink_wrap
    assert PAPER_CONFIGS["C"].ipra and PAPER_CONFIGS["C"].shrink_wrap
    assert len(PAPER_CONFIGS["D"].register_file) == 7
    assert len(PAPER_CONFIGS["E"].register_file) == 7


def test_subpackages_importable():
    import repro.benchsuite
    import repro.cfg
    import repro.dataflow
    import repro.frontend
    import repro.interproc
    import repro.ir
    import repro.pipeline
    import repro.regalloc
    import repro.shrinkwrap
    import repro.sim
    import repro.target  # noqa: F401


def test_lazy_target_exports():
    from repro.target import CodegenError, Frame, build_frame, generate_function

    assert callable(generate_function)
    assert callable(build_frame)
    assert isinstance(CodegenError, type)
    assert isinstance(Frame, type)
