"""Hand-built CFG helper shared by dataflow/shrink-wrap tests."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cfg.cfg import CFG
from repro.ir.function import BasicBlock, IRFunction
from repro.ir.instructions import CJump, Jump, Ret
from repro.ir.values import Const


def build_graph(edges: List[Tuple[int, int]], n: int) -> CFG:
    """Build a CFG with blocks 0..n-1 and the given edges.

    Blocks with no successors become return blocks; one successor, jumps;
    more, conditional jumps (first two targets).
    """
    fn = IRFunction(name="g", params=[])
    out: Dict[int, List[int]] = {}
    for a, b in edges:
        out.setdefault(a, []).append(b)
    for i in range(n):
        succs = out.get(i, [])
        if not succs:
            term = Ret(None)
        elif len(succs) == 1:
            term = Jump(f"b{succs[0]}")
        else:
            term = CJump(Const(1), f"b{succs[0]}", f"b{succs[1]}")
        fn.add_block(BasicBlock(f"b{i}", [], term))
    cfg = CFG(fn=fn)
    cfg.blocks = list(fn.blocks)
    cfg.index = {b.name: i for i, b in enumerate(cfg.blocks)}
    cfg.succs = [[] for _ in range(n)]
    cfg.preds = [[] for _ in range(n)]
    for a, b in edges:
        cfg.succs[a].append(b)
        cfg.preds[b].append(a)
    return cfg
