"""Natural-loop detection and weights."""

from helpers import lower

from repro.cfg import build_cfg, find_loops, WEIGHT_BASE


def loops_of(src, name="f"):
    cfg = build_cfg(lower(src).functions[name])
    return cfg, find_loops(cfg)


def test_no_loops_in_straight_line_code():
    _, info = loops_of("func f(x) { if (x) { return 1; } return 0; }")
    assert info.loops == []
    assert all(d == 0 for d in info.depth)


def test_single_while_loop_detected():
    cfg, info = loops_of("func f(n) { while (n > 0) { n = n - 1; } return n; }")
    assert len(info.loops) == 1
    loop = info.loops[0]
    assert loop.header in loop.body
    assert len(loop.body) >= 2


def test_loop_depth_and_weight():
    cfg, info = loops_of(
        """
        func f(n) {
            var s = 0;
            for (var i = 0; i < n; i = i + 1) {
                for (var j = 0; j < n; j = j + 1) {
                    s = s + 1;
                }
            }
            return s;
        }
        """
    )
    depths = sorted(set(info.depth))
    assert depths == [0, 1, 2]
    deepest = max(range(cfg.num_blocks), key=lambda b: info.depth[b])
    assert info.weight(deepest) == WEIGHT_BASE ** 2


def test_nested_loops_share_outer_body():
    _, info = loops_of(
        """
        func f(n) {
            while (n > 0) {
                var m = n;
                while (m > 0) { m = m - 1; }
                n = n - 1;
            }
            return 0;
        }
        """
    )
    assert len(info.loops) == 2
    inner = min(info.loops, key=lambda l: len(l.body))
    outer = max(info.loops, key=lambda l: len(l.body))
    assert inner.body < outer.body


def test_weight_depth_cap():
    src_body = "s = s + 1;"
    for _ in range(8):
        src_body = f"while (s < 100) {{ {src_body} s = s + 1; }}"
    cfg, info = loops_of(f"func f() {{ var s = 0; {src_body} return s; }}")
    assert max(info.weight(b) for b in range(cfg.num_blocks)) <= WEIGHT_BASE ** 6


def test_self_loop():
    # while(1){} is a one-block self loop after simplification
    cfg, info = loops_of(
        "func f(n) { while (n == n) { n = n + 0; } return n; }"
    )
    assert len(info.loops) >= 1
