"""Dominator tests on hand-built graphs."""

from repro.cfg.cfg import CFG
from repro.cfg.dominance import (
    dominates,
    dominator_tree_children,
    immediate_dominators,
)
from repro.ir.function import BasicBlock, IRFunction
from repro.ir.instructions import CJump, Jump, Ret
from repro.ir.values import Const


def build(edges, n):
    """Build a CFG with blocks b0..b{n-1} and the given edge list."""
    fn = IRFunction(name="g", params=[])
    out = {}
    for a, b in edges:
        out.setdefault(a, []).append(b)
    for i in range(n):
        succs = out.get(i, [])
        if not succs:
            term = Ret(None)
        elif len(succs) == 1:
            term = Jump(f"b{succs[0]}")
        else:
            term = CJump(Const(1), f"b{succs[0]}", f"b{succs[1]}")
        fn.add_block(BasicBlock(f"b{i}", [], term))
    cfg = CFG(fn=fn)
    cfg.blocks = list(fn.blocks)
    cfg.index = {b.name: i for i, b in enumerate(cfg.blocks)}
    cfg.succs = [[] for _ in range(n)]
    cfg.preds = [[] for _ in range(n)]
    for a, b in edges:
        cfg.succs[a].append(b)
        cfg.preds[b].append(a)
    return cfg


def test_diamond_dominators():
    #     0
    #    / \
    #   1   2
    #    \ /
    #     3
    cfg = build([(0, 1), (0, 2), (1, 3), (2, 3)], 4)
    idom = immediate_dominators(cfg)
    assert idom[0] == 0
    assert idom[1] == 0
    assert idom[2] == 0
    assert idom[3] == 0  # join is dominated by the fork, not a branch


def test_chain_dominators():
    cfg = build([(0, 1), (1, 2), (2, 3)], 4)
    idom = immediate_dominators(cfg)
    assert idom == [0, 0, 1, 2]


def test_loop_header_dominates_body():
    # 0 -> 1 (header) -> 2 (body) -> 1; 1 -> 3 (exit)
    cfg = build([(0, 1), (1, 2), (2, 1), (1, 3)], 4)
    idom = immediate_dominators(cfg)
    assert idom[2] == 1
    assert idom[3] == 1
    assert dominates(idom, 1, 2)
    assert not dominates(idom, 2, 1)


def test_dominates_is_reflexive():
    cfg = build([(0, 1)], 2)
    idom = immediate_dominators(cfg)
    assert dominates(idom, 1, 1)
    assert dominates(idom, 0, 0)


def test_classic_cooper_example():
    # The CHK paper's example graph (5 nodes, irreducible-ish joins)
    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (2, 4)]
    cfg = build(edges, 5)
    idom = immediate_dominators(cfg)
    assert idom[3] == 0
    assert idom[4] == 0


def test_dominator_tree_children():
    cfg = build([(0, 1), (1, 2), (1, 3)], 4)
    idom = immediate_dominators(cfg)
    children = dominator_tree_children(idom)
    assert children[0] == [1]
    assert sorted(children[1]) == [2, 3]
