"""CFG construction tests."""

from helpers import lower

from repro.cfg import build_cfg


def cfg_of(src, name="f"):
    return build_cfg(lower(src).functions[name])


def test_straight_line_single_block_after_build():
    cfg = cfg_of("func f() { var a = 1; var b = 2; }")
    assert cfg.num_blocks >= 1
    assert cfg.entry == 0
    assert cfg.preds[0] == []


def test_if_produces_diamond_edges():
    cfg = cfg_of("func f(x) { var r; if (x) { r = 1; } else { r = 2; } return r; }")
    entry_succs = cfg.succs[cfg.entry]
    assert len(entry_succs) == 2
    # the join block has two predecessors
    join = [b for b in range(cfg.num_blocks) if len(cfg.preds[b]) == 2]
    assert join


def test_loop_produces_back_edge():
    cfg = cfg_of("func f(n) { while (n > 0) { n = n - 1; } return n; }")
    # some block must appear in its own reachable successors chain
    rpo = cfg.reverse_postorder()
    pos = {b: i for i, b in enumerate(rpo)}
    back_edges = [
        (a, b) for a in range(cfg.num_blocks) for b in cfg.succs[a]
        if pos[b] <= pos[a]
    ]
    assert back_edges


def test_exits_are_return_blocks():
    cfg = cfg_of("func f(x) { if (x) { return 1; } return 2; }")
    assert len(cfg.exits()) == 2


def test_reverse_postorder_starts_at_entry_and_covers_all():
    cfg = cfg_of(
        """
        func f(x) {
            var r = 0;
            if (x > 0) { r = 1; } else { r = 2; }
            while (x > 0) { x = x - 1; }
            return r;
        }
        """
    )
    rpo = cfg.reverse_postorder()
    assert rpo[0] == cfg.entry
    assert sorted(rpo) == list(range(cfg.num_blocks))


def test_rpo_predecessor_before_successor_in_acyclic_graph():
    cfg = cfg_of("func f(x) { var r; if (x) { r = 1; } else { r = 2; } return r; }")
    pos = {b: i for i, b in enumerate(cfg.reverse_postorder())}
    for a in range(cfg.num_blocks):
        for b in cfg.succs[a]:
            if pos[b] > pos[a]:
                continue
            # only back edges may violate ordering; this graph has none
            raise AssertionError("acyclic graph had a back edge in RPO")


def test_preds_and_succs_are_consistent():
    cfg = cfg_of(
        "func f(n) { var s = 0; while (n > 0) { s = s + n; n = n - 1; } return s; }"
    )
    for a in range(cfg.num_blocks):
        for b in cfg.succs[a]:
            assert a in cfg.preds[b]
        for p in cfg.preds[a]:
            assert a in cfg.succs[p]
