"""Cost-model unit tests for the per-register priority function."""

from repro.ir.instructions import Call
from repro.ir.values import Const, VKind, VReg
from repro.regalloc.context import intra_env
from repro.regalloc.live_ranges import LiveRange, RangeCall
from repro.regalloc.priority import (
    LOAD_COST,
    PriorityModel,
    SAVE_RESTORE_COST,
    STORE_COST,
)
from repro.target.registers import FULL_FILE, reg


def make_model(**kwargs):
    return PriorityModel(env=intra_env(FULL_FILE), **kwargs)


def make_range(uses=0, defs=0, blocks=(0,), kind=VKind.LOCAL, calls=()):
    lr = LiveRange(vreg=VReg("x", kind))
    lr.use_weight = uses
    lr.def_weight = defs
    lr.blocks = set(blocks)
    lr.calls = list(calls)
    return lr


def test_benefit_counts_loads_and_stores():
    model = make_model()
    lr = make_range(uses=10, defs=4)
    assert model.benefit(lr) == 10 * LOAD_COST + 4 * STORE_COST


def test_param_benefit_includes_entry_store():
    model = make_model()
    lr = make_range(uses=5, kind=VKind.PARAM)
    assert model.benefit(lr) == 5 * LOAD_COST + STORE_COST


def test_global_benefit_subtracts_cache_traffic():
    model = make_model()
    lr = make_range(uses=5, kind=VKind.GLOBAL)
    assert model.benefit(lr) == 5 * LOAD_COST - (LOAD_COST + STORE_COST)


def test_entry_weight_scales_per_invocation_terms():
    model = make_model(entry_weight=100)
    lr = make_range(uses=5, kind=VKind.PARAM)
    assert model.benefit(lr) == 5 * LOAD_COST + 100 * STORE_COST


def test_clobber_cost_per_spanned_call():
    call = Call("g", [Const(1)])
    rc = RangeCall(instr=call, block=1, weight=10)
    model = make_model()
    model.call_clobbers[id(call)] = 1 << reg("t0").index
    lr = make_range(uses=3, calls=[rc])
    assert model.clobber_cost(lr, reg("t0")) == SAVE_RESTORE_COST * 10
    assert model.clobber_cost(lr, reg("s0")) == 0


def test_priority_normalised_by_span():
    model = make_model()
    small = make_range(uses=6, blocks=(0,))
    large = make_range(uses=6, blocks=(0, 1, 2))
    assert model.priority(small, reg("t0"), 0) == 6.0
    assert model.priority(large, reg("t0"), 0) == 2.0


def test_first_use_cost_lowers_priority():
    model = make_model()
    lr = make_range(uses=6, blocks=(0,))
    free = model.priority(lr, reg("s0"), 0)
    charged = model.priority(lr, reg("s0"), SAVE_RESTORE_COST)
    assert charged == free - SAVE_RESTORE_COST


def test_param_bonus_applies_to_specific_register():
    model = make_model()
    lr = make_range(uses=2)
    model.param_bonus[(lr.vreg, reg("a0").index)] = 5
    assert model.bonus(lr, reg("a0")) == 5
    assert model.bonus(lr, reg("a1")) == 0
    assert model.priority(lr, reg("a0"), 0) > model.priority(lr, reg("a1"), 0)


def test_order_key_uses_best_case_register():
    call = Call("g", [])
    rc = RangeCall(instr=call, block=0, weight=1)
    model = make_model()
    # the call clobbers every caller-saved register but no callee-saved
    from repro.target.registers import CALLER_SAVED_MASK

    model.call_clobbers[id(call)] = CALLER_SAVED_MASK
    lr = make_range(uses=4, calls=[rc])
    # best case: a callee-saved register with no clobber cost
    assert model.order_key(lr) == 4.0
