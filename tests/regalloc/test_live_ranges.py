"""Live-range construction and interference tests."""

from helpers import lower

from repro.cfg import build_cfg, find_loops
from repro.dataflow import compute_liveness
from repro.regalloc import allocation_candidates, build_ranges


def ranges_of(src, name="f"):
    fn = lower(src).functions[name]
    cfg = build_cfg(fn)
    loops = find_loops(cfg)
    candidates = allocation_candidates(fn)
    lv = compute_liveness(cfg)
    info = build_ranges(cfg, lv, loops, candidates)
    return fn, cfg, info


def lr(info, name):
    for v, r in info.ranges.items():
        if v.name == name:
            return r
    raise KeyError(name)


def interferes(info, a, b):
    for v in info.adjacency.get(next(
        k for k in info.ranges if k.name == a
    ), set()):
        if v.name == b:
            return True
    return False


def test_loop_variable_weighted_higher():
    _, _, info = ranges_of(
        """
        func f(n) {
            var once = n + 1;
            var acc = 0;
            for (var i = 0; i < n; i = i + 1) { acc = acc + i; }
            return acc + once;
        }
        """
    )
    assert lr(info, "acc").use_weight > lr(info, "once").use_weight
    assert lr(info, "i").use_weight > lr(info, "once").use_weight


def test_simultaneously_live_values_interfere():
    _, _, info = ranges_of(
        "func f(a, b) { var x = a + 1; var y = b + 2; return x + y; }"
    )
    assert interferes(info, "x", "y")
    assert interferes(info, "a", "b")


def test_sequential_values_do_not_interfere():
    _, _, info = ranges_of(
        "func f(a) { var x = a + 1; var y = x + 2; return y; }"
    )
    # x dies producing y (copy-free chain): x and y never coexist...
    # y is defined while x is live (x is an operand), but the Bin def adds
    # an edge only if x is live *after*; here x dies at that instruction.
    assert not interferes(info, "x", "y")


def test_copy_related_values_do_not_interfere():
    _, _, info = ranges_of("func f(a) { var x = a; return x + a; }")
    # x = a; both hold the same value: the Chaitin move exception applies
    assert not interferes(info, "x", "a")


def test_call_sites_recorded_for_spanning_ranges():
    _, _, info = ranges_of(
        """
        func g(x) { return x; }
        func f(a) {
            var keep = a * 2;
            g(a);
            g(a + 1);
            return keep;
        }
        """
    )
    assert len(lr(info, "keep").calls) == 2
    assert len(info.all_calls) == 2


def test_range_blocks_cover_live_region():
    _, cfg, info = ranges_of(
        """
        func f(n) {
            var s = 0;
            while (n > 0) { s = s + n; n = n - 1; }
            return s;
        }
        """
    )
    s_range = lr(info, "s")
    # s is live from entry to exit: its footprint covers most blocks
    assert len(s_range.blocks) >= 3


def test_call_result_does_not_span_its_own_call():
    _, _, info = ranges_of(
        "func g() { return 1; } func f() { var r = g(); return r; }"
    )
    assert lr(info, "r").calls == []


def test_span_normalisation():
    _, _, info = ranges_of("func f(a) { return a + 1; }")
    assert lr(info, "a").span >= 1
