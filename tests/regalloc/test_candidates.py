"""Candidate-selection tests."""

from helpers import lower_opt

from repro.ir.values import VKind
from repro.regalloc import allocation_candidates, candidate_globals


SRC = """
var g1 = 0;
var g2 = 0;
func leaf(x) { g1 = g1 + x; return g1; }
func caller(x) { g2 = g2 + leaf(x); return g2; }
func indirect(p) { g1 = g1 + p(); return g1; }
func cb() { return 1; }
func main() { print caller(1) + indirect(&cb); }
"""


def fns():
    return lower_opt(SRC).functions


def test_call_free_function_gets_global_candidates():
    cands = allocation_candidates(fns()["leaf"])
    assert any(v.name == "g1" for v in cands)


def test_calling_function_excludes_globals_by_default():
    cands = allocation_candidates(fns()["caller"])
    assert not any(v.kind is VKind.GLOBAL for v in cands)
    # but locals/params/temps stay in
    assert any(v.kind is VKind.PARAM for v in cands)


def test_allowed_globals_opt_in():
    cands = allocation_candidates(fns()["caller"], allowed_globals={"g2"})
    names = {v.name for v in cands if v.kind is VKind.GLOBAL}
    assert names == {"g2"}


def test_candidate_globals_helper():
    cands = allocation_candidates(fns()["leaf"])
    globs = candidate_globals(cands)
    assert {v.name for v in globs} == {"g1"}
    assert all(v.kind is VKind.GLOBAL for v in globs)


def test_indirect_caller_respects_allowed_set():
    # even with an allowed set, the function still lists only those named
    cands = allocation_candidates(fns()["indirect"], allowed_globals=set())
    assert not any(v.kind is VKind.GLOBAL for v in cands)
