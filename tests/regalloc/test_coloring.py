"""Priority-based coloring behaviour tests."""

from helpers import lower_opt

from repro.regalloc import allocate_function, AllocEnv, intra_env
from repro.regalloc.coloring import ColoringOptions
from repro.target.registers import (
    FULL_FILE,
    RegisterFile,
    caller_only_file,
    callee_only_file,
)


def allocate(src, name="f", env=None, **kwargs):
    mod = lower_opt(src)
    fn = mod.functions[name]
    env = env or intra_env(FULL_FILE, {n: len(f.params) for n, f in mod.functions.items()})
    return allocate_function(fn, env, **kwargs)


def reg_of(alloc, name):
    for v, r in alloc.assignment.items():
        if v.name == name:
            return r
    return None


def test_leaf_variables_get_caller_saved_registers():
    # in a leaf, nothing spans a call, so caller-saved registers are free
    alloc = allocate("func f(a, b) { var x = a * b; return x + a; }")
    assert alloc.assignment, "leaf values should be register-resident"
    assert all(r.caller_saved for r in alloc.assignment.values())
    assert reg_of(alloc, "a") is not None
    assert reg_of(alloc, "b") is not None


def test_value_across_call_prefers_callee_saved_intra():
    alloc = allocate(
        """
        func g(x) { return x; }
        func f(a) {
            var keep = a * 3;
            g(1);
            g(2);
            g(3);
            return keep;
        }
        """
    )
    # `keep` may have been copy-propagated into a temp; find the range
    # spanning all three calls and check its register class
    spanning = [
        (v, len(lr.calls)) for v, lr in alloc.ranges.ranges.items()
        if len(lr.calls) == 3
    ]
    assert spanning, "some value must span the three calls"
    for v, _ in spanning:
        r = alloc.assignment.get(v)
        assert r is not None and r.callee_saved


def test_value_across_single_call_may_choose_either():
    alloc = allocate(
        """
        func g(x) { return x; }
        func f(a) { var keep = a * 3; g(1); return keep; }
        """
    )
    spanning = [v for v, lr in alloc.ranges.ranges.items() if lr.calls]
    assert any(v in alloc.assignment for v in spanning)


def test_no_registers_means_all_memory():
    alloc = allocate(
        "func f(a, b) { return a + b; }",
        env=intra_env(RegisterFile(())),
    )
    assert alloc.assignment == {}
    assert alloc.own_assigned_mask == 0


def test_interfering_values_get_distinct_registers():
    alloc = allocate(
        "func f(a, b, c) { return a + b + c + a * b * c; }"
    )
    regs = [reg_of(alloc, n) for n in ("a", "b", "c")]
    assert None not in regs
    assert len({r.index for r in regs}) == 3


def test_pressure_spills_lowest_priority():
    # more simultaneously-live values than registers in a 2-register file
    src = """
    func f(a, b, c, d) {
        var e = a + b;
        var g = c + d;
        return a + b + c + d + e + g;
    }
    """
    alloc = allocate(src, env=intra_env(caller_only_file(2)))
    used = {r.index for r in alloc.assignment.values()}
    assert len(used) <= 2
    # the four parameters interfere pairwise: at most two get registers
    assigned_params = [n for n in "abcd" if reg_of(alloc, n) is not None]
    assert len(assigned_params) <= 2


def test_param_register_preference_default_convention():
    # a parameter that stays call-free should sit in its arrival register
    alloc = allocate("func f(a, b) { return a - b; }")
    assert reg_of(alloc, "a").name == "a0"
    assert reg_of(alloc, "b").name == "a1"


def test_callee_only_file_still_allocates():
    alloc = allocate(
        "func f(a, b) { return a * b; }",
        env=intra_env(callee_only_file(7)),
    )
    assert reg_of(alloc, "a") is not None
    assert reg_of(alloc, "a").callee_saved


def test_dead_values_not_allocated():
    alloc = allocate("func f(a) { return 1; }")
    assert reg_of(alloc, "a") is None


def test_globals_allocated_only_in_call_free_functions():
    src = """
    var g1;
    func leaf() { g1 = g1 + 1; g1 = g1 * 2; return g1; }
    func caller() { leaf(); return g1; }
    """
    mod = lower_opt(src)
    env = intra_env(FULL_FILE, {"leaf": 0, "caller": 0})
    leaf_alloc = allocate_function(mod.functions["leaf"], env)
    caller_alloc = allocate_function(mod.functions["caller"], env)
    assert any(v.name == "g1" for v in leaf_alloc.candidates)
    assert not any(v.name == "g1" for v in caller_alloc.candidates)


def test_subtree_preference_tie_break():
    # two equal-priority choices: with a subtree mask the used register wins
    src = "func f(a) { return a + 1; }"
    mod = lower_opt(src)
    env = AllocEnv(register_file=FULL_FILE, ipra=True, proc_is_open=False)
    a_pref = allocate_function(
        mod.functions["f"], env,
        ColoringOptions(prefer_subtree_reg=True),
        subtree_used_mask=1 << 10,  # t1
    )
    # `a` has an incoming-register preference under... closed mode has no
    # incoming preference, so the subtree register should win the tie
    assert reg_of(a_pref, "a").index == 10


def test_own_assigned_mask_matches_assignment():
    alloc = allocate("func f(a, b) { return a + b; }")
    mask = 0
    for r in alloc.assignment.values():
        mask |= 1 << r.index
    assert mask == alloc.own_assigned_mask
