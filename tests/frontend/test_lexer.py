"""Lexer unit tests."""

import pytest

from repro.frontend import LexError, TokKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


def test_empty_source_yields_only_eof():
    toks = tokenize("")
    assert len(toks) == 1
    assert toks[0].kind is TokKind.EOF


def test_integer_literal_value():
    tok = tokenize("12345")[0]
    assert tok.kind is TokKind.INT
    assert tok.value == 12345


def test_identifier_and_keyword_distinction():
    toks = tokenize("var variable whileish while")
    assert toks[0].kind is TokKind.KEYWORD
    assert toks[1].kind is TokKind.IDENT
    assert toks[2].kind is TokKind.IDENT  # prefix of keyword is an ident
    assert toks[3].kind is TokKind.KEYWORD


def test_underscore_identifiers():
    toks = tokenize("_x x_1 __foo__")
    assert all(t.kind is TokKind.IDENT for t in toks[:-1])


def test_two_char_operators_lex_greedily():
    assert texts("a<=b") == ["a", "<=", "b"]
    assert texts("a< =b") == ["a", "<", "=", "b"]
    assert texts("x<<2>>1") == ["x", "<<", "2", ">>", "1"]
    assert texts("a&&b||!c") == ["a", "&&", "b", "||", "!", "c"]
    assert texts("a != b == c") == ["a", "!=", "b", "==", "c"]


def test_char_literals():
    toks = tokenize("'a' '0' 'Z'")
    assert [t.value for t in toks[:-1]] == [ord("a"), ord("0"), ord("Z")]


def test_char_escapes():
    toks = tokenize(r"'\n' '\t' '\0' '\\' '\''")
    assert [t.value for t in toks[:-1]] == [10, 9, 0, 92, 39]


def test_unknown_escape_rejected():
    with pytest.raises(LexError):
        tokenize(r"'\q'")


def test_unterminated_char_literal_rejected():
    with pytest.raises(LexError):
        tokenize("'ab'")
    with pytest.raises(LexError):
        tokenize("'")


def test_line_comments_are_skipped():
    assert texts("a // comment here\nb") == ["a", "b"]


def test_block_comments_are_skipped():
    assert texts("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment_rejected():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_line_and_column_tracking():
    toks = tokenize("ab\n  cd")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_column_tracking_after_block_comment():
    toks = tokenize("/* x */ y")
    assert toks[0].text == "y"
    assert toks[0].line == 1


def test_unexpected_character_rejected():
    with pytest.raises(LexError):
        tokenize("a $ b")


def test_error_carries_location():
    try:
        tokenize("ok\n  @")
    except LexError as e:
        assert e.line == 2
    else:  # pragma: no cover
        raise AssertionError("expected LexError")


def test_all_punctuation_tokens():
    src = "+ - * / % < > = ! & | ^ ~ ( ) { } [ ] , ;"
    toks = tokenize(src)[:-1]
    assert len(toks) == len(src.split())
    assert all(t.kind is TokKind.PUNCT for t in toks)
