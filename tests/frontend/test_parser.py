"""Parser unit tests."""

import pytest

from repro.frontend import ParseError, parse
from repro.frontend import ast_nodes as ast


def parse_fn(body: str) -> ast.FuncDecl:
    mod = parse(f"func f() {{ {body} }}")
    return mod.functions[0]


def first_stmt(body: str) -> ast.Stmt:
    return parse_fn(body).body.stmts[0]


def expr_of(src: str) -> ast.Expr:
    stmt = first_stmt(f"x = {src};")
    assert isinstance(stmt, ast.Assign)
    return stmt.value


def test_module_level_declarations():
    mod = parse(
        """
        var g = 3;
        var h = -4;
        array a[10];
        extern func e(2);
        func f(x, y) { return x; }
        """
    )
    assert mod.globals[0].init == 3
    assert mod.globals[1].init == -4
    assert mod.arrays[0].size == 10
    assert mod.externs[0].arity == 2
    assert mod.functions[0].params == ["x", "y"]


def test_precedence_multiplication_over_addition():
    e = expr_of("1 + 2 * 3")
    assert isinstance(e, ast.BinOp) and e.op == "+"
    assert isinstance(e.right, ast.BinOp) and e.right.op == "*"


def test_precedence_comparison_over_logic():
    e = expr_of("a < b && c > d")
    assert e.op == "&&"
    assert e.left.op == "<"
    assert e.right.op == ">"


def test_left_associativity():
    e = expr_of("10 - 4 - 3")
    assert e.op == "-"
    assert isinstance(e.left, ast.BinOp) and e.left.op == "-"
    assert isinstance(e.right, ast.IntLit) and e.right.value == 3


def test_or_binds_weaker_than_and():
    e = expr_of("a || b && c")
    assert e.op == "||"
    assert e.right.op == "&&"


def test_shift_and_bitwise_precedence():
    e = expr_of("a | b ^ c & d << 2")
    assert e.op == "|"
    assert e.right.op == "^"
    assert e.right.right.op == "&"
    assert e.right.right.right.op == "<<"


def test_unary_operators_nest():
    e = expr_of("-!~x")
    assert isinstance(e, ast.UnOp) and e.op == "-"
    assert e.operand.op == "!"
    assert e.operand.operand.op == "~"


def test_parenthesised_expression():
    e = expr_of("(1 + 2) * 3")
    assert e.op == "*"
    assert e.left.op == "+"


def test_call_with_arguments():
    e = expr_of("g(1, x, h(2))")
    assert isinstance(e, ast.Call)
    assert len(e.args) == 3
    assert isinstance(e.args[2], ast.Call)


def test_function_reference():
    e = expr_of("&g")
    assert isinstance(e, ast.FuncRef) and e.name == "g"


def test_array_indexing_expression():
    e = expr_of("a[i + 1]")
    assert isinstance(e, ast.Index)
    assert isinstance(e.index, ast.BinOp)


def test_array_assignment_statement():
    stmt = first_stmt("a[i] = 5;")
    assert isinstance(stmt, ast.ArrayAssign)


def test_bare_index_expression_statement():
    stmt = first_stmt("a[i];")
    assert isinstance(stmt, ast.ExprStmt)
    assert isinstance(stmt.expr, ast.Index)


def test_if_else_chain():
    stmt = first_stmt("if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; }")
    assert isinstance(stmt, ast.If)
    assert isinstance(stmt.orelse, ast.If)
    assert isinstance(stmt.orelse.orelse, ast.Block)


def test_while_and_nested_blocks():
    stmt = first_stmt("while (a < 10) { a = a + 1; b = b * 2; }")
    assert isinstance(stmt, ast.While)
    assert len(stmt.body.stmts) == 2


def test_for_with_var_init():
    stmt = first_stmt("for (var i = 0; i < 10; i = i + 1) { x = i; }")
    assert isinstance(stmt, ast.For)
    assert isinstance(stmt.init, ast.LocalVar)
    assert isinstance(stmt.step, ast.Assign)


def test_for_with_empty_sections():
    stmt = first_stmt("for (;;) { break; }")
    assert isinstance(stmt, ast.For)
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_return_with_and_without_value():
    fn = parse_fn("return 1; return;")
    assert isinstance(fn.body.stmts[0], ast.Return)
    assert fn.body.stmts[0].value is not None
    assert fn.body.stmts[1].value is None


def test_local_array_statement():
    stmt = first_stmt("array t[8];")
    assert isinstance(stmt, ast.LocalArray) and stmt.size == 8


@pytest.mark.parametrize(
    "bad",
    [
        "func f( {",
        "func f() { x = ; }",
        "func f() { if a { } }",
        "func f() { return 1 }",
        "func f() { a[1 = 2; }",
        "var x",
        "array a[];",
        "func f() { var 1x; }",
        "notadecl;",
        "func f() { x = (1 + ; }",
    ],
)
def test_syntax_errors_raise(bad):
    with pytest.raises(ParseError):
        parse(bad)


def test_unterminated_block_is_rejected():
    with pytest.raises(ParseError):
        parse("func f() { x = 1;")
