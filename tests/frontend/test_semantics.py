"""Semantic analysis unit tests."""

import pytest

from repro.frontend import SemanticError, analyze, parse


def check(src: str):
    return analyze(parse(src))


def test_module_info_contents():
    info = check(
        """
        var g = 7;
        array a[4];
        extern func e(1);
        func f(x) { return x + g; }
        func main() { print f(1); }
        """
    )
    assert info.globals == {"g": 7}
    assert info.arrays == {"a": 4}
    assert info.externs == {"e": 1}
    assert info.functions["f"].arity == 1
    assert "f" in info.functions["main"].direct_callees


def test_locals_recorded_in_order():
    info = check("func f() { var a; var b = 1; var c; }")
    assert info.functions["f"].locals == ["a", "b", "c"]


def test_local_array_recorded():
    info = check("func f() { array t[6]; t[0] = 1; }")
    assert info.functions["f"].local_arrays == {"t": 6}


def test_indirect_call_marked():
    info = check(
        """
        func g(x) { return x; }
        func f() { var p = &g; return p(3); }
        """
    )
    call_info = info.functions["f"]
    assert call_info.has_indirect_call
    assert "g" in info.address_taken


def test_direct_call_not_address_taken():
    info = check("func g() {} func f() { g(); }")
    assert info.address_taken == set()


@pytest.mark.parametrize(
    "bad,fragment",
    [
        ("func f() { return x; }", "undefined variable"),
        ("func f() { x = 1; }", "undefined variable"),
        ("func f() { return a[0]; }", "undefined array"),
        ("func f() { a[0] = 1; }", "undefined array"),
        ("func f() { return g(); }", "undefined function"),
        ("func g(x) {} func f() { g(); }", "expects 1 argument"),
        ("func g() {} func f() { g(1, 2); }", "expects 0 argument"),
        ("func f() { var x; var x; }", "duplicate local"),
        ("func f(x, x) {}", "duplicate parameter"),
        ("var g = 1; var g = 2;", "duplicate global"),
        ("array a[3]; array a[4];", "duplicate global"),
        ("func f() {} func f() {}", "duplicate function"),
        ("func f() { break; }", "break outside"),
        ("func f() { continue; }", "continue outside"),
        ("array a[3]; func f() { a = 1; }", "cannot assign to array"),
        ("array a[3]; func f() { return a; }", "used without index"),
        ("func g() {} func f() { return g; }", "used as a value"),
        ("func f() { var p = &nosuch; }", "not a function"),
        ("array a[0];", "positive size"),
        ("func f() { array t[0]; }", "positive size"),
        ("var g = 1; func g() {}", "duplicate function"),
    ],
)
def test_semantic_errors(bad, fragment):
    with pytest.raises(SemanticError) as exc:
        check(bad)
    assert fragment in str(exc.value)


def test_local_shadows_global():
    info = check("var x = 1; func f() { var x = 2; return x; }")
    assert "x" in info.functions["f"].locals


def test_break_inside_nested_loop_ok():
    check("func f() { while (1) { for (;;) { break; } break; } }")


def test_param_shadows_nothing_and_counts():
    info = check("func f(a, b, c, d, e, g) { return a+b+c+d+e+g; }")
    assert info.functions["f"].arity == 6


def test_call_through_parameter_is_indirect():
    info = check("func g() {} func f(p) { p(); }")
    assert info.functions["f"].has_indirect_call


def test_extern_call_arity_checked():
    with pytest.raises(SemanticError):
        check("extern func e(2); func f() { e(1); }")


def test_extern_address_can_be_taken():
    info = check("extern func e(0); func f() { var p = &e; p(); }")
    assert "e" in info.address_taken
