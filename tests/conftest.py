"""Pytest configuration: make ``helpers`` importable and define fixtures.

Anything shared with ``benchmarks/`` (the ``once`` benchmark wrapper,
the session-wide compile cache) is defined once in ``helpers.py``; both
conftests only add it to ``sys.path``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))


@pytest.fixture
def fib_source() -> str:
    return """
    func fib(n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    func main() { print fib(12); }
    """
