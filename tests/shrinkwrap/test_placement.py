"""Shrink-wrap placement tests (paper Section 5)."""

from helpers import build_graph
from helpers import check_placement

from repro.cfg.loops import find_loops
from repro.shrinkwrap import entry_exit_placement, shrink_wrap

R = 16  # register index under test


def wrap(edges, n, app, smear=True):
    cfg = build_graph(edges, n)
    loops = find_loops(cfg)
    result = shrink_wrap(cfg, loops, {R: set(app)}, smear_loops=smear)
    placement = result.placements[R]
    check_placement(cfg, set(app), placement)
    return cfg, result, placement


def test_use_spanning_whole_procedure_saves_at_entry():
    cfg, _, p = wrap([(0, 1), (1, 2)], 3, app={0, 1, 2})
    assert p.saves == {0}
    assert p.restores == {2}
    assert p.save_at_entry


def test_cold_branch_wraps_around_branch_only():
    # 0 -> 1 (cold, uses R) -> 3 ; 0 -> 2 -> 3(exit)
    cfg, _, p = wrap([(0, 1), (0, 2), (1, 3), (2, 3)], 4, app={1})
    assert p.saves == {1}
    assert p.restores == {1}
    assert not p.save_at_entry


def test_two_disjoint_regions_get_two_wraps():
    # 0 -> 1(use) -> 2 -> 3(use) -> 4(exit); 0 -> 4 makes regions cold
    edges = [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]
    cfg, _, p = wrap(edges, 5, app={1, 3})
    # the checker guarantees soundness; region count may be 1 or 2
    assert p.saves
    assert 0 not in p.saves or p.save_at_entry


def test_fig2_shape_repaired_by_range_extension():
    # The permute shape: save would land mid-graph with an exit reachable
    # both with and without it (the paper's Fig. 2 hazard).
    # 0 -> 1(use) , 0 -> 4(exit); 1 -> 2 -> 3 -> 2loop... simplified:
    # 0 -> 1(use); 1 -> 2; 2 -> 3(use), 2 -> 4; 3 -> 2; 0 -> 4
    edges = [(0, 1), (1, 2), (2, 3), (3, 2), (2, 4), (0, 4)]
    cfg, result, p = wrap(edges, 5, app={1, 3})
    # soundness is asserted by check_placement inside wrap(); the repair
    # must have extended the range (save migrates toward the entry)
    assert result.extended_blocks > 0 or p.save_at_entry


def test_loop_smearing_prevents_wrap_inside_loop():
    # 0 -> 1(header) -> 2(body, use) -> 1 ; 1 -> 3(exit)
    edges = [(0, 1), (1, 2), (2, 1), (1, 3)]
    cfg, _, p = wrap(edges, 4, app={2}, smear=True)
    assert 2 not in p.saves     # save must sit outside the loop
    assert 2 not in p.restores


def test_without_smearing_wrap_may_enter_loop():
    edges = [(0, 1), (1, 2), (2, 1), (1, 3)]
    cfg, result, p = wrap(edges, 4, app={2}, smear=False)
    # still sound (checked), even if placed inside the loop
    assert p.saves


def test_empty_footprint_produces_empty_placement():
    cfg = build_graph([(0, 1)], 2)
    loops = find_loops(cfg)
    result = shrink_wrap(cfg, loops, {R: set()})
    assert result.placements[R].saves == set()
    assert result.placements[R].restores == set()


def test_no_registers_is_noop():
    cfg = build_graph([(0, 1)], 2)
    loops = find_loops(cfg)
    result = shrink_wrap(cfg, loops, {})
    assert result.placements == {}


def test_multiple_registers_wrapped_independently():
    # R busy everywhere; R2 busy only in the cold branch
    R2 = 17
    edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
    cfg = build_graph(edges, 4)
    loops = find_loops(cfg)
    result = shrink_wrap(
        cfg, loops, {R: {0, 1, 2, 3}, R2: {1}}
    )
    check_placement(cfg, {0, 1, 2, 3}, result.placements[R])
    check_placement(cfg, {1}, result.placements[R2])
    assert result.placements[R].save_at_entry
    assert not result.placements[R2].save_at_entry


def test_multiple_exits_all_restored():
    # use spans everything; both branches return
    edges = [(0, 1), (0, 2)]
    cfg, _, p = wrap(edges, 3, app={0, 1, 2})
    assert p.saves == {0}
    assert p.restores == {1, 2}


def test_entry_exit_placement_helper():
    cfg = build_graph([(0, 1), (0, 2)], 3)
    p = entry_exit_placement(cfg)
    assert p.saves == {0}
    assert p.restores == {1, 2}


def test_single_block_function():
    cfg, _, p = wrap([], 1, app={0})
    assert p.saves == {0}
    assert p.restores == {0}
