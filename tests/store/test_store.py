"""Unit tests for the content-addressed artifact store itself."""

import os
import time
from pathlib import Path

import pytest

from repro import faults
from repro.store.store import (
    ArtifactStore,
    NS_CODEGEN,
    NS_FRONTEND,
    NS_PLAN,
    StoreLockTimeout,
    key_digest,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def test_roundtrip_and_counters(store):
    key = ("fp", ("nested", 3, True, None))
    assert store.get(NS_PLAN, key) is None
    assert store.put(NS_PLAN, key, {"value": [1, 2, 3]})
    assert store.get(NS_PLAN, key) == {"value": [1, 2, 3]}
    assert store.stats.misses == 1
    assert store.stats.hits == 1
    assert store.stats.writes == 1


def test_namespaces_do_not_collide(store):
    key = ("same", "key")
    store.put(NS_PLAN, key, "plan")
    store.put(NS_CODEGEN, key, "code")
    store.put(NS_FRONTEND, key, "fe")
    assert store.get(NS_PLAN, key) == "plan"
    assert store.get(NS_CODEGEN, key) == "code"
    assert store.get(NS_FRONTEND, key) == "fe"


def test_key_digest_is_canonical_and_strict():
    assert key_digest("ns", (1, "a")) == key_digest("ns", (1, "a"))
    assert key_digest("ns", (1, "a")) != key_digest("ns", (1, "b"))
    assert key_digest("ns", (1,)) != key_digest("ns2", (1,))
    # bool/int must not collide, str/bytes must not collide
    assert key_digest("ns", (True,)) != key_digest("ns", (1,))
    assert key_digest("ns", ("a",)) != key_digest("ns", (b"a",))
    with pytest.raises(TypeError):
        key_digest("ns", (object(),))


def test_sharding_layout(store):
    for i in range(32):
        store.put(NS_PLAN, ("k", i), i)
    shards = [
        d for d in store.root.iterdir()
        if d.is_dir() and len(d.name) == 2
    ]
    assert len(shards) > 1  # 32 keys should never land in one shard
    assert store.entry_count() == 32
    for d in shards:
        assert set(d.name) <= set("0123456789abcdef")


def test_corruption_detected_and_invalidated(store):
    key = ("c", 1)
    store.put(NS_PLAN, key, "payload")
    path = Path(store._path(NS_PLAN, key))
    blob = path.read_bytes()
    path.write_bytes(blob[:-3] + b"XXX")
    assert store.get(NS_PLAN, key) is None
    assert store.stats.corruptions == 1
    assert not path.exists()  # invalidated, next get is a clean miss
    assert store.get(NS_PLAN, key) is None
    assert store.stats.corruptions == 1


def test_truncated_and_garbage_entries(store):
    key = ("t", 1)
    store.put(NS_PLAN, key, "payload")
    path = Path(store._path(NS_PLAN, key))
    path.write_bytes(b"not a store entry at all")
    assert store.get(NS_PLAN, key) is None
    store.put(NS_PLAN, key, "payload")
    path.write_bytes(path.read_bytes()[:10])
    assert store.get(NS_PLAN, key) is None


def test_fault_injected_read_corruption(store):
    key = ("f", 1)
    store.put(NS_PLAN, key, "payload")
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_STORE_READ, kind="corrupt",
                         count=1),
    ])
    with faults.active(plan):
        assert store.get(NS_PLAN, key) is None
    assert store.stats.corruptions == 1
    # the corrupt entry was invalidated; a rewrite reads back fine
    store.put(NS_PLAN, key, "payload")
    assert store.get(NS_PLAN, key) == "payload"


def test_fault_injected_write_failure(store):
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_STORE_WRITE, kind="raise",
                         count=1),
    ])
    with faults.active(plan):
        assert store.put(NS_PLAN, ("w", 1), "v") is False
    assert store.stats.write_failures == 1
    assert store.get(NS_PLAN, ("w", 1)) is None
    assert store.put(NS_PLAN, ("w", 1), "v") is True


def test_gc_is_lru_by_mtime(store):
    for i in range(4):
        store.put(NS_PLAN, ("lru", i), "x" * 100)
    paths = [Path(store._path(NS_PLAN, ("lru", i))) for i in range(4)]
    now = time.time()
    # ages: entry 0 oldest ... entry 3 newest
    for i, p in enumerate(paths):
        os.utime(p, (now - 1000 + i * 100, now - 1000 + i * 100))
    # touch entry 0 via a hit: it becomes the newest
    assert store.get(NS_PLAN, ("lru", 0)) == "x" * 100
    total = store.size_bytes()
    one = paths[0].stat().st_size
    report = store.gc(max_bytes=total - 2 * one + 1)
    assert report["evicted"] == 2
    assert store.stats.evictions == 2
    # the two oldest by mtime (1 and 2) are gone; 0 survived its touch
    assert paths[0].exists() and paths[3].exists()
    assert not paths[1].exists() and not paths[2].exists()


def test_gc_to_zero_and_empty_store(store):
    assert store.gc(max_bytes=0)["evicted"] == 0
    store.put(NS_PLAN, ("g", 1), "v")
    report = store.gc(max_bytes=0)
    assert report["evicted"] == 1
    assert store.entry_count() == 0
    with pytest.raises(ValueError):
        store.gc(max_bytes=-1)


def test_verify_removes_corrupt_entries(store):
    store.put(NS_PLAN, ("v", 1), "good")
    store.put(NS_PLAN, ("v", 2), "bad")
    bad = Path(store._path(NS_PLAN, ("v", 2)))
    bad.write_bytes(b"garbage")
    report = store.verify(remove=False)
    assert report == {
        "checked": 2, "corrupt": 1, "removed": 0,
        "corrupt_entries": [bad.name],
    }
    assert bad.exists()
    report = store.verify(remove=True)
    assert report["removed"] == 1
    assert not bad.exists()
    assert store.get(NS_PLAN, ("v", 1)) == "good"


def test_lock_timeout_and_stale_break(tmp_path):
    store = ArtifactStore(tmp_path, lock_timeout=0.15,
                          stale_lock_seconds=60.0)
    lock = store.root / ".lock"
    lock.write_text("held")
    with pytest.raises(StoreLockTimeout):
        store.gc(max_bytes=0)
    assert store.stats.lock_timeouts == 1
    # a stale lock is broken instead of timing out
    old = time.time() - 120
    os.utime(lock, (old, old))
    store.stale_lock_seconds = 1.0
    assert store.gc(max_bytes=0)["evicted"] == 0
    assert not lock.exists()


def test_open_store_passthrough(tmp_path):
    from repro.store.store import open_store

    assert open_store(None) is None
    s = open_store(tmp_path)
    assert isinstance(s, ArtifactStore)
    assert open_store(s) is s


def test_cli_stats_gc_verify(tmp_path, capsys):
    from repro.store.cli import store_main

    store = ArtifactStore(tmp_path)
    for i in range(3):
        store.put(NS_PLAN, ("cli", i), "x" * 50)
    bad = Path(store._path(NS_PLAN, ("cli", 2)))
    bad.write_bytes(b"rot")

    assert store_main(["stats", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "entries: 3" in out

    assert store_main(["verify", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "corrupt: 1 removed" in out
    assert not bad.exists()

    assert store_main(["gc", str(tmp_path), "--max-bytes", "0"]) == 0
    out = capsys.readouterr().out
    assert "evicted: 2 entries" in out
    assert store.entry_count() == 0

    assert store_main(["stats", str(tmp_path), "--json"]) == 0
    import json

    assert json.loads(capsys.readouterr().out)["entries"] == 0
