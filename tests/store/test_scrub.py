"""Self-healing store maintenance: scrub, quarantine, orphan reaping,
and the maintenance/writer race guarantees."""

import json
import os
import threading
import time

import pytest

from repro import faults
from repro.store.store import ArtifactStore, StoreLockTimeout


def _fill(store: ArtifactStore, n: int, ns: str = "plan"):
    """Put ``n`` distinct entries; returns their (ns, key) pairs."""
    keys = []
    for i in range(n):
        key = ("entry", i)
        assert store.put(ns, key, {"value": i})
        keys.append((ns, key))
    return keys


def _some_blob(store: ArtifactStore):
    blobs = list(store._entries())
    assert blobs
    return blobs[0]


def test_scrub_clean_store_is_a_noop(tmp_path):
    store = ArtifactStore(tmp_path)
    keys = _fill(store, 5)
    report = store.scrub()
    assert report["checked"] == 5
    assert report["quarantined"] == 0
    assert report["reaped"] == 0
    assert report["errors"] == 0
    assert store.stats.scrubs == 1
    for ns, key in keys:
        assert store.get(ns, key) is not None


def test_scrub_quarantines_corruption_and_repairs_on_next_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    (ns, key), = _fill(store, 1)
    blob = _some_blob(store)
    blob.write_bytes(b"torn garbage")

    report = store.scrub()
    assert report["quarantined"] == 1
    # evidence preserved, address vacated
    assert not blob.exists()
    assert store.quarantined_entries() == [blob.name]
    assert (store.quarantine_dir() / blob.name).read_bytes() == \
        b"torn garbage"
    assert store.stats.quarantined == 1
    assert store.stats.corruptions == 1
    assert store.summary()["quarantined_entries"] == 1

    # repair is recompute-on-next-miss: the vacated address misses,
    # the client re-puts, and the store serves again
    assert store.get(ns, key) is None
    assert store.put(ns, key, {"value": 0})
    assert store.get(ns, key) == {"value": 0}


def test_get_quarantines_corrupt_entry(tmp_path):
    store = ArtifactStore(tmp_path)
    (ns, key), = _fill(store, 1)
    blob = _some_blob(store)
    data = blob.read_bytes()
    blob.write_bytes(data[:-1] + bytes([data[-1] ^ 0xFF]))

    assert store.get(ns, key) is None
    assert store.stats.corruptions == 1
    assert store.stats.quarantined == 1
    assert store.quarantined_entries() == [blob.name]


def test_scrub_reaps_old_orphans_but_spares_live_writers(tmp_path):
    store = ArtifactStore(tmp_path)
    _fill(store, 2)
    shard = _some_blob(store).parent
    orphan = shard / "tmpdead.tmp"
    orphan.write_bytes(b"killed writer debris")
    old = time.time() - 3600
    os.utime(orphan, (old, old))
    live = shard / "tmplive.tmp"
    live.write_bytes(b"another process, mid-put")

    report = store.scrub(orphan_age_seconds=60.0)
    assert report["reaped"] == 1
    assert not orphan.exists()
    assert live.exists()      # young temp presumed in-flight: untouched
    assert store.stats.reaped == 1


def test_scrub_reaps_stranded_root_metadata_temps(tmp_path):
    store = ArtifactStore(tmp_path)
    _fill(store, 1)
    stranded = tmp_path / "store.json.tmp12345"
    stranded.write_text("{}")
    old = time.time() - 3600
    os.utime(stranded, (old, old))

    report = store.scrub(orphan_age_seconds=60.0)
    assert report["reaped"] == 1
    assert not stranded.exists()


def test_scrub_incremental_cursor_resumes_and_wraps(tmp_path):
    store = ArtifactStore(tmp_path)
    total = len(_fill(store, 8))

    first = store.scrub(max_entries=1)
    assert 0 < first["checked"] < total
    assert first["shards_scanned"] < 256
    state = json.loads((tmp_path / "scrub.json").read_text())
    assert state["next_shard"] == first["next_shard"]

    second = store.scrub(max_entries=1)
    assert second["start_shard"] == first["next_shard"]

    # bounded passes eventually cover every entry, then wrap
    checked = first["checked"] + second["checked"]
    for _ in range(300):
        if checked >= total:
            break
        checked += store.scrub(max_entries=1)["checked"]
    assert checked >= total

    # an unbounded pass scans the full cycle and resumes where it began
    full = store.scrub()
    assert full["shards_scanned"] == 256
    assert full["next_shard"] == full["start_shard"]

    restart = store.scrub(max_entries=1, resume=False)
    assert restart["start_shard"] == 0


def test_scrub_rejects_nonpositive_budget(tmp_path):
    store = ArtifactStore(tmp_path)
    with pytest.raises(ValueError):
        store.scrub(max_entries=0)


def test_scrub_counts_per_entry_faults_and_continues(tmp_path):
    store = ArtifactStore(tmp_path)
    _fill(store, 4)
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_STORE_SCRUB, kind="raise",
                         count=1),
    ])
    with faults.active(plan):
        report = store.scrub()
    assert len(plan.fired) == 1
    assert report["errors"] == 1
    assert report["quarantined"] == 0
    # the faulted entry was skipped, not destroyed
    assert store.entry_count() == 4


def test_gc_never_touches_inflight_writer_temps(tmp_path):
    """The gc/writer race (satellite): eviction works on published
    ``*.blob`` entries only -- another process's in-flight temp file is
    neither counted against the byte budget nor deleted."""
    store = ArtifactStore(tmp_path)
    _fill(store, 3)
    shard = _some_blob(store).parent
    inflight = shard / "tmpwriter.tmp"
    inflight.write_bytes(b"x" * 4096)

    before = store.size_bytes()
    report = store.gc(max_bytes=0)
    assert report["before_bytes"] == before   # temp bytes not counted
    assert report["evicted"] == 3
    assert inflight.exists()                  # temp never deleted
    assert store.entry_count() == 0


def test_gc_races_a_live_writer_hung_mid_publish(tmp_path):
    """A real concurrent writer stalled inside the publish window (temp
    written, rename pending) survives a full eviction pass and lands
    its entry afterwards."""
    store = ArtifactStore(tmp_path)
    _fill(store, 2)
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_STORE_WRITE, kind="hang",
                         match="publish:code", hang_seconds=1.5, count=1),
    ])
    done = {}

    def writer():
        done["ok"] = store.put("code", ("raced",), {"big": "payload"})

    with faults.active(plan):
        t = threading.Thread(target=writer)
        t.start()
        try:
            deadline = time.monotonic() + 5.0
            shards = lambda: [
                p for p in tmp_path.glob("*/*.tmp") if p.is_file()
            ]
            while not shards() and time.monotonic() < deadline:
                time.sleep(0.01)
            temps = shards()
            assert temps, "writer never reached the publish window"
            report = store.gc(max_bytes=0)
            assert report["evicted"] == 2
            assert all(p.exists() for p in temps)
        finally:
            t.join()
    assert done["ok"] is True
    assert store.get("code", ("raced",)) == {"big": "payload"}


def test_verify_ignores_temps_and_quarantine(tmp_path):
    store = ArtifactStore(tmp_path)
    _fill(store, 2)
    blob = _some_blob(store)
    shard = blob.parent
    (shard / "tmpx.tmp").write_bytes(b"junk that is not a blob")
    blob.write_bytes(b"rot")
    assert store.scrub()["quarantined"] == 1

    report = store.verify(remove=False)
    assert report["checked"] == 1             # quarantine not re-counted
    assert report["corrupt"] == 0
    assert store.quarantined_entries() == [blob.name]


def test_lock_waits_and_timeouts_are_counted(tmp_path):
    store = ArtifactStore(tmp_path, lock_timeout=0.1)
    _fill(store, 1)
    held = tmp_path / ".lock"
    held.write_text(str(os.getpid()))
    try:
        with pytest.raises(StoreLockTimeout):
            store.gc(max_bytes=0)
    finally:
        held.unlink()
    assert store.stats.lock_waits == 1
    assert store.stats.lock_timeouts == 1
    assert store.summary()["counters"]["lock_waits"] == 1

    # an uncontended acquisition waits for nothing
    store.scrub()
    assert store.stats.lock_waits == 1


def test_scrub_cli(tmp_path, capsys):
    from repro.store.cli import store_main

    store = ArtifactStore(tmp_path)
    _fill(store, 2)
    blob = _some_blob(store)
    blob.write_bytes(b"rot")

    assert store_main(["scrub", str(tmp_path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["checked"] == 2
    assert report["quarantined"] == 1

    assert store_main(["scrub", str(tmp_path)]) == 0
    text = capsys.readouterr().out
    assert "quarantined: 0" in text

    assert store_main(["stats", str(tmp_path)]) == 0
    text = capsys.readouterr().out
    assert "quarantine: 1 entries" in text
