"""Two processes, one store, same suite, at the same time.

:func:`repro.tools.warmstart.compile_suite` is the worker body (it is
importable by the pool workers); both workers compile the same suite
slice against one store directory concurrently.  The store's lock-free
write-rename protocol must keep every entry intact (no torn or corrupt
reads), and both processes must produce bit-identical executables.
"""

from concurrent.futures import ProcessPoolExecutor

from repro.engine.core import Engine
from repro.pipeline.options import PAPER_CONFIGS
from repro.store.store import ArtifactStore
from repro.tools.warmstart import compile_suite, executable_digest

NAMES = ["nim", "map"]
CONFIGS = ["base", "C"]


def test_concurrent_workers_share_one_store(tmp_path):
    store = str(tmp_path / "store")
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [
            pool.submit(compile_suite, store, CONFIGS, NAMES)
            for _ in range(2)
        ]
        a, b = [f.result(timeout=300) for f in futures]

    # bit-identical executables from both workers
    assert a["digests"] == b["digests"]
    # neither worker saw a corrupt entry
    assert a["store"]["corruptions"] == 0
    assert b["store"]["corruptions"] == 0
    # content addressing deduplicates on disk: the second writer of a
    # key overwrites identical bytes, so the store holds ONE suite's
    # entries, not two
    solo = str(tmp_path / "solo")
    ref = compile_suite(solo, CONFIGS, NAMES)
    assert ArtifactStore(store).entry_count() == \
        ArtifactStore(solo).entry_count()
    # and matches a single-process reference build bit for bit
    assert a["digests"] == ref["digests"]
    # duplicate recompute is bounded by single-flight races: combined
    # plan misses can never exceed two full cold suites
    combined = a["stages"]["plan"]["misses"] + b["stages"]["plan"]["misses"]
    assert combined <= 2 * ref["stages"]["plan"]["misses"]
    # the store is clean afterwards
    assert ArtifactStore(store).verify(remove=False)["corrupt"] == 0


def test_warm_third_process_after_concurrent_writers(tmp_path):
    store = str(tmp_path / "store")
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [
            pool.submit(compile_suite, store, CONFIGS, NAMES)
            for _ in range(2)
        ]
        a, _ = [f.result(timeout=300) for f in futures]

    # a fresh "process" (fresh engine, no memory caches) warm-starts
    from repro.benchsuite.registry import load_benchmarks

    benches = load_benchmarks()
    for config in CONFIGS:
        engine = Engine(PAPER_CONFIGS[config], store_path=store)
        for name in NAMES:
            built = engine.compile(benches[name].source)
            assert executable_digest(built.executable) == \
                a["digests"][f"{name}:{config}"]
        rec = engine.stats.records[-1]
        assert rec.stages["plan"].misses == 0
