"""Engine + persistent store integration: warm starts are bit-identical
and every store failure mode is invisible in the output."""

import pytest

from repro import faults
from repro.benchsuite.registry import load_benchmarks
from repro.engine.core import Engine
from repro.interproc.allocator import FnPlan
from repro.pipeline.options import PAPER_CONFIGS, O2, O3_SW
from repro.store import StoredPlan
from repro.tools.warmstart import executable_digest

SRC = """
var g = 3;
func leaf(a) { return a + g; }
func mid(a) {
    if (a > 2) { return leaf(a) * 2; }
    return leaf(a - 1);
}
func main() { print mid(5) + leaf(1); return 0; }
"""


def _blobs(store):
    return [
        p for d in store.root.iterdir() if d.is_dir() and len(d.name) == 2
        for p in d.glob("*.blob")
    ]


def test_fresh_session_warm_start(tmp_path):
    cold = Engine(O3_SW, store_path=tmp_path)
    p_cold = cold.compile(SRC)
    warm = Engine(O3_SW, store_path=tmp_path)
    p_warm = warm.compile(SRC)

    assert executable_digest(p_warm.executable) == \
        executable_digest(p_cold.executable)
    rec = warm.stats.records[-1]
    for stage in ("frontend", "plan", "codegen"):
        assert rec.stages[stage].misses == 0, stage
        assert rec.stages[stage].hits == 3, stage
    assert rec.stages["store"].hits > 0
    assert rec.stages["store"].misses == 0
    assert p_warm.run().output == p_cold.run().output


def test_warm_plans_are_stubs_with_paired_artifacts(tmp_path):
    Engine(O3_SW, store_path=tmp_path).compile(SRC)
    warm = Engine(O3_SW, store_path=tmp_path)
    p = warm.compile(SRC)
    assert all(
        isinstance(plan, StoredPlan) for plan in p.plan.plans.values()
    )
    # the stub preserves exactly what dependants consumed
    ref = Engine(O3_SW).compile(SRC)
    for name, plan in ref.plan.plans.items():
        stub = StoredPlan.from_plan(plan)
        assert stub.saved_mask == plan.saved_mask
        assert stub.mode == plan.mode
        assert (stub.summary is None) == (plan.summary is None)


@pytest.mark.parametrize("config", sorted(PAPER_CONFIGS))
def test_warm_start_identity_all_paper_configs(tmp_path, config):
    benches = load_benchmarks()
    options = PAPER_CONFIGS[config]
    for name in ("nim", "map"):
        source = benches[name].source
        cold = Engine(options, store_path=tmp_path).compile(source)
        warm = Engine(options, store_path=tmp_path).compile(source)
        assert executable_digest(warm.executable) == \
            executable_digest(cold.executable), (name, config)


def test_store_read_corruption_recomputes(tmp_path):
    cold = Engine(O3_SW, store_path=tmp_path)
    p_cold = cold.compile(SRC)
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_STORE_READ, kind="corrupt",
                         count=3),
    ])
    warm = Engine(O3_SW, store_path=tmp_path)
    with faults.active(plan):
        p_warm = warm.compile(SRC)
    assert len(plan.fired) == 3
    assert warm.store.stats.corruptions == 3
    assert warm.stats.records[-1].cache_corruptions >= 3
    assert executable_digest(p_warm.executable) == \
        executable_digest(p_cold.executable)


def test_store_write_failures_are_silent(tmp_path):
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_STORE_WRITE, kind="raise",
                         count=None),
    ])
    engine = Engine(O3_SW, store_path=tmp_path)
    with faults.active(plan):
        p = engine.compile(SRC)
    assert engine.store.stats.write_failures > 0
    assert engine.store.stats.writes == 0
    assert executable_digest(p.executable) == \
        executable_digest(Engine(O3_SW).compile(SRC).executable)


def test_broken_pairing_replans_without_store(tmp_path):
    Engine(O3_SW, store_path=tmp_path).compile(SRC)
    warm = Engine(O3_SW, store_path=tmp_path)
    p1 = warm.compile(SRC)
    assert isinstance(p1.plan.plans["mid"], StoredPlan)

    # break the pairing mid-session: disk artifacts vanish AND the
    # in-memory codegen entry for one procedure rots
    for blob in _blobs(warm.store):
        blob.unlink()
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_CACHE_CODEGEN, kind="corrupt",
                         match="mid", count=1),
    ])
    with faults.active(plan):
        p2 = warm.compile(SRC)
    assert len(plan.fired) == 1
    # the affected procedure was replanned from scratch...
    assert isinstance(p2.plan.plans["mid"], FnPlan)
    assert not isinstance(p2.plan.plans["mid"], StoredPlan)
    # ...and the output did not change
    assert executable_digest(p2.executable) == \
        executable_digest(p1.executable)


def test_pairing_enforced_at_lookup(tmp_path):
    """A plan stub whose codegen artifact is missing on disk must be
    ignored at plan time (no stub ever reaches codegen unpaired)."""
    import pickle

    cold = Engine(O3_SW, store_path=tmp_path)
    cold.compile(SRC)
    # drop only the codegen artifacts -- the (AsmFunction, mask) tuples
    removed = 0
    for blob in _blobs(cold.store):
        data = blob.read_bytes()
        payload = data[data.find(b"\n", len(b"repro-store:1\n")) + 1:]
        try:
            value = pickle.loads(payload)
        except Exception:
            continue
        if isinstance(value, tuple) and len(value) == 2:
            blob.unlink()   # (AsmFunction, preserved_mask) artifacts
            removed += 1
    assert removed == 3

    warm = Engine(O3_SW, store_path=tmp_path)
    p = warm.compile(SRC)
    # stubs were unusable: full plans were recomputed
    assert all(
        not isinstance(plan, StoredPlan) for plan in p.plan.plans.values()
    )
    assert executable_digest(p.executable) == \
        executable_digest(Engine(O3_SW).compile(SRC).executable)


def test_compile_batch_with_store(tmp_path):
    engine = Engine(O2, store_path=tmp_path)
    sources = [SRC, SRC.replace("5", "7"),
               "func main() { print 42; return 0; }"]
    results = engine.compile_batch(sources)
    assert [r.run().output for r in results] == [[20], [24], [42]]
    solo = Engine(O2)
    for src, batched in zip(sources, results):
        assert executable_digest(batched.executable) == \
            executable_digest(solo.compile(src).executable)
    # one record per request, each with the store stage populated
    assert len(engine.stats.records) == 3
    assert sum(
        r.stages["store"].lookups for r in engine.stats.records
    ) > 0


def test_batch_isolates_per_request_failures(tmp_path):
    engine = Engine(O2, store_path=tmp_path)
    results = engine.compile_batch([
        SRC,
        "func notmain() { return 1; }",   # no entry point
        "func main() { print 1; return 0; }",
    ])
    assert not isinstance(results[0], Exception)
    assert isinstance(results[1], Exception)
    assert not isinstance(results[2], Exception)


def test_store_disabled_engine_untouched(tmp_path):
    engine = Engine(O2)
    assert engine.store is None
    p = engine.compile(SRC)
    rec = engine.stats.records[-1]
    assert rec.stages["store"].lookups == 0
    assert rec.stages["store"].seconds == 0.0
    assert p.run().output == [20]
