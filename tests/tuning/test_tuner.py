"""The convention autotuner: determinism, soundness, replayability."""

import json

import pytest

from repro.pipeline.driver import compile_program
from repro.pipeline.options import PAPER_CONFIGS
from repro.target.registers import DEFAULT_CONVENTION, split_convention
from repro.tools.warmstart import executable_digest
from repro.tuning import (
    Tuner,
    budget_candidates,
    check_report,
    full_space,
    neighbors,
    sample_space,
    small_space,
)

#: two small benchmarks keep every search here inside the CI budget
NAMES = ["calcc", "pf"]


def _stable(report):
    """A report with the wall-clock-dependent fields removed -- what a
    fixed seed must reproduce exactly."""
    data = json.loads(json.dumps(report))  # deep copy, JSON-normalised
    data.pop("wall_seconds", None)
    data.pop("engine", None)
    for cand in (
        [data["baseline"], data["winner"]]
        + data["candidates"]
    ):
        cand.pop("wall_seconds", None)
    return data


def test_candidate_spaces_are_deterministic():
    assert [c.key() for c in full_space()] == [
        c.key() for c in full_space()
    ]
    assert [c.key() for c in sample_space(6, seed=7)] == [
        c.key() for c in sample_space(6, seed=7)
    ]
    assert sample_space(6, seed=7)[0] == DEFAULT_CONVENTION
    assert any(
        c.name == "worse-noargregs" for c in small_space()
    )
    assert [c.key() for c in budget_candidates("small", 0)] == [
        c.key() for c in small_space()
    ]
    with pytest.raises(ValueError):
        budget_candidates("enormous", 0)


def test_neighbors_move_one_axis():
    for n in neighbors(DEFAULT_CONVENTION):
        assert n.key() != DEFAULT_CONVENTION.key()


def test_two_candidate_micro_search():
    cands = [DEFAULT_CONVENTION, split_convention(13, 4, name="wide")]
    result = Tuner(config="C", names=NAMES, seed=0).run(candidates=cands)
    assert len(result.evaluations) == 2
    assert not result.baseline.disqualified
    assert set(result.baseline.programs) == set(NAMES)
    # the baseline is always a finalist, so the winner can never lose
    assert result.winner.score() <= result.baseline.score()
    report = result.to_report()
    assert check_report(report) == []


def test_fixed_seed_reproduces_the_report_bit_for_bit():
    def run():
        return Tuner(config="C", names=NAMES, seed=3).run(budget="small")

    a, b = run(), run()
    assert _stable(a.to_report()) == _stable(b.to_report())
    assert a.winner.convention.key() == b.winner.convention.key()


def test_strictly_worse_candidate_never_beats_baseline():
    result = Tuner(config="C", names=NAMES, seed=0).run(budget="small")
    report = result.to_report()
    assert report["guard"] is not None
    assert report["guard"]["holds"]
    assert check_report(report) == []


def test_winner_replays_bit_identically_through_reference_pipeline():
    """Compiling the tuner-selected convention through the one-shot
    reference pipeline must reproduce the tuner's own builds exactly."""
    tuner = Tuner(config="C", names=NAMES, seed=0)
    result = tuner.run(budget="small")
    win = result.winner.convention
    options = PAPER_CONFIGS["C"].with_(convention=win)
    for name in NAMES:
        source = tuner._benches[name].source
        via_engine = tuner.engine.compile(source, options)
        reference = compile_program(source, options)
        assert executable_digest(via_engine.executable) == (
            executable_digest(reference.executable)
        )


def test_pooled_evaluation_matches_inline(tmp_path):
    inline = Tuner(config="C", names=NAMES, seed=0)
    pooled = Tuner(config="C", names=NAMES, seed=0, jobs=2)
    cands = [DEFAULT_CONVENTION, split_convention(9, 4)]
    a = inline.run(candidates=cands)
    b = pooled.run(candidates=cands)
    assert _stable(a.to_report())["candidates"] == (
        _stable(b.to_report())["candidates"]
    )


def test_check_report_flags_violations():
    result = Tuner(config="C", names=NAMES, seed=0).run(
        candidates=[DEFAULT_CONVENTION, split_convention(9, 4)]
    )
    good = result.to_report()
    assert check_report(good) == []
    assert check_report({"schema_version": 999}) != []
    bad = json.loads(json.dumps(good))
    bad["winner"]["totals"]["cycles"] = (
        bad["baseline"]["totals"]["cycles"] + 1
    )
    assert any("worse than the baseline" in e for e in check_report(bad))
    broken = json.loads(json.dumps(good))
    broken["baseline"]["convention"]["ladder"] = ["open"]
    assert any("convention spec invalid" in e
               for e in check_report(broken))


def test_tuner_rejects_bad_arguments():
    with pytest.raises(ValueError):
        Tuner(config="Z")
    with pytest.raises(ValueError):
        Tuner(names=["not-a-benchmark"])
    with pytest.raises(ValueError):
        Tuner(jobs=0)
