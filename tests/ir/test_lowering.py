"""Lowering tests: AST -> IR structure."""

from helpers import lower

from repro.ir import (
    Bin,
    Call,
    CallInd,
    CJump,
    Jump,
    LoadFunc,
    LoadIdx,
    Mov,
    Ret,
    StoreIdx,
    VKind,
    verify_module,
)


def fn_of(src, name="f"):
    mod = lower(src)
    verify_module(mod)
    return mod.functions[name]


def all_instrs(fn):
    return list(fn.instructions())


def test_simple_assignment_lowers_to_mov():
    fn = fn_of("func f() { var x = 3; }")
    movs = [i for i in all_instrs(fn) if isinstance(i, Mov)]
    assert len(movs) == 1
    assert movs[0].dst.name == "x"


def test_binary_expression_creates_temp():
    fn = fn_of("func f(a, b) { return a + b; }")
    bins = [i for i in all_instrs(fn) if isinstance(i, Bin)]
    assert len(bins) == 1
    assert bins[0].dst.is_temp


def test_param_vregs_have_positions():
    fn = fn_of("func f(a, b, c) {}")
    params = fn.param_vregs
    assert [p.name for p in params] == ["a", "b", "c"]
    assert [p.index for p in params] == [0, 1, 2]
    assert all(p.kind is VKind.PARAM for p in params)


def test_global_reference_has_global_kind():
    fn = fn_of("var g; func f() { return g; }")
    ret = fn.blocks[0].terminator
    assert isinstance(ret, Ret)
    assert ret.value.kind is VKind.GLOBAL


def test_short_circuit_and_creates_branches():
    fn = fn_of("func f(a, b) { if (a && b) { return 1; } return 0; }")
    # must have at least two conditional branches (one per operand)
    cjumps = [b.terminator for b in fn.blocks if isinstance(b.terminator, CJump)]
    assert len(cjumps) >= 2


def test_short_circuit_value_materialises_temp():
    fn = fn_of("func f(a, b) { var x = a || b; return x; }")
    movs = [i for i in all_instrs(fn) if isinstance(i, Mov)]
    # 0/1 materialisation plus the assignment
    consts = [m for m in movs if getattr(m.src, "value", None) in (0, 1)]
    assert len(consts) >= 2


def test_while_loop_structure():
    fn = fn_of("func f(n) { while (n > 0) { n = n - 1; } return n; }")
    names = [b.name for b in fn.blocks]
    assert any(n.startswith("wcond") for n in names)
    assert any(n.startswith("wbody") for n in names)


def test_for_loop_continue_jumps_to_step():
    fn = fn_of(
        """
        func f() {
            var s = 0;
            for (var i = 0; i < 10; i = i + 1) {
                if (i == 5) { continue; }
                s = s + i;
            }
            return s;
        }
        """
    )
    step_blocks = [b.name for b in fn.blocks if b.name.startswith("fstep")]
    assert len(step_blocks) == 1
    target = step_blocks[0]
    jumps = [
        b.terminator for b in fn.blocks
        if isinstance(b.terminator, Jump) and b.terminator.target == target
    ]
    assert len(jumps) >= 2  # loop-end jump plus the continue


def test_break_exits_loop():
    fn = fn_of("func f() { while (1) { break; } return 7; }")
    # unreachable loop tail removed; function must still verify and return
    assert any(isinstance(b.terminator, Ret) for b in fn.blocks)


def test_dead_code_after_return_dropped():
    fn = fn_of("func f() { return 1; return 2; }")
    rets = [b.terminator for b in fn.blocks if isinstance(b.terminator, Ret)]
    assert len(rets) == 1


def test_array_access_lowering():
    fn = fn_of("array a[5]; func f(i) { a[i] = a[i+1]; }")
    instrs = all_instrs(fn)
    assert any(isinstance(i, LoadIdx) for i in instrs)
    assert any(isinstance(i, StoreIdx) for i in instrs)


def test_local_array_registered():
    fn = fn_of("func f() { array t[9]; t[1] = 2; }")
    assert fn.local_arrays == {"t": 9}


def test_call_statement_has_no_destination():
    fn = fn_of("func g() {} func f() { g(); }")
    calls = [i for i in all_instrs(fn) if isinstance(i, Call)]
    assert calls[0].dst is None


def test_call_expression_has_destination():
    fn = fn_of("func g() {} func f() { return g(); }")
    calls = [i for i in all_instrs(fn) if isinstance(i, Call)]
    assert calls[0].dst is not None


def test_indirect_call_lowering():
    fn = fn_of("func g(x) {} func f() { var p = &g; p(1); }")
    instrs = all_instrs(fn)
    assert any(isinstance(i, LoadFunc) for i in instrs)
    assert any(isinstance(i, CallInd) for i in instrs)


def test_function_falls_off_end_returns_none():
    fn = fn_of("func f() { var x = 1; }")
    last = fn.blocks[-1].terminator
    assert isinstance(last, Ret) and last.value is None


def test_else_if_chain_lowering():
    fn = fn_of(
        """
        func f(x) {
            if (x == 1) { return 10; }
            else if (x == 2) { return 20; }
            else { return 30; }
        }
        """
    )
    rets = [b.terminator for b in fn.blocks if isinstance(b.terminator, Ret)]
    assert len(rets) == 3


def test_unreachable_blocks_removed():
    fn = fn_of("func f() { return 1; var x = 2; x = x + 1; }")
    for block in fn.blocks:
        assert not block.name.startswith("dead") or block.instrs == []
