"""IR optimisation pass tests."""

from helpers import lower, lower_opt

from repro.ir import (
    Bin,
    Call,
    CJump,
    Const,
    Jump,
    Mov,
    verify_module,
)
from repro.ir.optimize import (
    copy_propagate,
    dead_code_eliminate,
    fold_constants,
    optimize_function,
    simplify_cfg,
)


def opt_fn(src, name="f"):
    mod = lower_opt(src)
    verify_module(mod)
    return mod.functions[name]


def raw_fn(src, name="f"):
    return lower(src).functions[name]


def instrs(fn):
    return list(fn.instructions())


def test_constant_folding_collapses_arithmetic():
    fn = opt_fn("func f() { return (2 + 3) * 4; }")
    assert not any(isinstance(i, Bin) for i in instrs(fn))
    ret = fn.blocks[0].terminator
    assert ret.value == Const(20)


def test_folding_preserves_divide_by_zero_trap():
    fn = opt_fn("func f() { return 1 / 0; }")
    assert any(isinstance(i, Bin) and i.op == "/" for i in instrs(fn))


def test_folding_preserves_out_of_range_shift_trap():
    fn = opt_fn("func f() { var b = 0 - 1; return 1 << b; }")
    assert any(isinstance(i, Bin) and i.op == "<<" for i in instrs(fn))
    fn = opt_fn("func f() { var b = 64; return 1 >> b; }")
    assert any(isinstance(i, Bin) and i.op == ">>" for i in instrs(fn))


def test_algebraic_identities():
    fn = opt_fn("func f(x) { return (x + 0) * 1; }")
    assert not any(isinstance(i, Bin) for i in instrs(fn))


def test_multiply_by_zero_folds():
    fn = opt_fn("func f(x) { var y = x * 0; return y + 5; }")
    ret = fn.blocks[0].terminator
    assert ret.value == Const(5)


def test_copy_propagation_within_block():
    fn = raw_fn("func f(x) { var a = x; var b = a; return b; }")
    copy_propagate(fn)
    ret = fn.blocks[0].terminator
    assert ret.value.name == "x"


def test_copy_propagation_invalidated_by_redefinition():
    fn = opt_fn(
        """
        func f(x) {
            var a = x;
            x = 99;
            return a;
        }
        """
    )
    # 'a' must NOT read the new value of x; run and check via behaviour
    from helpers import run_all_levels

    stats = run_all_levels(
        """
        func f(x) { var a = x; x = 99; return a; }
        func main() { print f(5); }
        """
    )
    assert stats["O2"].output == [5]


def test_globals_not_propagated_across_calls():
    src = """
    var g = 1;
    func bump() { g = g + 1; }
    func f() { var a = g; bump(); return g; }
    func main() { print f(); }
    """
    from helpers import run_all_levels

    stats = run_all_levels(src)
    assert stats["O1"].output == [2]


def test_dce_removes_dead_computation():
    fn = raw_fn("func f(x) { var dead = x * 17; return x; }")
    removed = dead_code_eliminate(fn)
    assert removed >= 1
    assert not any(isinstance(i, Bin) for i in instrs(fn))


def test_dce_keeps_global_writes():
    fn = raw_fn("var g; func f() { g = 5; }")
    dead_code_eliminate(fn)
    assert any(isinstance(i, Mov) and i.dst.name == "g" for i in instrs(fn))


def test_dce_drops_unused_call_result_but_keeps_call():
    fn = raw_fn("func g() { return 1; } func f() { var x = g(); }")
    dead_code_eliminate(fn)
    calls = [i for i in instrs(fn) if isinstance(i, Call)]
    assert len(calls) == 1 and calls[0].dst is None


def test_simplify_cfg_folds_constant_branch():
    fn = raw_fn("func f() { if (1) { return 1; } return 2; }")
    fold_constants(fn)
    copy_propagate(fn)
    simplify_cfg(fn)
    assert not any(isinstance(b.terminator, CJump) for b in fn.blocks)


def test_simplify_cfg_merges_chains():
    fn = opt_fn("func f(x) { var a = x + 1; var b = a + 2; return b; }")
    assert len(fn.blocks) == 1


def test_optimize_function_reaches_fixed_point():
    fn = raw_fn(
        """
        func f(x) {
            var a = 2 * 3;
            var b = a + 0;
            var c = b;
            if (0) { c = 99; }
            return c + x;
        }
        """
    )
    optimize_function(fn)
    # everything collapses to: return x + 6 (in one block)
    assert len(fn.blocks) == 1
    bins = [i for i in instrs(fn) if isinstance(i, Bin)]
    assert len(bins) == 1
    operands = {bins[0].a, bins[0].b}
    assert Const(6) in operands


def test_optimizer_preserves_behaviour_on_loops():
    from helpers import run_all_levels

    src = """
    func main() {
        var total = 0;
        for (var i = 0; i < 10; i = i + 1) {
            var t = i * 2 + 1;
            total = total + t;
        }
        print total;
    }
    """
    stats = run_all_levels(src)
    assert stats["O0"].output == [100]
    assert stats["O1"].cycles <= stats["O0"].cycles


def test_value_numbering_removes_repeated_expression():
    from repro.ir.optimize import local_value_numbering

    fn = raw_fn(
        """
        func f(a, b) {
            var x = a * b + a;
            var y = a * b + a;
            return x + y;
        }
        """
    )
    assert local_value_numbering(fn) >= 1
    # behaviour preserved end to end
    from helpers import run_all_levels

    stats = run_all_levels(
        """
        func f(a, b) { var x = a * b + a; var y = a * b + a; return x + y; }
        func main() { print f(6, 7); }
        """
    )
    assert stats["O0"].output == [96]


def test_value_numbering_respects_redefinition():
    from helpers import run_all_levels

    stats = run_all_levels(
        """
        func f(a, b) {
            var x = a + b;
            a = a + 100;
            var y = a + b;   // different value: must NOT be reused
            return x * 1000 + y;
        }
        func main() { print f(1, 2); }
        """
    )
    assert stats["O0"].output == [3 * 1000 + 103]


def test_value_numbering_invalidated_by_calls_for_globals():
    from helpers import run_all_levels

    stats = run_all_levels(
        """
        var g = 1;
        func bump() { g = g + 10; }
        func f() {
            var x = g + 5;
            bump();
            var y = g + 5;   // g changed through memory
            return x * 100 + y;
        }
        func main() { print f(); }
        """
    )
    assert stats["O0"].output == [6 * 100 + 16]


def test_value_numbering_commutative_match():
    from repro.ir.optimize import local_value_numbering

    fn = raw_fn(
        """
        func f(a, b) {
            var x = a + b;
            var y = b + a;
            return x - y;
        }
        """
    )
    assert local_value_numbering(fn) >= 1


def test_value_numbering_subtraction_not_commutative():
    from helpers import run_all_levels

    stats = run_all_levels(
        """
        func f(a, b) { var x = a - b; var y = b - a; return x * 10 + y; }
        func main() { print f(7, 3); }
        """
    )
    assert stats["O0"].output == [4 * 10 - 4]
