"""IR verifier tests."""

import pytest

from helpers import lower

from repro.ir import (
    BasicBlock,
    Bin,
    Call,
    IRFunction,
    IRModule,
    IRVerifyError,
    Jump,
    Ret,
    VKind,
    VReg,
    verify_function,
    verify_module,
)
from repro.ir.values import Const


def make_fn():
    fn = IRFunction(name="f", params=[])
    fn.add_block(BasicBlock("entry", [], Ret(None)))
    return fn


def test_valid_function_passes():
    verify_function(make_fn())


def test_unterminated_block_rejected():
    fn = IRFunction(name="f", params=[])
    fn.add_block(BasicBlock("entry", [], None))
    with pytest.raises(IRVerifyError, match="unterminated"):
        verify_function(fn)


def test_branch_to_undefined_block_rejected():
    fn = IRFunction(name="f", params=[])
    fn.add_block(BasicBlock("entry", [], Jump("nowhere")))
    with pytest.raises(IRVerifyError, match="undefined block"):
        verify_function(fn)


def test_duplicate_block_name_rejected():
    fn = IRFunction(name="f", params=[])
    fn.add_block(BasicBlock("entry", [], Ret(None)))
    with pytest.raises(ValueError):
        fn.add_block(BasicBlock("entry", [], Ret(None)))


def test_vreg_not_collected_rejected():
    fn = IRFunction(name="f", params=[])
    t = VReg(".t1", VKind.TEMP)
    fn.add_block(
        BasicBlock("entry", [Bin("+", t, Const(1), Const(2))], Ret(None))
    )
    # vregs set deliberately left empty
    with pytest.raises(IRVerifyError, match="vreg"):
        verify_function(fn)


def test_call_arity_mismatch_rejected():
    mod = IRModule(name="m")
    callee = IRFunction(name="g", params=["a"])
    callee.add_block(BasicBlock("entry", [], Ret(None)))
    caller = IRFunction(name="f", params=[])
    caller.add_block(
        BasicBlock("entry", [Call("g", [Const(1), Const(2)])], Ret(None))
    )
    mod.add_function(callee)
    mod.add_function(caller)
    with pytest.raises(IRVerifyError, match="args"):
        verify_module(mod)


def test_call_to_unknown_function_rejected():
    mod = IRModule(name="m")
    caller = IRFunction(name="f", params=[])
    caller.add_block(BasicBlock("entry", [Call("mystery", [])], Ret(None)))
    mod.add_function(caller)
    with pytest.raises(IRVerifyError, match="unknown function"):
        verify_module(mod)


def test_unknown_address_taken_rejected():
    mod = IRModule(name="m")
    mod.address_taken.add("ghost")
    with pytest.raises(IRVerifyError):
        verify_module(mod)


def test_extern_satisfies_call_arity():
    mod = lower("extern func e(2); func f() { e(1, 2); }")
    verify_module(mod)


def test_lowered_modules_always_verify(fib_source):
    verify_module(lower(fib_source))
