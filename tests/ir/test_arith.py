"""Word arithmetic semantics (C-style truncating division etc.)."""

import pytest

from repro.ir.arith import (
    BINOPS,
    MachineTrap,
    sdiv,
    shift_left,
    shift_right,
    srem,
    UNOPS,
)


@pytest.mark.parametrize(
    "a,b,q",
    [(17, 5, 3), (-17, 5, -3), (17, -5, -3), (-17, -5, 3), (0, 3, 0),
     (6, 3, 2), (-6, 3, -2), (1, 2, 0), (-1, 2, 0)],
)
def test_sdiv_truncates_toward_zero(a, b, q):
    assert sdiv(a, b) == q


@pytest.mark.parametrize(
    "a,b,r",
    [(17, 5, 2), (-17, 5, -2), (17, -5, 2), (-17, -5, -2), (0, 3, 0)],
)
def test_srem_sign_follows_dividend(a, b, r):
    assert srem(a, b) == r


def test_division_identity():
    for a in range(-20, 21):
        for b in (-7, -3, -1, 1, 2, 9):
            assert sdiv(a, b) * b + srem(a, b) == a


def test_divide_by_zero_traps():
    with pytest.raises(MachineTrap):
        sdiv(1, 0)
    with pytest.raises(MachineTrap):
        srem(1, 0)


def test_shifts():
    assert shift_left(3, 4) == 48
    assert shift_right(-8, 1) == -4   # arithmetic shift
    assert shift_right(7, 1) == 3


def test_shift_out_of_range_traps():
    with pytest.raises(MachineTrap):
        shift_left(1, -1)
    with pytest.raises(MachineTrap):
        shift_right(1, 64)


def test_comparison_ops_return_ints():
    assert BINOPS["<"](1, 2) == 1
    assert BINOPS[">="](1, 2) == 0
    assert BINOPS["=="](5, 5) == 1
    assert BINOPS["!="](5, 5) == 0


def test_unops():
    assert UNOPS["-"](5) == -5
    assert UNOPS["!"](0) == 1
    assert UNOPS["!"](7) == 0
    assert UNOPS["~"](0) == -1
