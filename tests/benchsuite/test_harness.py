"""Table-harness unit tests (on a tiny synthetic benchmark for speed)."""

import pytest

from repro.benchsuite.harness import (
    BenchResult,
    format_table1,
    format_table2,
    run_benchmark,
    run_suite,
)
from repro.benchsuite.registry import Benchmark

TINY = Benchmark(
    name="tiny",
    language="C",
    description="a tiny synthetic benchmark for harness tests",
    source="""
    func work(a, b) { return a * b + a; }
    func main() {
        var t = 0;
        for (var i = 0; i < 30; i = i + 1) { t = t + work(i, i + 1); }
        print t;
    }
    """,
)


@pytest.fixture(scope="module")
def result() -> BenchResult:
    return run_benchmark(TINY, ("A", "B", "C", "D", "E"))


def test_all_configs_present(result):
    assert set(result.stats) == {"base", "A", "B", "C", "D", "E"}


def test_reductions_relative_to_base(result):
    base = result.base
    for cfg in ("A", "B", "C"):
        expected = 100.0 * (
            base.cycles - result.stats[cfg].cycles
        ) / base.cycles
        assert result.cycle_reduction(cfg) == pytest.approx(expected)


def test_cycles_per_call(result):
    assert result.cycles_per_call() == pytest.approx(
        result.base.cycles / result.base.calls
    )


def test_format_table1_contains_rows(result):
    text = format_table1([result])
    assert "tiny" in text
    assert "I.A" in text and "II.C" in text


def test_format_table2_contains_rows(result):
    text = format_table2([result])
    assert "tiny" in text
    assert "I.D" in text and "II.E" in text


def test_output_divergence_detected():
    # sanity check the equivalence assertion: identical program cannot
    # diverge, so run_benchmark returns normally
    run_benchmark(TINY, ("A",), check_contracts=True)


def test_sim_tier_does_not_change_results(result):
    jit = run_benchmark(TINY, ("A", "B", "C", "D", "E"), sim_tier="jit")
    assert jit.stats == result.stats


def test_parallel_suite_matches_serial():
    serial = run_suite(("A",), names=["nim", "map"], sim_tier="interp")
    parallel = run_suite(
        ("A",), names=["nim", "map"], sim_tier="jit", jobs=2
    )
    assert [r.benchmark.name for r in parallel] == ["nim", "map"]
    for s, p in zip(serial, parallel):
        assert s.stats == p.stats
