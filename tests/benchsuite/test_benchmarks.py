"""Benchmark-suite integrity tests.

Every program compiles at every paper configuration, produces identical
output everywhere, and honours the dynamic calling-convention contracts.
The heavyweight full-suite sweep lives in ``benchmarks/``; here each
program is checked at the three configurations that matter most for
correctness (straight translation, intra coloring, full IPRA+SW).
"""

import pytest

from helpers import compile_cached, run_cached

from repro.benchsuite import benchmark_names, load_benchmarks
from repro.pipeline import O0, O2, O3_SW

BENCHES = load_benchmarks()


def test_registry_contains_the_papers_13_programs():
    assert benchmark_names() == [
        "nim", "map", "calcc", "diff", "dhrystone", "stanford", "pf",
        "awk", "tex", "ccom", "as1", "upas", "uopt",
    ]
    assert set(BENCHES) == set(benchmark_names())


def test_benchmarks_have_descriptions():
    for b in BENCHES.values():
        assert b.description
        assert b.language in ("Pascal", "C", "Pascal/C")
        assert len(b.source) > 200


@pytest.mark.parametrize("name", benchmark_names())
def test_benchmark_output_equivalence(name):
    bench = BENCHES[name]
    base = run_cached(bench.source, O0)
    o2 = run_cached(bench.source, O2, check_contracts=True)
    o3 = run_cached(bench.source, O3_SW, check_contracts=True)
    assert base.output == o2.output == o3.output
    assert base.output, "benchmarks must print results"


@pytest.mark.parametrize("name", ["calcc", "pf", "upas"])
def test_allocation_reduces_scalar_traffic(name):
    bench = BENCHES[name]
    base = run_cached(bench.source, O0)
    o2 = run_cached(bench.source, O2)
    assert o2.scalar_memops < base.scalar_memops
    assert o2.cycles < base.cycles


def test_suite_is_call_intensive():
    # the paper picks call-intensive programs: cycles/call stays small
    for name in ("nim", "calcc", "ccom"):
        stats = run_cached(BENCHES[name].source, O2)
        assert stats.cycles_per_call < 100


def test_open_and_closed_procedures_both_occur():
    # the suite must exercise both regimes of Section 3
    prog = compile_cached(BENCHES["stanford"].source, O3_SW)
    modes = {p.mode for p in prog.plan.plans.values()}
    assert modes == {"open", "closed"}
