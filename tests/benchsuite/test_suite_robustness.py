"""Robustness of the parallel suite runner.

The supervised pool must survive killed and hung workers (rebuild +
retry + inline fallback), record genuinely unrunnable cells in
``BenchResult.errors`` instead of raising, and reject nonsense
arguments up front.
"""

import pytest

from repro import faults
from repro.benchsuite.harness import run_suite


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.clear()


def test_empty_selection_is_an_error():
    with pytest.raises(ValueError, match="[Nn]o benchmarks"):
        run_suite(("A",), names=[])


def test_unknown_name_lists_available_benchmarks():
    with pytest.raises(ValueError, match="nosuchbench"):
        run_suite(("A",), names=["nosuchbench"])


def test_nonpositive_jobs_is_an_error():
    with pytest.raises(ValueError, match="jobs"):
        run_suite(("A",), names=["nim"], jobs=0)
    with pytest.raises(ValueError, match="jobs"):
        run_suite(("A",), names=["nim"], jobs=-3)


def by_name(results):
    return {r.benchmark.name: r for r in results}


def test_killed_worker_is_retried_and_suite_completes():
    serial = by_name(run_suite(("A",), names=["nim", "map"], jobs=1))
    plan = faults.FaultPlan(specs=[faults.FaultSpec(
        site=faults.SITE_SUITE_WORKER, kind="kill", match="nim:A", count=1,
    )])
    with faults.active(plan):
        parallel = by_name(run_suite(("A",), names=["nim", "map"], jobs=2,
                                     task_timeout=60.0))
    for name in ("nim", "map"):
        assert not parallel[name].errors
        assert parallel[name].stats["A"] == serial[name].stats["A"]
    # the kill took the whole pool down, so at least the killed cell
    # went through a retry round
    assert sum(r.retries for r in parallel.values()) >= 1


def test_hung_worker_trips_the_watchdog_and_recovers():
    plan = faults.FaultPlan(specs=[faults.FaultSpec(
        site=faults.SITE_SUITE_WORKER, kind="hang", match="nim:A",
        count=1, hang_seconds=10.0,
    )])
    with faults.active(plan):
        results = by_name(run_suite(("A",), names=["nim"], jobs=2,
                                    task_timeout=1.0, max_retries=2))
    assert not results["nim"].errors
    assert results["nim"].retries >= 1


def test_persistently_failing_cell_is_recorded_not_raised():
    # a persistent plan fault fails in the workers AND in the parent's
    # inline fallback, so the cell lands in errors instead of raising
    plan = faults.FaultPlan(specs=[faults.FaultSpec(
        site=faults.SITE_PLAN, count=None,
    )])
    with faults.active(plan):
        results = by_name(run_suite(("A",), names=["nim"], jobs=2,
                                    task_timeout=60.0, max_retries=1))
    assert "A" in results["nim"].errors
    assert "InjectedFault" in results["nim"].errors["A"]


def test_parallel_matches_serial_under_robustness_params():
    serial = by_name(run_suite(("A", "C"), names=["nim"], jobs=1))
    parallel = by_name(run_suite(("A", "C"), names=["nim"], jobs=2,
                                 task_timeout=60.0, max_retries=2))
    assert not parallel["nim"].errors
    assert parallel["nim"].retries == 0
    for config in ("base", "A", "C"):
        assert parallel["nim"].stats[config] == serial["nim"].stats[config]
