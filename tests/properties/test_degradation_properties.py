"""Soundness of degradation: a resilient build in which *every*
procedure is force-demoted to the open classification must still
compute the same answer as a clean reference build, under every paper
configuration.  Demotion is allowed to cost performance, never
correctness.
"""

from hypothesis import given, settings

from repro import faults
from repro.engine.session import Compiler
from repro.pipeline.driver import _reference_compile_program
from repro.pipeline.options import PAPER_CONFIGS
from test_program_properties import programs


@settings(max_examples=10, deadline=None)
@given(programs())
def test_all_procedures_demoted_still_computes_the_same_answer(src):
    try:
        for config, options in sorted(PAPER_CONFIGS.items()):
            reference = _reference_compile_program(src, options)
            expected = reference.run().output

            plan = faults.FaultPlan(specs=[faults.FaultSpec(
                site=faults.SITE_PLAN, count=None,
            )])
            session = Compiler(options, resilient=True).add_sources(src)
            with faults.active(plan):
                degraded = session.compile()

            report = degraded.report
            # every procedure hit the fault, so every procedure must be
            # on record as demoted somewhere on the open ladder (a
            # procedure that is already open under these options skips
            # straight to the stricter rungs)
            assert report.degraded_procedures() == set(
                degraded.plan.plans
            ), config
            assert all(
                d.fallback.startswith("open") for d in report.degradations
            ), config
            assert degraded.run().output == expected, config
    finally:
        faults.clear()
