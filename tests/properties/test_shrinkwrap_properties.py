"""Shrink-wrap soundness on random CFGs (hypothesis).

For arbitrary connected digraphs and arbitrary busy-block sets, the
placement must satisfy the save/use/restore discipline on *every*
execution path (checked by an independent state-enumeration verifier).
"""

from hypothesis import given, settings, strategies as st

from helpers import build_graph
from helpers import check_placement

from repro.cfg.loops import find_loops
from repro.shrinkwrap import shrink_wrap

R = 16


@st.composite
def cfgs(draw):
    n = draw(st.integers(2, 10))
    edges = set()
    # a random spanning arborescence keeps everything reachable
    for b in range(1, n):
        parent = draw(st.integers(0, b - 1))
        edges.add((parent, b))
    extra = draw(st.integers(0, n))
    for _ in range(extra):
        a = draw(st.integers(0, n - 1))
        c = draw(st.integers(0, n - 1))
        if a != c:
            edges.add((a, c))
    # cap out-degree at 2 (the IR has at most two successors)
    out = {}
    kept = []
    for a, c in sorted(edges):
        if out.get(a, 0) < 2:
            kept.append((a, c))
            out[a] = out.get(a, 0) + 1
    # ensure at least one exit: strip out-edges from the highest node
    kept = [(a, c) for (a, c) in kept if a != n - 1]
    return kept, n


@settings(max_examples=200, deadline=None)
@given(cfgs(), st.data())
def test_random_placements_are_sound(cfg_spec, data):
    edges, n = cfg_spec
    cfg = build_graph(edges, n)
    app = data.draw(
        st.sets(st.integers(0, n - 1), max_size=n), label="app"
    )
    # drop unreachable blocks from APP (build_graph keeps all blocks; all
    # are reachable by construction)
    loops = find_loops(cfg)
    smear = data.draw(st.booleans(), label="smear")
    result = shrink_wrap(cfg, loops, {R: set(app)}, smear_loops=smear)
    placement = result.placements[R]

    # the checker walks every reachable (block, state) pair
    effective_app = set(app)
    if smear:
        # smearing may have widened the busy set; the placement must
        # still cover the original uses
        pass
    check_placement(cfg, effective_app, placement)


@settings(max_examples=100, deadline=None)
@given(cfgs(), st.data())
def test_smeared_placement_never_saves_inside_loop(cfg_spec, data):
    edges, n = cfg_spec
    cfg = build_graph(edges, n)
    loops = find_loops(cfg)
    if not loops.loops:
        return
    app = data.draw(st.sets(st.integers(0, n - 1), min_size=1, max_size=n))
    result = shrink_wrap(cfg, loops, {R: set(app)}, smear_loops=True)
    placement = result.placements[R]
    for loop in loops.loops:
        body = loop.body
        touched = bool(app & body)
        if not touched:
            continue
        # saves/restores may sit on the loop boundary blocks only if the
        # whole region degenerated; they must never be strictly inside
        # (i.e. a save in the body whose APP does not cover the body is
        # impossible because APP was smeared over the body)
        inside_saves = placement.saves & body
        for b in inside_saves:
            # if a save is in the body, the loop must re-save each
            # iteration only if a restore is also inside; forbid the pair
            assert not (placement.restores & body and len(body) > 1) or (
                b == loop.header
            )


@settings(max_examples=100, deadline=None)
@given(st.integers(2, 8), st.data())
def test_full_footprint_degenerates_to_entry_exit(n, data):
    # a chain 0 -> 1 -> ... -> n-1 busy everywhere
    edges = [(i, i + 1) for i in range(n - 1)]
    cfg = build_graph(edges, n)
    loops = find_loops(cfg)
    result = shrink_wrap(cfg, loops, {R: set(range(n))})
    placement = result.placements[R]
    assert placement.saves == {0}
    assert placement.restores == {n - 1}
