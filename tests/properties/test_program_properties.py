"""Random-program differential testing (hypothesis).

Generates random MiniC programs with a terminating shape: a DAG of
functions (``f_i`` may only call ``f_j`` with ``j < i``), straight-line
bodies with if/else splits, bounded for-loops, global and array traffic.
Every program must produce identical output at every optimisation level,
with the dynamic calling-convention contract checker enabled -- a strong
end-to-end differential test of the allocator, IPRA, shrink-wrapping and
codegen together.
"""

from hypothesis import given, settings, strategies as st

from helpers import run_all_levels

VARS = ["v0", "v1", "v2", "v3"]


@st.composite
def atoms(draw, fn_index, nparams):
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return str(draw(st.integers(-20, 20)))
    if choice == 1:
        return draw(st.sampled_from(VARS))
    if choice == 2 and nparams:
        return f"p{draw(st.integers(0, nparams - 1))}"
    return "glob"


@st.composite
def simple_exprs(draw, fn_index, nparams):
    a = draw(atoms(fn_index, nparams))
    if draw(st.booleans()):
        return a
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    b = draw(atoms(fn_index, nparams))
    return f"({a} {op} {b})"


@st.composite
def call_exprs(draw, fn_index, arities):
    """A call to an earlier function (DAG constraint => termination)."""
    target = draw(st.integers(0, fn_index - 1))
    args = [
        draw(simple_exprs(fn_index, arities[fn_index]))
        for _ in range(arities[target])
    ]
    return f"f{target}({', '.join(args)})"


@st.composite
def statements(draw, fn_index, arities, depth=0):
    nparams = arities[fn_index]
    kind = draw(st.integers(0, 6))
    if kind <= 1:
        v = draw(st.sampled_from(VARS))
        e = draw(simple_exprs(fn_index, nparams))
        return f"{v} = {e};"
    if kind == 2 and fn_index > 0:
        v = draw(st.sampled_from(VARS))
        c = draw(call_exprs(fn_index, arities))
        return f"{v} = {c};"
    if kind == 3:
        e = draw(simple_exprs(fn_index, nparams))
        return f"glob = glob + {e};"
    if kind == 4:
        idx = draw(st.integers(0, 7))
        e = draw(simple_exprs(fn_index, nparams))
        return f"data[{idx}] = {e}; {draw(st.sampled_from(VARS))} = data[{idx}];"
    if kind == 5 and depth < 2:
        cond = draw(simple_exprs(fn_index, nparams))
        then = draw(statements(fn_index, arities, depth + 1))
        orelse = draw(statements(fn_index, arities, depth + 1))
        return f"if ({cond} > 0) {{ {then} }} else {{ {orelse} }}"
    if kind == 6 and depth < 1:
        # the loop counter is pre-declared with the locals, so several
        # loops in one function reuse it without redeclaration
        body = draw(statements(fn_index, arities, depth + 1))
        n = draw(st.integers(1, 4))
        return f"for (lc = 0; lc < {n}; lc = lc + 1) {{ {body} }}"
    return "glob = glob + 1;"


@st.composite
def programs(draw):
    nfuncs = draw(st.integers(1, 4))
    arities = [draw(st.integers(0, 5)) for _ in range(nfuncs)]
    parts = ["var glob = 1;", "array data[8];"]
    for i in range(nfuncs):
        params = ", ".join(f"p{k}" for k in range(arities[i]))
        decls = " ".join(f"var {v} = {j};" for j, v in enumerate(VARS))
        decls += " var lc = 0;"
        nstmts = draw(st.integers(1, 5))
        body = " ".join(
            draw(statements(i, arities)) for _ in range(nstmts)
        )
        ret = draw(simple_exprs(i, arities[i]))
        parts.append(
            f"func f{i}({params}) {{ {decls} {body} return {ret}; }}"
        )
    main_calls = []
    for i in range(nfuncs):
        args = ", ".join(
            str(draw(st.integers(-5, 5))) for _ in range(arities[i])
        )
        main_calls.append(f"print f{i}({args});")
    parts.append(
        "func main() { " + " ".join(main_calls) + " print glob; }"
    )
    return "\n".join(parts)


@settings(max_examples=25, deadline=None)
@given(programs())
def test_random_programs_agree_across_levels(src):
    run_all_levels(src, check_contracts=True)


@settings(max_examples=10, deadline=None)
@given(programs(), st.integers(0, 1))
def test_random_programs_under_restricted_files(src, which):
    from repro.pipeline import compile_and_run, O2, TABLE2_D, TABLE2_E

    restricted = TABLE2_D if which == 0 else TABLE2_E
    base = compile_and_run(src, O2, check_contracts=True)
    other = compile_and_run(src, restricted, check_contracts=True)
    assert base.output == other.output
