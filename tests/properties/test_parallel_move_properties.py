"""Parallel-move resolution over random register mappings (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.target.parallel_move import resolve_parallel_moves
from repro.target.registers import ALLOCATABLE, AT2

REGS = list(ALLOCATABLE)


@st.composite
def move_sets(draw):
    n = draw(st.integers(0, len(REGS)))
    dsts = draw(
        st.lists(
            st.sampled_from(REGS), min_size=n, max_size=n, unique_by=lambda r: r.index
        )
    )
    srcs = [draw(st.sampled_from(REGS)) for _ in range(n)]
    return list(zip(dsts, srcs))


@settings(max_examples=300, deadline=None)
@given(move_sets())
def test_resolution_implements_parallel_semantics(moves):
    seq = resolve_parallel_moves(moves, AT2)
    state = {r.index: f"v{r.index}" for r in REGS}
    state[AT2.index] = "scratch-garbage"
    for dst, src in seq:
        state[dst.index] = state[src.index]
    for dst, src in moves:
        assert state[dst.index] == f"v{src.index}"


@settings(max_examples=300, deadline=None)
@given(move_sets())
def test_resolution_length_bounded(moves):
    seq = resolve_parallel_moves(moves, AT2)
    nontrivial = [m for m in moves if m[0].index != m[1].index]
    # at most one scratch move per cycle; cycles need >= 2 moves each
    assert len(seq) <= len(nontrivial) + max(1, len(nontrivial) // 2)


@settings(max_examples=200, deadline=None)
@given(st.permutations(list(range(8))))
def test_pure_permutations(perm):
    regs = REGS[:8]
    moves = [(regs[i], regs[p]) for i, p in enumerate(perm)]
    seq = resolve_parallel_moves(moves, AT2)
    state = {r.index: f"v{r.index}" for r in REGS}
    state[AT2.index] = "scratch"
    for dst, src in seq:
        state[dst.index] = state[src.index]
    for i, p in enumerate(perm):
        assert state[regs[i].index] == f"v{regs[p].index}"
