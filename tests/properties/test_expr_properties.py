"""Differential testing of expression compilation against a Python
reference evaluator (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.ir import arith
from repro.pipeline import compile_and_run, O0, O2, O3_SW

SAFE_BIN = ["+", "-", "*", "&", "|", "^", "<", "<=", ">", ">=", "==", "!="]


class Node:
    def __init__(self, kind, *kids, value=0, op=""):
        self.kind = kind
        self.kids = kids
        self.value = value
        self.op = op

    def render(self) -> str:
        if self.kind == "const":
            if self.value < 0:
                return f"(0 - {-self.value})"
            return str(self.value)
        if self.kind == "un":
            return f"({self.op}{self.kids[0].render()})"
        if self.kind == "divmod":
            return f"({self.kids[0].render()} {self.op} {self.value})"
        if self.kind == "shift":
            return f"({self.kids[0].render()} {self.op} {self.value})"
        return f"({self.kids[0].render()} {self.op} {self.kids[1].render()})"

    def eval(self) -> int:
        if self.kind == "const":
            return self.value
        if self.kind == "un":
            return arith.UNOPS[self.op](self.kids[0].eval())
        if self.kind in ("divmod", "shift"):
            return arith.BINOPS[self.op](self.kids[0].eval(), self.value)
        return arith.BINOPS[self.op](
            self.kids[0].eval(), self.kids[1].eval()
        )


def exprs(max_depth=4):
    base = st.integers(-50, 50).map(lambda v: Node("const", value=v))

    def extend(children):
        bin_node = st.tuples(
            st.sampled_from(SAFE_BIN), children, children
        ).map(lambda t: Node("bin", t[1], t[2], op=t[0]))
        un_node = st.tuples(
            st.sampled_from(["-", "!", "~"]), children
        ).map(lambda t: Node("un", t[1], op=t[0]))
        divmod_node = st.tuples(
            st.sampled_from(["/", "%"]),
            children,
            st.integers(1, 13),
        ).map(lambda t: Node("divmod", t[1], op=t[0], value=t[2]))
        shift_node = st.tuples(
            st.sampled_from(["<<", ">>"]),
            children,
            st.integers(0, 8),
        ).map(lambda t: Node("shift", t[1], op=t[0], value=t[2]))
        return st.one_of(bin_node, un_node, divmod_node, shift_node)

    return st.recursive(base, extend, max_leaves=12)


@settings(max_examples=60, deadline=None)
@given(exprs())
def test_constant_expression_matches_reference(tree):
    expected = tree.eval()
    src = f"func main() {{ print {tree.render()}; }}"
    out = compile_and_run(src, O0).output
    assert out == [expected]
    # and the optimiser agrees
    assert compile_and_run(src, O2).output == [expected]


@settings(max_examples=40, deadline=None)
@given(exprs(), st.integers(-30, 30), st.integers(-30, 30))
def test_expression_over_parameters_matches_reference(tree, a, b):
    # Inject parameters: replace the two deepest constants textually is
    # fragile; instead wrap: f(a, b) computes tree + a - b.
    expected = tree.eval() + a - b
    src = f"""
    func f(a, b) {{ return {tree.render()} + a - b; }}
    func main() {{ print f({a}, {b}); }}
    """
    assert compile_and_run(src, O2, check_contracts=True).output == [expected]
    assert compile_and_run(src, O3_SW, check_contracts=True).output == [expected]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=8))
def test_print_sequence_roundtrip(values):
    body = "".join(
        f"print ({v}); " if v >= 0 else f"print (0 - {-v}); " for v in values
    )
    src = f"func main() {{ {body} }}"
    assert compile_and_run(src, O2).output == values
