"""The Convention value type: validation, presets, specs, aliases."""

import pytest

from repro.target.registers import (
    ALLOCATABLE,
    CALLEE_ONLY_7,
    CALLEE_SAVED_MASK,
    CALLER_ONLY_7,
    CALLER_SAVED_MASK,
    Convention,
    ConventionError,
    DEFAULT_CONVENTION,
    DEFAULT_LADDER,
    PARAM_REGS,
    RegisterFile,
    callee_only_file,
    caller_only_file,
    convention_from_register_file,
    split_convention,
    validate_convention,
)


def test_default_convention_matches_the_paper():
    c = DEFAULT_CONVENTION
    assert c.name == "chow88"
    assert c.caller_mask == CALLER_SAVED_MASK
    assert c.callee_mask == CALLEE_SAVED_MASK
    assert c.num_arg_regs == 4
    assert c.param_regs == PARAM_REGS
    assert c.ladder == DEFAULT_LADDER
    assert len(c.allocatable) == 20
    validate_convention(c)


def test_split_11_args_4_is_the_default_convention():
    assert split_convention(11, 4) == DEFAULT_CONVENTION
    # name is presentation only, excluded from equality
    assert split_convention(11, 4).name != DEFAULT_CONVENTION.name
    assert split_convention(11, 4).key() == DEFAULT_CONVENTION.key()


def test_split_convention_masks_partition_the_allocatable_pool():
    for split in (0, 4, 9, 13, 20):
        c = split_convention(split, min(split, 4))
        validate_convention(c)
        assert bin(c.caller_mask).count("1") == split
        assert bin(c.callee_mask).count("1") == 20 - split
        assert c.caller_mask & c.callee_mask == 0
        assert c.caller_mask | c.callee_mask == c.mask


def test_split_requires_room_for_argument_registers():
    with pytest.raises(ConventionError):
        split_convention(2, 4)


def test_spec_round_trip():
    for c in (
        DEFAULT_CONVENTION,
        CALLER_ONLY_7,
        CALLEE_ONLY_7,
        split_convention(9, 2, ladder=("open-noshrinkwrap", "open",
                                       "open-noregalloc")),
    ):
        back = Convention.from_spec(c.to_spec())
        assert back == c
        assert back.name == c.name
        validate_convention(back)


def test_validation_rejects_ill_formed_conventions():
    with pytest.raises(ConventionError):
        validate_convention(
            Convention(caller_mask=DEFAULT_CONVENTION.mask,
                       callee_mask=DEFAULT_CONVENTION.callee_mask)
        )  # overlapping classes
    with pytest.raises(ConventionError):
        validate_convention(Convention(num_arg_regs=7))
    with pytest.raises(ConventionError):
        validate_convention(Convention(ladder=("open",)))
    with pytest.raises(ConventionError):
        validate_convention(
            Convention(ladder=("bogus", "open-noregalloc"))
        )


def test_paper_table2_presets():
    assert len(CALLER_ONLY_7.allocatable) == 7
    assert all(r.caller_saved for r in CALLER_ONLY_7.allocatable)
    assert len(CALLEE_ONLY_7.allocatable) == 7
    assert all(r.callee_saved for r in CALLEE_ONLY_7.allocatable)
    validate_convention(CALLER_ONLY_7)
    validate_convention(CALLEE_ONLY_7)


def test_register_file_alias_maps_to_presets():
    assert convention_from_register_file(caller_only_file(7)) == CALLER_ONLY_7
    assert convention_from_register_file(callee_only_file(7)) == CALLEE_ONLY_7
    full = convention_from_register_file(RegisterFile(ALLOCATABLE))
    assert full == DEFAULT_CONVENTION


def test_with_allocatable_keeps_linkage_masks():
    restricted = DEFAULT_CONVENTION.with_allocatable(ALLOCATABLE[:5])
    assert restricted.caller_mask == DEFAULT_CONVENTION.caller_mask
    assert restricted.callee_mask == DEFAULT_CONVENTION.callee_mask
    assert len(restricted.allocatable) == 5
    empty = DEFAULT_CONVENTION.with_allocatable(())
    assert empty.allocatable == ()
    validate_convention(empty)


def test_options_convention_and_register_file_interplay():
    from repro.pipeline.options import O3_SW, OptionsError, validate_options

    alt = split_convention(13, 4)
    o = O3_SW.with_(convention=alt)
    assert o.convention == alt
    assert tuple(o.register_file) == alt.allocatable
    # deprecated alias still works and resolves to a convention
    o2 = O3_SW.with_(register_file=caller_only_file(7))
    assert o2.convention == CALLER_ONLY_7
    with pytest.raises(OptionsError):
        validate_options(O3_SW.with_(convention="nope"))
