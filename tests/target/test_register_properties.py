"""Property tests for the bitmask-native register file."""

from hypothesis import given, strategies as st

from repro.target.registers import (
    ALL_REGISTERS,
    ALLOCATABLE,
    ALLOCATABLE_MASK,
    CALLEE_SAVED,
    CALLEE_SAVED_MASK,
    CALLER_SAVED,
    CALLER_SAVED_MASK,
    FULL_FILE,
    NUM_REGISTERS,
    callee_only_file,
    caller_only_file,
    reg,
    registers_in_mask,
)

masks = st.integers(min_value=0, max_value=(1 << NUM_REGISTERS) - 1)
register_subsets = st.sets(st.sampled_from(ALL_REGISTERS))


@given(masks)
def test_registers_in_mask_round_trips(mask):
    regs = registers_in_mask(mask)
    rebuilt = 0
    for r in regs:
        rebuilt |= r.mask
    assert rebuilt == mask
    # ascending index order, no duplicates
    indices = [r.index for r in regs]
    assert indices == sorted(set(indices))


@given(register_subsets)
def test_mask_construction_round_trips(regs):
    mask = 0
    for r in regs:
        mask |= r.mask
    assert set(registers_in_mask(mask)) == set(regs)


@given(masks, masks)
def test_registers_in_mask_respects_union_and_intersection(a, b):
    assert set(registers_in_mask(a | b)) == set(
        registers_in_mask(a)
    ) | set(registers_in_mask(b))
    assert set(registers_in_mask(a & b)) == set(
        registers_in_mask(a)
    ) & set(registers_in_mask(b))


def test_caller_callee_partition_full_file():
    # caller-saved and callee-saved partition the allocatable file
    assert CALLER_SAVED_MASK & CALLEE_SAVED_MASK == 0
    assert CALLER_SAVED_MASK | CALLEE_SAVED_MASK == FULL_FILE.mask
    assert CALLER_SAVED_MASK | callee_only_file().mask == FULL_FILE.mask
    assert FULL_FILE.mask == ALLOCATABLE_MASK
    assert len(CALLER_SAVED) + len(CALLEE_SAVED) == len(ALLOCATABLE)


@given(st.integers(min_value=1, max_value=len(CALLER_SAVED)))
def test_caller_only_file_is_caller_saved(n):
    f = caller_only_file(n)
    assert len(f) == n
    assert all(r.caller_saved for r in f)
    assert f.mask & CALLEE_SAVED_MASK == 0


@given(st.integers(min_value=1, max_value=len(CALLEE_SAVED)))
def test_callee_only_file_is_callee_saved(n):
    f = callee_only_file(n)
    assert len(f) == n
    assert all(r.callee_saved for r in f)
    assert f.mask & CALLER_SAVED_MASK == 0


def test_reg_lookup_round_trips():
    for r in ALL_REGISTERS:
        assert reg(r.name) is r
        assert r.mask == 1 << r.index
