"""CompileService: single-flight dedup, batching, per-request stats."""

import asyncio

import pytest

from repro.frontend.errors import OptionsError
from repro.pipeline.options import O2, O3_SW
from repro.service import CompileService
from repro.tools.warmstart import executable_digest

SRC = """
var g = 3;
func leaf(a) {{ return a + g; }}
func mid(a) {{ return leaf(a) * 2; }}
func main() {{ print mid({n}) + leaf(1); return 0; }}
"""


def go(coro):
    return asyncio.run(coro)


def test_single_flight_dedup(tmp_path):
    async def scenario():
        svc = CompileService(O3_SW, store_path=tmp_path)
        src = SRC.format(n=5)
        results = await asyncio.gather(
            *(svc.compile(src) for _ in range(6))
        )
        return svc, results

    svc, results = go(scenario())
    outputs = {tuple(r.program.run().output) for r in results}
    assert outputs == {(20,)}
    assert {r.fingerprint for r in results} == {results[0].fingerprint}
    deduped = [r for r in results if r.deduped]
    assert len(deduped) == 5            # one flight served all six
    assert svc.stats.requests == 6
    assert svc.stats.deduped == 5
    assert svc.stats.compiled == 1
    # all six share the very same program object: one compile happened
    assert len({id(r.program) for r in results}) == 1


def test_batching_merges_distinct_requests():
    async def scenario():
        svc = CompileService(O2, batch_window=0.02)
        sources = [SRC.format(n=n) for n in range(4)]
        results = await asyncio.gather(
            *(svc.compile(s) for s in sources)
        )
        return svc, results

    svc, results = go(scenario())
    assert [r.program.run().output for r in results] == \
        [[10], [12], [14], [16]]
    assert svc.stats.batches == 1       # one window caught all four
    assert svc.stats.compiled == 4
    assert svc.stats.deduped == 0
    # per-request records with real stage data
    assert all(r.record is not None for r in results)
    assert all(r.record.functions == 3 for r in results)


def test_batched_output_matches_individual():
    from repro.engine.core import Engine

    sources = [SRC.format(n=n) for n in range(3)]

    async def scenario():
        svc = CompileService(O3_SW)
        return await asyncio.gather(*(svc.compile(s) for s in sources))

    results = go(scenario())
    for src, res in zip(sources, results):
        solo = Engine(O3_SW).compile(src)
        assert executable_digest(res.program.executable) == \
            executable_digest(solo.executable)


def test_requests_with_different_options_not_merged():
    async def scenario():
        svc = CompileService(O2)
        src = SRC.format(n=5)
        r2, r3 = await asyncio.gather(
            svc.compile(src, O2), svc.compile(src, O3_SW)
        )
        return svc, r2, r3

    svc, r2, r3 = go(scenario())
    assert r2.fingerprint != r3.fingerprint
    assert r2.program.options.opt_level == 2
    assert r3.program.options.opt_level == 3
    assert r2.program.run().output == r3.program.run().output == [20]


def test_error_isolated_to_its_request():
    async def scenario():
        svc = CompileService(O2)
        good = svc.compile(SRC.format(n=5))
        bad = svc.compile("func notmain() { return 1; }")
        results = await asyncio.gather(good, bad, return_exceptions=True)
        return svc, results

    svc, (good, bad) = go(scenario())
    assert good.program.run().output == [20]
    assert isinstance(bad, OptionsError)
    assert svc.stats.compiled == 1
    assert svc.stats.failed == 1


def test_store_counters_surface_in_results(tmp_path):
    async def scenario():
        svc = CompileService(O3_SW, store_path=tmp_path)
        first = await svc.compile(SRC.format(n=5))
        # a later identical request re-enters through the caches (the
        # flight has landed) -- still correct, not an error
        second = await svc.compile(SRC.format(n=5))
        return svc, first, second

    svc, first, second = go(scenario())
    assert first.store is not None
    assert first.store["writes"] > 0
    assert second.store["writes"] >= first.store["writes"]
    assert not second.deduped            # sequential, not concurrent
    assert svc.store_counters()["corruptions"] == 0
    assert executable_digest(first.program.executable) == \
        executable_digest(second.program.executable)


def test_service_run_and_join():
    async def scenario():
        svc = CompileService(O2)
        stats = await svc.run(SRC.format(n=5))
        await svc.join()
        return stats

    stats = go(scenario())
    assert stats.output == [20]


def test_sequential_requests_restart_the_drain_loop():
    async def scenario():
        svc = CompileService(O2, batch_window=0.001)
        a = await svc.compile(SRC.format(n=1))
        await asyncio.sleep(0.02)        # drain loop exits when idle
        b = await svc.compile(SRC.format(n=2))
        return svc, a, b

    svc, a, b = go(scenario())
    assert a.program.run().output == [12]
    assert b.program.run().output == [14]
    assert svc.stats.batches == 2
