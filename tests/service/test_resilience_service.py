"""The service's resilience layer: deadlines, cooperative cancellation,
bounded retry, circuit breaking, admission control, graceful drain."""

import asyncio

import pytest

from repro import faults
from repro.engine.core import BatchCancelled
from repro.frontend.errors import OptionsError
from repro.pipeline.options import O2
from repro.service import (
    BreakerPolicy,
    CompileService,
    DeadlineExceeded,
    RetryPolicy,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
)

SRC = """
func leaf(a) {{ return a + 3; }}
func main() {{ print leaf({n}) * 2; return 0; }}
"""


def go(coro):
    return asyncio.run(coro)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def advance(self, seconds: float):
        self.t += seconds

    def __call__(self) -> float:
        return self.t


# -- policies ----------------------------------------------------------------

def test_retry_policy_backoff_is_deterministic_and_grows():
    p = RetryPolicy(seed=7)
    assert p.backoff(0, "k") == p.backoff(0, "k")
    assert p.backoff(0, "k") != p.backoff(0, "other")
    assert p.backoff(2, "k") > p.backoff(0, "k")
    assert RetryPolicy(jitter=0.0).backoff(1, "k") == pytest.approx(0.04)


def test_retry_policy_classifies_transience():
    p = RetryPolicy()
    assert p.retryable(RuntimeError("pool died"))
    assert not p.retryable(OptionsError("no main"))       # deterministic
    assert not p.retryable(BatchCancelled())              # nobody waits
    assert not p.retryable(ServiceError("typed rejection"))


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError):
        CompileService(O2, max_queue=0)


# -- deadlines and cooperative cancellation ----------------------------------

def test_expired_deadline_cancels_before_dispatch():
    async def scenario():
        svc = CompileService(O2)
        with pytest.raises(DeadlineExceeded):
            await svc.compile(SRC.format(n=1), deadline=0.0)
        await svc.join()
        return svc

    svc = go(scenario())
    assert svc.stats.deadline_expired == 1
    assert svc.stats.cancelled == 1     # dropped pre-dispatch
    assert svc.stats.compiled == 0
    assert not svc.engine.stats.records  # the engine never ran
    assert not svc._inflight


def test_deadline_exceeded_while_dispatch_hangs():
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_DEADLINE, kind="hang",
                         hang_seconds=0.3, count=1),
    ])

    async def scenario():
        svc = CompileService(O2, retry=None)
        with faults.active(plan):
            with pytest.raises(DeadlineExceeded):
                await svc.compile(SRC.format(n=1), deadline=0.05)
            await svc.join()
        return svc

    svc = go(scenario())
    assert len(plan.fired) == 1
    assert svc.stats.deadline_expired == 1


def test_dedup_waiter_without_deadline_keeps_request_alive():
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_DEADLINE, kind="hang",
                         hang_seconds=0.2, count=1),
    ])

    async def scenario():
        svc = CompileService(O2, retry=None, batch_window=0.02)
        src = SRC.format(n=2)
        with faults.active(plan):
            impatient = asyncio.ensure_future(
                svc.compile(src, deadline=0.05)
            )
            patient = asyncio.ensure_future(svc.compile(src))
            results = await asyncio.gather(
                impatient, patient, return_exceptions=True
            )
            await svc.join()
        return svc, results

    svc, (impatient, patient) = go(scenario())
    assert isinstance(impatient, DeadlineExceeded)
    assert patient.program.run().output == [10]
    assert patient.deduped
    assert svc.stats.compiled == 1


def test_default_deadline_applies():
    async def scenario():
        svc = CompileService(O2, default_deadline=0.0)
        with pytest.raises(DeadlineExceeded):
            await svc.compile(SRC.format(n=1))
        await svc.join()
        return svc

    assert go(scenario()).stats.deadline_expired == 1


# -- bounded retry -----------------------------------------------------------

def test_transient_dispatch_fault_is_retried():
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_DEADLINE, kind="raise",
                         count=1),
    ])

    async def scenario():
        svc = CompileService(
            O2, retry=RetryPolicy(max_attempts=2, backoff_base=0.001)
        )
        with faults.active(plan):
            result = await svc.compile(SRC.format(n=1))
            await svc.join()
        return svc, result

    svc, result = go(scenario())
    assert result.program.run().output == [8]
    assert svc.stats.retries == 1
    assert svc.stats.failed == 0
    assert svc.stats.compiled == 1


def test_retry_budget_exhaustion_surfaces_the_fault():
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_DEADLINE, kind="raise",
                         count=None),
    ])

    async def scenario():
        svc = CompileService(
            O2, retry=RetryPolicy(max_attempts=2, backoff_base=0.001),
            breaker=None,
        )
        with faults.active(plan):
            with pytest.raises(faults.InjectedFault):
                await svc.compile(SRC.format(n=1))
            await svc.join()
        return svc

    svc = go(scenario())
    assert svc.stats.retries == 1
    assert svc.stats.failed == 1
    assert not svc._inflight


def test_deterministic_compile_errors_never_retry():
    async def scenario():
        svc = CompileService(O2)
        with pytest.raises(OptionsError):
            await svc.compile("func notmain() { return 1; }")
        await svc.join()
        return svc

    svc = go(scenario())
    assert svc.stats.retries == 0
    assert svc.stats.failed == 1


# -- circuit breaker and degraded serving ------------------------------------

def _failing_plan(count=None):
    return faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_DEADLINE, kind="raise",
                         count=count),
    ])


def test_breaker_trips_serves_degraded_and_recovers():
    clock = FakeClock()
    src = SRC.format(n=4)

    async def scenario():
        svc = CompileService(
            O2, retry=None,
            breaker=BreakerPolicy(failure_threshold=2, reset_timeout=10.0),
            clock=clock,
        )
        with faults.active(_failing_plan()):
            for _ in range(2):
                with pytest.raises(faults.InjectedFault):
                    await svc.compile(src)
            assert svc.breaker_states() == {
                next(iter(svc.breaker_states())): "open"
            }
            degraded = await svc.compile(src)  # open: fallback serves
        clock.advance(10.0)                    # past reset: probe
        probed = await svc.compile(src)        # faults gone: heals
        await svc.join()
        return svc, degraded, probed

    svc, degraded, probed = go(scenario())
    assert svc.stats.breaker_trips == 1
    assert degraded.degraded
    assert degraded.program.run().output == [14]
    assert svc.stats.degraded == 1
    assert not probed.degraded
    assert probed.program.run().output == [14]
    assert svc.breaker_states() == {}          # closed again


def test_failed_halfopen_probe_reopens_the_breaker():
    clock = FakeClock()
    src = SRC.format(n=5)

    async def scenario():
        svc = CompileService(
            O2, retry=None,
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout=5.0),
            clock=clock,
        )
        with faults.active(_failing_plan()):
            with pytest.raises(faults.InjectedFault):
                await svc.compile(src)         # trips
            clock.advance(5.0)
            with pytest.raises(faults.InjectedFault):
                await svc.compile(src)         # probe fails: reopens
            again = await svc.compile(src)     # open again: degraded
            await svc.join()
        return svc, again

    svc, again = go(scenario())
    assert svc.stats.breaker_trips == 2
    assert again.degraded
    assert list(svc.breaker_states().values()) == ["open"]


def test_degraded_results_match_the_primary_path():
    from repro.tools.warmstart import executable_digest

    clock = FakeClock()
    src = SRC.format(n=6)

    async def scenario():
        svc = CompileService(
            O2, retry=None,
            breaker=BreakerPolicy(failure_threshold=1, reset_timeout=99.0),
            clock=clock,
        )
        with faults.active(_failing_plan(count=1)):
            with pytest.raises(faults.InjectedFault):
                await svc.compile(src)
        degraded = await svc.compile(src)
        await svc.join()
        return degraded

    degraded = go(scenario())
    reference = go(CompileService(O2).compile(SRC.format(n=6)))
    assert degraded.degraded and not reference.degraded
    assert executable_digest(degraded.program.executable) == \
        executable_digest(reference.program.executable)


# -- admission control -------------------------------------------------------

def test_queue_high_water_mark_sheds_typed():
    async def scenario():
        svc = CompileService(O2, max_queue=1, batch_window=0.05)
        results = await asyncio.gather(
            *(svc.compile(SRC.format(n=n)) for n in range(3)),
            return_exceptions=True,
        )
        await svc.join()
        return svc, results

    svc, results = go(scenario())
    shed = [r for r in results if isinstance(r, ServiceOverloaded)]
    served = [r for r in results if not isinstance(r, BaseException)]
    assert len(shed) == 2 and len(served) == 1
    assert svc.stats.shed == 2
    assert served[0].program.run().output is not None


def test_injected_queue_pressure_sheds_typed():
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_QUEUE, kind="raise",
                         count=1),
    ])

    async def scenario():
        svc = CompileService(O2)
        with faults.active(plan):
            with pytest.raises(ServiceOverloaded):
                await svc.compile(SRC.format(n=1))
        result = await svc.compile(SRC.format(n=1))
        await svc.join()
        return svc, result

    svc, result = go(scenario())
    assert svc.stats.shed == 1
    assert result.program.run().output == [8]


# -- graceful drain ----------------------------------------------------------

def test_drain_stops_admission_but_flushes_inflight():
    async def scenario():
        svc = CompileService(O2, batch_window=0.02)
        inflight = asyncio.ensure_future(svc.compile(SRC.format(n=1)))
        await asyncio.sleep(0)            # let it enqueue
        await svc.drain()
        assert svc.closed
        with pytest.raises(ServiceClosed):
            await svc.compile(SRC.format(n=2))
        return svc, await inflight

    svc, result = go(scenario())
    assert result.program.run().output == [8]
    assert svc.stats.compiled == 1


def test_drain_deadline_fails_stragglers_instead_of_hanging():
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_DEADLINE, kind="hang",
                         hang_seconds=0.4, count=1),
    ])

    async def scenario():
        svc = CompileService(O2, retry=None, batch_window=0.005)
        with faults.active(plan):
            straggler = asyncio.ensure_future(
                svc.compile(SRC.format(n=1))
            )
            await asyncio.sleep(0.05)     # group dispatched, now hung
            await svc.join(drain=True, deadline=0.05)
            result = await asyncio.gather(
                straggler, return_exceptions=True
            )
            await svc.join()              # executor work still lands
        return svc, result[0]

    svc, outcome = go(scenario())
    assert isinstance(outcome, DeadlineExceeded)
    assert svc.stats.deadline_expired == 1
    assert not svc._inflight


# -- single-flight leak fix --------------------------------------------------

def test_group_failure_resolves_every_waiter(monkeypatch):
    """A crash anywhere in result distribution (here: the store-counter
    snapshot) must fail the waiters, not leave them parked forever on
    an abandoned in-flight future."""

    async def scenario():
        svc = CompileService(O2, retry=None, batch_window=0.02)

        def boom():
            raise RuntimeError("snapshot exploded")

        monkeypatch.setattr(svc, "store_counters", boom)
        src = SRC.format(n=3)
        results = await asyncio.wait_for(
            asyncio.gather(
                svc.compile(src), svc.compile(src),
                return_exceptions=True,
            ),
            timeout=10.0,
        )
        await svc.join()
        return svc, results

    svc, results = go(scenario())
    assert all(isinstance(r, RuntimeError) for r in results)
    assert svc.stats.failed == 1          # one flight served both
    assert svc.stats.deduped == 1
    assert not svc._inflight
