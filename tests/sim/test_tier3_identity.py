"""Differential property test for the tier-3 trace JIT: random
programs under every paper configuration retire the exact same
execution as the reference interpreter.

Same generator bias as the tier-2 test (trapping arithmetic, loops,
calls, array traffic), plus the profiling step: each executable is
profiled by one interpreter run, so the tier-3 translator actually
exercises its inlining, loop-linking and specialization paths rather
than translating cold code conservatively."""

from hypothesis import given, settings

from helpers import compile_cached

from test_tier_identity import outcome, programs

from repro.ir.arith import MachineTrap
from repro.pipeline import PAPER_CONFIGS
from repro.pipeline.profile import block_profile_of


@settings(max_examples=20, deadline=None)
@given(programs())
def test_tier3_identical_on_random_programs(src):
    for options in PAPER_CONFIGS.values():
        prog = compile_cached(src, options)
        exe = prog.executable
        try:
            block_profile_of(prog)
        except MachineTrap:
            pass  # the program traps; jit3 must trap identically below
        interp = outcome(exe, "interp")
        jit3 = outcome(exe, "jit3")
        assert interp == jit3
