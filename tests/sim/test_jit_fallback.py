"""Tier "auto" resilience: a JIT *translation* failure falls back to
the reference interpreter (recorded, bit-identical stats), while
program semantics -- traps, an explicit tier choice -- are never
papered over."""

import pytest

from repro import faults
from repro.ir.arith import MachineTrap
from repro.pipeline.driver import compile_program
from repro.pipeline.options import O3_SW
from repro.sim import run_program, simulate

SRC = """
func f(n) {
  if (n < 2) { return n; }
  return f(n - 1) + f(n - 2);
}
func main() { print f(10); }
"""


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.clear()


def fresh_exe():
    # compile fresh each time so no JitProgram translation cache from a
    # previous test hides the injected translation failure
    return compile_program(SRC, O3_SW).executable


def test_translation_failure_falls_back_to_interpreter():
    exe = fresh_exe()
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_JIT, count=None)]
    )
    with faults.active(plan):
        stats = simulate(exe, sim_tier="auto")
    assert stats.sim_fallback is not None
    assert "InjectedFault" in stats.sim_fallback
    # bit-identical to a straight interpreter run (sim_fallback is
    # excluded from RunStats equality)
    assert stats == run_program(fresh_exe())


def test_fallback_reason_counts_on_the_compile_report():
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_JIT, count=None)]
    )
    from repro.engine.session import Compiler

    prog = Compiler(O3_SW, resilient=True).add_sources(SRC).compile()
    with faults.active(plan):
        prog.run(sim_tier="auto")
    assert prog.report.jit_fallbacks == 1


def test_explicit_jit_tier_propagates_the_failure():
    exe = fresh_exe()
    plan = faults.FaultPlan(
        specs=[faults.FaultSpec(site=faults.SITE_JIT, count=None)]
    )
    with faults.active(plan):
        with pytest.raises(faults.InjectedFault):
            simulate(exe, sim_tier="jit")


def test_machine_trap_is_not_swallowed_by_the_fallback():
    exe = fresh_exe()
    # an exhausted cycle budget is program semantics, not a translation
    # fault: tier "auto" must surface it, not rerun on the interpreter
    with pytest.raises(MachineTrap):
        simulate(exe, sim_tier="auto", max_cycles=10)


def test_fault_free_auto_tier_records_no_fallback():
    stats = simulate(fresh_exe(), sim_tier="auto")
    assert stats.sim_fallback is None
    assert stats == run_program(fresh_exe())
