"""Differential property test: both simulator tiers retire the exact
same execution on random programs under every paper configuration.

The generator is biased toward what distinguishes the tiers: trapping
arithmetic (``/ %``, shifts that can leave the 0..63 range), loops (the
superblock translator's backward-edge exits and budget checks), calls
(trampoline transitions), and array traffic (MemKind classification).
A program may legitimately trap -- then both tiers must raise the same
message; otherwise their RunStats must be bit-identical.
"""

from hypothesis import given, settings, strategies as st

from helpers import compile_cached

from repro.ir.arith import MachineTrap
from repro.pipeline import PAPER_CONFIGS

VARS = ["a", "b", "c"]
BINOPS = ["+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"]


@st.composite
def atoms(draw, nparams):
    choice = draw(st.integers(0, 2))
    if choice == 0:
        return str(draw(st.integers(-9, 9)))
    if choice == 1 and nparams:
        return f"p{draw(st.integers(0, nparams - 1))}"
    return draw(st.sampled_from(VARS))


@st.composite
def exprs(draw, nparams):
    a = draw(atoms(nparams))
    if draw(st.booleans()):
        return a
    op = draw(st.sampled_from(BINOPS))
    b = draw(atoms(nparams))
    return f"({a} {op} {b})"


@st.composite
def statements(draw, fn_index, arities, depth=0):
    nparams = arities[fn_index]
    kind = draw(st.integers(0, 5))
    if kind == 0:
        return f"{draw(st.sampled_from(VARS))} = {draw(exprs(nparams))};"
    if kind == 1 and fn_index > 0:
        target = draw(st.integers(0, fn_index - 1))
        args = ", ".join(
            draw(exprs(nparams)) for _ in range(arities[target])
        )
        return f"{draw(st.sampled_from(VARS))} = f{target}({args});"
    if kind == 2:
        return f"glob = glob + {draw(exprs(nparams))};"
    if kind == 3:
        idx = draw(st.integers(0, 3))
        return f"data[{idx}] = {draw(exprs(nparams))}; c = data[{idx}];"
    if kind == 4 and depth < 2:
        cond = draw(exprs(nparams))
        then = draw(statements(fn_index, arities, depth + 1))
        return f"if ({cond} > 0) {{ {then} }}"
    if kind == 5 and depth < 1:
        body = draw(statements(fn_index, arities, depth + 1))
        n = draw(st.integers(1, 3))
        return f"for (lc = 0; lc < {n}; lc = lc + 1) {{ {body} }}"
    return "glob = glob - 1;"


@st.composite
def programs(draw):
    nfuncs = draw(st.integers(1, 3))
    arities = [draw(st.integers(0, 2)) for _ in range(nfuncs)]
    parts = ["var glob = 1;", "array data[4];"]
    for i in range(nfuncs):
        params = ", ".join(f"p{k}" for k in range(arities[i]))
        decls = " ".join(f"var {v} = {j + 1};" for j, v in enumerate(VARS))
        decls += " var lc = 0;"
        body = " ".join(
            draw(statements(i, arities))
            for _ in range(draw(st.integers(1, 4)))
        )
        parts.append(
            f"func f{i}({params}) {{ {decls} {body} "
            f"return {draw(exprs(arities[i]))}; }}"
        )
    calls = []
    for i in range(nfuncs):
        args = ", ".join(
            str(draw(st.integers(-4, 4))) for _ in range(arities[i])
        )
        calls.append(f"print f{i}({args});")
    parts.append("func main() { " + " ".join(calls) + " print glob; }")
    return "\n".join(parts)


def outcome(exe, tier):
    """(stats, None) on success, (None, message) on a trap."""
    try:
        return exe.run(sim_tier=tier), None
    except MachineTrap as trap:
        return None, str(trap)


@settings(max_examples=20, deadline=None)
@given(programs())
def test_tiers_identical_on_random_programs(src):
    for options in PAPER_CONFIGS.values():
        exe = compile_cached(src, options).executable
        interp = outcome(exe, "interp")
        jit = outcome(exe, "jit")
        assert interp == jit
