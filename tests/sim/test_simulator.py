"""Simulator tests: execution semantics, counters, traps, contracts."""

import pytest

from repro.ir.arith import MachineTrap
from repro.pipeline import compile_program, O2
from repro.sim import ContractViolation, run_program
from repro.target.isa import MemKind


def run(src, options=O2, **kwargs):
    return compile_program(src, options).run(**kwargs)


def test_print_collects_output():
    stats = run("func main() { print 1; print 2; print 3; }")
    assert stats.output == [1, 2, 3]


def test_cycle_counting_mul_div_latency():
    # globals defeat constant folding, so the operation really executes
    add = run("var a = 12; var b = 4; func main() { print a + b; }")
    mul = run("var a = 12; var b = 4; func main() { print a * b; }")
    div = run("var a = 12; var b = 4; func main() { print a / b; }")
    assert mul.cycles > add.cycles
    assert div.cycles > mul.cycles
    assert add.instructions == mul.instructions == div.instructions


def test_call_counter():
    stats = run(
        "func g() {} func main() { g(); g(); g(); }"
    )
    assert stats.calls == 4  # 3 + the start stub's call to main


def test_branch_counter():
    stats = run(
        "func main() { var i; for (i = 0; i < 5; i = i + 1) { } print i; }"
    )
    assert stats.branches >= 5


def test_load_store_classification():
    stats = run(
        """
        array a[4];
        func main() {
            a[0] = 1;
            a[1] = a[0] + 1;
            print a[1];
        }
        """
    )
    assert stats.stores.get(MemKind.DATA, 0) == 2
    assert stats.loads.get(MemKind.DATA, 0) == 2  # a[0] and the printed a[1]


def test_divide_by_zero_traps():
    with pytest.raises(MachineTrap, match="divide by zero"):
        run("func main() { var z = 0; print 1 / z; }")


def test_rem_by_zero_traps():
    with pytest.raises(MachineTrap, match="remainder by zero"):
        run("func main() { var z = 0; print 1 % z; }")


def test_out_of_range_address_traps():
    with pytest.raises(MachineTrap, match="address"):
        run("array a[4]; func main() { print a[2000000]; }")


def test_negative_address_traps():
    with pytest.raises(MachineTrap, match="address"):
        run("array a[4]; func main() { var i = -1000000; print a[i]; }")


def test_cycle_budget_enforced():
    with pytest.raises(MachineTrap, match="budget"):
        run(
            "func main() { while (1) { } }",
            max_cycles=10_000,
        )


def test_shift_out_of_range_traps():
    with pytest.raises(MachineTrap, match="shift"):
        run("func main() { var s = 70; print 1 << s; }")


def test_deep_recursion_within_stack():
    stats = run(
        """
        func down(n) { if (n == 0) { return 0; } return down(n - 1) + 1; }
        func main() { print down(500); }
        """
    )
    assert stats.output == [500]


def test_contract_checker_accepts_correct_code(fib_source):
    stats = run(fib_source, check_contracts=True)
    assert stats.output == [144]


def test_contract_checker_catches_violation():
    # Build a program, then sabotage a callee's restore code.
    prog = compile_program(
        """
        func g(x) { return x; }
        func f(a) {
            var k1 = a + 1;
            g(1); g(2); g(3);
            return k1;
        }
        func main() { print f(1); }
        """,
        O2,
    )
    exe = prog.executable
    from repro.target.isa import Opcode

    removed = False
    for pc, ins in enumerate(exe.instrs):
        if ins.op is Opcode.LW and ins.kind is MemKind.RESTORE \
                and ins.rd.name.startswith("s"):
            # corrupt the restore: load from the wrong slot
            ins.imm = ins.imm + 1 if ins.imm is not None else 1
            removed = True
            break
    if not removed:
        pytest.skip("no callee-saved restore emitted in this build")
    with pytest.raises(ContractViolation):
        run_program(exe, check_contracts=True)


def test_global_initializers_loaded():
    stats = run("var g = 41; func main() { print g + 1; }")
    assert stats.output == [42]


def test_negative_global_initializer():
    stats = run("var g = -7; func main() { print g; }")
    assert stats.output == [-7]


def test_stats_summary_fields():
    stats = run("func main() { print 5; }")
    s = stats.summary()
    assert s["cycles"] > 0
    assert s["instructions"] > 0
    assert "scalar_memops" in s
