"""Block-translating tier tests: tier identity, traps, the sim_tier
knob, translation caching, and word-width shift semantics."""

import pytest

from repro.ir.arith import MachineTrap
from repro.pipeline import compile_program, O2, O3_SW
from repro.pipeline.linker import Executable
from repro.pipeline.profile import block_profile_of
from repro.sim import run_jit, run_program, simulate, SIM_TIERS
from repro.sim.jit import JitProgram
from repro.target.isa import Instr, Opcode
from repro.target.registers import ALL_REGISTERS

T0 = ALL_REGISTERS[9]
T1 = ALL_REGISTERS[10]
T2 = ALL_REGISTERS[11]


def exe_of(*instrs) -> Executable:
    return Executable(instrs=list(instrs), entry_pc=0)


def both_tiers(exe, **kwargs):
    a = simulate(exe, sim_tier="interp", **kwargs)
    b = simulate(exe, sim_tier="jit", **kwargs)
    assert a == b
    return a


def both_tiers_trap(exe, **kwargs):
    """Both tiers must trap, with the identical message."""
    with pytest.raises(MachineTrap) as interp:
        simulate(exe, sim_tier="interp", **kwargs)
    with pytest.raises(MachineTrap) as jit:
        simulate(exe, sim_tier="jit", **kwargs)
    assert str(interp.value) == str(jit.value)
    return str(interp.value)


# -- identity on compiled programs ------------------------------------------

FIB = """
func fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
func main() { print fib(12); }
"""

LOOPS = """
var g = 0;
array data[8];
func work(a, b) { g = g + a * b; data[a & 7] = g; return data[a & 7] % 97; }
func main() {
    var i; var acc = 0;
    for (i = 0; i < 50; i = i + 1) { acc = acc + work(i, i + 3); }
    print acc; print g;
}
"""


@pytest.mark.parametrize("src", [FIB, LOOPS], ids=["fib", "loops"])
def test_tiers_bit_identical(src):
    for options in (O2, O3_SW):
        exe = compile_program(src, options).executable
        both_tiers(exe)


def test_run_stats_fields_match_in_detail():
    exe = compile_program(LOOPS, O3_SW).executable
    a = simulate(exe, sim_tier="interp")
    b = simulate(exe, sim_tier="jit")
    assert (a.cycles, a.instructions, a.calls, a.branches) == (
        b.cycles, b.instructions, b.calls, b.branches
    )
    assert a.loads == b.loads and a.stores == b.stores
    assert a.output == b.output


# -- identical trap behaviour -----------------------------------------------

def test_divide_by_zero_trap_identical():
    exe = compile_program(
        "var d = 0; func main() { print 1 / d; }", O2
    ).executable
    msg = both_tiers_trap(exe)
    assert "zero" in msg


def test_rem_by_zero_trap_identical():
    exe = compile_program(
        "var d = 0; func main() { print 1 % d; }", O2
    ).executable
    both_tiers_trap(exe)


def test_bad_load_address_trap_identical():
    exe = exe_of(
        Instr(op=Opcode.LI, rd=T0, imm=-5),
        Instr(op=Opcode.LW, rd=T1, rs=T0, imm=0),
        Instr(op=Opcode.HALT),
    )
    msg = both_tiers_trap(exe)
    assert msg == "bad load address -5 at pc=1"


def test_bad_store_address_trap_identical():
    exe = exe_of(
        Instr(op=Opcode.LI, rd=T0, imm=10 ** 9),
        Instr(op=Opcode.SW, rs=T1, rt=T0, imm=0),
        Instr(op=Opcode.HALT),
    )
    msg = both_tiers_trap(exe, stack_words=16)
    assert msg.startswith("bad store address")


def test_shift_range_trap_identical():
    exe = exe_of(
        Instr(op=Opcode.LI, rd=T0, imm=1),
        Instr(op=Opcode.LI, rd=T1, imm=64),
        Instr(op=Opcode.SLL, rd=T2, rs=T0, rt=T1),
        Instr(op=Opcode.HALT),
    )
    msg = both_tiers_trap(exe)
    assert msg == "shift amount 64 out of range"


def test_budget_trap_identical():
    exe = compile_program(
        "func main() { var i; for (i = 0; i < 1000; i = i + 1) {} }", O2
    ).executable
    msg = both_tiers_trap(exe, max_cycles=50)
    assert msg == "cycle budget exceeded"


def test_pc_outside_code_trap_identical():
    # JR to a pc past the end of the image
    exe = exe_of(
        Instr(op=Opcode.LI, rd=T0, imm=99),
        Instr(op=Opcode.JR, rs=T0),
        Instr(op=Opcode.HALT),
    )
    msg = both_tiers_trap(exe)
    assert msg == "pc 99 outside code"


def test_halt_latency_is_never_budget_checked():
    # LI (1 cycle) + HALT (1 cycle) = 2 cycles, but the interpreter has
    # never charged HALT against the budget: max_cycles=1 must complete
    exe = exe_of(Instr(op=Opcode.LI, rd=T0, imm=1), Instr(op=Opcode.HALT))
    stats = both_tiers(exe, max_cycles=1)
    assert stats.cycles == 2
    both_tiers_trap(exe, max_cycles=0)


# -- word-width shift semantics (SRL vs SRA) --------------------------------

def shift_exe(op, value, amount):
    return exe_of(
        Instr(op=Opcode.LI, rd=T0, imm=value),
        Instr(op=Opcode.LI, rd=T1, imm=amount),
        Instr(op=op, rd=T2, rs=T0, rt=T1),
        Instr(op=Opcode.PRINT, rs=T2),
        Instr(op=Opcode.HALT),
    )


@pytest.mark.parametrize("op,value,amount,expected", [
    # SRL is logical on the 64-bit word: zeros shift in at the top
    (Opcode.SRL, -8, 1, (1 << 63) - 4),
    (Opcode.SRL, -1, 60, 15),
    (Opcode.SRL, -8, 0, -8),       # no shift: the word re-signs to itself
    (Opcode.SRL, 80, 2, 20),       # non-negative: same as arithmetic
    # SRA is arithmetic: copies of the sign shift in
    (Opcode.SRA, -8, 1, -4),
    (Opcode.SRA, -1, 60, -1),
    (Opcode.SRA, 80, 2, 20),
])
def test_shift_semantics(op, value, amount, expected):
    stats = both_tiers(shift_exe(op, value, amount))
    assert stats.output == [expected]


# -- the sim_tier knob ------------------------------------------------------

def test_sim_tiers_tuple():
    assert SIM_TIERS == ("auto", "interp", "jit", "jit3")


def test_unknown_tier_rejected():
    exe = compile_program("func main() {}", O2).executable
    with pytest.raises(ValueError, match="unknown sim_tier"):
        simulate(exe, sim_tier="turbo")


def test_jit_tier_rejects_interpreter_features():
    exe = compile_program("func main() {}", O2).executable
    with pytest.raises(ValueError, match="check_contracts"):
        simulate(exe, sim_tier="jit", check_contracts=True)
    with pytest.raises(ValueError, match="block_counts"):
        simulate(exe, sim_tier="jit", block_counts={})


def test_auto_tier_falls_back_for_contracts():
    prog = compile_program(FIB, O3_SW)
    checked = prog.run(check_contracts=True)       # auto -> interpreter
    assert checked == prog.run(sim_tier="jit")


def test_auto_tier_falls_back_for_profiling():
    prog = compile_program(LOOPS, O2)
    profile = block_profile_of(prog)
    assert profile["work"]  # the interpreter path still collects counts


def test_compiled_program_run_accepts_sim_tier():
    prog = compile_program(FIB, O2)
    assert prog.run(sim_tier="interp") == prog.run(sim_tier="jit")


# -- translation caching and dynamic targets --------------------------------

def test_translation_cached_on_executable():
    exe = compile_program(FIB, O2).executable
    run_jit(exe)
    cache = exe._jit_cache
    assert len(cache) == 1
    prog = next(iter(cache.values()))
    assert isinstance(prog, JitProgram)
    run_jit(exe)
    assert next(iter(exe._jit_cache.values())) is prog
    # a different budget bakes different literals: separate translation
    run_jit(exe, max_cycles=10 ** 7)
    assert len(exe._jit_cache) == 2


def test_jr_into_mid_block_translates_on_demand():
    # pc 4 is no leader (only HALT fall-through pc 3 is); the dynamic
    # jump forces on-demand translation mid-run
    exe = exe_of(
        Instr(op=Opcode.LI, rd=T0, imm=4),
        Instr(op=Opcode.JR, rs=T0),
        Instr(op=Opcode.HALT),
        Instr(op=Opcode.LI, rd=T1, imm=6),
        Instr(op=Opcode.PRINT, rs=T1),
        Instr(op=Opcode.HALT),
    )
    stats = both_tiers(exe)
    assert stats.output == [0]  # pc 3 was skipped, so t1 is still 0


def test_writes_to_zero_register_are_discarded():
    zero = ALL_REGISTERS[0]
    exe = exe_of(
        Instr(op=Opcode.LI, rd=zero, imm=123),
        Instr(op=Opcode.PRINT, rs=zero),
        Instr(op=Opcode.HALT),
    )
    stats = both_tiers(exe)
    assert stats.output == [0]


def test_interpreter_oracle_still_importable_directly():
    exe = compile_program(FIB, O2).executable
    assert run_program(exe) == run_jit(exe)
