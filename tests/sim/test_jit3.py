"""Tier-3 trace JIT unit tests: inlining and its bailouts, loop
linking, specialization guards (hit and miss), trap identity inside
inlined bodies, translation cache keying, the persistent artifact
round-trip, and the jit3 -> jit -> interp fault ladder."""

import tempfile

import pytest

from repro import faults
from repro.ir.arith import MachineTrap
from repro.pipeline.driver import compile_program
from repro.pipeline.options import O2, O3_SW
from repro.pipeline.profile import BlockProfile, attach_profile, \
    block_profile_of
from repro.sim import run_program, simulate
from repro.sim.jit import Jit3Options, Jit3Program, run_jit3
from repro.store.store import ArtifactStore, NS_JIT3
from repro.tools.reports import jit3_report

HOT_CALL = """
func add(a, b) { return a + b; }
func main() {
  var s = 0; var i;
  for (i = 0; i < 60; i = i + 1) { s = s + add(i, 3); }
  print(s);
  return 0;
}
"""


@pytest.fixture(autouse=True)
def no_leaked_plan():
    yield
    faults.clear()


def build(src=HOT_CALL, options=O3_SW):
    prog = compile_program(src, options)
    profile = block_profile_of(prog)
    return prog.executable, profile


# -- inlining, loop linking, specialization ---------------------------------

def test_hot_call_is_inlined_and_loop_linked():
    exe, profile = build()
    ref = run_program(exe)
    stats = run_jit3(exe, profile=profile)
    assert stats == ref
    info = stats.jit3
    assert info["inlined_calls"] >= 1
    assert info["linked_returns"] >= 1
    assert info["linked_loops"] >= 1
    assert info["elided_syncs"] > 0


def test_specialization_guard_folds_constant_argument():
    # add() always sees b == 3: the profile proves it, the entry block
    # is specialized behind a guard
    exe, profile = build()
    assert profile.call_args["add"][1] == 3
    stats = run_jit3(exe, profile=profile)
    assert stats.jit3["spec_guards"] >= 1
    assert stats == run_program(exe)


def test_specialization_guard_miss_dispatches_to_twin():
    # a fabricated profile claiming a wrong constant: every guard must
    # miss at runtime and the unspecialized twin must run -- output and
    # stats stay bit-identical
    exe, profile = build()
    wrong = BlockProfile(
        dict(profile),
        call_args={"add": (999999, 999999, 0, 0)},
    )
    assert wrong.digest() != profile.digest()
    stats = run_jit3(exe, profile=wrong)
    assert stats.jit3["spec_guards"] >= 1
    assert stats == run_program(exe)


# -- inline-guard bailouts ---------------------------------------------------

def test_footprint_conflict_bails_out():
    exe, profile = build()
    stats = run_jit3(
        exe, profile=profile, opts=Jit3Options(max_trace_regs=1)
    )
    assert stats.jit3["inlined_calls"] == 0
    assert stats.jit3["bailouts"].get("footprint", 0) >= 1
    assert stats == run_program(exe)


def test_cold_call_is_not_inlined():
    exe, profile = build()
    stats = run_jit3(
        exe, profile=profile, opts=Jit3Options(hot_calls=10 ** 9)
    )
    assert stats.jit3["inlined_calls"] == 0
    assert stats.jit3["bailouts"].get("cold", 0) >= 1
    assert stats == run_program(exe)


INDIRECT = """
func g(x) { return x * 2; }
func main() {
  var p = &g; var s = 0; var i;
  for (i = 0; i < 40; i = i + 1) { s = s + p(i); }
  print(s);
  return 0;
}
"""


def test_indirect_call_bails_out():
    exe, profile = build(INDIRECT)
    stats = run_jit3(exe, profile=profile)
    assert stats.jit3["bailouts"].get("indirect_call", 0) >= 1
    assert stats == run_program(exe)


TRAPPING_CALLEE = """
func div(a, b) { return a / b; }
func main() {
  var s = 0; var i;
  for (i = 20; i >= %s; i = i - 1) { s = s + div(100, i); }
  print(s);
  return 0;
}
"""


def trapping_exe_with_profile():
    # the program traps at i == 0, so it cannot be profiled directly;
    # a non-trapping twin (identical shape, identical labels) supplies
    # the name-keyed profile that makes div() hot
    _, profile = build(TRAPPING_CALLEE % "1")
    exe = compile_program(TRAPPING_CALLEE % "0", O3_SW).executable
    return exe, profile


def test_trap_inside_inlined_body_is_identical():
    # div() is hot (inlined) and traps on the last iteration (i == 0):
    # the inlined trace must raise the interpreter's exact message
    exe, profile = trapping_exe_with_profile()
    with pytest.raises(MachineTrap) as interp:
        run_program(exe)
    with pytest.raises(MachineTrap) as jit3:
        run_jit3(exe, profile=profile)
    assert str(interp.value) == str(jit3.value)


def test_trap_inside_inlined_body_is_identical_strict():
    exe, profile = trapping_exe_with_profile()
    prog = Jit3Program(exe, profile=profile)
    assert prog.jit3_stats["inlined_calls"] >= 1
    with pytest.raises(MachineTrap, match="divide by zero"):
        prog.run()


def test_budget_traps_are_identical_at_every_cycle_count():
    # the fast trace variants hoist all budget checks into one entry
    # test that deopts to a fully-guarded twin; a sweep of tight
    # budgets exercises both the deopt route and the twin's
    # per-instruction guards against the interpreter's exact behaviour
    exe, profile = build()
    full = run_program(exe).cycles

    def outcome(budget, runner):
        try:
            s = runner(max_cycles=budget)
            return ("ok", s.cycles, s.instructions, tuple(s.output))
        except MachineTrap as e:
            return ("trap", str(e))

    for budget in (1, 7, 50, full - 2, full - 1, full, full + 1):
        interp = outcome(
            budget, lambda **kw: run_program(exe, **kw)
        )
        jit3 = outcome(
            budget, lambda **kw: run_jit3(exe, profile=profile, **kw)
        )
        assert interp == jit3, f"budget {budget}: {interp} != {jit3}"


def test_fast_variants_carry_a_guarded_twin():
    exe, profile = build()
    prog = Jit3Program(exe, profile=profile)
    source = "\n".join(prog._sources)
    assert "def _g" in source           # deopt twins exist
    assert "return _g" in source        # ...and fast variants route there
    # the fast variants carry no per-instruction budget guards: every
    # "y + k > limit" test outside a twin is the single entry check
    for chunk in source.split("def ")[1:]:
        if chunk.startswith("_b") or chunk.startswith("_f"):
            guards = chunk.count(f"> {prog.max_cycles}")
            assert guards <= 1, chunk.splitlines()[0]


# -- caching and tier separation --------------------------------------------

def test_tier2_and_tier3_translations_never_collide():
    exe, profile = build()
    a = simulate(exe, sim_tier="jit")
    b = run_jit3(exe, profile=profile)
    assert a == b
    keys = set(exe._jit_cache)
    tags = sorted(k[0] for k in keys)
    assert tags == ["jit", "jit3"]


def test_profile_digest_is_part_of_the_cache_key():
    exe, profile = build()
    run_jit3(exe, profile=profile)
    run_jit3(exe, profile=None)
    tags = [k for k in exe._jit_cache if k[0] == "jit3"]
    assert len(tags) == 2


# -- persistent artifact round-trip -----------------------------------------

def test_translation_roundtrips_through_the_store():
    exe, profile = build()
    ref = run_program(exe)
    with tempfile.TemporaryDirectory(prefix="repro-jit3-") as tmp:
        store = ArtifactStore(tmp)
        first = Jit3Program(exe, profile=profile, store=store)
        stats1 = first.run()
        assert stats1 == ref
        assert store.get(NS_JIT3, first._store_key) is not None

        # a second translation of the same (exe, profile, params) must
        # restore from the store without translating anything
        second = Jit3Program.__new__(Jit3Program)
        second._translate_superblock = _boom  # type: ignore[attr-defined]
        Jit3Program.__init__(
            second, exe, profile=profile, store=store
        )
        assert second._sources  # installed from the artifact
        stats2 = second.run()
        assert stats2 == ref
        assert stats2.jit3["traces"] == stats1.jit3["traces"]


def _boom(*a, **kw):  # pragma: no cover - must never be called
    raise AssertionError("store hit should have skipped translation")


# -- the fault ladder --------------------------------------------------------

def test_jit3_fault_falls_down_the_ladder():
    exe, profile = build()
    ref = run_program(exe)
    for key in ("translate", "inline", "link"):
        fresh = compile_program(HOT_CALL, O3_SW).executable
        attach_profile(fresh, profile)
        plan = faults.FaultPlan(specs=[
            faults.FaultSpec(site=faults.SITE_JIT3, match=key, count=None)
        ])
        with faults.active(plan):
            stats = simulate(fresh, sim_tier="auto")
        assert stats == ref
        assert stats.sim_fallback is not None
        assert "jit3" in stats.sim_fallback
        assert plan.fired


def test_jit3_and_jit_faults_land_on_the_interpreter():
    exe, profile = build()
    ref = run_program(exe)
    fresh = compile_program(HOT_CALL, O3_SW).executable
    attach_profile(fresh, profile)
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_JIT3, count=None),
        faults.FaultSpec(site=faults.SITE_JIT, count=None),
    ])
    with faults.active(plan):
        stats = simulate(fresh, sim_tier="auto")
    assert stats == ref
    assert "jit3" in stats.sim_fallback and "jit:" in stats.sim_fallback


# -- auto escalation and explicit tier --------------------------------------

def test_auto_escalates_when_a_profile_is_attached():
    prog = compile_program(HOT_CALL, O2)
    assert prog.run().jit3 is None          # no profile: tier 2
    block_profile_of(prog)                  # attaches as a side effect
    stats = prog.run()
    assert stats.jit3 is not None           # profile attached: tier 3
    assert stats == prog.run(sim_tier="interp")


def test_explicit_jit3_self_profiles():
    exe = compile_program(HOT_CALL, O2).executable
    stats = simulate(exe, sim_tier="jit3")
    assert stats.jit3 is not None
    assert stats == run_program(exe)
    assert getattr(exe, "_block_profile", None) is not None


def test_jit3_tier_rejects_interpreter_features():
    exe = compile_program("func main() {}", O2).executable
    with pytest.raises(ValueError, match="check_contracts"):
        simulate(exe, sim_tier="jit3", check_contracts=True)


# -- reporting ---------------------------------------------------------------

def test_jit3_report_renders_decisions():
    exe, profile = build()
    stats = run_jit3(exe, profile=profile)
    text = jit3_report(stats)
    assert "inlined calls" in text and "linked loops" in text
    assert jit3_report(stats.jit3) == text
    assert "no tier-3 data" in jit3_report(run_program(exe))


def test_engine_stats_collect_jit3_runs():
    from repro.engine.session import Compiler

    session = Compiler(O3_SW)
    prog = session.add_sources(HOT_CALL).compile()
    block_profile_of(prog)
    prog.run()
    assert len(session.stats.jit3_runs) == 1
    assert session.stats.jit3_runs[0]["traces"] >= 1
    assert session.stats.to_dict()["jit3_runs"]
