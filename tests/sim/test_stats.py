"""RunStats accounting tests."""

from collections import Counter

from repro.sim.stats import percent_reduction, RunStats
from repro.target.isa import MemKind


def make_stats():
    s = RunStats(cycles=1000, instructions=900, calls=10)
    s.loads = Counter(
        {MemKind.SCALAR: 5, MemKind.RESTORE: 3, MemKind.PARAM: 2,
         MemKind.DATA: 7}
    )
    s.stores = Counter(
        {MemKind.SCALAR: 4, MemKind.SAVE: 3, MemKind.PARAM: 1,
         MemKind.DATA: 6}
    )
    return s


def test_scalar_classification_totals():
    s = make_stats()
    assert s.scalar_loads == 10
    assert s.scalar_stores == 8
    assert s.scalar_memops == 18
    assert s.data_memops == 13
    assert s.total_memops == 31


def test_save_restore_totals():
    s = make_stats()
    assert s.save_restore_memops == 6


def test_cycles_per_call():
    s = make_stats()
    assert s.cycles_per_call == 100.0
    empty = RunStats(cycles=10)
    assert empty.cycles_per_call == float("inf")


def test_percent_reduction_positive_is_improvement():
    assert percent_reduction(100, 80) == 20.0
    assert percent_reduction(100, 120) == -20.0
    assert percent_reduction(100, 100) == 0.0
    assert percent_reduction(0, 50) == 0.0


def test_summary_round_trip():
    s = make_stats()
    d = s.summary()
    assert d["scalar_loads"] == 10
    assert d["save_restore_memops"] == 6
    assert d["cycles_per_call"] == 100.0
