"""Execution statistics -- our equivalent of the paper's ``pixie`` data.

The paper reports architectural quantities: executed cycles and the
dynamic count of *scalar* loads/stores (traffic attributable to scalar
variables, temporaries, and register saves/restores -- everything a
perfect register allocator could remove).  Array traffic is *data* and
not removable.  Both are exact counts from the interpreter, independent
of cache or clock, exactly as pixie measured them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.target.isa import MemKind


@dataclass
class RunStats:
    cycles: int = 0
    instructions: int = 0
    calls: int = 0
    branches: int = 0
    loads: Counter = field(default_factory=Counter)    # MemKind -> count
    stores: Counter = field(default_factory=Counter)
    output: List[int] = field(default_factory=list)
    #: set when an "auto"-tier run fell back from the block translator to
    #: the interpreter (the repr of the translation failure); excluded
    #: from equality because the measurement itself is tier-independent
    sim_fallback: Optional[str] = field(default=None, compare=False)
    #: tier-3 translation decisions (inlined calls, linked loops and
    #: returns, specialization guards, bailout reasons, elided host
    #: register syncs); ``None`` off the jit3 tier, and excluded from
    #: equality for the same reason as ``sim_fallback``
    jit3: Optional[Dict[str, object]] = field(default=None, compare=False)

    @property
    def scalar_loads(self) -> int:
        return sum(
            n for kind, n in self.loads.items() if kind.is_scalar_class
        )

    @property
    def scalar_stores(self) -> int:
        return sum(
            n for kind, n in self.stores.items() if kind.is_scalar_class
        )

    @property
    def scalar_memops(self) -> int:
        return self.scalar_loads + self.scalar_stores

    @property
    def data_memops(self) -> int:
        return (
            self.loads.get(MemKind.DATA, 0) + self.stores.get(MemKind.DATA, 0)
        )

    @property
    def total_memops(self) -> int:
        return sum(self.loads.values()) + sum(self.stores.values())

    @property
    def save_restore_memops(self) -> int:
        return (
            self.loads.get(MemKind.RESTORE, 0)
            + self.stores.get(MemKind.SAVE, 0)
            + self.loads.get(MemKind.SAVE, 0)
            + self.stores.get(MemKind.RESTORE, 0)
        )

    @property
    def cycles_per_call(self) -> float:
        return self.cycles / self.calls if self.calls else float("inf")

    def summary(self) -> Dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "calls": self.calls,
            "cycles_per_call": round(self.cycles_per_call, 1),
            "scalar_loads": self.scalar_loads,
            "scalar_stores": self.scalar_stores,
            "scalar_memops": self.scalar_memops,
            "data_memops": self.data_memops,
            "save_restore_memops": self.save_restore_memops,
        }


def percent_reduction(base: int, new: int) -> float:
    """The paper's "% reduction" metric: positive is an improvement."""
    if base == 0:
        return 0.0
    return 100.0 * (base - new) / base
