"""Tier-2 block-translating simulator -- the reproduction's pixie-JIT.

The tier-1 interpreter in :mod:`repro.sim.simulator` pays a dispatch
tuple-unpack and an if/elif walk for every instruction.  This module
removes that per-instruction cost the way pixie itself did: by
*translating* the program once into native code -- here, Python
functions produced by source synthesis and ``compile()``/``exec()``.

Translation scheme
------------------

* The decoded stream is split at *leaders*: the entry pc, every static
  branch/jump target (the ``imm`` of B/BEQZ/BNEZ/JAL), every function
  entry, and every fall-through successor of a control transfer (JR
  return addresses).
* Each leader becomes one Python function ``_b<pc>(r, m, o, c, y)``
  (registers, memory, output, exit counters, cycles) covering a
  **superblock**: translation continues straight through forward
  unconditional jumps (free at run time), fall-throughs into other
  leaders, and the fall-through arm of conditional branches (the taken
  arm becomes an early-``return`` "if" body), up to an instruction cap,
  a call/return, HALT, or any backward transfer.  The pc therefore
  increases strictly along a superblock, so a superblock is a loop-free
  forward region; loops re-enter their header block once per iteration.
* Straight-line register ops are inlined with no dispatch: register
  reads/writes are cached in Python locals for the whole superblock and
  written back only at exits, reads of $zero fold to the literal ``0``,
  and writes to $zero are discarded (their trapping operand evaluation
  is kept).
* Per-instruction counters disappear.  Every superblock *exit* gets an
  id and a record of the instructions on the unique entry-to-exit path,
  so instructions, calls, branches and loads/stores by
  :class:`~repro.target.isa.MemKind` are constants per exit: each
  execution bumps one counter (``c[exit] += 1``) and the totals are
  reconstructed after HALT.  Cycles are threaded through as a running
  local (``y``) because the budget check needs them.
* The cycle-budget check is hoisted to exit granularity: once at every
  superblock exit, plus a guard before any instruction that can itself
  trap (using the path-constant cycle prefix, so a budget overrun
  preempts exactly the traps it used to preempt).  Checking at *every*
  exit is a superset of the interpreter's backward-branch/call/return
  checks, and the extra checks are unobservable: once over budget, the
  interpreter's next check raises the identical trap before any other
  trap can differ (trapping instructions are pre-guarded), and state is
  discarded on a trap anyway.  The one place the interpreter can trap
  *differently* while over budget -- running off the end of the code --
  is replicated exactly: exits to an invalid pc raise ``pc outside
  code`` with a preceding budget check only where the interpreter had
  one (backward branches, calls).  HALT keeps the interpreter's quirk
  of never checking its own latency.
* Exits return the *successor's block function* directly
  (``return _b42, y``); the driver loop is just
  ``while fn is not None: fn, y = fn(r, m, o, c, y)``.  Dynamic targets
  (JR/JALR) go through a pc -> function table, translating unseen pcs
  on demand, so even a sabotaged executable that jumps mid-block still
  runs (or traps) exactly like the interpreter.

The translation is cached on the executable next to ``_decoded``, keyed
by ``(stack_words, max_cycles)`` since memory bounds and the budget are
baked into the generated source as literals.

The interpreter remains the retained reference oracle: contract checking
and ``block_counts`` profiling are interpreter features, and
:func:`simulate` routes runs that need them (tier ``auto``) back to it.
Identity between the tiers -- bit-identical :class:`RunStats` including
trap behaviour -- is enforced by the differential tests in
``tests/sim/`` and by ``benchmarks/bench_speed.py``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from repro import faults
from repro.ir.arith import MachineTrap, sdiv, srem
from repro.pipeline.linker import Executable
from repro.sim.simulator import (
    DEFAULT_MAX_CYCLES,
    DEFAULT_STACK_WORDS,
    DUMP_INDEX,
    decoded_stream,
    run_program,
    _ADD, _SUB, _MUL, _DIV, _REM, _AND, _OR, _XOR, _SLL, _SRL, _SRA,
    _SLT, _SLE, _SEQ, _SNE, _ADDI, _LI, _LA, _MOVE, _NEG, _NOT, _LW,
    _SW, _B, _BEQZ, _BNEZ, _JAL, _JALR, _JR, _PRINT, _HALT,
    _KINDS, _LAT,
)
from repro.sim.stats import RunStats
from repro.target.isa import srl
from repro.target.registers import NUM_REGISTERS, RA, SP

__all__ = ["JitProgram", "run_jit", "simulate", "SIM_TIERS"]

#: binary ALU ops with a plain infix translation
_INFIX = {
    _ADD: "+", _SUB: "-", _MUL: "*", _AND: "&", _OR: "|", _XOR: "^",
}

#: comparison ops translated to conditional expressions
_COMPARE = {_SLT: "<", _SLE: "<=", _SEQ: "==", _SNE: "!="}

#: superblock growth cap, in translated instructions.  Big enough that a
#: typical loop body or call-to-call region is one superblock, small
#: enough to bound tail duplication from inlining across leaders.
INLINE_CAP = 96


class _ExitPath:
    """Stat constants for one superblock exit: the dynamic counts of the
    unique entry-to-exit path, multiplied by the exit counter after a
    run."""

    __slots__ = ("ninstr", "cycles", "calls", "branches", "loads", "stores")

    def __init__(self, ninstr, cycles, calls, branches, loads, stores):
        self.ninstr = ninstr
        self.cycles = cycles
        self.calls = calls
        self.branches = branches
        self.loads = loads    # kind number -> count
        self.stores = stores


class JitProgram:
    """A block-translated executable, ready to run.

    One instance is specific to a ``(stack_words, max_cycles)`` pair;
    :func:`run_jit` caches instances on the executable.  Instances are
    reusable across runs but, like the generated functions they hold,
    not thread-safe (use process-level parallelism, as the benchmark
    suite harness does).
    """

    def __init__(
        self,
        exe: Executable,
        stack_words: int = DEFAULT_STACK_WORDS,
        max_cycles: int = DEFAULT_MAX_CYCLES,
    ):
        faults.check(faults.SITE_JIT, getattr(exe, "entry", None))
        self.exe = exe
        self.mem_size = exe.data_size + stack_words
        self.max_cycles = max_cycles
        self.code = decoded_stream(exe)
        self.ncode = len(self.code)
        self.exits: List[_ExitPath] = []
        self.table: Dict[int, Callable] = {}
        self._counts: List[int] = []
        self.ns: Dict[str, object] = {
            "MachineTrap": MachineTrap,
            "sdiv": sdiv,
            "srem": srem,
            "srl": srl,
            "_jump": self._jump,
            "_T": self.table,
        }
        self._leaders = self._find_leaders()
        self._queued: Set[int] = set(self._leaders)
        self._queue: List[int] = sorted(self._leaders)
        self._drain_queue()

    # -- translation --------------------------------------------------------

    def _find_leaders(self) -> Set[int]:
        leaders = {self.exe.entry_pc}
        leaders.update(self.exe.func_entries.values())
        transfers = (_B, _BEQZ, _BNEZ, _JAL, _JALR, _JR, _HALT)
        for pc, ins in enumerate(self.code):
            op = ins[0]
            if op in (_B, _BEQZ, _BNEZ, _JAL) and 0 <= ins[4] < self.ncode:
                leaders.add(ins[4])
            if op in transfers and pc + 1 < self.ncode:
                leaders.add(pc + 1)
        return {pc for pc in leaders if 0 <= pc < self.ncode}

    def _drain_queue(self) -> None:
        """Translate every queued pc (plus any exit target the
        translations reference) and install the result."""
        sources = []
        while self._queue:
            sources.append(self._translate_superblock(self._queue.pop()))
        if sources:
            self._install("\n".join(sources))

    def _enqueue(self, pc: int) -> None:
        if pc not in self._queued:
            self._queued.add(pc)
            self._queue.append(pc)

    def _translate_superblock(self, start: int) -> str:
        """Synthesise the source of the superblock rooted at ``start``,
        registering an :class:`_ExitPath` per exit; returns the ``def``
        source text."""
        code = self.code
        ncode = self.ncode
        max_cycles = self.max_cycles
        lines = [f"def _b{start}(r, m, o, c, y):"]
        known: Set[int] = set()    # registers cached in a local
        written: List[int] = []    # registers needing write-back, in order
        # running path stats from the superblock entry
        ninstr = 0
        prefix = 0                 # cycles accrued so far on the path
        calls = 0
        branches = 0
        loads: Dict[int, int] = {}
        stores: Dict[int, int] = {}

        def read(i: int) -> str:
            if i == 0:
                return "0"  # $zero: nothing ever writes it (see DUMP_INDEX)
            if i not in known:
                lines.append(f"    r{i} = r[{i}]")
                known.add(i)
            return f"r{i}"

        def write(i: int) -> Optional[str]:
            if i == 0 or i == DUMP_INDEX:
                return None
            if i not in known:
                known.add(i)
            if i not in written:
                written.append(i)
            return f"r{i}"

        def budget_guard() -> None:
            # before a trapping instruction: the interpreter's budget trap
            # at any *earlier* instruction must still preempt this one
            if prefix > 0:
                lines.append(
                    f"    if y + {prefix} > {max_cycles}:"
                    f" raise MachineTrap('cycle budget exceeded')"
                )

        def emit_exit(
            ind: str, ret: str,
            budget: bool = True, halting: bool = False, bump: bool = True,
        ) -> None:
            """Write-backs, cycle accrual, budget check, exit counter and
            the transfer itself, at indentation ``ind``."""
            for i in written:
                lines.append(f"{ind}r[{i}] = r{i}")
            lines.append(f"{ind}y += {prefix}")
            if budget:
                lhs = "y - 1" if halting else "y"  # HALT's cost: unchecked
                lines.append(
                    f"{ind}if {lhs} > {max_cycles}:"
                    f" raise MachineTrap('cycle budget exceeded')"
                )
            if bump:
                eid = len(self.exits)
                self.exits.append(_ExitPath(
                    ninstr, prefix, calls, branches,
                    dict(loads), dict(stores),
                ))
                if len(self._counts) < len(self.exits):
                    self._counts.append(0)
                lines.append(f"{ind}c[{eid}] += 1")
            lines.append(f"{ind}{ret}")

        def exit_to(ind: str, target: int, checked: bool = True) -> None:
            """Exit transferring to static pc ``target``.  ``checked``
            says whether the interpreter ran a budget check on this
            transfer (backward branch / call); it decides whether an
            *invalid* target budget-checks before trapping, matching the
            interpreter's check-then-fetch order."""
            if 0 <= target < ncode:
                self._enqueue(target)
                emit_exit(ind, f"return _b{target}, y")
            else:
                emit_exit(
                    ind,
                    f"raise MachineTrap('pc {target} outside code')",
                    budget=checked, bump=False,
                )

        def addr_expr(base: int, imm: int) -> None:
            off = f" + {imm}" if imm > 0 else (f" - {-imm}" if imm < 0 else "")
            lines.append(f"    a = {read(base)}{off}")

        pc = start
        while True:
            op, rd, rs, rt, imm, kind = code[pc]
            ninstr += 1
            lat = _LAT[op]

            if op == _LW:
                budget_guard()
                addr_expr(rs, imm)
                lines.append(
                    f"    if a < 1 or a >= {self.mem_size}:"
                    f" raise MachineTrap('bad load address %d at pc={pc}' % a)"
                )
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = m[a]")
                loads[kind] = loads.get(kind, 0) + 1
            elif op == _SW:
                budget_guard()
                addr_expr(rt, imm)
                lines.append(
                    f"    if a < 1 or a >= {self.mem_size}:"
                    f" raise MachineTrap('bad store address %d at pc={pc}' % a)"
                )
                lines.append(f"    m[a] = {read(rs)}")
                stores[kind] = stores.get(kind, 0) + 1
            elif op in _INFIX:
                a, b = read(rs), read(rt)
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = {a} {_INFIX[op]} {b}")
            elif op == _ADDI:
                a = read(rs)
                w = write(rd)
                if w is not None:
                    rhs = a if imm == 0 else (
                        f"{a} + {imm}" if imm > 0 else f"{a} - {-imm}"
                    )
                    lines.append(f"    {w} = {rhs}")
            elif op == _LI or op == _LA:
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = {imm}")
            elif op == _MOVE:
                a = read(rs)
                w = write(rd)
                if w is not None and w != a:
                    lines.append(f"    {w} = {a}")
            elif op in _COMPARE:
                a, b = read(rs), read(rt)
                w = write(rd)
                if w is not None:
                    lines.append(
                        f"    {w} = 1 if {a} {_COMPARE[op]} {b} else 0"
                    )
            elif op == _DIV or op == _REM:
                budget_guard()
                fname = "sdiv" if op == _DIV else "srem"
                a, b = read(rs), read(rt)
                w = write(rd)
                call = f"{fname}({a}, {b})"
                lines.append(
                    f"    {w} = {call}" if w is not None else f"    {call}"
                )
            elif op == _SLL or op == _SRL or op == _SRA:
                budget_guard()
                s = read(rt)
                lines.append(
                    f"    if {s} < 0 or {s} > 63:"
                    f" raise MachineTrap('shift amount %d out of range' % {s})"
                )
                a = read(rs)
                w = write(rd)
                if w is not None:
                    if op == _SLL:
                        lines.append(f"    {w} = {a} << {s}")
                    elif op == _SRA:
                        lines.append(f"    {w} = {a} >> {s}")
                    else:
                        lines.append(f"    {w} = srl({a}, {s})")
            elif op == _NEG:
                a = read(rs)
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = -{a}" if a != "0"
                                 else f"    {w} = 0")
            elif op == _NOT:
                a = read(rs)
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = 1 if {a} == 0 else 0")
            elif op == _PRINT:
                lines.append(f"    o.append({read(rs)})")
            elif op == _BEQZ or op == _BNEZ:
                branches += 1
                prefix += lat
                cond = read(rs)
                test = "==" if op == _BEQZ else "!="
                lines.append(f"    if {cond} {test} 0:")
                exit_to("        ", imm, checked=imm <= pc)
                # the taken arm returned; fall through inline (below)
                pc += 1
                if pc < ncode and ninstr < INLINE_CAP:
                    continue
                exit_to("    ", pc, checked=False)
                break
            elif op == _B:
                prefix += lat
                if pc < imm < ncode and ninstr < INLINE_CAP:
                    # a forward jump inlines for free; backward jumps
                    # exit so every loop iteration meets a budget check,
                    # like the interpreter's backward-branch check
                    pc = imm
                    continue
                exit_to("    ", imm, checked=imm <= pc)
                break
            elif op == _JAL:
                calls += 1
                prefix += lat
                w = write(RA.index)
                lines.append(f"    {w} = {pc + 1}")
                exit_to("    ", imm, checked=True)
                break
            elif op == _JALR:
                calls += 1
                prefix += lat
                lines.append(f"    t = {read(rs)}")
                w = write(RA.index)
                lines.append(f"    {w} = {pc + 1}")
                emit_exit("    ", "return _T.get(t) or _jump(t), y")
                break
            elif op == _JR:
                prefix += lat
                lines.append(f"    t = {read(rs)}")
                emit_exit("    ", "return _T.get(t) or _jump(t), y")
                break
            elif op == _HALT:
                prefix += lat
                emit_exit("    ", "return None, y", halting=True)
                break
            else:  # pragma: no cover - exhaustive over the opcode set
                raise MachineTrap(f"unknown opcode number {op}")

            # straight-line instruction: accrue and move on
            prefix += lat
            pc += 1
            if pc >= ncode or ninstr >= INLINE_CAP:
                exit_to("    ", pc, checked=False)
                break

        return "\n".join(lines) + "\n"

    def _install(self, source: str) -> None:
        exec(compile(source, f"<jit:{id(self.exe):#x}>", "exec"), self.ns)
        for name, value in list(self.ns.items()):
            if name.startswith("_b") and name[2:].isdigit():
                self.table[int(name[2:])] = value

    def _jump(self, pc: int) -> Callable:
        """Resolve a dynamic jump target, translating on demand."""
        fn = self.table.get(pc)
        if fn is None:
            if pc < 0 or pc >= self.ncode:
                raise MachineTrap(f"pc {pc} outside code")
            # a JR/JALR into an untranslated pc (possible only with a
            # hand-built or corrupted image): translate a superblock
            # starting right there
            self._enqueue(pc)
            self._drain_queue()
            fn = self.table[pc]
        return fn

    # -- execution ----------------------------------------------------------

    def run(self) -> RunStats:
        exe = self.exe
        mem: List[int] = [0] * self.mem_size
        for a, v in exe.data_init.items():
            mem[a] = v
        regs: List[int] = [0] * NUM_REGISTERS
        regs[SP.index] = self.mem_size
        out: List[int] = []
        # _counts is extended by on-demand translation mid-run, which is
        # why it lives on self (runs are not concurrent; see class doc)
        counts = self._counts = [0] * len(self.exits)
        cycles = 0

        fn = self._jump(exe.entry_pc)
        while fn is not None:
            fn, cycles = fn(regs, mem, out, counts, cycles)

        stats = RunStats()
        stats.cycles = cycles
        stats.output = out
        nkinds = len(_KINDS)
        load_counts = [0] * nkinds
        store_counts = [0] * nkinds
        exits = self.exits
        for eid, n in enumerate(counts):
            if not n:
                continue
            path = exits[eid]
            stats.instructions += n * path.ninstr
            stats.calls += n * path.calls
            stats.branches += n * path.branches
            for kind, cnt in path.loads.items():
                load_counts[kind] += n * cnt
            for kind, cnt in path.stores.items():
                store_counts[kind] += n * cnt
        for i, k in enumerate(_KINDS):
            if load_counts[i]:
                stats.loads[k] = load_counts[i]
            if store_counts[i]:
                stats.stores[k] = store_counts[i]
        return stats


def run_jit(
    exe: Executable,
    stack_words: int = DEFAULT_STACK_WORDS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> RunStats:
    """Execute ``exe`` on the block-translating tier.

    The translation is cached on the executable (next to ``_decoded``)
    keyed by ``(stack_words, max_cycles)``, so repeated runs skip
    straight to execution.
    """
    cache = getattr(exe, "_jit_cache", None)
    if cache is None:
        cache = {}
        exe._jit_cache = cache  # type: ignore[attr-defined]
    key = (stack_words, max_cycles)
    prog = cache.get(key)
    if prog is None:
        prog = JitProgram(exe, stack_words, max_cycles)
        cache[key] = prog
    return prog.run()


SIM_TIERS = ("auto", "interp", "jit")


def simulate(
    exe: Executable,
    stack_words: int = DEFAULT_STACK_WORDS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    check_contracts: bool = False,
    block_counts: Optional[Dict[int, int]] = None,
    sim_tier: str = "auto",
) -> RunStats:
    """Execute ``exe`` on the selected simulator tier.

    ``sim_tier`` is ``"auto"`` (default: the block-translating tier,
    falling back to the interpreter whenever contract checking or block
    profiling is requested -- those are interpreter features),
    ``"interp"`` (always the reference interpreter) or ``"jit"``
    (always the translator; incompatible with the interpreter-only
    features).  Both tiers produce bit-identical :class:`RunStats`.
    """
    if sim_tier not in SIM_TIERS:
        raise ValueError(
            f"unknown sim_tier {sim_tier!r}; expected one of {SIM_TIERS}"
        )
    needs_interp = check_contracts or block_counts is not None
    if sim_tier == "jit" and needs_interp:
        raise ValueError(
            "sim_tier='jit' supports neither check_contracts nor "
            "block_counts; use sim_tier='auto' or 'interp'"
        )
    if sim_tier == "interp" or needs_interp:
        return run_program(
            exe,
            stack_words=stack_words,
            max_cycles=max_cycles,
            check_contracts=check_contracts,
            block_counts=block_counts,
        )
    if sim_tier == "jit":
        return run_jit(exe, stack_words=stack_words, max_cycles=max_cycles)
    # tier "auto": a *translation* failure falls back to the reference
    # interpreter with the reason recorded on the stats.  MachineTrap is
    # program semantics (both tiers raise it identically) and propagates.
    try:
        return run_jit(exe, stack_words=stack_words, max_cycles=max_cycles)
    except MachineTrap:
        raise
    except Exception as exc:
        stats = run_program(
            exe, stack_words=stack_words, max_cycles=max_cycles
        )
        stats.sim_fallback = repr(exc)
        return stats
