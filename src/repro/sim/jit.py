"""Tier-2 block-translating simulator -- the reproduction's pixie-JIT.

The tier-1 interpreter in :mod:`repro.sim.simulator` pays a dispatch
tuple-unpack and an if/elif walk for every instruction.  This module
removes that per-instruction cost the way pixie itself did: by
*translating* the program once into native code -- here, Python
functions produced by source synthesis and ``compile()``/``exec()``.

Translation scheme
------------------

* The decoded stream is split at *leaders*: the entry pc, every static
  branch/jump target (the ``imm`` of B/BEQZ/BNEZ/JAL), every function
  entry, and every fall-through successor of a control transfer (JR
  return addresses).
* Each leader becomes one Python function ``_b<pc>(r, m, o, c, y)``
  (registers, memory, output, exit counters, cycles) covering a
  **superblock**: translation continues straight through forward
  unconditional jumps (free at run time), fall-throughs into other
  leaders, and the fall-through arm of conditional branches (the taken
  arm becomes an early-``return`` "if" body), up to an instruction cap,
  a call/return, HALT, or any backward transfer.  The pc therefore
  increases strictly along a superblock, so a superblock is a loop-free
  forward region; loops re-enter their header block once per iteration.
* Straight-line register ops are inlined with no dispatch: register
  reads/writes are cached in Python locals for the whole superblock and
  written back only at exits, reads of $zero fold to the literal ``0``,
  and writes to $zero are discarded (their trapping operand evaluation
  is kept).
* Per-instruction counters disappear.  Every superblock *exit* gets an
  id and a record of the instructions on the unique entry-to-exit path,
  so instructions, calls, branches and loads/stores by
  :class:`~repro.target.isa.MemKind` are constants per exit: each
  execution bumps one counter (``c[exit] += 1``) and the totals are
  reconstructed after HALT.  Cycles are threaded through as a running
  local (``y``) because the budget check needs them.
* The cycle-budget check is hoisted to exit granularity: once at every
  superblock exit, plus a guard before any instruction that can itself
  trap (using the path-constant cycle prefix, so a budget overrun
  preempts exactly the traps it used to preempt).  Checking at *every*
  exit is a superset of the interpreter's backward-branch/call/return
  checks, and the extra checks are unobservable: once over budget, the
  interpreter's next check raises the identical trap before any other
  trap can differ (trapping instructions are pre-guarded), and state is
  discarded on a trap anyway.  The one place the interpreter can trap
  *differently* while over budget -- running off the end of the code --
  is replicated exactly: exits to an invalid pc raise ``pc outside
  code`` with a preceding budget check only where the interpreter had
  one (backward branches, calls).  HALT keeps the interpreter's quirk
  of never checking its own latency.
* Exits return the *successor's block function* directly
  (``return _b42, y``); the driver loop is just
  ``while fn is not None: fn, y = fn(r, m, o, c, y)``.  Dynamic targets
  (JR/JALR) go through a pc -> function table, translating unseen pcs
  on demand, so even a sabotaged executable that jumps mid-block still
  runs (or traps) exactly like the interpreter.

Translations are cached on the executable next to ``_decoded``, keyed
by tier plus everything baked into the generated source as literals
(``stack_words`` and ``max_cycles`` give the memory bound and budget;
the tier-3 key adds its options and profile digest), so tier-2 and
tier-3 translations of one executable never collide.

Tier-3: profile-guided trace translation
----------------------------------------

:class:`Jit3Program` (tier ``"jit3"``; tier ``"auto"`` escalates to it
when a :class:`~repro.pipeline.profile.BlockProfile` is attached to the
executable) extends the superblock scheme with three trace
optimisations, all driven by interpreter profile data:

* **Summary-driven call inlining** -- a JAL to a hot, small callee
  continues translating *into* the callee instead of exiting, with the
  return address tracked as a translation-time constant.  The paper's
  register-usage summaries (via ``Executable.preserved_masks``) give
  the cheap feasibility check: the callee subtree's destroyable
  register set, unioned with the registers the trace already caches in
  Python locals, must fit the trace-register cap -- Chow's "one word of
  storage" reused as the inliner's gate.  A JR whose target is the
  tracked constant return pc links straight back to the caller with
  zero emitted code; an unproven JR emits a return-pc guard whose miss
  arm is a full dynamic exit, so inlining is sound for *any* callee
  behaviour (the summary is profitability, not correctness).  Indirect
  calls (JALR) always bail out to a dynamic exit.
* **Trace linking of loops** -- every tier-3 block body is emitted
  inside ``while True:`` with all accessed registers hoisted into
  Python locals once, up front; a backward edge targeting the block's
  own start becomes bump-counter / budget-check / ``continue``, so loop
  iterations never leave the translated function (no write-back,
  re-dispatch and reload per iteration).  Every exit writes back the
  block's full written set, which keeps the per-exit path-constant
  statistics exact in the presence of re-entry.
* **Constant-argument specialization** -- when the profile proves an
  argument register held one constant at every observed call of a hot
  function, the function-entry block is translated under that
  assumption behind a cheap entry guard; the guard's miss arm
  dispatches to an unspecialized twin translation.  Inside the
  specialized body (and inside inlined callees fed constant arguments)
  constant registers fold into literals and conditional branches on
  them fold away.

Budget-identity note: linked transfers (inlined JAL, linked JR, loop
back-edge before the taken check) may skip interpreter budget-check
points, which is unobservable for the same reason the tier-2 hoisting
is -- every counted exit budget-checks, every trapping instruction is
pre-guarded with its path-constant cycle prefix, and loop back-edges
keep a per-iteration check.  Decisions and bailout counts surface in
``RunStats.jit3``; whole-translation artifacts round-trip through the
persistent artifact store keyed by (executable fingerprint, profile
digest, sim parameters); any tier-3 translation failure falls back to
tier-2 and ultimately the interpreter (the resilience ladder).

The interpreter remains the retained reference oracle: contract checking
and ``block_counts`` profiling are interpreter features, and
:func:`simulate` routes runs that need them (tier ``auto``) back to it.
Identity between the tiers -- bit-identical :class:`RunStats` including
trap behaviour -- is enforced by the differential tests in
``tests/sim/`` and by ``benchmarks/bench_speed.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import faults
from repro.ir.arith import MachineTrap, sdiv, srem
from repro.pipeline.linker import Executable
from repro.sim.simulator import (
    DEFAULT_MAX_CYCLES,
    DEFAULT_STACK_WORDS,
    DUMP_INDEX,
    decoded_stream,
    run_program,
    _ADD, _SUB, _MUL, _DIV, _REM, _AND, _OR, _XOR, _SLL, _SRL, _SRA,
    _SLT, _SLE, _SEQ, _SNE, _ADDI, _LI, _LA, _MOVE, _NEG, _NOT, _LW,
    _SW, _B, _BEQZ, _BNEZ, _JAL, _JALR, _JR, _PRINT, _HALT,
    _KINDS, _LAT,
)
from repro.sim.stats import RunStats
from repro.store.store import NS_JIT3
from repro.target.isa import srl
from repro.target.registers import (
    ALLOCATABLE_MASK,
    NUM_REGISTERS,
    PARAM_REGS,
    RA,
    SP,
)

__all__ = [
    "JitProgram",
    "Jit3Options",
    "Jit3Program",
    "run_jit",
    "run_jit3",
    "simulate",
    "SIM_TIERS",
]

#: binary ALU ops with a plain infix translation
_INFIX = {
    _ADD: "+", _SUB: "-", _MUL: "*", _AND: "&", _OR: "|", _XOR: "^",
}

#: comparison ops translated to conditional expressions
_COMPARE = {_SLT: "<", _SLE: "<=", _SEQ: "==", _SNE: "!="}

#: superblock growth cap, in translated instructions.  Big enough that a
#: typical loop body or call-to-call region is one superblock, small
#: enough to bound tail duplication from inlining across leaders.
INLINE_CAP = 96


class _ExitPath:
    """Stat constants for one superblock exit: the dynamic counts of the
    unique entry-to-exit path, multiplied by the exit counter after a
    run."""

    __slots__ = ("ninstr", "cycles", "calls", "branches", "loads", "stores")

    def __init__(self, ninstr, cycles, calls, branches, loads, stores):
        self.ninstr = ninstr
        self.cycles = cycles
        self.calls = calls
        self.branches = branches
        self.loads = loads    # kind number -> count
        self.stores = stores


class JitProgram:
    """A block-translated executable, ready to run.

    One instance is specific to a ``(stack_words, max_cycles)`` pair;
    :func:`run_jit` caches instances on the executable.  Instances are
    reusable across runs but, like the generated functions they hold,
    not thread-safe (use process-level parallelism, as the benchmark
    suite harness does).
    """

    def __init__(
        self,
        exe: Executable,
        stack_words: int = DEFAULT_STACK_WORDS,
        max_cycles: int = DEFAULT_MAX_CYCLES,
    ):
        faults.check(faults.SITE_JIT, getattr(exe, "entry", None))
        self.exe = exe
        self.mem_size = exe.data_size + stack_words
        self.max_cycles = max_cycles
        self.code = decoded_stream(exe)
        self.ncode = len(self.code)
        self.exits: List[_ExitPath] = []
        self.table: Dict[int, Callable] = {}
        self._counts: List[int] = []
        self.ns: Dict[str, object] = {
            "MachineTrap": MachineTrap,
            "sdiv": sdiv,
            "srem": srem,
            "srl": srl,
            "_jump": self._jump,
            "_T": self.table,
        }
        self._leaders = self._find_leaders()
        self._queued: Set[int] = set(self._leaders)
        self._queue: List[int] = sorted(self._leaders)
        self._drain_queue()

    # -- translation --------------------------------------------------------

    def _find_leaders(self) -> Set[int]:
        leaders = {self.exe.entry_pc}
        leaders.update(self.exe.func_entries.values())
        transfers = (_B, _BEQZ, _BNEZ, _JAL, _JALR, _JR, _HALT)
        for pc, ins in enumerate(self.code):
            op = ins[0]
            if op in (_B, _BEQZ, _BNEZ, _JAL) and 0 <= ins[4] < self.ncode:
                leaders.add(ins[4])
            if op in transfers and pc + 1 < self.ncode:
                leaders.add(pc + 1)
        return {pc for pc in leaders if 0 <= pc < self.ncode}

    def _drain_queue(self) -> None:
        """Translate every queued pc (plus any exit target the
        translations reference) and install the result."""
        sources = []
        while self._queue:
            sources.append(self._translate_superblock(self._queue.pop()))
        if sources:
            self._install("\n".join(sources))

    def _enqueue(self, pc: int) -> None:
        if pc not in self._queued:
            self._queued.add(pc)
            self._queue.append(pc)

    def _translate_superblock(self, start: int) -> str:
        """Synthesise the source of the superblock rooted at ``start``,
        registering an :class:`_ExitPath` per exit; returns the ``def``
        source text."""
        code = self.code
        ncode = self.ncode
        max_cycles = self.max_cycles
        lines = [f"def _b{start}(r, m, o, c, y):"]
        known: Set[int] = set()    # registers cached in a local
        written: List[int] = []    # registers needing write-back, in order
        # running path stats from the superblock entry
        ninstr = 0
        prefix = 0                 # cycles accrued so far on the path
        calls = 0
        branches = 0
        loads: Dict[int, int] = {}
        stores: Dict[int, int] = {}

        def read(i: int) -> str:
            if i == 0:
                return "0"  # $zero: nothing ever writes it (see DUMP_INDEX)
            if i not in known:
                lines.append(f"    r{i} = r[{i}]")
                known.add(i)
            return f"r{i}"

        def write(i: int) -> Optional[str]:
            if i == 0 or i == DUMP_INDEX:
                return None
            if i not in known:
                known.add(i)
            if i not in written:
                written.append(i)
            return f"r{i}"

        def budget_guard() -> None:
            # before a trapping instruction: the interpreter's budget trap
            # at any *earlier* instruction must still preempt this one
            if prefix > 0:
                lines.append(
                    f"    if y + {prefix} > {max_cycles}:"
                    f" raise MachineTrap('cycle budget exceeded')"
                )

        def emit_exit(
            ind: str, ret: str,
            budget: bool = True, halting: bool = False, bump: bool = True,
        ) -> None:
            """Write-backs, cycle accrual, budget check, exit counter and
            the transfer itself, at indentation ``ind``."""
            for i in written:
                lines.append(f"{ind}r[{i}] = r{i}")
            lines.append(f"{ind}y += {prefix}")
            if budget:
                lhs = "y - 1" if halting else "y"  # HALT's cost: unchecked
                lines.append(
                    f"{ind}if {lhs} > {max_cycles}:"
                    f" raise MachineTrap('cycle budget exceeded')"
                )
            if bump:
                eid = len(self.exits)
                self.exits.append(_ExitPath(
                    ninstr, prefix, calls, branches,
                    dict(loads), dict(stores),
                ))
                if len(self._counts) < len(self.exits):
                    self._counts.append(0)
                lines.append(f"{ind}c[{eid}] += 1")
            lines.append(f"{ind}{ret}")

        def exit_to(ind: str, target: int, checked: bool = True) -> None:
            """Exit transferring to static pc ``target``.  ``checked``
            says whether the interpreter ran a budget check on this
            transfer (backward branch / call); it decides whether an
            *invalid* target budget-checks before trapping, matching the
            interpreter's check-then-fetch order."""
            if 0 <= target < ncode:
                self._enqueue(target)
                emit_exit(ind, f"return _b{target}, y")
            else:
                emit_exit(
                    ind,
                    f"raise MachineTrap('pc {target} outside code')",
                    budget=checked, bump=False,
                )

        def addr_expr(base: int, imm: int) -> None:
            off = f" + {imm}" if imm > 0 else (f" - {-imm}" if imm < 0 else "")
            lines.append(f"    a = {read(base)}{off}")

        pc = start
        while True:
            op, rd, rs, rt, imm, kind = code[pc]
            ninstr += 1
            lat = _LAT[op]

            if op == _LW:
                budget_guard()
                addr_expr(rs, imm)
                lines.append(
                    f"    if a < 1 or a >= {self.mem_size}:"
                    f" raise MachineTrap('bad load address %d at pc={pc}' % a)"
                )
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = m[a]")
                loads[kind] = loads.get(kind, 0) + 1
            elif op == _SW:
                budget_guard()
                addr_expr(rt, imm)
                lines.append(
                    f"    if a < 1 or a >= {self.mem_size}:"
                    f" raise MachineTrap('bad store address %d at pc={pc}' % a)"
                )
                lines.append(f"    m[a] = {read(rs)}")
                stores[kind] = stores.get(kind, 0) + 1
            elif op in _INFIX:
                a, b = read(rs), read(rt)
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = {a} {_INFIX[op]} {b}")
            elif op == _ADDI:
                a = read(rs)
                w = write(rd)
                if w is not None:
                    rhs = a if imm == 0 else (
                        f"{a} + {imm}" if imm > 0 else f"{a} - {-imm}"
                    )
                    lines.append(f"    {w} = {rhs}")
            elif op == _LI or op == _LA:
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = {imm}")
            elif op == _MOVE:
                a = read(rs)
                w = write(rd)
                if w is not None and w != a:
                    lines.append(f"    {w} = {a}")
            elif op in _COMPARE:
                a, b = read(rs), read(rt)
                w = write(rd)
                if w is not None:
                    lines.append(
                        f"    {w} = 1 if {a} {_COMPARE[op]} {b} else 0"
                    )
            elif op == _DIV or op == _REM:
                budget_guard()
                fname = "sdiv" if op == _DIV else "srem"
                a, b = read(rs), read(rt)
                w = write(rd)
                call = f"{fname}({a}, {b})"
                lines.append(
                    f"    {w} = {call}" if w is not None else f"    {call}"
                )
            elif op == _SLL or op == _SRL or op == _SRA:
                budget_guard()
                s = read(rt)
                lines.append(
                    f"    if {s} < 0 or {s} > 63:"
                    f" raise MachineTrap('shift amount %d out of range' % {s})"
                )
                a = read(rs)
                w = write(rd)
                if w is not None:
                    if op == _SLL:
                        lines.append(f"    {w} = {a} << {s}")
                    elif op == _SRA:
                        lines.append(f"    {w} = {a} >> {s}")
                    else:
                        lines.append(f"    {w} = srl({a}, {s})")
            elif op == _NEG:
                a = read(rs)
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = -{a}" if a != "0"
                                 else f"    {w} = 0")
            elif op == _NOT:
                a = read(rs)
                w = write(rd)
                if w is not None:
                    lines.append(f"    {w} = 1 if {a} == 0 else 0")
            elif op == _PRINT:
                lines.append(f"    o.append({read(rs)})")
            elif op == _BEQZ or op == _BNEZ:
                branches += 1
                prefix += lat
                cond = read(rs)
                test = "==" if op == _BEQZ else "!="
                lines.append(f"    if {cond} {test} 0:")
                exit_to("        ", imm, checked=imm <= pc)
                # the taken arm returned; fall through inline (below)
                pc += 1
                if pc < ncode and ninstr < INLINE_CAP:
                    continue
                exit_to("    ", pc, checked=False)
                break
            elif op == _B:
                prefix += lat
                if pc < imm < ncode and ninstr < INLINE_CAP:
                    # a forward jump inlines for free; backward jumps
                    # exit so every loop iteration meets a budget check,
                    # like the interpreter's backward-branch check
                    pc = imm
                    continue
                exit_to("    ", imm, checked=imm <= pc)
                break
            elif op == _JAL:
                calls += 1
                prefix += lat
                w = write(RA.index)
                lines.append(f"    {w} = {pc + 1}")
                exit_to("    ", imm, checked=True)
                break
            elif op == _JALR:
                calls += 1
                prefix += lat
                lines.append(f"    t = {read(rs)}")
                w = write(RA.index)
                lines.append(f"    {w} = {pc + 1}")
                emit_exit("    ", "return _T.get(t) or _jump(t), y")
                break
            elif op == _JR:
                prefix += lat
                lines.append(f"    t = {read(rs)}")
                emit_exit("    ", "return _T.get(t) or _jump(t), y")
                break
            elif op == _HALT:
                prefix += lat
                emit_exit("    ", "return None, y", halting=True)
                break
            else:  # pragma: no cover - exhaustive over the opcode set
                raise MachineTrap(f"unknown opcode number {op}")

            # straight-line instruction: accrue and move on
            prefix += lat
            pc += 1
            if pc >= ncode or ninstr >= INLINE_CAP:
                exit_to("    ", pc, checked=False)
                break

        return "\n".join(lines) + "\n"

    def _install(self, source: str) -> None:
        exec(compile(source, f"<jit:{id(self.exe):#x}>", "exec"), self.ns)
        for name, value in list(self.ns.items()):
            if name.startswith("_b") and name[2:].isdigit():
                self.table[int(name[2:])] = value

    def _jump(self, pc: int) -> Callable:
        """Resolve a dynamic jump target, translating on demand."""
        fn = self.table.get(pc)
        if fn is None:
            if pc < 0 or pc >= self.ncode:
                raise MachineTrap(f"pc {pc} outside code")
            # a JR/JALR into an untranslated pc (possible only with a
            # hand-built or corrupted image): translate a superblock
            # starting right there
            self._enqueue(pc)
            self._drain_queue()
            fn = self.table[pc]
        return fn

    # -- execution ----------------------------------------------------------

    def run(self) -> RunStats:
        exe = self.exe
        mem: List[int] = [0] * self.mem_size
        for a, v in exe.data_init.items():
            mem[a] = v
        regs: List[int] = [0] * NUM_REGISTERS
        regs[SP.index] = self.mem_size
        out: List[int] = []
        # _counts is extended by on-demand translation mid-run, which is
        # why it lives on self (runs are not concurrent; see class doc)
        counts = self._counts = [0] * len(self.exits)
        cycles = 0

        fn = self._jump(exe.entry_pc)
        while fn is not None:
            fn, cycles = fn(regs, mem, out, counts, cycles)

        stats = RunStats()
        stats.cycles = cycles
        stats.output = out
        nkinds = len(_KINDS)
        load_counts = [0] * nkinds
        store_counts = [0] * nkinds
        exits = self.exits
        for eid, n in enumerate(counts):
            if not n:
                continue
            path = exits[eid]
            stats.instructions += n * path.ninstr
            stats.calls += n * path.calls
            stats.branches += n * path.branches
            for kind, cnt in path.loads.items():
                load_counts[kind] += n * cnt
            for kind, cnt in path.stores.items():
                store_counts[kind] += n * cnt
        for i, k in enumerate(_KINDS):
            if load_counts[i]:
                stats.loads[k] = load_counts[i]
            if store_counts[i]:
                stats.stores[k] = store_counts[i]
        return stats


# ---------------------------------------------------------------------------
# Tier 3: profile-guided trace translation
# ---------------------------------------------------------------------------

#: argument-register indices, in parameter order (specialization slots)
_PARAM_IDX: Tuple[int, ...] = tuple(r.index for r in PARAM_REGS)

#: constant folders for trap-free ALU ops (DIV/REM/shifts can trap and
#: are never folded; their guards must execute)
_FOLD = {
    _ADD: lambda a, b: a + b,
    _SUB: lambda a, b: a - b,
    _MUL: lambda a, b: a * b,
    _AND: lambda a, b: a & b,
    _OR: lambda a, b: a | b,
    _XOR: lambda a, b: a ^ b,
    _SLT: lambda a, b: 1 if a < b else 0,
    _SLE: lambda a, b: 1 if a <= b else 0,
    _SEQ: lambda a, b: 1 if a == b else 0,
    _SNE: lambda a, b: 1 if a != b else 0,
}


@dataclass(frozen=True)
class Jit3Options:
    """Tier-3 translation knobs (all baked into the generated source,
    so they are part of the translation cache key)."""

    inline: bool = True          # inline hot small callees at JAL
    link_loops: bool = True      # back-edges to the block start -> continue
    specialize: bool = True      # entry guards on profiled-constant args
    inline_depth: int = 3        # max simultaneously open inline frames
    inline_size_cap: int = 120   # max callee static length to inline
    trace_cap: int = 512         # max translated instructions per trace
    max_trace_regs: int = 24     # cap on trace locals + callee footprint
    hot_calls: int = 8           # min profiled entry count to inline/spec

    def key(self) -> Tuple:
        return (
            self.inline, self.link_loops, self.specialize,
            self.inline_depth, self.inline_size_cap, self.trace_cap,
            self.max_trace_regs, self.hot_calls,
        )


def _profile_digest(profile) -> str:
    """Stable digest of whatever was passed as a profile (``None``, a
    :class:`~repro.pipeline.profile.BlockProfile`, or a plain dict)."""
    if profile is None:
        return "none"
    digest = getattr(profile, "digest", None)
    if callable(digest):
        return digest()
    import hashlib

    items = sorted(
        (fn, tuple(sorted(blocks.items())))
        for fn, blocks in profile.items()
    )
    return hashlib.sha256(repr(items).encode("utf-8")).hexdigest()


def _hot_by_pc(exe: Executable, profile) -> Dict[int, int]:
    """Block execution counts keyed by pc (via the executable's labels)."""
    hot: Dict[int, int] = {}
    if not profile:
        return hot
    for fn, blocks in profile.items():
        if not isinstance(blocks, dict):
            continue
        for block, count in blocks.items():
            pc = exe.labels.get(f"{fn}.{block}")
            if pc is not None and count:
                hot[pc] = max(hot.get(pc, 0), count)
        entry = exe.func_entries.get(fn)
        if entry is not None:
            count = blocks.get("entry", 0)
            if count:
                hot[entry] = max(hot.get(entry, 0), count)
    return hot


def _arg_consts_by_pc(exe: Executable, profile) -> Dict[int, Tuple]:
    """Observed-constant call arguments keyed by function entry pc."""
    call_args = getattr(profile, "call_args", None)
    if not call_args:
        return {}
    out: Dict[int, Tuple] = {}
    for fn, args in call_args.items():
        entry = exe.func_entries.get(fn)
        if entry is not None:
            out[entry] = tuple(args)
    return out


class Jit3Program(JitProgram):
    """A profile-guided trace-translated executable (tier 3).

    Drives the same driver loop and stat reconstruction as
    :class:`JitProgram`; only the translation differs (see the module
    docstring).  ``jit3_stats`` records the translation decisions and
    is surfaced on :attr:`RunStats.jit3` after every run.
    """

    def __init__(
        self,
        exe: Executable,
        stack_words: int = DEFAULT_STACK_WORDS,
        max_cycles: int = DEFAULT_MAX_CYCLES,
        profile=None,
        opts: Optional[Jit3Options] = None,
        store=None,
    ):
        faults.check(faults.SITE_JIT3, "translate")
        self.opts = opts or Jit3Options()
        self.profile_digest = _profile_digest(profile)
        self._hot = _hot_by_pc(exe, profile)
        self._arg_consts = _arg_consts_by_pc(exe, profile)
        entries = sorted(exe.func_entries.values())
        self._extent = {
            p: (entries[i + 1] if i + 1 < len(entries) else len(exe.instrs))
            - p
            for i, p in enumerate(entries)
        }
        self.jit3_stats: Dict[str, object] = {
            "traces": 0,
            "max_trace_len": 0,
            "inlined_calls": 0,
            "linked_loops": 0,
            "linked_returns": 0,
            "guarded_returns": 0,
            "spec_guards": 0,
            "elided_syncs": 0,
            "bailouts": {},
        }
        self._store = store
        self._artifact_pending = store is not None
        self._store_key = None
        self._sources: List[str] = []
        super().__init__(exe, stack_words, max_cycles)

    # -- persistent translation artifacts -----------------------------------

    def _drain_queue(self) -> None:
        if self._artifact_pending:
            self._artifact_pending = False
            self._store_key = (
                self.exe.fingerprint(),
                self.profile_digest,
                self.mem_size,
                self.max_cycles,
                self.opts.key(),
            )
            art = self._store.get(NS_JIT3, self._store_key)
            if art is not None and self._restore_artifact(art):
                self._queue.clear()
                return
            super()._drain_queue()
            self._store.put(NS_JIT3, self._store_key, self._artifact())
            return
        super()._drain_queue()

    def _install(self, source: str) -> None:
        self._sources.append(source)
        super()._install(source)

    def _artifact(self) -> Dict:
        stats = dict(self.jit3_stats)
        stats["bailouts"] = dict(self.jit3_stats["bailouts"])
        return {
            "source": "\n".join(self._sources),
            "exits": [
                (
                    p.ninstr, p.cycles, p.calls, p.branches,
                    tuple(sorted(p.loads.items())),
                    tuple(sorted(p.stores.items())),
                )
                for p in self.exits
            ],
            "queued": sorted(self._queued),
            "stats": stats,
        }

    def _restore_artifact(self, art) -> bool:
        """Reinstate a stored translation; ``False`` (retranslate) on
        any shape mismatch -- byte-level corruption is already handled
        by the store's checksums."""
        try:
            source = art["source"]
            exits = [
                _ExitPath(n, cy, ca, br, dict(ld), dict(st))
                for n, cy, ca, br, ld, st in art["exits"]
            ]
            queued = set(art["queued"])
            stats = dict(art["stats"])
            stats["bailouts"] = dict(stats["bailouts"])
            self._install(source)
        except Exception:
            return False
        self.exits = exits
        self._counts = [0] * len(exits)
        self._queued = queued
        self.jit3_stats = stats
        return True

    # -- translation ---------------------------------------------------------

    def _backedge_targets(self) -> Set[int]:
        """The pcs some backward branch targets -- the only pcs whose
        traces can ever link a loop, hence the only ones worth the
        loop-mode preload/write-back overhead."""
        targets = getattr(self, "_backedge_target_set", None)
        if targets is None:
            targets = {
                ins[4]
                for pc, ins in enumerate(self.code)
                if ins[0] in (_B, _BEQZ, _BNEZ) and 0 <= ins[4] <= pc
            }
            self._backedge_target_set = targets
        return targets

    def _translate_superblock(
        self, start: int, specialized: bool = True,
        fname: Optional[str] = None,
    ) -> str:
        code = self.code
        ncode = self.ncode
        max_cycles = self.max_cycles
        opts = self.opts
        st = self.jit3_stats
        name = fname or f"_b{start}"
        # loop mode -- body inside ``while True:``, all accessed
        # registers preloaded, every exit writes back the full written
        # set -- pays off only where a back-edge can actually link, so
        # it is reserved for blocks some backward branch targets;
        # everything else gets tier-2-style lazy loads and
        # written-so-far write-backs
        loop_mode = opts.link_loops and start in self._backedge_targets()
        if loop_mode:
            IND = "        "
            lines = [
                f"def {name}(r, m, o, c, y):",
                "\x00PRELOAD",
                "\x00SPEC",
                "    while True:",
                f"{IND}\x00ENTRY",
            ]
        else:
            IND = "    "
            lines = [
                f"def {name}(r, m, o, c, y):",
                f"{IND}\x00ENTRY",
                "\x00SPEC",
            ]
        accessed: Set[int] = set()     # registers hoisted into locals
        known: Set[int] = set()
        written: List[int] = []        # full written set, in write order
        consts: Dict[int, int] = {}    # register -> constant at this point
        inline_stack: List[int] = []   # expected return pcs, innermost last
        spec_assumed: Dict[int, int] = {}   # entry-guard register -> value
        spec_lines: List[str] = []
        extra_source = ""
        ninstr = 0
        prefix = 0
        calls = 0
        branches = 0
        loads: Dict[int, int] = {}
        stores: Dict[int, int] = {}

        def bail(reason: str) -> None:
            bailouts = st["bailouts"]
            bailouts[reason] = bailouts.get(reason, 0) + 1

        def const_of(i: int) -> Optional[int]:
            return 0 if i == 0 else consts.get(i)

        def read(i: int) -> str:
            if i == 0:
                return "0"
            v = consts.get(i)
            if v is not None:
                return repr(v)
            if i not in known:
                known.add(i)
                accessed.add(i)
                if not loop_mode:
                    lines.append(f"{IND}r{i} = r[{i}]")
            return f"r{i}"

        def write(i: int, const: Optional[int] = None) -> Optional[str]:
            if i == 0 or i == DUMP_INDEX:
                return None
            known.add(i)
            accessed.add(i)
            if i not in written:
                written.append(i)
            if const is None:
                consts.pop(i, None)
            else:
                # the local assignment is still emitted: loop re-entry
                # and exit write-backs rely on the local being current
                consts[i] = const
            return f"r{i}"

        def budget_guard() -> None:
            # marker, not code: the assembly pass hoists all of a
            # trace's pre-guards into one entry check on the fast
            # variant and materializes them only in its deopt twin
            if prefix > 0:
                lines.append(f"{IND}\x00BG {prefix}")

        def emit_exit(
            ind: str, ret: str,
            budget: bool = True, halting: bool = False, bump: bool = True,
            writeback: bool = True,
        ) -> None:
            if writeback:
                if loop_mode:
                    lines.append(f"{ind}\x00WB")
                else:
                    lines.extend(f"{ind}r[{i}] = r{i}" for i in written)
            lines.append(f"{ind}y += {prefix}")
            if budget:
                lines.append(f"{ind}\x00XB {'y - 1' if halting else 'y'}")
            if bump:
                eid = len(self.exits)
                self.exits.append(_ExitPath(
                    ninstr, prefix, calls, branches,
                    dict(loads), dict(stores),
                ))
                if len(self._counts) < len(self.exits):
                    self._counts.append(0)
                lines.append(f"{ind}c[{eid}] += 1")
            lines.append(f"{ind}{ret}")

        def exit_to(ind: str, target: int, checked: bool = True) -> None:
            if 0 <= target < ncode:
                self._enqueue(target)
                emit_exit(ind, f"return _b{target}, y")
            else:
                emit_exit(
                    ind,
                    f"raise MachineTrap('pc {target} outside code')",
                    budget=checked, bump=False,
                )

        def backedge_linkable() -> bool:
            """A transfer to ``start`` may ``continue`` iff the entry
            assumptions (specialization guards) provably hold here --
            the loop body re-runs without re-checking them."""
            if not loop_mode:
                return False
            return all(
                consts.get(g) == v for g, v in spec_assumed.items()
            )

        def emit_backedge(ind: str) -> None:
            faults.check(faults.SITE_JIT3, "link")
            lines.append(f"{ind}y += {prefix}")
            lines.append(f"{ind}\x00XB y")
            eid = len(self.exits)
            self.exits.append(_ExitPath(
                ninstr, prefix, calls, branches, dict(loads), dict(stores),
            ))
            if len(self._counts) < len(self.exits):
                self._counts.append(0)
            lines.append(f"{ind}c[{eid}] += 1")
            lines.append(f"{ind}continue")
            st["linked_loops"] += 1
            st["elided_syncs"] += len(written)

        def inline_decision(entry: int) -> bool:
            if not opts.inline:
                return False
            callee = self.exe.func_at_pc.get(entry)
            if callee is None:
                return False
            if self._hot.get(entry, 0) < opts.hot_calls:
                bail("cold")
                return False
            if len(inline_stack) >= opts.inline_depth:
                bail("depth")
                return False
            size = self._extent.get(entry, ncode)
            if size > opts.inline_size_cap:
                bail("size")
                return False
            if ninstr + size > opts.trace_cap:
                bail("trace_cap")
                return False
            preserved = self.exe.preserved_masks.get(callee)
            destroy = ALLOCATABLE_MASK if preserved is None \
                else ALLOCATABLE_MASK & ~preserved
            mask = destroy
            for i in accessed:
                mask |= 1 << i
            if bin(mask).count("1") > opts.max_trace_regs:
                bail("footprint")
                return False
            faults.check(faults.SITE_JIT3, "inline")
            return True

        def addr_expr(base: int, imm: int) -> None:
            off = f" + {imm}" if imm > 0 else (f" - {-imm}" if imm < 0 else "")
            lines.append(f"{IND}a = {read(base)}{off}")

        # -- specialization: entry guards on profiled-constant arguments --
        if (
            specialized and opts.specialize
            and start in self.exe.func_at_pc
            and self._hot.get(start, 0) >= opts.hot_calls
        ):
            observed = self._arg_consts.get(start) or ()
            guards = [
                (_PARAM_IDX[k], v)
                for k, v in enumerate(observed[:len(_PARAM_IDX)])
                if v is not None
            ]
            if guards:
                fallback = f"_f{start}"
                extra_source = self._translate_superblock(
                    start, specialized=False, fname=fallback
                )
                for g, v in guards:
                    consts[g] = v
                    spec_assumed[g] = v
                    if loop_mode:
                        # the guard reads the preloaded local
                        accessed.add(g)
                        known.add(g)
                        spec_lines.append(
                            f"    if r{g} != {v}: return {fallback}, y"
                        )
                    else:
                        spec_lines.append(
                            f"    if r[{g}] != {v}: return {fallback}, y"
                        )
                st["spec_guards"] += len(guards)

        pc = start
        while True:
            op, rd, rs, rt, imm, kind = code[pc]
            ninstr += 1
            lat = _LAT[op]

            if op == _LW:
                budget_guard()
                addr_expr(rs, imm)
                lines.append(
                    f"{IND}if a < 1 or a >= {self.mem_size}:"
                    f" raise MachineTrap('bad load address %d at pc={pc}' % a)"
                )
                w = write(rd)
                if w is not None:
                    lines.append(f"{IND}{w} = m[a]")
                loads[kind] = loads.get(kind, 0) + 1
            elif op == _SW:
                budget_guard()
                addr_expr(rt, imm)
                lines.append(
                    f"{IND}if a < 1 or a >= {self.mem_size}:"
                    f" raise MachineTrap('bad store address %d at pc={pc}' % a)"
                )
                lines.append(f"{IND}m[a] = {read(rs)}")
                stores[kind] = stores.get(kind, 0) + 1
            elif op in _INFIX or op in _COMPARE:
                av, bv = const_of(rs), const_of(rt)
                if av is not None and bv is not None:
                    val = _FOLD[op](av, bv)
                    w = write(rd, const=val)
                    if w is not None:
                        lines.append(f"{IND}{w} = {val}")
                else:
                    a, b = read(rs), read(rt)
                    w = write(rd)
                    if w is not None:
                        if op in _INFIX:
                            lines.append(f"{IND}{w} = {a} {_INFIX[op]} {b}")
                        else:
                            lines.append(
                                f"{IND}{w} = 1 if {a} {_COMPARE[op]} {b}"
                                f" else 0"
                            )
            elif op == _ADDI:
                av = const_of(rs)
                a = read(rs)
                if av is not None:
                    val = av + imm
                    w = write(rd, const=val)
                    if w is not None:
                        lines.append(f"{IND}{w} = {val}")
                else:
                    w = write(rd)
                    if w is not None:
                        rhs = a if imm == 0 else (
                            f"{a} + {imm}" if imm > 0 else f"{a} - {-imm}"
                        )
                        lines.append(f"{IND}{w} = {rhs}")
            elif op == _LI or op == _LA:
                w = write(rd, const=imm)
                if w is not None:
                    lines.append(f"{IND}{w} = {imm}")
            elif op == _MOVE:
                av = const_of(rs)
                a = read(rs)
                w = write(rd, const=av)
                if w is not None and w != a:
                    lines.append(f"{IND}{w} = {a}")
            elif op == _DIV or op == _REM:
                budget_guard()
                fn = "sdiv" if op == _DIV else "srem"
                a, b = read(rs), read(rt)
                w = write(rd)
                call = f"{fn}({a}, {b})"
                lines.append(
                    f"{IND}{w} = {call}" if w is not None else f"{IND}{call}"
                )
            elif op == _SLL or op == _SRL or op == _SRA:
                budget_guard()
                s = read(rt)
                lines.append(
                    f"{IND}if {s} < 0 or {s} > 63:"
                    f" raise MachineTrap('shift amount %d out of range'"
                    f" % ({s},))"
                )
                a = read(rs)
                w = write(rd)
                if w is not None:
                    if op == _SLL:
                        lines.append(f"{IND}{w} = {a} << {s}")
                    elif op == _SRA:
                        lines.append(f"{IND}{w} = {a} >> {s}")
                    else:
                        lines.append(f"{IND}{w} = srl({a}, {s})")
            elif op == _NEG:
                av = const_of(rs)
                if av is not None:
                    w = write(rd, const=-av)
                    if w is not None:
                        lines.append(f"{IND}{w} = {-av}")
                else:
                    a = read(rs)
                    w = write(rd)
                    if w is not None:
                        lines.append(f"{IND}{w} = -{a}")
            elif op == _NOT:
                av = const_of(rs)
                if av is not None:
                    val = 1 if av == 0 else 0
                    w = write(rd, const=val)
                    if w is not None:
                        lines.append(f"{IND}{w} = {val}")
                else:
                    a = read(rs)
                    w = write(rd)
                    if w is not None:
                        lines.append(f"{IND}{w} = 1 if {a} == 0 else 0")
            elif op == _PRINT:
                lines.append(f"{IND}o.append({read(rs)})")
            elif op == _BEQZ or op == _BNEZ:
                branches += 1
                prefix += lat
                cv = const_of(rs)
                if cv is not None:
                    taken = (cv == 0) if op == _BEQZ else (cv != 0)
                    if taken:
                        if imm == start and backedge_linkable():
                            emit_backedge(IND)
                            break
                        if pc < imm < ncode and ninstr < opts.trace_cap:
                            pc = imm
                            continue
                        exit_to(IND, imm, checked=imm <= pc)
                        break
                    pc += 1
                    if pc < ncode and ninstr < opts.trace_cap:
                        continue
                    exit_to(IND, pc, checked=False)
                    break
                cond = read(rs)
                backedge_ok = imm == start and backedge_linkable()
                # follow the taken direction only when the profile
                # really favours it: a linkable back-edge, or a forward
                # target carrying the majority of the flow through this
                # trace's head (the fall-through's own count is usually
                # unobservable -- it is rarely a block leader -- so it
                # is estimated as entry minus taken rather than read
                # from the profile, where a missing label would score 0
                # and invert nearly every branch)
                taken_count = self._hot.get(imm, 0)
                if (
                    backedge_ok
                    or (
                        pc < imm < ncode
                        and taken_count * 2 > self._hot.get(start, 1)
                        and taken_count > self._hot.get(pc + 1, 0)
                    )
                ):
                    # the taken direction is the profiled-hot one:
                    # follow it, exiting on the cold fall-through
                    ntest = "!=" if op == _BEQZ else "=="
                    lines.append(f"{IND}if {cond} {ntest} 0:")
                    exit_to(IND + "    ", pc + 1, checked=False)
                    if backedge_ok:
                        emit_backedge(IND)
                        break
                    pc = imm
                    if ninstr < opts.trace_cap:
                        continue
                    exit_to(IND, pc, checked=False)
                    break
                test = "==" if op == _BEQZ else "!="
                lines.append(f"{IND}if {cond} {test} 0:")
                arm = IND + "    "
                if backedge_ok:
                    emit_backedge(arm)
                else:
                    exit_to(arm, imm, checked=imm <= pc)
                pc += 1
                if pc < ncode and ninstr < opts.trace_cap:
                    continue
                exit_to(IND, pc, checked=False)
                break
            elif op == _B:
                prefix += lat
                if imm == start and backedge_linkable():
                    emit_backedge(IND)
                    break
                if pc < imm < ncode and ninstr < opts.trace_cap:
                    pc = imm
                    continue
                exit_to(IND, imm, checked=imm <= pc)
                break
            elif op == _JAL:
                calls += 1
                prefix += lat
                ret_pc = pc + 1
                w = write(RA.index, const=ret_pc)
                lines.append(f"{IND}{w} = {ret_pc}")
                if inline_decision(imm):
                    inline_stack.append(ret_pc)
                    st["inlined_calls"] += 1
                    st["elided_syncs"] += len(written)
                    pc = imm
                    continue
                exit_to(IND, imm, checked=True)
                break
            elif op == _JALR:
                calls += 1
                prefix += lat
                bail("indirect_call")
                lines.append(f"{IND}t = {read(rs)}")
                w = write(RA.index, const=pc + 1)
                lines.append(f"{IND}{w} = {pc + 1}")
                emit_exit(IND, "return _T.get(t) or _jump(t), y")
                break
            elif op == _JR:
                prefix += lat
                if inline_stack:
                    expected = inline_stack[-1]
                    cv = const_of(rs)
                    if cv == expected:
                        inline_stack.pop()
                        st["linked_returns"] += 1
                        st["elided_syncs"] += len(written)
                        pc = expected
                        continue
                    if cv is None:
                        lines.append(f"{IND}t = {read(rs)}")
                        lines.append(f"{IND}if t != {expected}:")
                        emit_exit(
                            IND + "    ",
                            "return _T.get(t) or _jump(t), y",
                        )
                        inline_stack.pop()
                        consts[rs] = expected  # proven by the guard
                        st["guarded_returns"] += 1
                        pc = expected
                        continue
                    # a known return pc that is not this frame's return
                    # (tail-call shape): give up linking this trace
                    bail("return_mismatch")
                lines.append(f"{IND}t = {read(rs)}")
                emit_exit(IND, "return _T.get(t) or _jump(t), y")
                break
            elif op == _HALT:
                prefix += lat
                emit_exit(IND, "return None, y", halting=True)
                break
            else:  # pragma: no cover - exhaustive over the opcode set
                raise MachineTrap(f"unknown opcode number {op}")

            prefix += lat
            pc += 1
            if pc >= ncode or ninstr >= opts.trace_cap:
                exit_to(IND, pc, checked=False)
                break

        st["traces"] += 1
        if ninstr > st["max_trace_len"]:
            st["max_trace_len"] = ninstr

        out: List[str] = []
        for ln in lines:
            if ln == "\x00PRELOAD":
                out.extend(f"    r{i} = r[{i}]" for i in sorted(accessed))
            elif ln == "\x00SPEC":
                out.extend(spec_lines)
            elif ln.endswith("\x00WB"):
                ind = ln[: -len("\x00WB")]
                out.extend(f"{ind}r[{i}] = r{i}" for i in written)
            else:
                out.append(ln)
        # Budget-check hoisting.  Mid-trace budget pre-guards (one per
        # trapping instruction) and the per-exit budget checks can only
        # ever fire when the remaining cycle budget is smaller than the
        # trace's own worst-case accrual.  The fast variant therefore
        # tests that once -- at entry, and at every loop-top in loop
        # mode -- and deopts to a twin that keeps every check;
        # everywhere else they are provably dead (``prefix`` is
        # monotone, so the final total bounds every intermediate
        # ``y + k`` and post-accrual ``y`` test).
        if any("\x00BG " in ln or "\x00XB " in ln for ln in out):
            twin = "_g" + name[1:]
            fast: List[str] = []
            slow: List[str] = []
            for ln in out:
                body = ln.lstrip()
                ind = ln[: len(ln) - len(body)]
                if body.startswith("\x00BG "):
                    slow.append(
                        f"{ind}if y + {body[4:]} > {max_cycles}:"
                        f" raise MachineTrap('cycle budget exceeded')"
                    )
                elif body.startswith("\x00XB "):
                    slow.append(
                        f"{ind}if {body[4:]} > {max_cycles}:"
                        f" raise MachineTrap('cycle budget exceeded')"
                    )
                elif body == "\x00ENTRY":
                    if loop_mode:
                        fast.append(
                            f"{ind}if y + {prefix} > {max_cycles}:"
                        )
                        fast.extend(
                            f"{ind}    r[{i}] = r{i}" for i in written
                        )
                        fast.append(f"{ind}    return {twin}, y")
                    else:
                        fast.append(
                            f"{ind}if y + {prefix} > {max_cycles}:"
                            f" return {twin}, y"
                        )
                elif ln.startswith(f"def {name}("):
                    fast.append(ln)
                    slow.append(f"def {twin}(r, m, o, c, y):")
                else:
                    fast.append(ln)
                    slow.append(ln)
            out = slow + [""] + fast
        else:
            out = [ln for ln in out if ln.lstrip() != "\x00ENTRY"]
        source = "\n".join(out) + "\n"
        if extra_source:
            source = extra_source + source
        return source

    # -- execution -----------------------------------------------------------

    def run(self) -> RunStats:
        stats = super().run()
        info = dict(self.jit3_stats)
        info["bailouts"] = dict(self.jit3_stats["bailouts"])
        stats.jit3 = info
        return stats


def run_jit(
    exe: Executable,
    stack_words: int = DEFAULT_STACK_WORDS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> RunStats:
    """Execute ``exe`` on the block-translating tier.

    The translation is cached on the executable (next to ``_decoded``)
    keyed by ``("jit", stack_words, max_cycles)`` -- the tier tag keeps
    tier-2 and tier-3 translations of one executable from colliding --
    so repeated runs skip straight to execution.
    """
    cache = getattr(exe, "_jit_cache", None)
    if cache is None:
        cache = {}
        exe._jit_cache = cache  # type: ignore[attr-defined]
    key = ("jit", stack_words, max_cycles)
    prog = cache.get(key)
    if prog is None:
        prog = JitProgram(exe, stack_words, max_cycles)
        cache[key] = prog
    return prog.run()


def run_jit3(
    exe: Executable,
    stack_words: int = DEFAULT_STACK_WORDS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    profile=None,
    opts: Optional[Jit3Options] = None,
    store=None,
) -> RunStats:
    """Execute ``exe`` on the tier-3 trace-translating tier.

    ``profile`` is the :class:`~repro.pipeline.profile.BlockProfile`
    driving inlining/linking/specialization decisions (``None`` keeps
    the translator conservative: loop linking only).  ``store`` is an
    optional :class:`~repro.store.ArtifactStore` through which whole
    translations round-trip, keyed by (executable fingerprint, profile
    digest, sim parameters).  The in-memory translation is cached on
    the executable keyed by tier, sim parameters, options and profile
    digest.
    """
    cache = getattr(exe, "_jit_cache", None)
    if cache is None:
        cache = {}
        exe._jit_cache = cache  # type: ignore[attr-defined]
    opts = opts or Jit3Options()
    key = ("jit3", stack_words, max_cycles, opts.key(),
           _profile_digest(profile))
    prog = cache.get(key)
    if prog is None:
        prog = Jit3Program(
            exe, stack_words, max_cycles,
            profile=profile, opts=opts, store=store,
        )
        cache[key] = prog
    return prog.run()


SIM_TIERS = ("auto", "interp", "jit", "jit3")


def _self_profile(exe: Executable):
    """Collect (and attach) a profile of ``exe`` by one interpreter run
    -- the explicit ``sim_tier="jit3"`` path when no profile was
    attached beforehand.  Deferred import: profile.py imports us."""
    from repro.pipeline.profile import BlockProfile, attach_profile

    starts: Dict[int, int] = {}
    where: Dict[int, tuple] = {}
    for label, pc in exe.labels.items():
        if "." not in label:
            continue
        fn, _, block = label.partition(".")
        if fn in exe.func_entries:
            starts[pc] = 0
            where[pc] = (fn, block)
    observed: Dict[int, list] = {}
    run_program(exe, block_counts=starts, call_args=observed)
    counts: Dict[str, Dict[str, int]] = {}
    for pc, count in starts.items():
        fn, block = where[pc]
        counts.setdefault(fn, {})[block] = count
    call_args = {
        exe.func_at_pc[pc]: tuple(args)
        for pc, args in observed.items()
        if pc in exe.func_at_pc
    }
    profile = BlockProfile(counts, call_args)
    attach_profile(exe, profile)
    return profile


def simulate(
    exe: Executable,
    stack_words: int = DEFAULT_STACK_WORDS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    check_contracts: bool = False,
    block_counts: Optional[Dict[int, int]] = None,
    sim_tier: str = "auto",
    profile=None,
    jit3_opts: Optional[Jit3Options] = None,
    store=None,
) -> RunStats:
    """Execute ``exe`` on the selected simulator tier.

    ``sim_tier`` is ``"auto"`` (default), ``"interp"`` (always the
    reference interpreter), ``"jit"`` (the tier-2 block translator) or
    ``"jit3"`` (the profile-guided trace translator).  The translated
    tiers are incompatible with the interpreter-only features
    (``check_contracts``, ``block_counts``).  All tiers produce
    bit-identical :class:`RunStats`.

    ``"auto"`` picks the fastest applicable tier: tier 3 when a profile
    is attached to the executable (see
    :func:`repro.pipeline.profile.attach_profile`) or passed as
    ``profile``, tier 2 otherwise -- and a *translation* failure walks
    down the ladder (jit3 -> jit -> interp) with every failure recorded
    in :attr:`RunStats.sim_fallback`.  :class:`MachineTrap` is program
    semantics (all tiers raise it identically) and always propagates.

    ``sim_tier="jit3"`` with no profile anywhere collects one via a
    single interpreter profiling run first (and attaches it).
    ``store`` (or ``exe._artifact_store``, which the engine attaches to
    everything it compiles) persists tier-3 translations across
    processes.
    """
    if sim_tier not in SIM_TIERS:
        raise ValueError(
            f"unknown sim_tier {sim_tier!r}; expected one of {SIM_TIERS}"
        )
    needs_interp = check_contracts or block_counts is not None
    if sim_tier in ("jit", "jit3") and needs_interp:
        raise ValueError(
            f"sim_tier={sim_tier!r} supports neither check_contracts nor "
            "block_counts; use sim_tier='auto' or 'interp'"
        )
    if sim_tier == "interp" or needs_interp:
        return run_program(
            exe,
            stack_words=stack_words,
            max_cycles=max_cycles,
            check_contracts=check_contracts,
            block_counts=block_counts,
        )
    if profile is None:
        profile = getattr(exe, "_block_profile", None)
    if store is None:
        store = getattr(exe, "_artifact_store", None)
    if sim_tier == "jit":
        return run_jit(exe, stack_words=stack_words, max_cycles=max_cycles)
    if sim_tier == "jit3":
        if profile is None:
            profile = _self_profile(exe)
        return run_jit3(
            exe, stack_words=stack_words, max_cycles=max_cycles,
            profile=profile, opts=jit3_opts, store=store,
        )
    # tier "auto": a *translation* failure falls back one tier at a
    # time (jit3 -> jit -> interp), recording each failure on the
    # stats.  MachineTrap is program semantics (all tiers raise it
    # identically) and propagates.
    failures: List[str] = []
    if profile is not None:
        try:
            return run_jit3(
                exe, stack_words=stack_words, max_cycles=max_cycles,
                profile=profile, opts=jit3_opts, store=store,
            )
        except MachineTrap:
            raise
        except Exception as exc:
            failures.append(f"jit3: {exc!r}")
    try:
        stats = run_jit(exe, stack_words=stack_words, max_cycles=max_cycles)
    except MachineTrap:
        raise
    except Exception as exc:
        failures.append(f"jit: {exc!r}")
        stats = run_program(
            exe, stack_words=stack_words, max_cycles=max_cycles
        )
    if failures:
        stats.sim_fallback = "; ".join(failures)
    return stats
