"""Cycle-counting interpreter for the virtual R2000.

Executes a linked :class:`~repro.pipeline.linker.Executable`, counting
cycles with per-opcode latencies and classifying memory traffic by the
:class:`MemKind` tags the code generator attached -- the reproduction's
``pixie``.

The instruction stream is pre-decoded once per executable into flat int
tuples (cached on the executable) and interpreted by an integer-dispatch
loop; this keeps whole-benchmark simulations in the millions of
instructions per second range, fast enough to regenerate the paper's
tables in seconds.

An optional *contract checker* maintains a shadow call stack and verifies,
at every return, that the callee preserved exactly the registers its
compilation plan promised to preserve (all callee-saved registers under
the default convention; everything outside the usage summary for closed
procedures under IPRA), and that sp and the return pc are intact.  This
dynamically validates the whole save/restore scheme on real executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.arith import MachineTrap, sdiv, srem
from repro.pipeline.linker import Executable
from repro.sim.stats import RunStats
from repro.target.isa import latency, MemKind, Opcode, srl
from repro.target.registers import (
    ALL_REGISTERS,
    AT0,
    AT1,
    AT2,
    NUM_REGISTERS,
    PARAM_REGS,
    RA,
    SP,
    ZERO,
)

DEFAULT_STACK_WORDS = 1 << 16
DEFAULT_MAX_CYCLES = 2_000_000_000

_SCRATCH_MASK = (1 << AT0.index) | (1 << AT1.index) | (1 << AT2.index)

# dense opcode numbering for the dispatch loop
_OPNUM: Dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}
_KINDNUM: Dict[MemKind, int] = {k: i for i, k in enumerate(MemKind)}
_KINDS: List[MemKind] = list(MemKind)
_LAT: List[int] = [latency(op) for op in Opcode]

(_ADD, _SUB, _MUL, _DIV, _REM, _AND, _OR, _XOR, _SLL, _SRL, _SRA, _SLT,
 _SLE, _SEQ, _SNE, _ADDI, _LI, _LA, _MOVE, _NEG, _NOT, _LW, _SW, _B,
 _BEQZ, _BNEZ, _JAL, _JALR, _JR, _PRINT, _HALT) = (
    _OPNUM[op] for op in Opcode
)

#: opcodes that write their ``rd`` operand
_WRITES_RD = frozenset((
    _ADD, _SUB, _MUL, _DIV, _REM, _AND, _OR, _XOR, _SLL, _SRL, _SRA,
    _SLT, _SLE, _SEQ, _SNE, _ADDI, _LI, _LA, _MOVE, _NEG, _NOT, _LW,
))

#: ``rd`` slot that discards writes to $zero.  Decoding redirects any
#: write whose destination is register 0 here, so the hot loop never
#: needs the per-instruction ``regs[0] = 0`` reset: the register array
#: simply carries one extra scratch word past the architected file.
DUMP_INDEX = NUM_REGISTERS


class ContractViolation(AssertionError):
    """The simulated program broke a calling-convention contract."""


@dataclass
class _Frame:
    func: str
    return_pc: int
    sp: int
    snapshot: Tuple[int, ...]
    preserve_mask: int


def _decode(exe: Executable) -> List[Tuple[int, int, int, int, int, int]]:
    """Flatten instructions to (opnum, rd, rs, rt, imm, kind) int tuples."""
    decoded = []
    for ins in exe.instrs:
        op = _OPNUM[ins.op]
        rd = ins.rd.index if ins.rd is not None else 0
        if rd == 0 and op in _WRITES_RD:
            rd = DUMP_INDEX  # $zero is hardwired: discard the write
        decoded.append((
            op,
            rd,
            ins.rs.index if ins.rs is not None else 0,
            ins.rt.index if ins.rt is not None else 0,
            ins.imm if ins.imm is not None else 0,
            _KINDNUM[ins.kind] if ins.kind is not None else 0,
        ))
    return decoded


def decoded_stream(exe: Executable) -> List[Tuple[int, int, int, int, int, int]]:
    """The executable's decoded instruction stream, cached on ``exe``
    (shared by the interpreter and the block-translating tier)."""
    code = getattr(exe, "_decoded", None)
    if code is None:
        code = _decode(exe)
        exe._decoded = code  # type: ignore[attr-defined]
    return code


def run_program(
    exe: Executable,
    stack_words: int = DEFAULT_STACK_WORDS,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    check_contracts: bool = False,
    block_counts: Optional[Dict[int, int]] = None,
    call_args: Optional[Dict[int, List[Optional[int]]]] = None,
) -> RunStats:
    """Execute ``exe`` until HALT; returns the collected statistics.

    Raises :class:`MachineTrap` on run-time faults (bad address, divide
    by zero, cycle budget exceeded) and :class:`ContractViolation` when
    ``check_contracts`` is set and a convention is broken.

    ``block_counts`` enables block-level profiling: pass a dict
    pre-seeded with the pcs of interest (usually block-start labels) and
    each visit increments the entry -- the profile-feedback extension's
    data source.

    ``call_args`` enables call-argument observation: pass an empty dict
    and every JAL/JALR records the argument-register values at the call;
    after the run, ``call_args[target_pc][k]`` is the one constant value
    argument register ``k`` held at *every* call of that target, or
    ``None`` if the values varied -- the tier-3 JIT's specialization
    data source.
    """
    code = decoded_stream(exe)

    mem_size = exe.data_size + stack_words
    mem: List[int] = [0] * mem_size
    for a, v in exe.data_init.items():
        mem[a] = v
    # one extra slot past the architected file swallows writes to $zero
    regs: List[int] = [0] * (NUM_REGISTERS + 1)
    regs[SP.index] = mem_size
    pc = exe.entry_pc

    stats = RunStats()
    ncode = len(code)
    shadow: List[_Frame] = []
    preserved_masks = exe.preserved_masks

    nkinds = len(_KINDS)
    load_counts = [0] * nkinds
    store_counts = [0] * nkinds
    output: List[int] = []
    cycles = 0
    instructions = 0
    calls = 0
    branches = 0
    lat = _LAT
    ra_idx = RA.index
    sp_idx = SP.index

    profiling = block_counts is not None
    observing = call_args is not None

    # The cycle-budget check is hoisted out of the per-instruction path:
    # it runs at control transfers (taken backward branches, calls and
    # returns), immediately before any instruction that can itself trap
    # (using the cycle count *excluding* that instruction, so the budget
    # trap preempts exactly the instructions it used to preempt), and at
    # HALT (excluding HALT's own latency, which was never checked).  Any
    # execution that exceeded the budget under the per-instruction check
    # still raises the same trap; only unobservable work between the
    # overrun point and the next check point differs.
    while True:
        if pc < 0 or pc >= ncode:
            raise MachineTrap(f"pc {pc} outside code")
        if profiling and pc in block_counts:
            block_counts[pc] += 1
        op, rd, rs, rt, imm, kind = code[pc]
        cycles += lat[op]
        instructions += 1
        npc = pc + 1

        if op == _LW:
            if cycles - 2 > max_cycles:
                raise MachineTrap("cycle budget exceeded")
            addr = regs[rs] + imm
            if addr < 1 or addr >= mem_size:
                raise MachineTrap(f"bad load address {addr} at pc={pc}")
            regs[rd] = mem[addr]
            load_counts[kind] += 1
        elif op == _SW:
            if cycles - 2 > max_cycles:
                raise MachineTrap("cycle budget exceeded")
            addr = regs[rt] + imm
            if addr < 1 or addr >= mem_size:
                raise MachineTrap(f"bad store address {addr} at pc={pc}")
            mem[addr] = regs[rs]
            store_counts[kind] += 1
        elif op == _ADD:
            regs[rd] = regs[rs] + regs[rt]
        elif op == _ADDI:
            regs[rd] = regs[rs] + imm
        elif op == _SUB:
            regs[rd] = regs[rs] - regs[rt]
        elif op == _MOVE:
            regs[rd] = regs[rs]
        elif op == _LI or op == _LA:
            regs[rd] = imm
        elif op == _BNEZ:
            branches += 1
            if regs[rs] != 0:
                npc = imm
                if imm <= pc and cycles > max_cycles:
                    raise MachineTrap("cycle budget exceeded")
        elif op == _BEQZ:
            branches += 1
            if regs[rs] == 0:
                npc = imm
                if imm <= pc and cycles > max_cycles:
                    raise MachineTrap("cycle budget exceeded")
        elif op == _B:
            npc = imm
            if imm <= pc and cycles > max_cycles:
                raise MachineTrap("cycle budget exceeded")
        elif op == _SLT:
            regs[rd] = 1 if regs[rs] < regs[rt] else 0
        elif op == _SLE:
            regs[rd] = 1 if regs[rs] <= regs[rt] else 0
        elif op == _SEQ:
            regs[rd] = 1 if regs[rs] == regs[rt] else 0
        elif op == _SNE:
            regs[rd] = 1 if regs[rs] != regs[rt] else 0
        elif op == _JAL:
            regs[ra_idx] = npc
            calls += 1
            if check_contracts:
                _push_frame(shadow, exe, preserved_masks, imm, npc, regs)
            if observing:
                _observe_call(call_args, imm, regs)
            npc = imm
            if cycles > max_cycles:
                raise MachineTrap("cycle budget exceeded")
        elif op == _JALR:
            target = regs[rs]
            regs[ra_idx] = npc
            calls += 1
            if check_contracts:
                _push_frame(shadow, exe, preserved_masks, target, npc, regs)
            if observing:
                _observe_call(call_args, target, regs)
            npc = target
            if cycles > max_cycles:
                raise MachineTrap("cycle budget exceeded")
        elif op == _JR:
            npc = regs[rs]
            if check_contracts and shadow:
                _check_return(shadow, npc, regs)
            if cycles > max_cycles:
                raise MachineTrap("cycle budget exceeded")
        elif op == _MUL:
            regs[rd] = regs[rs] * regs[rt]
        elif op == _DIV:
            if cycles - 35 > max_cycles:
                raise MachineTrap("cycle budget exceeded")
            regs[rd] = sdiv(regs[rs], regs[rt])
        elif op == _REM:
            if cycles - 35 > max_cycles:
                raise MachineTrap("cycle budget exceeded")
            regs[rd] = srem(regs[rs], regs[rt])
        elif op == _AND:
            regs[rd] = regs[rs] & regs[rt]
        elif op == _OR:
            regs[rd] = regs[rs] | regs[rt]
        elif op == _XOR:
            regs[rd] = regs[rs] ^ regs[rt]
        elif op == _SLL:
            if cycles - 1 > max_cycles:
                raise MachineTrap("cycle budget exceeded")
            sh = regs[rt]
            if sh < 0 or sh > 63:
                raise MachineTrap(f"shift amount {sh} out of range")
            regs[rd] = regs[rs] << sh
        elif op == _SRL:
            if cycles - 1 > max_cycles:
                raise MachineTrap("cycle budget exceeded")
            sh = regs[rt]
            if sh < 0 or sh > 63:
                raise MachineTrap(f"shift amount {sh} out of range")
            regs[rd] = srl(regs[rs], sh)
        elif op == _SRA:
            if cycles - 1 > max_cycles:
                raise MachineTrap("cycle budget exceeded")
            sh = regs[rt]
            if sh < 0 or sh > 63:
                raise MachineTrap(f"shift amount {sh} out of range")
            regs[rd] = regs[rs] >> sh
        elif op == _NEG:
            regs[rd] = -regs[rs]
        elif op == _NOT:
            regs[rd] = 1 if regs[rs] == 0 else 0
        elif op == _PRINT:
            output.append(regs[rs])
        elif op == _HALT:
            if cycles - 1 > max_cycles:
                raise MachineTrap("cycle budget exceeded")
            break
        else:  # pragma: no cover - exhaustive
            raise MachineTrap(f"unknown opcode number {op}")

        pc = npc

    stats.cycles = cycles
    stats.instructions = instructions
    stats.calls = calls
    stats.branches = branches
    stats.output = output
    for i, k in enumerate(_KINDS):
        if load_counts[i]:
            stats.loads[k] = load_counts[i]
        if store_counts[i]:
            stats.stores[k] = store_counts[i]
    return stats


_PARAM_INDICES = tuple(r.index for r in PARAM_REGS)


def _observe_call(
    call_args: Dict[int, List[Optional[int]]],
    target: int,
    regs: List[int],
) -> None:
    """Fold one call's argument-register values into the observation:
    first call records them, later calls ``None`` out any slot whose
    value differs (so a surviving entry is a proven-constant)."""
    seen = call_args.get(target)
    if seen is None:
        call_args[target] = [regs[i] for i in _PARAM_INDICES]
        return
    for k, i in enumerate(_PARAM_INDICES):
        if seen[k] is not None and seen[k] != regs[i]:
            seen[k] = None


def _push_frame(
    shadow: List[_Frame],
    exe: Executable,
    preserved_masks: Dict[str, int],
    target_pc: int,
    return_pc: int,
    regs: List[int],
) -> None:
    func = exe.func_at_pc.get(target_pc)
    if func is None:
        raise ContractViolation(
            f"call to pc {target_pc}, which is not a function entry"
        )
    mask = preserved_masks.get(func, 0) & ~_SCRATCH_MASK
    shadow.append(
        _Frame(
            func=func,
            return_pc=return_pc,
            sp=regs[SP.index],
            snapshot=tuple(regs),
            preserve_mask=mask,
        )
    )


def _check_return(shadow: List[_Frame], npc: int, regs: List[int]) -> None:
    frame = shadow[-1]
    if npc != frame.return_pc:
        raise ContractViolation(
            f"{frame.func}: returned to pc {npc}, expected {frame.return_pc}"
        )
    shadow.pop()
    if regs[SP.index] != frame.sp:
        raise ContractViolation(
            f"{frame.func}: sp {regs[SP.index]} != {frame.sp} at return"
        )
    mask = frame.preserve_mask
    for r in ALL_REGISTERS:
        if mask & (1 << r.index) and regs[r.index] != frame.snapshot[r.index]:
            raise ContractViolation(
                f"{frame.func}: failed to preserve ${r.name} "
                f"({frame.snapshot[r.index]} -> {regs[r.index]})"
            )
