"""Virtual-machine simulators and pixie-style statistics.

Two execution tiers, selected by the ``sim_tier`` knob on
:func:`simulate` (and on every ``RunStats``-producing entry point above
it): the tier-1 reference interpreter (:func:`run_program`) and the
tier-2 block-translating pixie-JIT (:func:`run_jit`).  Both produce
bit-identical :class:`RunStats`; the interpreter additionally supports
contract checking and block-count profiling, to which ``auto`` falls
back.
"""

from repro.sim.jit import JitProgram, run_jit, SIM_TIERS, simulate
from repro.sim.simulator import (
    ContractViolation,
    DEFAULT_MAX_CYCLES,
    DEFAULT_STACK_WORDS,
    run_program,
)
from repro.sim.stats import RunStats, percent_reduction

__all__ = [
    "ContractViolation",
    "DEFAULT_MAX_CYCLES",
    "DEFAULT_STACK_WORDS",
    "JitProgram",
    "run_program",
    "run_jit",
    "simulate",
    "SIM_TIERS",
    "RunStats",
    "percent_reduction",
]
