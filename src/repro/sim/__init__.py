"""Virtual-machine simulator and pixie-style statistics."""

from repro.sim.simulator import (
    ContractViolation,
    DEFAULT_MAX_CYCLES,
    DEFAULT_STACK_WORDS,
    run_program,
)
from repro.sim.stats import RunStats, percent_reduction

__all__ = [
    "ContractViolation",
    "DEFAULT_MAX_CYCLES",
    "DEFAULT_STACK_WORDS",
    "run_program",
    "RunStats",
    "percent_reduction",
]
