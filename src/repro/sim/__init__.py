"""Virtual-machine simulators and pixie-style statistics.

Three execution tiers, selected by the ``sim_tier`` knob on
:func:`simulate` (and on every ``RunStats``-producing entry point above
it): the tier-1 reference interpreter (:func:`run_program`), the
tier-2 block-translating pixie-JIT (:func:`run_jit`), and the tier-3
profile-guided trace JIT (:func:`run_jit3`) with cross-procedure
inlining, loop linking and constant-argument specialization.  All
tiers produce bit-identical :class:`RunStats`; the interpreter
additionally supports contract checking and block-count profiling, to
which ``auto`` falls back.  ``auto`` escalates to tier 3 when a
block profile is attached to the executable, walking the
jit3 -> jit -> interp ladder on translation failure.
"""

from repro.sim.jit import (
    Jit3Options,
    Jit3Program,
    JitProgram,
    run_jit,
    run_jit3,
    SIM_TIERS,
    simulate,
)
from repro.sim.simulator import (
    ContractViolation,
    DEFAULT_MAX_CYCLES,
    DEFAULT_STACK_WORDS,
    run_program,
)
from repro.sim.stats import RunStats, percent_reduction

__all__ = [
    "ContractViolation",
    "DEFAULT_MAX_CYCLES",
    "DEFAULT_STACK_WORDS",
    "Jit3Options",
    "Jit3Program",
    "JitProgram",
    "run_program",
    "run_jit",
    "run_jit3",
    "simulate",
    "SIM_TIERS",
    "RunStats",
    "percent_reduction",
]
