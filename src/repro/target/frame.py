"""Stack-frame layout.

The stack grows downward from the top of memory.  A procedure that needs
frame storage decrements ``sp`` by its frame size in the prologue and
addresses every slot at a non-negative offset from the new ``sp``::

    sp + 0 .. out_args-1      outgoing-argument area (slot = arg position)
    sp + ...                  local arrays
    sp + ...                  spill homes of memory-resident vregs
    sp + ...                  save slots (callee-saved / caller-saved / wrapped)
    sp + ...                  ra save slot (procedures that make calls)
    sp + size + pos           incoming stack argument ``pos`` (caller's area)

Incoming stack-passed parameters are addressed in the *caller's*
outgoing-argument area, which sits immediately above this frame; their
spill home is that slot itself, so no extra copying happens.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.ir.values import VKind, VReg


class CodegenError(Exception):
    """Code generation hit an impossible or unsupported situation."""


@dataclass
class Frame:
    """Resolved frame layout for one procedure."""

    size: int = 0
    out_args: int = 0
    #: memory-resident vreg -> sp-relative offset (incoming stack params
    #: get offsets >= size, i.e. slots in the caller's frame)
    homes: Dict[VReg, int] = field(default_factory=dict)
    #: local array name -> sp-relative offset of element 0
    arrays: Dict[str, int] = field(default_factory=dict)
    #: register index -> sp-relative save slot (callee-saved / wrapped)
    saves: Dict[int, int] = field(default_factory=dict)
    #: register index -> sp-relative slot for caller-saves around calls.
    #: Disjoint from ``saves``: a wrapped register may also be caller-saved
    #: around a call inside its region, and the call-site save must not
    #: overwrite the caller's wrapped value.
    call_saves: Dict[int, int] = field(default_factory=dict)
    ra_offset: Optional[int] = None

    def home_of(self, v: VReg) -> int:
        try:
            return self.homes[v]
        except KeyError:
            raise CodegenError(f"no spill home for {v.name}") from None

    def save_slot(self, reg_index: int) -> int:
        try:
            return self.saves[reg_index]
        except KeyError:
            raise CodegenError(
                f"no save slot for register {reg_index}"
            ) from None

    def call_save_slot(self, reg_index: int) -> int:
        try:
            return self.call_saves[reg_index]
        except KeyError:
            raise CodegenError(
                f"no call-save slot for register {reg_index}"
            ) from None


def build_frame(
    plan,
    spilled: Iterable[VReg],
    stack_param_homes: Dict[VReg, int],
    save_regs: Iterable[int],
    max_out_args: int,
    needs_ra: bool,
    call_save_regs: Iterable[int] = (),
) -> Frame:
    """Lay out the frame of ``plan``'s procedure.

    ``spilled`` are the memory-resident vregs needing an in-frame home;
    ``stack_param_homes`` maps incoming stack-passed params to their
    argument position (their home is the caller's outgoing slot);
    ``save_regs`` are register indices needing a save slot (ra excluded);
    ``call_save_regs`` need a (separate) slot for saves around calls.
    """
    fn = plan.alloc.fn
    frame = Frame(out_args=max_out_args)
    offset = max_out_args
    for name, size in fn.local_arrays.items():
        frame.arrays[name] = offset
        offset += size
    for v in sorted(spilled, key=lambda v: (v.kind.value, v.name, v.index)):
        frame.homes[v] = offset
        offset += 1
    for idx in sorted(save_regs):
        frame.saves[idx] = offset
        offset += 1
    for idx in sorted(call_save_regs):
        frame.call_saves[idx] = offset
        offset += 1
    if needs_ra:
        frame.ra_offset = offset
        offset += 1
    frame.size = offset
    # incoming stack params live just above this frame
    for v, pos in stack_param_homes.items():
        frame.homes[v] = frame.size + pos
    return frame
