"""Sequentializing parallel register moves.

Argument staging and parameter arrival are *parallel* assignments: every
source is read in the old state, every destination written in the new one.
Sequentialization is the classic two-phase algorithm: emit "tree" moves
whose destination nobody still needs, then break the remaining permutation
cycles with a single scratch register.  A cycle of length k costs k+1
moves, so the output never exceeds ``n + max(1, n // 2)`` moves for n
non-trivial inputs.  The scratch may hold garbage on entry; it is written
before it is read.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.target.registers import Register

Move = Tuple[Register, Register]  # (dst, src)


def resolve_parallel_moves(
    moves: List[Move], scratch: Register
) -> List[Move]:
    """Turn parallel ``(dst, src)`` moves into an equivalent sequence.

    Destinations must be distinct; sources may repeat (fan-out).  Trivial
    ``dst == src`` moves are dropped.  ``scratch`` must not appear among
    the destinations or sources.
    """
    pending: Dict[int, Move] = {}
    src_uses: Dict[int, int] = {}
    for dst, src in moves:
        if dst.index == src.index:
            continue
        if dst.index in pending:
            raise ValueError(f"duplicate destination ${dst.name}")
        pending[dst.index] = (dst, src)
        src_uses[src.index] = src_uses.get(src.index, 0) + 1

    out: List[Move] = []
    # Tree phase: any destination that is no longer needed as a source can
    # be written immediately; doing so may free its own source in turn.
    ready = [d for d in pending if src_uses.get(d, 0) == 0]
    while ready:
        d = ready.pop()
        dst, src = pending.pop(d)
        out.append((dst, src))
        src_uses[src.index] -= 1
        if src_uses[src.index] == 0 and src.index in pending:
            ready.append(src.index)

    # Cycle phase: whatever remains is a union of disjoint cycles.
    while pending:
        start, (dst, src) = next(iter(pending.items()))
        out.append((scratch, dst))
        # follow the cycle: dst <- src, src <- src's src, ... until we
        # come back around to ``start``, which takes its value from scratch
        cur = dst
        cur_src = src
        while cur_src.index != start:
            out.append((cur, cur_src))
            del pending[cur.index]
            cur = cur_src
            cur_src = pending[cur.index][1]
        out.append((cur, scratch))
        del pending[cur.index]
    return out
