"""The virtual R2000-flavoured target: registers, ISA, frames, codegen.

Exports are resolved lazily (PEP 562): ``codegen`` consumes the
allocator's plan types while the allocator itself imports the register
file from here, so eagerly importing everything would be circular.
"""

import importlib
from typing import List

_EXPORTS = {
    "generate_function": "repro.target.codegen",
    "CodegenError": "repro.target.frame",
    "Frame": "repro.target.frame",
    "build_frame": "repro.target.frame",
    "AsmFunction": "repro.target.isa",
    "Instr": "repro.target.isa",
    "MemKind": "repro.target.isa",
    "Opcode": "repro.target.isa",
    "disassemble": "repro.target.isa",
    "latency": "repro.target.isa",
    "resolve_parallel_moves": "repro.target.parallel_move",
    "ALL_REGISTERS": "repro.target.registers",
    "ALLOCATABLE": "repro.target.registers",
    "ALLOCATABLE_MASK": "repro.target.registers",
    "CALLEE_ONLY_7": "repro.target.registers",
    "CALLEE_SAVED": "repro.target.registers",
    "CALLEE_SAVED_MASK": "repro.target.registers",
    "CALLER_ONLY_7": "repro.target.registers",
    "CALLER_SAVED": "repro.target.registers",
    "CALLER_SAVED_MASK": "repro.target.registers",
    "Convention": "repro.target.registers",
    "ConventionError": "repro.target.registers",
    "DEFAULT_CLOBBER_MASK": "repro.target.registers",
    "DEFAULT_CONVENTION": "repro.target.registers",
    "DEFAULT_LADDER": "repro.target.registers",
    "FULL_FILE": "repro.target.registers",
    "LADDER_TAGS": "repro.target.registers",
    "NUM_PARAM_REGS": "repro.target.registers",
    "NUM_REGISTERS": "repro.target.registers",
    "PARAM_REGS": "repro.target.registers",
    "Register": "repro.target.registers",
    "RegisterFile": "repro.target.registers",
    "callee_only_file": "repro.target.registers",
    "caller_only_file": "repro.target.registers",
    "convention_from_register_file": "repro.target.registers",
    "reg": "repro.target.registers",
    "registers_in_mask": "repro.target.registers",
    "split_convention": "repro.target.registers",
    "validate_convention": "repro.target.registers",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
