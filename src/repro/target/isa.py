"""The virtual instruction set.

A small R2000-flavoured ISA: three-register ALU ops, immediate forms,
loads/stores with a single base+offset addressing mode, absolute branches
and jump-and-link.  ``Opcode`` order is load-bearing: the simulator
pre-decodes instructions to integer opcode numbers by enum position, so
new opcodes must be appended, never inserted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.target.registers import Register


class Opcode(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLT = "slt"
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    ADDI = "addi"
    LI = "li"
    LA = "la"
    MOVE = "move"
    NEG = "neg"
    NOT = "not"
    LW = "lw"
    SW = "sw"
    B = "b"
    BEQZ = "beqz"
    BNEZ = "bnez"
    JAL = "jal"
    JALR = "jalr"
    JR = "jr"
    PRINT = "print"
    HALT = "halt"


# ---------------------------------------------------------------------------
# Word-width semantics.
#
# MiniC values are unbounded Python ints (see ``repro.ir.arith``): the
# paper's metrics are width-independent, and unbounded ints keep the
# simulators fast.  The one opcode whose meaning *requires* a finite
# word is SRL -- a logical right shift is defined by the zero bits it
# shifts in at the top of the word.  We fix the word at 64 bits: SRL
# masks its operand to the word, shifts zeros in, and re-signs the
# result, while SRA stays an arithmetic shift of the unbounded value.
# ---------------------------------------------------------------------------

WORD_BITS = 64
WORD_MASK = (1 << WORD_BITS) - 1
_SIGN_BIT = 1 << (WORD_BITS - 1)


def to_signed(value: int) -> int:
    """Reinterpret the low ``WORD_BITS`` bits as a two's-complement int."""
    value &= WORD_MASK
    return value - (1 << WORD_BITS) if value & _SIGN_BIT else value


def srl(value: int, amount: int) -> int:
    """Logical right shift on the 64-bit word.

    The operand is truncated to the word, zeros shift in at bit 63, and
    the result is re-signed (only ``amount == 0`` can leave the sign bit
    set).  Contrast SRA, which is ``value >> amount`` on the unbounded
    int and therefore shifts copies of the sign in.
    """
    return to_signed((value & WORD_MASK) >> amount)


class MemKind(enum.Enum):
    """Why a load/store exists -- drives the paper's traffic breakdown."""

    SCALAR = "scalar"      # spilled locals/temps and global scalars
    PARAM = "param"        # parameter homing and stack-argument traffic
    SAVE = "save"          # register saves (ra, callee-/caller-saved)
    RESTORE = "restore"    # the matching reloads
    DATA = "data"          # array element traffic (not a scalar class)

    @property
    def is_scalar_class(self) -> bool:
        return self is not MemKind.DATA


# Cycle costs.  Single-cycle ALU core with a load-delay-free but 2-cycle
# memory pipe and the classic long multiply/divide.
_LATENCY: Dict[Opcode, int] = {
    Opcode.MUL: 10,
    Opcode.DIV: 35,
    Opcode.REM: 35,
    Opcode.LW: 2,
    Opcode.SW: 2,
    Opcode.JAL: 2,
    Opcode.JALR: 2,
}


def latency(op: Opcode) -> int:
    return _LATENCY.get(op, 1)


_THREE_REG = {
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL,
    Opcode.SRA, Opcode.SLT, Opcode.SLE, Opcode.SEQ, Opcode.SNE,
}


@dataclass
class Instr:
    """One machine instruction.  Fields not used by ``op`` stay ``None``."""

    op: Opcode
    rd: Optional[Register] = None
    rs: Optional[Register] = None
    rt: Optional[Register] = None
    imm: Optional[int] = None
    label: Optional[str] = None
    kind: Optional[MemKind] = None
    comment: Optional[str] = None

    def render(self) -> str:
        op = self.op
        text = self._operands(op)
        if self.comment:
            text = f"{text:<28}# {self.comment}"
        return text

    def _operands(self, op: Opcode) -> str:
        name = op.value
        if op in _THREE_REG:
            return f"{name} ${self.rd.name}, ${self.rs.name}, ${self.rt.name}"
        if op is Opcode.ADDI:
            return f"{name} ${self.rd.name}, ${self.rs.name}, {self.imm}"
        if op in (Opcode.LI, Opcode.LA):
            target = self.label if self.label is not None else self.imm
            return f"{name} ${self.rd.name}, {target}"
        if op in (Opcode.MOVE, Opcode.NEG, Opcode.NOT):
            return f"{name} ${self.rd.name}, ${self.rs.name}"
        if op is Opcode.LW:
            return f"{name} ${self.rd.name}, {self._addr(self.rs)}"
        if op is Opcode.SW:
            return f"{name} ${self.rs.name}, {self._addr(self.rt)}"
        if op is Opcode.B:
            return f"{name} {self.label or self.imm}"
        if op in (Opcode.BEQZ, Opcode.BNEZ):
            return f"{name} ${self.rs.name}, {self.label or self.imm}"
        if op is Opcode.JAL:
            return f"{name} {self.label or self.imm}"
        if op in (Opcode.JALR, Opcode.JR):
            return f"{name} ${self.rs.name}"
        if op is Opcode.PRINT:
            return f"{name} ${self.rs.name}"
        return name  # HALT

    def _addr(self, base: Optional[Register]) -> str:
        if self.label is not None:
            off = f"+{self.imm}" if self.imm else ""
            return f"{self.label}{off}"
        return f"{self.imm or 0}(${base.name})"


@dataclass
class AsmFunction:
    """Generated code for one procedure.

    ``labels`` maps an instruction index to the label names attached just
    before it; an index equal to ``len(instrs)`` labels the end.
    """

    name: str
    instrs: List[Instr] = field(default_factory=list)
    labels: Dict[int, List[str]] = field(default_factory=dict)

    def add_label(self, label: str, index: Optional[int] = None) -> None:
        at = len(self.instrs) if index is None else index
        self.labels.setdefault(at, []).append(label)

    def emit(self, instr: Instr) -> Instr:
        self.instrs.append(instr)
        return instr

    def render(self) -> str:
        lines = [f"{self.name}:"]
        for i, ins in enumerate(self.instrs):
            for lab in self.labels.get(i, ()):
                lines.append(f"{lab}:")
            lines.append(f"    {ins.render()}")
        for lab in self.labels.get(len(self.instrs), ()):
            lines.append(f"{lab}:")
        return "\n".join(lines)


def disassemble(instrs: Iterable[Instr]) -> str:
    return "\n".join(ins.render() for ins in instrs)
