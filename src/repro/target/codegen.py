"""Code generation: one allocated IR procedure -> assembly.

Consumes a :class:`~repro.interproc.allocator.FnPlan` (allocation +
save/restore strategy) and expands IR instructions into the virtual ISA:

* values live in their assigned registers or in frame spill homes;
  global scalars without a register are addressed symbolically (the
  linker folds the data address into the load/store immediate);
* call sites stage arguments per the callee's :class:`ParamSpec` list --
  register arguments as one *parallel* move (sequentialized cycle-free
  with the ``at2`` scratch), stack arguments into the outgoing area --
  and caller-save exactly the live registers the callee may clobber;
* callee-saved registers are saved at entry / restored at exits, or at
  the shrink-wrapped placements the plan carries;
* every load/store is tagged with a :class:`MemKind` so the simulator
  can reproduce the paper's memory-traffic breakdown.

Scratch discipline: ``at0``/``at1`` materialise operands, ``at2`` is
reserved for parallel-move cycles, and an indirect call target is moved
to ``at1`` before staging so it survives argument moves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.dataflow.liveness import instruction_live_sets
from repro.interproc.summaries import ParamSpec, default_param_specs
from repro.ir.instructions import (
    Bin,
    Call,
    CallInd,
    CJump,
    Jump,
    LoadFunc,
    LoadIdx,
    Mov,
    Print,
    Ret,
    StoreIdx,
    Un,
)
from repro.ir.values import Const, Value, VKind, VReg
from repro.target.frame import CodegenError, Frame, build_frame
from repro.target.isa import AsmFunction, Instr, MemKind, Opcode
from repro.target.parallel_move import resolve_parallel_moves
from repro.target.registers import (
    ALL_REGISTERS,
    AT0,
    AT1,
    AT2,
    RA,
    Register,
    SP,
    V0,
    ZERO,
)

__all__ = ["CodegenError", "generate_function"]

_BIN_SIMPLE = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SLL,
    ">>": Opcode.SRA,
    "<": Opcode.SLT,
    "<=": Opcode.SLE,
    "==": Opcode.SEQ,
    "!=": Opcode.SNE,
}
# comparisons lowered by swapping operands
_BIN_SWAPPED = {">": Opcode.SLT, ">=": Opcode.SLE}


def generate_function(plan, global_arrays: Dict[str, int]) -> AsmFunction:
    """Generate assembly for one procedure from its allocation plan."""
    return _Emitter(plan, global_arrays).run()


class _Emitter:
    def __init__(self, plan, global_arrays: Dict[str, int]):
        self.plan = plan
        self.alloc = plan.alloc
        self.fn = self.alloc.fn
        self.cfg = self.alloc.cfg
        self.global_arrays = global_arrays
        self.assignment = self.alloc.assignment
        self.specs_by_pos: Dict[int, ParamSpec] = {
            s.pos: s for s in plan.incoming_params
        }
        self.asm = AsmFunction(name=self.fn.name)
        #: id(call instr) -> register indices to caller-save around it
        self.call_saves: Dict[int, List[int]] = {}
        self.frame = self._plan_frame()
        self.cached_globals = sorted(
            (
                (v, r)
                for v, r in self.assignment.items()
                if v.kind is VKind.GLOBAL
            ),
            key=lambda pair: pair[1].index,
        )
        # Only *written* cached globals get an exit store.  The allocator
        # pins exactly those live to the exit; a read-only global's range
        # ends at its last use and its register may be reused afterwards,
        # so storing it back would write the reuser's value.
        written = {
            d
            for block in self.fn.blocks
            for ins in block.instrs
            for d in ins.defs()
        }
        self.writeback_globals = [
            (v, r) for v, r in self.cached_globals if v in written
        ]

    # ------------------------------------------------------------------
    # frame planning
    # ------------------------------------------------------------------

    def _call_specs(self, ins) -> List[ParamSpec]:
        specs = self.alloc.call_params.get(id(ins))
        if specs is None:
            specs = default_param_specs(
                len(ins.args), getattr(self.plan, "convention", None)
            )
        return specs

    def _plan_frame(self) -> Frame:
        fn, alloc = self.fn, self.alloc
        spilled: Set[VReg] = set()
        stack_param_homes: Dict[VReg, int] = {}
        for v in fn.vregs:
            if v in self.assignment or v.kind is VKind.GLOBAL:
                continue
            spec = (
                self.specs_by_pos.get(v.index)
                if v.kind is VKind.PARAM
                else None
            )
            if spec is not None and spec.on_stack:
                stack_param_homes[v] = spec.stack_slot
            else:
                spilled.add(v)

        max_out_args = 0
        needs_ra = False
        for block in fn.blocks:
            for ins in block.instrs:
                if ins.is_call:
                    needs_ra = True
                    max_out_args = max(max_out_args, len(ins.args))

        # registers holding values live across each call, to be saved by
        # the caller around the site (their slots are disjoint from the
        # callee-saved/wrapped slots below)
        call_save_regs: Set[int] = set()
        for b, block in enumerate(self.cfg.blocks):
            records = list(
                instruction_live_sets(block, alloc.liveness.live_out[b])
            )
            for ins, live_before, live_after in records:
                if not ins.is_call:
                    continue
                clobber = self.alloc.call_clobbers.get(id(ins), 0)
                across = (live_after & live_before) - set(ins.defs())
                at_site = sorted(
                    {
                        self.assignment[v].index
                        for v in across
                        if v in self.assignment
                        and clobber >> self.assignment[v].index & 1
                    }
                )
                if at_site:
                    self.call_saves[id(ins)] = at_site
                    call_save_regs.update(at_site)

        save_regs: Set[int] = {r.index for r in self.plan.entry_exit_saves}
        save_regs.update(self.plan.wrapped)

        return build_frame(
            self.plan,
            spilled,
            stack_param_homes,
            save_regs,
            max_out_args,
            needs_ra,
            call_save_regs,
        )

    # ------------------------------------------------------------------
    # small emission helpers
    # ------------------------------------------------------------------

    def emit(self, **kw) -> Instr:
        return self.asm.emit(Instr(**kw))

    def _save(self, r: Register, offset: int) -> None:
        self.emit(
            op=Opcode.SW, rs=r, rt=SP, imm=offset, kind=MemKind.SAVE
        )

    def _restore(self, r: Register, offset: int) -> None:
        self.emit(
            op=Opcode.LW, rd=r, rs=SP, imm=offset, kind=MemKind.RESTORE
        )

    def read_value(self, val: Value, scratch: Register) -> Register:
        """A register holding ``val``; loads into ``scratch`` if needed."""
        if isinstance(val, Const):
            self.emit(op=Opcode.LI, rd=scratch, imm=val.value)
            return scratch
        r = self.assignment.get(val)
        if r is not None:
            return r
        if val.kind is VKind.GLOBAL:
            self.emit(
                op=Opcode.LW, rd=scratch, rs=ZERO, label=val.name,
                kind=MemKind.SCALAR,
            )
            return scratch
        self.emit(
            op=Opcode.LW, rd=scratch, rs=SP,
            imm=self.frame.home_of(val), kind=MemKind.SCALAR,
        )
        return scratch

    def write_dst(self, v: VReg, src: Register) -> None:
        """Store ``src`` into ``v``'s location."""
        r = self.assignment.get(v)
        if r is not None:
            if r.index != src.index:
                self.emit(op=Opcode.MOVE, rd=r, rs=src)
            return
        if v.kind is VKind.GLOBAL:
            self.emit(
                op=Opcode.SW, rs=src, rt=ZERO, label=v.name,
                kind=MemKind.SCALAR,
            )
            return
        self.emit(
            op=Opcode.SW, rs=src, rt=SP, imm=self.frame.home_of(v),
            kind=MemKind.SCALAR,
        )

    def dest_reg(self, v: VReg) -> Register:
        return self.assignment.get(v, AT0)

    # ------------------------------------------------------------------
    # prologue / epilogue
    # ------------------------------------------------------------------

    def _prologue(self) -> None:
        frame = self.frame
        if frame.size:
            self.emit(
                op=Opcode.ADDI, rd=SP, rs=SP, imm=-frame.size,
                comment=f"frame {frame.size}",
            )
        if frame.ra_offset is not None:
            self._save(RA, frame.ra_offset)
        for r in self.plan.entry_exit_saves:
            self._save(r, frame.save_slot(r.index))
        for idx in sorted(self.plan.wrapped):
            if self.cfg.entry in self.plan.wrapped[idx].saves:
                self._save(ALL_REGISTERS[idx], frame.save_slot(idx))
        # params first: a cached global may occupy an arrival register,
        # so its cache load must not clobber an unread incoming argument
        self._stage_incoming_params()
        for v, r in self.cached_globals:
            self.emit(
                op=Opcode.LW, rd=r, rs=ZERO, label=v.name,
                kind=MemKind.SCALAR, comment=f"cache {v.name}",
            )

    def _stage_incoming_params(self) -> None:
        params_by_pos = {v.index: v for v in self.fn.param_vregs}
        live_entry = self.alloc.liveness.live_in[self.cfg.entry]
        stores: List[Tuple[Register, VReg]] = []
        moves: List[Tuple[Register, Register]] = []
        loads: List[Tuple[Register, int]] = []
        for pos, spec in sorted(self.specs_by_pos.items()):
            v = params_by_pos.get(pos)
            if v is None or spec.dead:
                continue
            assigned = self.assignment.get(v)
            if spec.reg is not None:
                if assigned is not None:
                    if assigned.index != spec.reg.index:
                        moves.append((assigned, spec.reg))
                elif v in live_entry:
                    stores.append((spec.reg, v))
            else:  # stack-passed: home *is* the incoming slot
                if assigned is not None:
                    loads.append((assigned, self.frame.size + pos))
        # stores first (they only read arrival registers), then the
        # parallel arrival moves, then loads off the caller's frame
        for src, v in stores:
            self.emit(
                op=Opcode.SW, rs=src, rt=SP, imm=self.frame.home_of(v),
                kind=MemKind.PARAM, comment=f"home {v.name}",
            )
        for dst, src in resolve_parallel_moves(moves, AT2):
            self.emit(op=Opcode.MOVE, rd=dst, rs=src)
        for dst, offset in loads:
            self.emit(
                op=Opcode.LW, rd=dst, rs=SP, imm=offset,
                kind=MemKind.PARAM,
            )

    def _epilogue(self, block_id: int) -> None:
        """Everything between the return value and ``jr $ra``."""
        frame = self.frame
        for v, r in self.writeback_globals:
            self.emit(
                op=Opcode.SW, rs=r, rt=ZERO, label=v.name,
                kind=MemKind.SCALAR, comment=f"writeback {v.name}",
            )
        self._wrapped_restores(block_id)
        for r in self.plan.entry_exit_saves:
            self._restore(r, frame.save_slot(r.index))
        if frame.ra_offset is not None:
            self._restore(RA, frame.ra_offset)
        if frame.size:
            self.emit(op=Opcode.ADDI, rd=SP, rs=SP, imm=frame.size)
        self.emit(op=Opcode.JR, rs=RA)

    def _wrapped_saves(self, block_id: int) -> None:
        for idx in sorted(self.plan.wrapped):
            if block_id in self.plan.wrapped[idx].saves:
                self._save(ALL_REGISTERS[idx], self.frame.save_slot(idx))

    def _wrapped_restores(self, block_id: int) -> None:
        for idx in sorted(self.plan.wrapped):
            if block_id in self.plan.wrapped[idx].restores:
                self._restore(ALL_REGISTERS[idx], self.frame.save_slot(idx))

    def _restored_here(self, block_id: int) -> Set[int]:
        return {
            idx
            for idx, placement in self.plan.wrapped.items()
            if block_id in placement.restores
        }

    # ------------------------------------------------------------------
    # straight-line instructions
    # ------------------------------------------------------------------

    def _emit_instr(self, ins) -> None:
        if isinstance(ins, Bin):
            self._emit_bin(ins)
        elif isinstance(ins, Un):
            self._emit_un(ins)
        elif isinstance(ins, Mov):
            src = self.read_value(ins.src, self.dest_reg(ins.dst))
            self.write_dst(ins.dst, src)
        elif isinstance(ins, LoadIdx):
            self._emit_load_idx(ins)
        elif isinstance(ins, StoreIdx):
            self._emit_store_idx(ins)
        elif isinstance(ins, LoadFunc):
            rd = self.dest_reg(ins.dst)
            self.emit(op=Opcode.LA, rd=rd, label=ins.func)
            self.write_dst(ins.dst, rd)
        elif isinstance(ins, (Call, CallInd)):
            self._emit_call(ins)
        elif isinstance(ins, Print):
            r = self.read_value(ins.value, AT0)
            self.emit(op=Opcode.PRINT, rs=r)
        else:
            raise CodegenError(f"cannot generate {ins!r}")

    def _emit_bin(self, ins: Bin) -> None:
        ra = self.read_value(ins.a, AT0)
        rb = self.read_value(ins.b, AT1)
        rd = self.dest_reg(ins.dst)
        op = _BIN_SIMPLE.get(ins.op)
        if op is not None:
            self.emit(op=op, rd=rd, rs=ra, rt=rb)
        else:
            swapped = _BIN_SWAPPED.get(ins.op)
            if swapped is None:
                raise CodegenError(f"unknown binary operator {ins.op!r}")
            self.emit(op=swapped, rd=rd, rs=rb, rt=ra)
        self.write_dst(ins.dst, rd)

    def _emit_un(self, ins: Un) -> None:
        ra = self.read_value(ins.a, AT0)
        rd = self.dest_reg(ins.dst)
        if ins.op == "-":
            self.emit(op=Opcode.NEG, rd=rd, rs=ra)
        elif ins.op == "!":
            self.emit(op=Opcode.NOT, rd=rd, rs=ra)
        elif ins.op == "~":
            # ~x == -x - 1 (the ISA has no bitwise-not)
            self.emit(op=Opcode.NEG, rd=rd, rs=ra)
            self.emit(op=Opcode.ADDI, rd=rd, rs=rd, imm=-1)
        else:
            raise CodegenError(f"unknown unary operator {ins.op!r}")
        self.write_dst(ins.dst, rd)

    def _array_base(self, name: str) -> Optional[int]:
        """Local-array frame offset, or None for a global array."""
        if name in self.fn.local_arrays:
            return self.frame.arrays[name]
        if name not in self.global_arrays:
            raise CodegenError(f"unknown array {name!r}")
        return None

    def _emit_load_idx(self, ins: LoadIdx) -> None:
        base = self._array_base(ins.array)
        rd = self.dest_reg(ins.dst)
        if isinstance(ins.idx, Const):
            if base is not None:
                self.emit(
                    op=Opcode.LW, rd=rd, rs=SP,
                    imm=base + ins.idx.value, kind=MemKind.DATA,
                )
            else:
                self.emit(
                    op=Opcode.LW, rd=rd, rs=ZERO, label=ins.array,
                    imm=ins.idx.value, kind=MemKind.DATA,
                )
        else:
            idx = self.read_value(ins.idx, AT1)
            if base is not None:
                self.emit(op=Opcode.ADD, rd=AT1, rs=SP, rt=idx)
                self.emit(
                    op=Opcode.LW, rd=rd, rs=AT1, imm=base,
                    kind=MemKind.DATA,
                )
            else:
                self.emit(
                    op=Opcode.LW, rd=rd, rs=idx, label=ins.array,
                    kind=MemKind.DATA,
                )
        self.write_dst(ins.dst, rd)

    def _emit_store_idx(self, ins: StoreIdx) -> None:
        base = self._array_base(ins.array)
        src = self.read_value(ins.src, AT0)
        if isinstance(ins.idx, Const):
            if base is not None:
                self.emit(
                    op=Opcode.SW, rs=src, rt=SP,
                    imm=base + ins.idx.value, kind=MemKind.DATA,
                )
            else:
                self.emit(
                    op=Opcode.SW, rs=src, rt=ZERO, label=ins.array,
                    imm=ins.idx.value, kind=MemKind.DATA,
                )
        else:
            idx = self.read_value(ins.idx, AT1)
            if base is not None:
                self.emit(op=Opcode.ADD, rd=AT1, rs=SP, rt=idx)
                self.emit(
                    op=Opcode.SW, rs=src, rt=AT1, imm=base,
                    kind=MemKind.DATA,
                )
            else:
                self.emit(
                    op=Opcode.SW, rs=src, rt=idx, label=ins.array,
                    kind=MemKind.DATA,
                )

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _emit_call(self, ins) -> None:
        frame = self.frame
        specs = self._call_specs(ins)
        saved = self.call_saves.get(id(ins), [])
        for idx in saved:
            self._save(ALL_REGISTERS[idx], frame.call_save_slot(idx))

        indirect = isinstance(ins, CallInd)
        if indirect:
            # the target must survive argument staging: park it in at1
            target = self.read_value(ins.target, AT1)
            if target.index != AT1.index:
                self.emit(op=Opcode.MOVE, rd=AT1, rs=target)

        # stack arguments first: they only *read* registers
        for spec in specs:
            if spec.on_stack:
                src = self.read_value(ins.args[spec.pos], AT0)
                self.emit(
                    op=Opcode.SW, rs=src, rt=SP, imm=spec.stack_slot,
                    kind=MemKind.PARAM,
                )
        # register arguments: currently-in-register values form one
        # parallel move; constants and memory values load afterwards
        moves: List[Tuple[Register, Register]] = []
        loads: List[Tuple[Register, Value]] = []
        for spec in specs:
            if spec.reg is None or spec.dead:
                continue
            val = ins.args[spec.pos]
            cur = (
                self.assignment.get(val) if isinstance(val, VReg) else None
            )
            if cur is not None:
                moves.append((spec.reg, cur))
            else:
                loads.append((spec.reg, val))
        for dst, src in resolve_parallel_moves(moves, AT2):
            self.emit(op=Opcode.MOVE, rd=dst, rs=src)
        for dst, val in loads:
            self.read_value(val, dst)

        if indirect:
            self.emit(op=Opcode.JALR, rs=AT1)
        else:
            self.emit(op=Opcode.JAL, label=ins.func)

        for idx in saved:
            self._restore(ALL_REGISTERS[idx], frame.call_save_slot(idx))
        if ins.dst is not None:
            self.write_dst(ins.dst, V0)

    # ------------------------------------------------------------------
    # terminators
    # ------------------------------------------------------------------

    def _label_of(self, block_name: str) -> str:
        return f"{self.fn.name}.{block_name}"

    def _emit_terminator(self, block_id: int, term) -> None:
        if isinstance(term, Ret):
            if term.value is not None:
                r = self.read_value(term.value, AT0)
                if r.index != V0.index:
                    self.emit(op=Opcode.MOVE, rd=V0, rs=r)
            else:
                # make `return;` deterministic
                self.emit(op=Opcode.LI, rd=V0, imm=0)
            self._epilogue(block_id)
        elif isinstance(term, CJump):
            cond = self.read_value(term.cond, AT0)
            restored = self._restored_here(block_id)
            if cond.index in restored:
                self.emit(op=Opcode.MOVE, rd=AT0, rs=cond)
                cond = AT0
            self._wrapped_restores(block_id)
            self.emit(
                op=Opcode.BNEZ, rs=cond, label=self._label_of(term.if_true)
            )
            self.emit(op=Opcode.B, label=self._label_of(term.if_false))
        elif isinstance(term, Jump):
            self._wrapped_restores(block_id)
            self.emit(op=Opcode.B, label=self._label_of(term.target))
        else:
            raise CodegenError(f"cannot generate terminator {term!r}")

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def run(self) -> AsmFunction:
        self._prologue()
        for b, block in enumerate(self.cfg.blocks):
            self.asm.add_label(self._label_of(block.name))
            if b != self.cfg.entry:
                self._wrapped_saves(b)
            for ins in block.instrs:
                self._emit_instr(ins)
            self._emit_terminator(b, block.terminator)
        return self.asm
