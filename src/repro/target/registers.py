"""The virtual R2000-flavoured register file.

Chow's central data structure is "one word of storage" per procedure: an
int bitmask over the register file.  Everything here is bitmask-native --
register sets are plain ints, membership is ``mask >> r.index & 1``, union
and intersection are ``|`` and ``&``, and the mask -> register-list
direction is served from precomputed per-byte tables so hot paths never
loop over bits.

Layout (index = bit position in every mask)::

    0        zero   hardwired zero
    1..3     at0-at2  assembler/codegen scratch (never allocatable)
    4        v0     return value
    5..8     a0-a3  argument registers      (caller-saved, allocatable)
    9..15    t0-t6  temporaries             (caller-saved, allocatable)
    16..24   s0-s8  saved registers         (callee-saved, allocatable)
    25       sp     stack pointer
    26       ra     return address
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Register",
    "RegisterFile",
    "Convention",
    "ConventionError",
    "ALL_REGISTERS",
    "ALLOCATABLE",
    "ALLOCATABLE_MASK",
    "CALLER_SAVED",
    "CALLER_SAVED_MASK",
    "CALLEE_SAVED",
    "CALLEE_SAVED_MASK",
    "CALLEE_ONLY_7",
    "CALLER_ONLY_7",
    "DEFAULT_CLOBBER_MASK",
    "DEFAULT_CONVENTION",
    "DEFAULT_LADDER",
    "FULL_FILE",
    "LADDER_TAGS",
    "NUM_PARAM_REGS",
    "NUM_REGISTERS",
    "PARAM_REGS",
    "ZERO",
    "AT0",
    "AT1",
    "AT2",
    "V0",
    "SP",
    "RA",
    "reg",
    "registers_in_mask",
    "caller_only_file",
    "callee_only_file",
    "convention_from_register_file",
    "split_convention",
    "validate_convention",
]


@dataclass(frozen=True)
class Register:
    """One physical register.  Hashable; identity is the index."""

    index: int
    name: str
    caller_saved: bool = False
    callee_saved: bool = False
    is_param: bool = False

    @property
    def mask(self) -> int:
        return 1 << self.index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"${self.name}"


def _build_file() -> Tuple[Register, ...]:
    regs: List[Register] = [Register(0, "zero")]
    regs += [Register(i, f"at{i - 1}") for i in (1, 2, 3)]
    regs.append(Register(4, "v0"))
    regs += [
        Register(5 + k, f"a{k}", caller_saved=True, is_param=True)
        for k in range(4)
    ]
    regs += [Register(9 + k, f"t{k}", caller_saved=True) for k in range(7)]
    regs += [Register(16 + k, f"s{k}", callee_saved=True) for k in range(9)]
    regs.append(Register(25, "sp"))
    regs.append(Register(26, "ra"))
    return tuple(regs)


ALL_REGISTERS: Tuple[Register, ...] = _build_file()
NUM_REGISTERS = len(ALL_REGISTERS)

ZERO = ALL_REGISTERS[0]
AT0 = ALL_REGISTERS[1]
AT1 = ALL_REGISTERS[2]
AT2 = ALL_REGISTERS[3]
V0 = ALL_REGISTERS[4]
SP = ALL_REGISTERS[25]
RA = ALL_REGISTERS[26]

PARAM_REGS: Tuple[Register, ...] = tuple(
    r for r in ALL_REGISTERS if r.is_param
)
NUM_PARAM_REGS = len(PARAM_REGS)

CALLER_SAVED: Tuple[Register, ...] = tuple(
    r for r in ALL_REGISTERS if r.caller_saved
)
CALLEE_SAVED: Tuple[Register, ...] = tuple(
    r for r in ALL_REGISTERS if r.callee_saved
)
ALLOCATABLE: Tuple[Register, ...] = CALLER_SAVED + CALLEE_SAVED


def _mask_of(regs: Sequence[Register]) -> int:
    m = 0
    for r in regs:
        m |= r.mask
    return m


CALLER_SAVED_MASK = _mask_of(CALLER_SAVED)
CALLEE_SAVED_MASK = _mask_of(CALLEE_SAVED)
ALLOCATABLE_MASK = CALLER_SAVED_MASK | CALLEE_SAVED_MASK

# What a call to a procedure compiled under the default convention may
# destroy: every caller-saved register plus the return-value register.
DEFAULT_CLOBBER_MASK = CALLER_SAVED_MASK | V0.mask

_BY_NAME: Dict[str, Register] = {r.name: r for r in ALL_REGISTERS}


def reg(name: str) -> Register:
    """Look a register up by name (``reg("a0")``)."""
    return _BY_NAME[name]


# ---------------------------------------------------------------------------
# mask -> register list, without per-query bit loops
# ---------------------------------------------------------------------------

# One table per byte position: _BYTE_TABLE[b][v] lists the registers whose
# index is in [8b, 8b+8) and whose bit is set in v << 8b.  A lookup is then
# a handful of table reads + tuple concatenation, and full results are
# memoised per mask.
_BYTE_TABLE: List[List[Tuple[Register, ...]]] = []
for _b in range((NUM_REGISTERS + 7) // 8):
    _table: List[Tuple[Register, ...]] = []
    for _v in range(256):
        _table.append(
            tuple(
                ALL_REGISTERS[_b * 8 + _i]
                for _i in range(8)
                if _v >> _i & 1 and _b * 8 + _i < NUM_REGISTERS
            )
        )
    _BYTE_TABLE.append(_table)

_MASK_CACHE: Dict[int, Tuple[Register, ...]] = {}


def registers_in_mask(mask: int) -> Tuple[Register, ...]:
    """The registers named by ``mask``, in increasing index order."""
    hit = _MASK_CACHE.get(mask)
    if hit is not None:
        return hit
    out: Tuple[Register, ...] = ()
    for b, table in enumerate(_BYTE_TABLE):
        out += table[(mask >> (8 * b)) & 0xFF]
    _MASK_CACHE[mask] = out
    return out


# ---------------------------------------------------------------------------
# register files (what the allocator is allowed to hand out)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegisterFile:
    """An ordered set of allocatable registers, plus its bitmask."""

    allocatable: Tuple[Register, ...]
    mask: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "mask", _mask_of(self.allocatable))

    def __len__(self) -> int:
        return len(self.allocatable)

    def __iter__(self):
        return iter(self.allocatable)

    def __contains__(self, r: Register) -> bool:
        return bool(self.mask >> r.index & 1)


FULL_FILE = RegisterFile(ALLOCATABLE)


def caller_only_file(n: int = len(CALLER_SAVED)) -> RegisterFile:
    """A file of the first ``n`` caller-saved registers (paper config D)."""
    return RegisterFile(CALLER_SAVED[:n])


def callee_only_file(n: int = len(CALLEE_SAVED)) -> RegisterFile:
    """A file of the first ``n`` callee-saved registers (paper config E)."""
    return RegisterFile(CALLEE_SAVED[:n])


# ---------------------------------------------------------------------------
# calling conventions (first-class; the autotuner's search space)
# ---------------------------------------------------------------------------

class ConventionError(ValueError):
    """An ill-formed :class:`Convention` (overlapping or unallocatable
    masks, argument registers outside the caller-saved set, ...)."""


#: the open-demotion ladder of the resilient engine, in escalation
#: order; every rung plans the procedure open, the last rung is the
#: always-compilable reference strategy (no allocation at all)
DEFAULT_LADDER: Tuple[str, ...] = (
    "open", "open-noshrinkwrap", "open-noregalloc",
)

#: every rung tag a Convention ladder may carry
LADDER_TAGS = frozenset(DEFAULT_LADDER)


@dataclass(frozen=True)
class Convention:
    """A first-class calling convention: the paper's fixed caller/callee
    split, register-parameter count, and demotion ladder, as data.

    ``caller_mask`` / ``callee_mask`` classify the *machine's* allocatable
    register classes (linkage is a whole-program agreement, independent
    of how many registers one compile may hand out); ``allocatable`` is
    the ordered subset the allocator may actually assign (allocation
    preference follows tuple order).  ``num_arg_regs`` says how many
    leading parameters travel in ``PARAM_REGS``; the rest go to the
    stack.  ``ladder`` orders the resilient engine's open-demotion rungs.

    ``name`` is cosmetic (excluded from equality and fingerprints);
    everything else is functional and participates in every cache key
    via :meth:`key`.
    """

    allocatable: Tuple[Register, ...] = ALLOCATABLE
    caller_mask: int = CALLER_SAVED_MASK
    callee_mask: int = CALLEE_SAVED_MASK
    num_arg_regs: int = NUM_PARAM_REGS
    ladder: Tuple[str, ...] = DEFAULT_LADDER
    name: str = field(default="custom", compare=False)

    # -- derived views ------------------------------------------------------

    @property
    def mask(self) -> int:
        """Bitmask of the allocatable registers."""
        return _mask_of(self.allocatable)

    @property
    def param_regs(self) -> Tuple[Register, ...]:
        """Registers carrying the leading parameters, in position order."""
        return PARAM_REGS[: self.num_arg_regs]

    @property
    def default_clobber_mask(self) -> int:
        """What a call to a procedure compiled under this convention's
        default linkage may destroy: every caller-saved register plus
        the return-value register."""
        return self.caller_mask | V0.mask

    @property
    def register_file(self) -> RegisterFile:
        """The deprecated :class:`RegisterFile` view of ``allocatable``."""
        return RegisterFile(self.allocatable)

    def is_caller_saved(self, r: Register) -> bool:
        return bool(self.caller_mask >> r.index & 1)

    def is_callee_saved(self, r: Register) -> bool:
        return bool(self.callee_mask >> r.index & 1)

    # -- functional updates -------------------------------------------------

    def with_allocatable(
        self, regs: Sequence[Register]
    ) -> "Convention":
        """The same linkage agreement over a different allocatable pool
        (e.g. the demotion ladder's empty-file reference rung)."""
        return Convention(
            allocatable=tuple(regs),
            caller_mask=self.caller_mask,
            callee_mask=self.callee_mask,
            num_arg_regs=self.num_arg_regs,
            ladder=self.ladder,
            name=self.name,
        )

    # -- stable serialisations ----------------------------------------------

    def key(self) -> Tuple:
        """The functional content as a flat tuple of ints/strings --
        what every plan/codegen/fingerprint cache key folds in, so two
        conventions never collide in any cache layer."""
        return (
            tuple(r.index for r in self.allocatable),
            self.caller_mask,
            self.callee_mask,
            self.num_arg_regs,
            self.ladder,
        )

    def to_spec(self) -> Dict[str, object]:
        """JSON- and pickle-friendly spec (used by suite workers and the
        tuner's report artifact); :func:`convention_from_spec` inverts."""
        return {
            "name": self.name,
            "allocatable": [r.index for r in self.allocatable],
            "caller_mask": self.caller_mask,
            "callee_mask": self.callee_mask,
            "num_arg_regs": self.num_arg_regs,
            "ladder": list(self.ladder),
        }

    @staticmethod
    def from_spec(spec: Dict[str, object]) -> "Convention":
        return Convention(
            allocatable=tuple(
                ALL_REGISTERS[i] for i in spec["allocatable"]
            ),
            caller_mask=int(spec["caller_mask"]),
            callee_mask=int(spec["callee_mask"]),
            num_arg_regs=int(spec["num_arg_regs"]),
            ladder=tuple(spec["ladder"]),
            name=str(spec.get("name", "custom")),
        )

    def describe(self) -> str:
        callers = len(registers_in_mask(self.caller_mask))
        callees = len(registers_in_mask(self.callee_mask))
        return (
            f"{self.name}: {len(self.allocatable)} allocatable "
            f"({callers} caller-saved / {callees} callee-saved), "
            f"{self.num_arg_regs} register args, "
            f"ladder {'>'.join(self.ladder)}"
        )


def validate_convention(conv: Convention) -> Convention:
    """Eagerly check a :class:`Convention` for violations that would
    otherwise miscompile or surface as deep errors; returns ``conv``
    unchanged so call sites can validate inline."""
    if not isinstance(conv, Convention):
        raise ConventionError(
            f"expected Convention, got {type(conv).__name__}"
        )
    if conv.caller_mask & conv.callee_mask:
        overlap = registers_in_mask(conv.caller_mask & conv.callee_mask)
        raise ConventionError(
            "caller and callee masks overlap on "
            + ", ".join(f"${r.name}" for r in overlap)
        )
    if (conv.caller_mask | conv.callee_mask) & ~ALLOCATABLE_MASK:
        bad = registers_in_mask(
            (conv.caller_mask | conv.callee_mask) & ~ALLOCATABLE_MASK
        )
        raise ConventionError(
            "convention masks cover reserved registers: "
            + ", ".join(f"${r.name}" for r in bad)
        )
    unclassified = conv.mask & ~(conv.caller_mask | conv.callee_mask)
    if unclassified:
        bad = registers_in_mask(unclassified)
        raise ConventionError(
            "allocatable registers with no save class: "
            + ", ".join(f"${r.name}" for r in bad)
        )
    if not 0 <= conv.num_arg_regs <= NUM_PARAM_REGS:
        raise ConventionError(
            f"num_arg_regs must be in 0..{NUM_PARAM_REGS}, "
            f"got {conv.num_arg_regs}"
        )
    staged = _mask_of(conv.param_regs)
    if staged & conv.callee_mask:
        bad = registers_in_mask(staged & conv.callee_mask)
        raise ConventionError(
            "argument registers must be caller-saved, but "
            + ", ".join(f"${r.name}" for r in bad)
            + " are callee-saved"
        )
    if not conv.ladder or conv.ladder[-1] != "open-noregalloc":
        raise ConventionError(
            "demotion ladder must end with the reference rung "
            f"'open-noregalloc', got {conv.ladder!r}"
        )
    if not set(conv.ladder) <= LADDER_TAGS:
        raise ConventionError(
            f"unknown ladder rungs {sorted(set(conv.ladder) - LADDER_TAGS)}"
        )
    if len(set(conv.ladder)) != len(conv.ladder):
        raise ConventionError(f"duplicate ladder rungs in {conv.ladder!r}")
    seen = 0
    for r in conv.allocatable:
        if seen >> r.index & 1:
            raise ConventionError(f"duplicate allocatable register ${r.name}")
        seen |= r.mask
    return conv


#: the paper's fixed convention: a0-a3/t0-t6 caller-saved, s0-s8
#: callee-saved, four register parameters, the standard ladder
DEFAULT_CONVENTION = validate_convention(Convention(name="chow88"))

#: paper config D re-expressed: IPRA restricted to 7 caller-saved regs
CALLER_ONLY_7 = validate_convention(
    Convention(allocatable=CALLER_SAVED[:7], name="caller-only-7")
)

#: paper config E re-expressed: IPRA restricted to 7 callee-saved regs
CALLEE_ONLY_7 = validate_convention(
    Convention(allocatable=CALLEE_SAVED[:7], name="callee-only-7")
)


def convention_from_register_file(
    rf: RegisterFile, name: Optional[str] = None
) -> Convention:
    """Adapt a deprecated :class:`RegisterFile` to the Convention API:
    the paper's fixed linkage agreement, allocation restricted to the
    file's registers.  ``caller_only_file(7)`` / ``callee_only_file(7)``
    map onto the :data:`CALLER_ONLY_7` / :data:`CALLEE_ONLY_7` presets.
    """
    if name is None:
        name = f"file-{len(rf.allocatable)}"
        if rf.allocatable == DEFAULT_CONVENTION.allocatable:
            name = DEFAULT_CONVENTION.name
        elif rf.allocatable == CALLER_ONLY_7.allocatable:
            name = CALLER_ONLY_7.name
        elif rf.allocatable == CALLEE_ONLY_7.allocatable:
            name = CALLEE_ONLY_7.name
    return validate_convention(
        Convention(allocatable=tuple(rf.allocatable), name=name)
    )


def split_convention(
    split: int,
    num_arg_regs: int = NUM_PARAM_REGS,
    ladder: Tuple[str, ...] = DEFAULT_LADDER,
    name: Optional[str] = None,
) -> Convention:
    """Re-partition the 20 allocatable registers at ``split``: the first
    ``split`` registers of the canonical order (a0-a3, t0-t6, s0-s8)
    become caller-saved, the rest callee-saved.  This is the autotuner's
    primary search axis; ``split=11`` with 4 argument registers and the
    default ladder reproduces :data:`DEFAULT_CONVENTION` exactly."""
    if not 0 <= split <= len(ALLOCATABLE):
        raise ConventionError(
            f"split must be in 0..{len(ALLOCATABLE)}, got {split}"
        )
    if split < num_arg_regs:
        raise ConventionError(
            f"split {split} leaves argument register "
            f"${ALLOCATABLE[split].name} callee-saved; "
            f"need split >= num_arg_regs ({num_arg_regs})"
        )
    caller = _mask_of(ALLOCATABLE[:split])
    callee = _mask_of(ALLOCATABLE[split:])
    if name is None:
        name = f"split-{split}-args-{num_arg_regs}"
        if ladder != DEFAULT_LADDER:
            name += "-alt-ladder"
    return validate_convention(
        Convention(
            allocatable=ALLOCATABLE,
            caller_mask=caller,
            callee_mask=callee,
            num_arg_regs=num_arg_regs,
            ladder=ladder,
            name=name,
        )
    )
