"""The virtual R2000-flavoured register file.

Chow's central data structure is "one word of storage" per procedure: an
int bitmask over the register file.  Everything here is bitmask-native --
register sets are plain ints, membership is ``mask >> r.index & 1``, union
and intersection are ``|`` and ``&``, and the mask -> register-list
direction is served from precomputed per-byte tables so hot paths never
loop over bits.

Layout (index = bit position in every mask)::

    0        zero   hardwired zero
    1..3     at0-at2  assembler/codegen scratch (never allocatable)
    4        v0     return value
    5..8     a0-a3  argument registers      (caller-saved, allocatable)
    9..15    t0-t6  temporaries             (caller-saved, allocatable)
    16..24   s0-s8  saved registers         (callee-saved, allocatable)
    25       sp     stack pointer
    26       ra     return address
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "Register",
    "RegisterFile",
    "ALL_REGISTERS",
    "ALLOCATABLE",
    "ALLOCATABLE_MASK",
    "CALLER_SAVED",
    "CALLER_SAVED_MASK",
    "CALLEE_SAVED",
    "CALLEE_SAVED_MASK",
    "DEFAULT_CLOBBER_MASK",
    "FULL_FILE",
    "NUM_PARAM_REGS",
    "NUM_REGISTERS",
    "PARAM_REGS",
    "ZERO",
    "AT0",
    "AT1",
    "AT2",
    "V0",
    "SP",
    "RA",
    "reg",
    "registers_in_mask",
    "caller_only_file",
    "callee_only_file",
]


@dataclass(frozen=True)
class Register:
    """One physical register.  Hashable; identity is the index."""

    index: int
    name: str
    caller_saved: bool = False
    callee_saved: bool = False
    is_param: bool = False

    @property
    def mask(self) -> int:
        return 1 << self.index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"${self.name}"


def _build_file() -> Tuple[Register, ...]:
    regs: List[Register] = [Register(0, "zero")]
    regs += [Register(i, f"at{i - 1}") for i in (1, 2, 3)]
    regs.append(Register(4, "v0"))
    regs += [
        Register(5 + k, f"a{k}", caller_saved=True, is_param=True)
        for k in range(4)
    ]
    regs += [Register(9 + k, f"t{k}", caller_saved=True) for k in range(7)]
    regs += [Register(16 + k, f"s{k}", callee_saved=True) for k in range(9)]
    regs.append(Register(25, "sp"))
    regs.append(Register(26, "ra"))
    return tuple(regs)


ALL_REGISTERS: Tuple[Register, ...] = _build_file()
NUM_REGISTERS = len(ALL_REGISTERS)

ZERO = ALL_REGISTERS[0]
AT0 = ALL_REGISTERS[1]
AT1 = ALL_REGISTERS[2]
AT2 = ALL_REGISTERS[3]
V0 = ALL_REGISTERS[4]
SP = ALL_REGISTERS[25]
RA = ALL_REGISTERS[26]

PARAM_REGS: Tuple[Register, ...] = tuple(
    r for r in ALL_REGISTERS if r.is_param
)
NUM_PARAM_REGS = len(PARAM_REGS)

CALLER_SAVED: Tuple[Register, ...] = tuple(
    r for r in ALL_REGISTERS if r.caller_saved
)
CALLEE_SAVED: Tuple[Register, ...] = tuple(
    r for r in ALL_REGISTERS if r.callee_saved
)
ALLOCATABLE: Tuple[Register, ...] = CALLER_SAVED + CALLEE_SAVED


def _mask_of(regs: Sequence[Register]) -> int:
    m = 0
    for r in regs:
        m |= r.mask
    return m


CALLER_SAVED_MASK = _mask_of(CALLER_SAVED)
CALLEE_SAVED_MASK = _mask_of(CALLEE_SAVED)
ALLOCATABLE_MASK = CALLER_SAVED_MASK | CALLEE_SAVED_MASK

# What a call to a procedure compiled under the default convention may
# destroy: every caller-saved register plus the return-value register.
DEFAULT_CLOBBER_MASK = CALLER_SAVED_MASK | V0.mask

_BY_NAME: Dict[str, Register] = {r.name: r for r in ALL_REGISTERS}


def reg(name: str) -> Register:
    """Look a register up by name (``reg("a0")``)."""
    return _BY_NAME[name]


# ---------------------------------------------------------------------------
# mask -> register list, without per-query bit loops
# ---------------------------------------------------------------------------

# One table per byte position: _BYTE_TABLE[b][v] lists the registers whose
# index is in [8b, 8b+8) and whose bit is set in v << 8b.  A lookup is then
# a handful of table reads + tuple concatenation, and full results are
# memoised per mask.
_BYTE_TABLE: List[List[Tuple[Register, ...]]] = []
for _b in range((NUM_REGISTERS + 7) // 8):
    _table: List[Tuple[Register, ...]] = []
    for _v in range(256):
        _table.append(
            tuple(
                ALL_REGISTERS[_b * 8 + _i]
                for _i in range(8)
                if _v >> _i & 1 and _b * 8 + _i < NUM_REGISTERS
            )
        )
    _BYTE_TABLE.append(_table)

_MASK_CACHE: Dict[int, Tuple[Register, ...]] = {}


def registers_in_mask(mask: int) -> Tuple[Register, ...]:
    """The registers named by ``mask``, in increasing index order."""
    hit = _MASK_CACHE.get(mask)
    if hit is not None:
        return hit
    out: Tuple[Register, ...] = ()
    for b, table in enumerate(_BYTE_TABLE):
        out += table[(mask >> (8 * b)) & 0xFF]
    _MASK_CACHE[mask] = out
    return out


# ---------------------------------------------------------------------------
# register files (what the allocator is allowed to hand out)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegisterFile:
    """An ordered set of allocatable registers, plus its bitmask."""

    allocatable: Tuple[Register, ...]
    mask: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "mask", _mask_of(self.allocatable))

    def __len__(self) -> int:
        return len(self.allocatable)

    def __iter__(self):
        return iter(self.allocatable)

    def __contains__(self, r: Register) -> bool:
        return bool(self.mask >> r.index & 1)


FULL_FILE = RegisterFile(ALLOCATABLE)


def caller_only_file(n: int = len(CALLER_SAVED)) -> RegisterFile:
    """A file of the first ``n`` caller-saved registers (paper config D)."""
    return RegisterFile(CALLER_SAVED[:n])


def callee_only_file(n: int = len(CALLEE_SAVED)) -> RegisterFile:
    """A file of the first ``n`` callee-saved registers (paper config E)."""
    return RegisterFile(CALLEE_SAVED[:n])
