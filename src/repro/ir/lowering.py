"""Lowering MiniC ASTs to the three-address IR.

Short-circuit ``&&``/``||`` lower to control flow; ``for`` lowers to the
usual cond/body/step diamond with correct ``continue`` targets.  Every
function falls off its end into an implicit ``return 0`` (codegen makes
``return;`` deterministic by materialising 0 in the return register).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import SemanticError
from repro.frontend.semantics import FunctionInfo, ModuleInfo
from repro.ir.function import BasicBlock, IRFunction, IRModule
from repro.ir.instructions import (
    Bin,
    Call,
    CallInd,
    CJump,
    Jump,
    LoadFunc,
    LoadIdx,
    Mov,
    Print,
    Ret,
    StoreIdx,
    Un,
)
from repro.ir.values import Const, Value, VKind, VReg

_COMPARISONS = frozenset({"<", "<=", ">", ">=", "==", "!="})


class _FunctionLowerer:
    def __init__(self, minfo: ModuleInfo, finfo: FunctionInfo):
        self.minfo = minfo
        self.finfo = finfo
        self.fn = IRFunction(
            name=finfo.name,
            params=list(finfo.params),
            local_arrays=dict(finfo.local_arrays),
        )
        self._temp_count = 0
        self._label_count = 0
        self._scope: Dict[str, VReg] = {}
        for i, p in enumerate(finfo.params):
            self._scope[p] = VReg(p, VKind.PARAM, i)
        for name in finfo.locals:
            self._scope[name] = VReg(name, VKind.LOCAL)
        self.cur = self.fn.add_block(BasicBlock("entry"))
        self._break_stack: List[str] = []
        self._continue_stack: List[str] = []

    # -- helpers -------------------------------------------------------------

    def new_temp(self) -> VReg:
        self._temp_count += 1
        return VReg(f".t{self._temp_count}", VKind.TEMP)

    def new_label(self, hint: str) -> str:
        self._label_count += 1
        return f"{hint}{self._label_count}"

    def start_block(self, name: str) -> BasicBlock:
        block = self.fn.add_block(BasicBlock(name))
        self.cur = block
        return block

    def emit(self, instr) -> None:
        if self.cur.terminator is None:
            self.cur.instrs.append(instr)
        # else: unreachable code after return/break -- silently dropped

    def terminate(self, term) -> None:
        if self.cur.terminator is None:
            self.cur.terminator = term

    def resolve(self, name: str) -> VReg:
        if name in self._scope:
            return self._scope[name]
        if name in self.minfo.globals:
            return VReg(name, VKind.GLOBAL)
        raise SemanticError(f"unresolved name {name!r} in {self.fn.name}")

    def is_array(self, name: str) -> bool:
        return name in self.fn.local_arrays or name in self.minfo.arrays

    # -- expressions ---------------------------------------------------------

    def lower_value(self, expr: ast.Expr) -> Value:
        """Lower ``expr`` to an operand (a Const or a VReg)."""
        if isinstance(expr, ast.IntLit):
            return Const(expr.value)
        if isinstance(expr, ast.VarRef):
            return self.resolve(expr.name)
        if isinstance(expr, ast.Index):
            dst = self.new_temp()
            self.emit(LoadIdx(dst, expr.name, self.lower_value(expr.index)))
            return dst
        if isinstance(expr, ast.UnOp):
            if expr.op == "!":
                return self._lower_bool_value(expr)
            a = self.lower_value(expr.operand)
            dst = self.new_temp()
            self.emit(Un(expr.op, dst, a))
            return dst
        if isinstance(expr, ast.BinOp):
            if expr.op in ("&&", "||"):
                return self._lower_bool_value(expr)
            a = self.lower_value(expr.left)
            b = self.lower_value(expr.right)
            dst = self.new_temp()
            self.emit(Bin(expr.op, dst, a, b))
            return dst
        if isinstance(expr, ast.Call):
            return self._lower_call(expr, want_value=True)
        if isinstance(expr, ast.FuncRef):
            dst = self.new_temp()
            self.emit(LoadFunc(dst, expr.name))
            return dst
        raise AssertionError(f"unknown expression {expr!r}")  # pragma: no cover

    def _lower_bool_value(self, expr: ast.Expr) -> Value:
        """Materialise a short-circuit expression as a 0/1 temp."""
        dst = self.new_temp()
        lt = self.new_label("btrue")
        lf = self.new_label("bfalse")
        lend = self.new_label("bend")
        self.lower_cond(expr, lt, lf)
        self.start_block(lt)
        self.emit(Mov(dst, Const(1)))
        self.terminate(Jump(lend))
        self.start_block(lf)
        self.emit(Mov(dst, Const(0)))
        self.terminate(Jump(lend))
        self.start_block(lend)
        return dst

    def _lower_call(self, expr: ast.Call, want_value: bool) -> Optional[Value]:
        args = [self.lower_value(a) for a in expr.args]
        dst = self.new_temp() if want_value else None
        if expr.indirect:
            target = self.resolve(expr.callee)
            self.emit(CallInd(target, args, dst))
        else:
            self.emit(Call(expr.callee, args, dst))
        return dst

    def lower_cond(self, expr: ast.Expr, if_true: str, if_false: str) -> None:
        """Lower ``expr`` as a branch to ``if_true``/``if_false``."""
        if isinstance(expr, ast.BinOp) and expr.op == "&&":
            mid = self.new_label("and")
            self.lower_cond(expr.left, mid, if_false)
            self.start_block(mid)
            self.lower_cond(expr.right, if_true, if_false)
            return
        if isinstance(expr, ast.BinOp) and expr.op == "||":
            mid = self.new_label("or")
            self.lower_cond(expr.left, if_true, mid)
            self.start_block(mid)
            self.lower_cond(expr.right, if_true, if_false)
            return
        if isinstance(expr, ast.UnOp) and expr.op == "!":
            self.lower_cond(expr.operand, if_false, if_true)
            return
        if isinstance(expr, ast.IntLit):
            self.terminate(Jump(if_true if expr.value != 0 else if_false))
            return
        cond = self.lower_value(expr)
        self.terminate(CJump(cond, if_true, if_false))

    # -- statements ----------------------------------------------------------

    def lower_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.lower_stmt(stmt)

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.LocalVar):
            if stmt.name not in self._scope:       # declared mid-body
                self._scope[stmt.name] = VReg(stmt.name, VKind.LOCAL)
                if stmt.name not in self.finfo.locals:
                    self.finfo.locals.append(stmt.name)
            if stmt.init is not None:
                self.emit(Mov(self._scope[stmt.name], self.lower_value(stmt.init)))
            return
        if isinstance(stmt, ast.LocalArray):
            self.fn.local_arrays.setdefault(stmt.name, stmt.size)
            return
        if isinstance(stmt, ast.Assign):
            dst = self.resolve(stmt.name)
            src = self.lower_value(stmt.value)
            self.emit(Mov(dst, src))
            return
        if isinstance(stmt, ast.ArrayAssign):
            idx = self.lower_value(stmt.index)
            src = self.lower_value(stmt.value)
            self.emit(StoreIdx(stmt.name, idx, src))
            return
        if isinstance(stmt, ast.If):
            lt = self.new_label("then")
            lend = self.new_label("endif")
            lf = self.new_label("else") if stmt.orelse is not None else lend
            self.lower_cond(stmt.cond, lt, lf)
            self.start_block(lt)
            self.lower_block(stmt.then)
            self.terminate(Jump(lend))
            if stmt.orelse is not None:
                self.start_block(lf)
                self.lower_stmt(stmt.orelse)
                self.terminate(Jump(lend))
            self.start_block(lend)
            return
        if isinstance(stmt, ast.While):
            lcond = self.new_label("wcond")
            lbody = self.new_label("wbody")
            lend = self.new_label("wend")
            self.terminate(Jump(lcond))
            self.start_block(lcond)
            self.lower_cond(stmt.cond, lbody, lend)
            self.start_block(lbody)
            self._break_stack.append(lend)
            self._continue_stack.append(lcond)
            self.lower_block(stmt.body)
            self._break_stack.pop()
            self._continue_stack.pop()
            self.terminate(Jump(lcond))
            self.start_block(lend)
            return
        if isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.lower_stmt(stmt.init)
            lcond = self.new_label("fcond")
            lbody = self.new_label("fbody")
            lstep = self.new_label("fstep")
            lend = self.new_label("fend")
            self.terminate(Jump(lcond))
            self.start_block(lcond)
            if stmt.cond is not None:
                self.lower_cond(stmt.cond, lbody, lend)
            else:
                self.terminate(Jump(lbody))
            self.start_block(lbody)
            self._break_stack.append(lend)
            self._continue_stack.append(lstep)
            self.lower_block(stmt.body)
            self._break_stack.pop()
            self._continue_stack.pop()
            self.terminate(Jump(lstep))
            self.start_block(lstep)
            if stmt.step is not None:
                self.lower_stmt(stmt.step)
            self.terminate(Jump(lcond))
            self.start_block(lend)
            return
        if isinstance(stmt, ast.Return):
            value = self.lower_value(stmt.value) if stmt.value is not None else None
            self.terminate(Ret(value))
            # subsequent statements in this block are unreachable; give them
            # a fresh (unreachable) block so lowering can continue.
            self.start_block(self.new_label("dead"))
            return
        if isinstance(stmt, ast.Print):
            self.emit(Print(self.lower_value(stmt.value)))
            return
        if isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, ast.Call):
                self._lower_call(stmt.expr, want_value=False)
            else:
                self.lower_value(stmt.expr)   # evaluated for traps only
            return
        if isinstance(stmt, ast.Break):
            self.terminate(Jump(self._break_stack[-1]))
            self.start_block(self.new_label("dead"))
            return
        if isinstance(stmt, ast.Continue):
            self.terminate(Jump(self._continue_stack[-1]))
            self.start_block(self.new_label("dead"))
            return
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
            return
        raise AssertionError(f"unknown statement {stmt!r}")  # pragma: no cover

    def finish(self) -> IRFunction:
        self.terminate(Ret(None))
        self.fn.remove_unreachable_blocks()
        self.fn.collect_vregs()
        # params must exist even if never referenced, so the calling
        # convention stays consistent
        for i, p in enumerate(self.finfo.params):
            self.fn.vregs.add(VReg(p, VKind.PARAM, i))
        return self.fn


def lower_function(minfo: ModuleInfo, finfo: FunctionInfo) -> IRFunction:
    lowerer = _FunctionLowerer(minfo, finfo)
    lowerer.lower_block(finfo.decl.body)
    return lowerer.finish()


def lower_module(minfo: ModuleInfo) -> IRModule:
    """Lower an analysed module to IR."""
    mod = IRModule(
        name=minfo.name,
        globals=dict(minfo.globals),
        arrays=dict(minfo.arrays),
        externs=dict(minfo.externs),
        address_taken=set(minfo.address_taken),
    )
    for finfo in minfo.functions.values():
        mod.add_function(lower_function(minfo, finfo))
    return mod
