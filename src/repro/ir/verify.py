"""IR structural verifier.

Run after lowering and after each optimisation pass in tests to catch
malformed IR early: every block terminated, every branch target defined,
entry block first, vreg set consistent, call arities consistent within the
module.
"""

from __future__ import annotations

from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import Call


class IRVerifyError(Exception):
    pass


def verify_function(fn: IRFunction) -> None:
    if not fn.blocks:
        raise IRVerifyError(f"{fn.name}: no blocks")
    names = set()
    for block in fn.blocks:
        if block.name in names:
            raise IRVerifyError(f"{fn.name}: duplicate block {block.name}")
        names.add(block.name)
        if block.terminator is None:
            raise IRVerifyError(f"{fn.name}: block {block.name} unterminated")
    for block in fn.blocks:
        for target in block.successors():
            if target not in names:
                raise IRVerifyError(
                    f"{fn.name}: block {block.name} branches to "
                    f"undefined block {target}"
                )
    declared = fn.vregs
    for block in fn.blocks:
        for ins in block.instrs:
            for v in list(ins.use_vregs()) + list(ins.defs()):
                if v not in declared:
                    raise IRVerifyError(
                        f"{fn.name}: vreg {v} not in function vreg set"
                    )
        for v in block.terminator.use_vregs():
            if v not in declared:
                raise IRVerifyError(
                    f"{fn.name}: vreg {v} not in function vreg set"
                )


def verify_module(mod: IRModule) -> None:
    arities = {name: len(fn.params) for name, fn in mod.functions.items()}
    arities.update(mod.externs)
    for fn in mod.functions.values():
        verify_function(fn)
        for ins in fn.instructions():
            if isinstance(ins, Call):
                if ins.func not in arities:
                    raise IRVerifyError(
                        f"{fn.name}: call to unknown function {ins.func}"
                    )
                if arities[ins.func] != len(ins.args):
                    raise IRVerifyError(
                        f"{fn.name}: call to {ins.func} with "
                        f"{len(ins.args)} args, expected {arities[ins.func]}"
                    )
    for name in mod.address_taken:
        if name not in arities:
            raise IRVerifyError(f"&{name}: unknown function")
