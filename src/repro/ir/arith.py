"""Word arithmetic shared by the constant folder, the reference
interpreter, and the machine simulator.

MiniC words are signed integers with C-style truncating division.  We do
not wrap at 32 bits: the paper's metrics (cycles, scalar memory traffic)
are unaffected by word width, and unbounded ints keep the simulator fast.
Division by zero traps, as it would on the R2000 with the usual break
check.
"""

from __future__ import annotations


class MachineTrap(Exception):
    """A run-time fault in simulated code (divide by zero, bad address...)."""


def sdiv(a: int, b: int) -> int:
    """C-style truncating division."""
    if b == 0:
        raise MachineTrap("integer divide by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def srem(a: int, b: int) -> int:
    """C-style remainder: ``a - sdiv(a, b) * b`` (sign follows dividend)."""
    if b == 0:
        raise MachineTrap("integer remainder by zero")
    return a - sdiv(a, b) * b


def shift_left(a: int, b: int) -> int:
    if b < 0 or b > 63:
        raise MachineTrap(f"shift amount {b} out of range")
    return a << b


def shift_right(a: int, b: int) -> int:
    """Arithmetic right shift (the front end's ``>>``)."""
    if b < 0 or b > 63:
        raise MachineTrap(f"shift amount {b} out of range")
    return a >> b


#: Binary operator name -> evaluation function over Python ints.
BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": sdiv,
    "%": srem,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": shift_left,
    ">>": shift_right,
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
}

UNOPS = {
    "-": lambda a: -a,
    "!": lambda a: int(a == 0),
    "~": lambda a: ~a,
}
