"""IR instruction set.

The IR is a conventional three-address code over :class:`VReg` operands,
organised into basic blocks with explicit terminators.  Calls are single
instructions carrying their full argument list (the code generator expands
them into parameter moves + jal), which keeps liveness and the register
allocator simple and mirrors Ucode's call operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.ir.values import Const, Value, VReg


@dataclass
class IRInstr:
    """Base class for straight-line (non-terminator) instructions."""

    def uses(self) -> Tuple[Value, ...]:
        """Operands read by this instruction (constants included)."""
        return ()

    def defs(self) -> Tuple[VReg, ...]:
        """Virtual registers written by this instruction."""
        return ()

    def use_vregs(self) -> Tuple[VReg, ...]:
        return tuple(v for v in self.uses() if isinstance(v, VReg))

    @property
    def is_call(self) -> bool:
        return False


@dataclass
class Bin(IRInstr):
    op: str
    dst: VReg
    a: Value
    b: Value

    def uses(self):
        return (self.a, self.b)

    def defs(self):
        return (self.dst,)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"{self.dst} = {self.a} {self.op} {self.b}"


@dataclass
class Un(IRInstr):
    op: str
    dst: VReg
    a: Value

    def uses(self):
        return (self.a,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"{self.dst} = {self.op}{self.a}"


@dataclass
class Mov(IRInstr):
    dst: VReg
    src: Value

    def uses(self):
        return (self.src,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"{self.dst} = {self.src}"


@dataclass
class LoadIdx(IRInstr):
    """``dst = array[idx]`` -- array element read (data traffic)."""

    dst: VReg
    array: str
    idx: Value

    def uses(self):
        return (self.idx,)

    def defs(self):
        return (self.dst,)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"{self.dst} = {self.array}[{self.idx}]"


@dataclass
class StoreIdx(IRInstr):
    """``array[idx] = src`` -- array element write (data traffic)."""

    array: str
    idx: Value
    src: Value

    def uses(self):
        return (self.idx, self.src)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"{self.array}[{self.idx}] = {self.src}"


@dataclass
class LoadFunc(IRInstr):
    """``dst = &func`` -- materialise a function's address."""

    dst: VReg
    func: str

    def defs(self):
        return (self.dst,)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"{self.dst} = &{self.func}"


@dataclass
class Call(IRInstr):
    """Direct call.  ``dst`` is None for call statements."""

    func: str
    args: List[Value] = field(default_factory=list)
    dst: Optional[VReg] = None

    def uses(self):
        return tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()

    @property
    def is_call(self) -> bool:
        return True

    def __repr__(self):  # pragma: no cover - cosmetic
        lhs = f"{self.dst} = " if self.dst else ""
        return f"{lhs}call {self.func}({', '.join(map(repr, self.args))})"


@dataclass
class CallInd(IRInstr):
    """Indirect call through a function-pointer value."""

    target: Value
    args: List[Value] = field(default_factory=list)
    dst: Optional[VReg] = None

    def uses(self):
        return (self.target,) + tuple(self.args)

    def defs(self):
        return (self.dst,) if self.dst is not None else ()

    @property
    def is_call(self) -> bool:
        return True

    def __repr__(self):  # pragma: no cover - cosmetic
        lhs = f"{self.dst} = " if self.dst else ""
        return f"{lhs}calli (*{self.target})({', '.join(map(repr, self.args))})"


@dataclass
class Print(IRInstr):
    value: Value

    def uses(self):
        return (self.value,)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"print {self.value}"


# --------------------------------------------------------------------------
# Terminators
# --------------------------------------------------------------------------

@dataclass
class Terminator:
    def uses(self) -> Tuple[Value, ...]:
        return ()

    def use_vregs(self) -> Tuple[VReg, ...]:
        return tuple(v for v in self.uses() if isinstance(v, VReg))

    def successors(self) -> Tuple[str, ...]:
        return ()


@dataclass
class Jump(Terminator):
    target: str

    def successors(self):
        return (self.target,)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"jump {self.target}"


@dataclass
class CJump(Terminator):
    cond: Value
    if_true: str
    if_false: str

    def uses(self):
        return (self.cond,)

    def successors(self):
        return (self.if_true, self.if_false)

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"if {self.cond} -> {self.if_true} else {self.if_false}"


@dataclass
class Ret(Terminator):
    value: Optional[Value] = None

    def uses(self):
        return (self.value,) if self.value is not None else ()

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"ret {self.value}" if self.value is not None else "ret"


def instr_values(instr) -> Iterable[Value]:
    """All operand values of an instruction or terminator."""
    yield from instr.uses()
    if isinstance(instr, IRInstr):
        yield from instr.defs()
