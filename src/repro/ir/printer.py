"""Human-readable IR listings."""

from __future__ import annotations

from repro.ir.function import IRFunction, IRModule


def format_function(fn: IRFunction) -> str:
    lines = [f"func {fn.name}({', '.join(fn.params)}):"]
    for name, size in sorted(fn.local_arrays.items()):
        lines.append(f"  array {name}[{size}]")
    for block in fn.blocks:
        lines.append(f"{block.name}:")
        for ins in block.instrs:
            lines.append(f"    {ins!r}")
        lines.append(f"    {block.terminator!r}")
    return "\n".join(lines)


def format_module(mod: IRModule) -> str:
    parts = [f"module {mod.name}"]
    for name, init in sorted(mod.globals.items()):
        parts.append(f"var {name} = {init}")
    for name, size in sorted(mod.arrays.items()):
        parts.append(f"array {name}[{size}]")
    for name, arity in sorted(mod.externs.items()):
        parts.append(f"extern func {name}({arity})")
    for fn in mod.functions.values():
        parts.append(format_function(fn))
    return "\n\n".join(parts)
