"""Three-address intermediate representation (the reproduction's Ucode)."""

from repro.ir.function import BasicBlock, IRFunction, IRModule
from repro.ir.instructions import (
    Bin,
    Call,
    CallInd,
    CJump,
    IRInstr,
    Jump,
    LoadFunc,
    LoadIdx,
    Mov,
    Print,
    Ret,
    StoreIdx,
    Terminator,
    Un,
)
from repro.ir.lowering import lower_function, lower_module
from repro.ir.optimize import optimize_function, optimize_module
from repro.ir.printer import format_function, format_module
from repro.ir.values import Const, Value, VKind, VReg
from repro.ir.verify import IRVerifyError, verify_function, verify_module

__all__ = [
    "BasicBlock",
    "IRFunction",
    "IRModule",
    "Bin",
    "Call",
    "CallInd",
    "CJump",
    "IRInstr",
    "Jump",
    "LoadFunc",
    "LoadIdx",
    "Mov",
    "Print",
    "Ret",
    "StoreIdx",
    "Terminator",
    "Un",
    "lower_function",
    "lower_module",
    "optimize_function",
    "optimize_module",
    "format_function",
    "format_module",
    "Const",
    "Value",
    "VKind",
    "VReg",
    "IRVerifyError",
    "verify_function",
    "verify_module",
]
