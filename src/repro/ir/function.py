"""IR containers: basic blocks, functions, modules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.instructions import IRInstr, Jump, Ret, Terminator
from repro.ir.values import VKind, VReg


@dataclass
class BasicBlock:
    """A straight-line run of instructions ended by one terminator."""

    name: str
    instrs: List[IRInstr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def successors(self) -> Tuple[str, ...]:
        if self.terminator is None:
            return ()
        return self.terminator.successors()

    def __repr__(self):  # pragma: no cover - cosmetic
        return f"<block {self.name} ({len(self.instrs)} instrs)>"


@dataclass
class IRFunction:
    """One procedure in IR form.

    ``blocks`` preserves layout order; the entry block is ``blocks[0]``.
    ``param_vregs`` are the PARAM-kind vregs in declaration order.
    """

    name: str
    params: List[str]
    blocks: List[BasicBlock] = field(default_factory=list)
    local_arrays: Dict[str, int] = field(default_factory=dict)
    #: every vreg referenced by the function (filled by the builder)
    vregs: Set[VReg] = field(default_factory=set)

    _by_name: Dict[str, BasicBlock] = field(default_factory=dict, repr=False)

    def __getstate__(self):
        # _by_name holds only derived references into ``blocks``; drop it
        # from pickles (artifact-store payloads) and rebuild on load.
        state = dict(self.__dict__)
        state.pop("_by_name", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._by_name = {b.name: b for b in self.blocks}

    def add_block(self, block: BasicBlock) -> BasicBlock:
        if block.name in self._by_name:
            raise ValueError(f"duplicate block name {block.name!r}")
        self.blocks.append(block)
        self._by_name[block.name] = block
        return block

    def block(self, name: str) -> BasicBlock:
        return self._by_name[name]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    @property
    def param_vregs(self) -> List[VReg]:
        by_index = {
            v.index: v for v in self.vregs if v.kind is VKind.PARAM
        }
        return [by_index[i] for i in sorted(by_index)]

    def instructions(self) -> Iterator[IRInstr]:
        for block in self.blocks:
            yield from block.instrs

    def collect_vregs(self) -> Set[VReg]:
        """Recompute the vreg set from the instruction stream."""
        found: Set[VReg] = set()
        for block in self.blocks:
            for ins in block.instrs:
                found.update(ins.use_vregs())
                found.update(ins.defs())
            if block.terminator is not None:
                found.update(block.terminator.use_vregs())
        self.vregs = found
        return found

    def direct_callees(self) -> Set[str]:
        from repro.ir.instructions import Call

        return {
            ins.func for ins in self.instructions() if isinstance(ins, Call)
        }

    def has_calls(self) -> bool:
        return any(ins.is_call for ins in self.instructions())

    def has_indirect_calls(self) -> bool:
        from repro.ir.instructions import CallInd

        return any(isinstance(ins, CallInd) for ins in self.instructions())

    def remove_unreachable_blocks(self) -> None:
        """Drop blocks not reachable from the entry."""
        reachable: Set[str] = set()
        work = [self.entry.name]
        while work:
            name = work.pop()
            if name in reachable:
                continue
            reachable.add(name)
            work.extend(self._by_name[name].successors())
        self.blocks = [b for b in self.blocks if b.name in reachable]
        self._by_name = {b.name: b for b in self.blocks}


@dataclass
class IRModule:
    """One compilation unit in IR form."""

    name: str
    functions: Dict[str, IRFunction] = field(default_factory=dict)
    globals: Dict[str, int] = field(default_factory=dict)       # name -> init
    arrays: Dict[str, int] = field(default_factory=dict)        # name -> size
    externs: Dict[str, int] = field(default_factory=dict)       # name -> arity
    address_taken: Set[str] = field(default_factory=set)

    def add_function(self, fn: IRFunction) -> None:
        self.functions[fn.name] = fn


def seal_block(block: BasicBlock, default_target: Optional[str] = None) -> None:
    """Give an unterminated block a fall-through jump or a return."""
    if block.terminator is not None:
        return
    if default_target is not None:
        block.terminator = Jump(default_target)
    else:
        block.terminator = Ret(None)
