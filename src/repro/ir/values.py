"""IR operand values.

Three operand kinds exist:

* :class:`Const` -- an integer constant;
* :class:`VReg` -- a virtual register: a named program variable (local,
  parameter or global scalar) or a compiler temporary.  VRegs are the
  register-allocation candidates;
* array symbols appear by name inside the indexed load/store instructions
  and are never allocation candidates.

Globals are VRegs too: the paper allocates global scalars to registers
*within* the procedures that use them, and representing them uniformly
lets the allocator consider them as candidates where that is sound
(call-free procedures -- see ``repro.regalloc``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union


class VKind(enum.Enum):
    TEMP = "temp"
    LOCAL = "local"
    PARAM = "param"
    GLOBAL = "global"


@dataclass(frozen=True)
class VReg:
    """A virtual register / register-allocation candidate."""

    name: str
    kind: VKind
    #: parameter position for PARAM vregs, 0 otherwise
    index: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name

    @property
    def is_temp(self) -> bool:
        return self.kind is VKind.TEMP

    @property
    def is_global(self) -> bool:
        return self.kind is VKind.GLOBAL

    @property
    def is_param(self) -> bool:
        return self.kind is VKind.PARAM


@dataclass(frozen=True)
class Const:
    value: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return str(self.value)


Value = Union[VReg, Const]


def is_const(v: Value) -> bool:
    return isinstance(v, Const)
