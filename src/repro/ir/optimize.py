"""Local IR optimisations.

The paper's Uopt performs global optimisation before register allocation;
we reproduce the parts that matter for the register-allocation study:
constant folding, block-local copy propagation, dead-code elimination and
CFG simplification.  These passes shrink the temp population so that the
allocator's candidates resemble Uopt's (variables plus a modest number of
expression temporaries).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir import arith
from repro.ir.function import BasicBlock, IRFunction
from repro.ir.instructions import (
    Bin,
    Call,
    CallInd,
    CJump,
    IRInstr,
    Jump,
    LoadFunc,
    LoadIdx,
    Mov,
    Print,
    Ret,
    StoreIdx,
    Un,
)
from repro.ir.values import Const, Value, VKind, VReg


def _fold_instr(ins: IRInstr) -> Optional[IRInstr]:
    """Return a simplified replacement for ``ins``, or None to keep it."""
    if isinstance(ins, Bin):
        a, b = ins.a, ins.b
        if isinstance(a, Const) and isinstance(b, Const):
            if ins.op in ("/", "%") and b.value == 0:
                return None  # preserve the trap
            if ins.op in ("<<", ">>") and not 0 <= b.value <= 63:
                return None  # preserve the trap
            value = arith.BINOPS[ins.op](a.value, b.value)
            return Mov(ins.dst, Const(value))
        # algebraic identities
        if ins.op == "+":
            if isinstance(b, Const) and b.value == 0:
                return Mov(ins.dst, a)
            if isinstance(a, Const) and a.value == 0:
                return Mov(ins.dst, b)
        elif ins.op == "-":
            if isinstance(b, Const) and b.value == 0:
                return Mov(ins.dst, a)
        elif ins.op == "*":
            for x, y in ((a, b), (b, a)):
                if isinstance(y, Const) and y.value == 1:
                    return Mov(ins.dst, x)
                if isinstance(y, Const) and y.value == 0:
                    return Mov(ins.dst, Const(0))
        elif ins.op == "/":
            if isinstance(b, Const) and b.value == 1:
                return Mov(ins.dst, a)
        return None
    if isinstance(ins, Un):
        if isinstance(ins.a, Const):
            return Mov(ins.dst, Const(arith.UNOPS[ins.op](ins.a.value)))
    return None


def fold_constants(fn: IRFunction) -> int:
    """Constant-fold; returns the number of instructions rewritten."""
    changed = 0
    for block in fn.blocks:
        for i, ins in enumerate(block.instrs):
            replacement = _fold_instr(ins)
            if replacement is not None:
                block.instrs[i] = replacement
                changed += 1
    return changed


def _subst(mapping: Dict[VReg, Value], v: Value) -> Value:
    if isinstance(v, VReg):
        return mapping.get(v, v)
    return v


def copy_propagate(fn: IRFunction) -> int:
    """Block-local copy/constant propagation.

    ``x = y`` makes later uses of ``x`` read ``y`` until either is
    redefined.  Globals are never propagated across calls: a callee may
    read or write them through memory.
    """
    changed = 0
    for block in fn.blocks:
        avail: Dict[VReg, Value] = {}

        def kill(v: VReg) -> None:
            avail.pop(v, None)
            for key in [k for k, val in avail.items() if val == v]:
                del avail[key]

        for ins in block.instrs:
            # rewrite uses first
            if isinstance(ins, Bin):
                na, nb = _subst(avail, ins.a), _subst(avail, ins.b)
                if na != ins.a or nb != ins.b:
                    ins.a, ins.b = na, nb
                    changed += 1
            elif isinstance(ins, Un):
                na = _subst(avail, ins.a)
                if na != ins.a:
                    ins.a = na
                    changed += 1
            elif isinstance(ins, Mov):
                ns = _subst(avail, ins.src)
                if ns != ins.src:
                    ins.src = ns
                    changed += 1
            elif isinstance(ins, LoadIdx):
                ni = _subst(avail, ins.idx)
                if ni != ins.idx:
                    ins.idx = ni
                    changed += 1
            elif isinstance(ins, StoreIdx):
                ni, ns = _subst(avail, ins.idx), _subst(avail, ins.src)
                if ni != ins.idx or ns != ins.src:
                    ins.idx, ins.src = ni, ns
                    changed += 1
            elif isinstance(ins, Print):
                nv = _subst(avail, ins.value)
                if nv != ins.value:
                    ins.value = nv
                    changed += 1
            elif isinstance(ins, (Call, CallInd)):
                nargs = [_subst(avail, a) for a in ins.args]
                if nargs != ins.args:
                    ins.args = nargs
                    changed += 1
                if isinstance(ins, CallInd):
                    nt = _subst(avail, ins.target)
                    if nt != ins.target:
                        ins.target = nt
                        changed += 1

            # then update available copies
            for d in ins.defs():
                kill(d)
            if isinstance(ins, Mov) and not ins.dst.is_global:
                src = ins.src
                if isinstance(src, Const) or (
                    isinstance(src, VReg) and not src.is_global
                ):
                    if src != ins.dst:
                        avail[ins.dst] = src
            if ins.is_call:
                # a call can read/write globals through memory
                for key in [
                    k for k, val in avail.items()
                    if k.is_global or (isinstance(val, VReg) and val.is_global)
                ]:
                    del avail[key]

        term = block.terminator
        if isinstance(term, CJump):
            nc = _subst(avail, term.cond)
            if nc != term.cond:
                term.cond = nc
                changed += 1
        elif isinstance(term, Ret) and term.value is not None:
            nv = _subst(avail, term.value)
            if nv != term.value:
                term.value = nv
                changed += 1
    return changed


def local_value_numbering(fn: IRFunction) -> int:
    """Block-local common-subexpression elimination by value numbering.

    Within a block, a recomputation of ``(op, value(a), value(b))`` is
    replaced by a copy from the instruction that first produced it.
    Operand identity is (vreg, version): versions bump at every
    redefinition, and calls bump every global's version (a callee may
    write them through memory), so stale values are never reused.
    """
    replaced = 0
    for block in fn.blocks:
        versions: Dict[VReg, int] = {}
        # (op, operand keys...) -> (defining vreg, its version at def)
        table: Dict[tuple, tuple] = {}

        def key_of(v) -> tuple:
            if isinstance(v, Const):
                return ("const", v.value)
            return ("reg", v, versions.get(v, 0))

        def bump(v: VReg) -> None:
            versions[v] = versions.get(v, 0) + 1

        for i, ins in enumerate(block.instrs):
            expr = None
            if isinstance(ins, Bin):
                expr = (ins.op, key_of(ins.a), key_of(ins.b))
                if ins.op in ("+", "*", "&", "|", "^", "==", "!="):
                    # commutative: canonical operand order
                    expr = (ins.op,) + tuple(
                        sorted(expr[1:], key=repr)
                    )
            elif isinstance(ins, Un):
                expr = (f"un{ins.op}", key_of(ins.a))
            if expr is not None:
                hit = table.get(expr)
                if hit is not None:
                    src, src_version = hit
                    if versions.get(src, 0) == src_version:
                        block.instrs[i] = Mov(ins.dst, src)
                        bump(ins.dst)
                        table[expr] = (src, src_version)
                        replaced += 1
                        continue
            for d in ins.defs():
                bump(d)
            if expr is not None:
                table[expr] = (ins.dst, versions.get(ins.dst, 0))
            if ins.is_call:
                for v in list(versions):
                    if v.is_global:
                        bump(v)
                # unseen globals start at version 0; make future keys
                # differ by seeding every global operand on first sight --
                # handled implicitly because a global read after the call
                # appears as a fresh (vreg, 0) only if never versioned;
                # bump them defensively via the table instead:
                table = {
                    k: val for k, val in table.items()
                    if not _mentions_global(k)
                }
    return replaced


def _mentions_global(expr_key: tuple) -> bool:
    for part in expr_key:
        if isinstance(part, tuple) and len(part) == 3 and part[0] == "reg":
            if isinstance(part[1], VReg) and part[1].is_global:
                return True
        elif isinstance(part, tuple) and _mentions_global(part):
            return True
    return False


_PURE = (Bin, Un, Mov, LoadIdx, LoadFunc)


def dead_code_eliminate(fn: IRFunction) -> int:
    """Remove pure instructions whose destination is never read.

    Writes to globals are always live (observable after return); calls are
    kept for their side effects but a dead result register is dropped.
    """
    removed = 0
    while True:
        used: Set[VReg] = set()
        for block in fn.blocks:
            for ins in block.instrs:
                used.update(ins.use_vregs())
            used.update(block.terminator.use_vregs())
        changed = False
        for block in fn.blocks:
            kept: List[IRInstr] = []
            for ins in block.instrs:
                if isinstance(ins, _PURE) and not ins.dst.is_global \
                        and ins.dst not in used:
                    removed += 1
                    changed = True
                    continue
                if isinstance(ins, (Call, CallInd)) and ins.dst is not None \
                        and ins.dst not in used:
                    ins.dst = None
                    changed = True
                kept.append(ins)
            block.instrs = kept
        if not changed:
            break
    fn.collect_vregs()
    for i, p in enumerate(fn.params):
        fn.vregs.add(VReg(p, VKind.PARAM, i))
    return removed


def simplify_cfg(fn: IRFunction) -> int:
    """Thread jumps through empty blocks, merge single-predecessor chains,
    fold constant conditional branches, and drop unreachable blocks."""
    changed = 0

    # fold CJump on constants
    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, CJump) and isinstance(term.cond, Const):
            target = term.if_true if term.cond.value != 0 else term.if_false
            block.terminator = Jump(target)
            changed += 1
        elif isinstance(term, CJump) and term.if_true == term.if_false:
            block.terminator = Jump(term.if_true)
            changed += 1

    # thread jumps to empty forwarding blocks
    forward: Dict[str, str] = {}
    for block in fn.blocks:
        if not block.instrs and isinstance(block.terminator, Jump) \
                and block.terminator.target != block.name:
            forward[block.name] = block.terminator.target

    def resolve(name: str) -> str:
        seen = set()
        while name in forward and name not in seen:
            seen.add(name)
            name = forward[name]
        return name

    for block in fn.blocks:
        term = block.terminator
        if isinstance(term, Jump):
            t = resolve(term.target)
            if t != term.target:
                term.target = t
                changed += 1
        elif isinstance(term, CJump):
            t, f = resolve(term.if_true), resolve(term.if_false)
            if t != term.if_true or f != term.if_false:
                term.if_true, term.if_false = t, f
                changed += 1

    fn.remove_unreachable_blocks()

    # merge chains: A jumps to B, B has exactly one predecessor
    pred_count: Dict[str, int] = {b.name: 0 for b in fn.blocks}
    for block in fn.blocks:
        for s in block.successors():
            pred_count[s] += 1
    by_name = {b.name: b for b in fn.blocks}
    merged: Set[str] = set()
    for block in fn.blocks:
        if block.name in merged:
            continue
        while isinstance(block.terminator, Jump):
            target = block.terminator.target
            if target == block.name or pred_count.get(target, 0) != 1:
                break
            if target == fn.entry.name:
                break
            succ = by_name[target]
            block.instrs.extend(succ.instrs)
            block.terminator = succ.terminator
            merged.add(target)
            changed += 1
    if merged:
        fn.blocks = [b for b in fn.blocks if b.name not in merged]
        fn._by_name = {b.name: b for b in fn.blocks}
    return changed


def optimize_function(fn: IRFunction, max_rounds: int = 8) -> None:
    """Run the local passes to a (bounded) fixed point."""
    for _ in range(max_rounds):
        changed = 0
        changed += fold_constants(fn)
        changed += copy_propagate(fn)
        changed += local_value_numbering(fn)
        changed += dead_code_eliminate(fn)
        changed += simplify_cfg(fn)
        if changed == 0:
            break
    fn.collect_vregs()
    for i, p in enumerate(fn.params):
        fn.vregs.add(VReg(p, VKind.PARAM, i))


def optimize_module(mod) -> None:
    for fn in mod.functions.values():
        optimize_function(fn)
