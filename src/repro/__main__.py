"""Command-line interface.

Usage::

    python -m repro run PROG.mc [more.mc ...] [options]   # compile + execute
    python -m repro stats PROG.mc [options]               # pixie-style stats
    python -m repro asm PROG.mc [options]                 # assembly listing
    python -m repro ir PROG.mc [options]                  # optimised IR
    python -m repro report PROG.mc [options]              # allocation report
    python -m repro dot PROG.mc [options]                 # call graph (DOT)
    python -m repro store {stats,gc,verify} PATH ...      # artifact store

Options: -O0/-O1/-O2/-O3, --shrink-wrap, --no-combine, --callers N,
--callees N, --ipra-globals, --check, --entry NAME,
--sim-tier auto|interp|jit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List

from repro.ir.printer import format_module
from repro.pipeline import compile_program, CompilerOptions
from repro.sim import SIM_TIERS
from repro.target.codegen import generate_function
from repro.target.registers import (
    callee_only_file,
    caller_only_file,
    convention_from_register_file,
)


def _options(args: argparse.Namespace) -> CompilerOptions:
    opts = CompilerOptions(
        opt_level=args.opt,
        shrink_wrap=args.shrink_wrap,
        combine=not args.no_combine,
        entry=args.entry,
        ipra_globals=args.ipra_globals,
    )
    if args.callers is not None:
        opts = opts.with_(convention=convention_from_register_file(
            caller_only_file(args.callers)
        ))
    if args.callees is not None:
        opts = opts.with_(convention=convention_from_register_file(
            callee_only_file(args.callees)
        ))
    return opts


def _sources(paths: List[str]):
    out = []
    for p in paths:
        path = Path(p)
        out.append((path.stem, path.read_text()))
    return out


def main(argv: List[str] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "store":
        from repro.store.cli import store_main

        return store_main(argv[1:])
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument(
        "command", choices=["run", "stats", "asm", "ir", "report", "dot"]
    )
    parser.add_argument("files", nargs="+", help="MiniC source files")
    parser.add_argument("-O", dest="opt", type=int, default=2,
                        choices=[0, 1, 2, 3])
    parser.add_argument("--shrink-wrap", action="store_true")
    parser.add_argument("--no-combine", action="store_true")
    parser.add_argument("--callers", type=int, default=None,
                        help="restrict to N caller-saved registers")
    parser.add_argument("--callees", type=int, default=None,
                        help="restrict to N callee-saved registers")
    parser.add_argument("--ipra-globals", action="store_true")
    parser.add_argument("--check", action="store_true",
                        help="enable the dynamic convention checker")
    parser.add_argument("--entry", default="main")
    parser.add_argument("--sim-tier", default="auto", choices=SIM_TIERS,
                        help="simulator tier (default: auto)")
    args = parser.parse_args(argv)

    prog = compile_program(_sources(args.files), _options(args))

    if args.command == "ir":
        print(format_module(prog.ir))
        return 0
    if args.command == "report":
        from repro.tools import program_report

        print(program_report(prog))
        return 0
    if args.command == "dot":
        from repro.tools import call_graph_dot

        print(call_graph_dot(prog.plan))
        return 0
    if args.command == "asm":
        for name in prog.ir.functions:
            asm = generate_function(prog.plan.plans[name], prog.ir.arrays)
            print(asm.render())
            print()
        return 0

    stats = prog.run(check_contracts=args.check, sim_tier=args.sim_tier)
    if args.command == "run":
        for value in stats.output:
            print(value)
        return 0
    # stats
    for key, value in stats.summary().items():
        print(f"{key:>20s}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
