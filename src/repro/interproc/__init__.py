"""Inter-procedural register allocation (the paper's core contribution)."""

from repro.interproc.allocator import (
    FnPlan,
    PlanOptions,
    ProgramPlan,
    plan_function,
    plan_program,
)
from repro.interproc.callgraph import CallGraph, build_call_graph, dfs_postorder
from repro.interproc.summaries import (
    ParamSpec,
    ProcSummary,
    default_param_specs,
    default_summary,
)

__all__ = [
    "FnPlan",
    "PlanOptions",
    "ProgramPlan",
    "plan_function",
    "plan_program",
    "CallGraph",
    "build_call_graph",
    "dfs_postorder",
    "ParamSpec",
    "ProcSummary",
    "default_param_specs",
    "default_summary",
]
