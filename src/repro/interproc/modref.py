"""Subtree mod/ref summaries for global scalars (extension).

Wall's link-time allocator keeps globals in registers program-wide; the
paper deliberately keeps globals per-procedure so allocation stays
one-pass.  This extension recovers part of Wall's benefit inside the
one-pass framework: alongside the register-usage summary, every closed
procedure also exports the set of global scalars its call subtree may
read or write.  A caller may then keep a global register-cached *across*
a call whose subtree provably never touches it (load at entry, store at
exit, save/restore around clobbering calls handled by the ordinary
machinery).

Open procedures, externs and indirect calls export "may touch anything",
so the analysis degrades safely under incomplete information -- the same
philosophy as the paper's Section 3.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.ir.function import IRFunction
from repro.ir.instructions import Call, CallInd
from repro.ir.values import VKind

#: sentinel: the subtree may touch any global
TOUCHES_ALL: Optional[FrozenSet[str]] = None


def own_global_refs(fn: IRFunction) -> Set[str]:
    """Global scalars this procedure itself reads or writes."""
    refs: Set[str] = set()
    for v in fn.vregs:
        if v.kind is VKind.GLOBAL:
            refs.add(v.name)
    return refs


def subtree_global_refs(
    fn: IRFunction,
    known: Dict[str, Optional[FrozenSet[str]]],
) -> Optional[FrozenSet[str]]:
    """Globals the whole call subtree of ``fn`` may touch.

    ``known`` maps already-processed procedures to their subtree refs
    (None meaning "anything").  Unknown callees (recursion cycles,
    externs) and indirect calls yield ``TOUCHES_ALL``.
    """
    refs = set(own_global_refs(fn))
    for ins in fn.instructions():
        if isinstance(ins, CallInd):
            return TOUCHES_ALL
        if isinstance(ins, Call):
            callee = known.get(ins.func, TOUCHES_ALL)
            if callee is TOUCHES_ALL:
                return TOUCHES_ALL
            refs.update(callee)
    return frozenset(refs)


def cacheable_globals(
    fn: IRFunction,
    known: Dict[str, Optional[FrozenSet[str]]],
) -> Set[str]:
    """Globals that may stay register-resident across every call in
    ``fn``: referenced here, untouched by every callee subtree."""
    if not fn.has_calls():
        return own_global_refs(fn)
    blocked: Set[str] = set()
    for ins in fn.instructions():
        if isinstance(ins, CallInd):
            return set()
        if isinstance(ins, Call):
            callee = known.get(ins.func, TOUCHES_ALL)
            if callee is TOUCHES_ALL:
                return set()
            blocked.update(callee)
    return own_global_refs(fn) - blocked
