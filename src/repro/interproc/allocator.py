"""The one-pass inter-procedural register allocation driver.

This is the paper's central machinery.  Procedures are processed in
depth-first postorder of the call graph; each is allocated by the
priority-based colorer with per-register priorities driven by the
summaries of already-processed callees; then the save/restore strategy is
fixed:

* **intra mode** (paper -O2): every procedure uses the default linkage
  convention.  Callee-saved registers it occupies are saved at entry and
  restored at exits -- or shrink-wrapped around their regions of activity
  when shrink-wrapping is enabled.
* **open procedures** under IPRA: default linkage, but the save set also
  covers callee-saved registers clobbered by *closed* callees (which do
  not save them themselves -- the obligation propagated up to here).
* **closed procedures** under IPRA: all registers operate in caller-saved
  mode and usage propagates upward through the summary.  With
  shrink-wrapping and the Section 6 combining strategy, a callee-saved
  register whose save would land anywhere but the procedure entry is
  instead saved/restored locally (wrapped) and reported unused.

The result is one :class:`FnPlan` per procedure, consumed by codegen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.interproc.callgraph import CallGraph, build_call_graph, dfs_postorder
from repro.interproc.modref import cacheable_globals, subtree_global_refs
from repro.interproc.summaries import (
    ParamSpec,
    ProcSummary,
    default_param_specs,
    default_summary,
)
from repro.ir.function import IRFunction, IRModule
from repro.ir.values import VReg
from repro.regalloc.coloring import ColoringOptions, allocate_function
from repro.regalloc.context import AllocEnv
from repro.regalloc.result import AllocationResult
from repro.shrinkwrap.placement import (
    ShrinkWrapResult,
    WrapPlacement,
    shrink_wrap,
)
from repro.target.registers import (
    Convention,
    DEFAULT_CONVENTION,
    Register,
    RegisterFile,
    V0,
    convention_from_register_file,
    registers_in_mask,
)


@dataclass
class PlanOptions:
    """Knobs of the allocation strategy (see ``repro.pipeline.options``).

    ``convention`` is the calling convention in force; ``register_file``
    is the deprecated alias (a file becomes the same convention with a
    restricted allocatable pool) and always reflects the convention's
    allocatable view after init.
    """

    register_file: Optional[RegisterFile] = None
    ipra: bool = False
    shrink_wrap: bool = False
    combine: bool = True            # Section 6 propagate-vs-wrap strategy
    prefer_subtree_reg: bool = True  # Fig. 1 tie-break
    smear_loops: bool = True
    externally_visible: bool = False  # separate-compilation conservatism
    entry: str = "main"
    #: profile extension: function name -> {block name -> execution count}
    block_weights: Optional[Dict[str, Dict[str, int]]] = None
    #: mod/ref extension: register-cache globals across calls whose
    #: subtrees provably never touch them
    ipra_globals: bool = False
    convention: Optional[Convention] = None

    def __post_init__(self) -> None:
        if self.convention is None:
            if self.register_file is None:
                self.convention = DEFAULT_CONVENTION
            else:
                self.convention = convention_from_register_file(
                    self.register_file
                )
        self.register_file = self.convention.register_file


@dataclass
class FnPlan:
    """Allocation plus save/restore strategy for one procedure."""

    name: str
    alloc: AllocationResult
    mode: str                       # 'intra' | 'open' | 'closed'
    #: the convention this plan was made under (codegen and the engine's
    #: preserved-mask contract read save classes from here)
    convention: Convention = DEFAULT_CONVENTION
    #: callee-saved registers saved at entry / restored at all exits
    entry_exit_saves: List[Register] = field(default_factory=list)
    #: register index -> shrink-wrapped placement
    wrapped: Dict[int, WrapPlacement] = field(default_factory=dict)
    incoming_params: List[ParamSpec] = field(default_factory=list)
    summary: Optional[ProcSummary] = None
    shrink_stats: Optional[ShrinkWrapResult] = None

    @property
    def saved_mask(self) -> int:
        m = 0
        for r in self.entry_exit_saves:
            m |= 1 << r.index
        for idx in self.wrapped:
            m |= 1 << idx
        return m


@dataclass
class ProgramPlan:
    """Plans for all procedures of a linked program."""

    module: IRModule
    plans: Dict[str, FnPlan] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    call_graph: Optional[CallGraph] = None
    summaries: Dict[str, ProcSummary] = field(default_factory=dict)


def _callee_saved_need_mask(
    alloc: AllocationResult, convention: Convention
) -> int:
    """Callee-saved registers destroyed inside this procedure's frame of
    responsibility: its own assignments plus clobbers at its call sites
    (the latter only carry callee-saved bits under IPRA, where closed
    callees do not save them)."""
    mask = alloc.own_assigned_mask
    for m in alloc.call_clobbers.values():
        mask |= m
    return mask & convention.callee_mask


def _app_blocks_for(alloc: AllocationResult, reg: Register) -> Set[int]:
    """APP footprint of a register: blocks where its assigned ranges are
    live plus blocks containing calls that clobber it."""
    blocks = alloc.busy_blocks(reg)
    bit = 1 << reg.index
    if alloc.ranges is not None:
        for rc in alloc.ranges.all_calls:
            if alloc.call_clobbers[id(rc.instr)] & bit:
                blocks.add(rc.block)
    return blocks


def _incoming_params_closed(
    fn: IRFunction, alloc: AllocationResult, convention: Convention
) -> List[ParamSpec]:
    """Section 4: a closed procedure's parameter travels in whatever
    register the allocator gave the parameter variable.  Memory-resident
    parameters arrive in a free caller-saved register (stored to their
    home in the prologue) or on the stack when none is free; parameters
    whose incoming value is never read are marked dead (no staging)."""
    live_at_entry = alloc.liveness.live_in[alloc.cfg.entry]
    taken = {
        alloc.assignment[v].index
        for v in fn.param_vregs
        if v in alloc.assignment and v in live_at_entry
    }
    specs: List[ParamSpec] = []
    staged = {r.index for r in convention.param_regs}
    arrival_pool = list(convention.param_regs) + [
        r
        for r in registers_in_mask(convention.caller_mask)
        if r.index not in staged
    ]
    for v in fn.param_vregs:
        k = v.index
        if v not in live_at_entry:
            specs.append(ParamSpec(pos=k, dead=True))
            continue
        reg = alloc.assignment.get(v)
        if reg is not None:
            specs.append(ParamSpec(pos=k, reg=reg))
            continue
        arrival = next(
            (r for r in arrival_pool if r.index not in taken), None
        )
        if arrival is not None:
            taken.add(arrival.index)
            specs.append(ParamSpec(pos=k, reg=arrival))
        else:
            specs.append(ParamSpec(pos=k, reg=None))
    return specs


def plan_function(
    fn: IRFunction,
    options: PlanOptions,
    summaries: Dict[str, ProcSummary],
    arities: Dict[str, int],
    is_open: bool,
    allowed_globals: Optional[Set[str]] = None,
) -> FnPlan:
    """Allocate one procedure and fix its save/restore strategy."""
    convention = options.convention or DEFAULT_CONVENTION
    env = AllocEnv(
        convention=convention,
        ipra=options.ipra,
        proc_is_open=is_open,
        summaries=summaries if options.ipra else {},
        arities=arities,
    )
    subtree_mask = 0
    if options.ipra:
        for callee in fn.direct_callees():
            s = summaries.get(callee)
            if s is not None:
                subtree_mask |= s.used_mask

    weights = None
    if options.block_weights is not None:
        weights = options.block_weights.get(fn.name)
    coloring = ColoringOptions(
        prefer_subtree_reg=options.prefer_subtree_reg,
        block_weights=weights,
        allowed_globals=allowed_globals,
    )
    alloc = allocate_function(fn, env, coloring, subtree_used_mask=subtree_mask)

    mode = "intra" if not options.ipra else ("open" if is_open else "closed")
    plan = FnPlan(name=fn.name, alloc=alloc, mode=mode, convention=convention)

    need_mask = _callee_saved_need_mask(alloc, convention)
    need_regs = list(registers_in_mask(need_mask))

    if mode in ("intra", "open"):
        plan.incoming_params = default_param_specs(len(fn.params), convention)
        if options.shrink_wrap and need_regs:
            app = {r.index: _app_blocks_for(alloc, r) for r in need_regs}
            plan.shrink_stats = shrink_wrap(
                alloc.cfg, alloc.loops, app, smear_loops=options.smear_loops
            )
            plan.wrapped = dict(plan.shrink_stats.placements)
        else:
            plan.entry_exit_saves = list(need_regs)
        if options.ipra:
            # open procedures present the default linkage to callers
            plan.summary = default_summary(fn.name, len(fn.params), convention)
        return plan

    # closed procedure under IPRA
    plan.incoming_params = _incoming_params_closed(fn, alloc, convention)
    used = alloc.own_assigned_mask | (1 << V0.index)
    for m in alloc.call_clobbers.values():
        used |= m
    saved_locally = 0

    if options.shrink_wrap and options.combine and need_regs:
        app = {r.index: _app_blocks_for(alloc, r) for r in need_regs}
        plan.shrink_stats = shrink_wrap(
            alloc.cfg, alloc.loops, app, smear_loops=options.smear_loops
        )
        for r in need_regs:
            placement = plan.shrink_stats.placements[r.index]
            if placement.save_at_entry or not placement.saves:
                continue  # propagate up the call graph (Section 6)
            plan.wrapped[r.index] = placement
            saved_locally |= 1 << r.index
        used &= ~saved_locally
    # without shrink-wrap (or with combining disabled) a closed procedure
    # propagates every callee-saved save upward

    plan.summary = ProcSummary(
        name=fn.name,
        closed=True,
        used_mask=used,
        params=plan.incoming_params,
        own_assigned_mask=alloc.own_assigned_mask,
        saved_locally_mask=saved_locally,
    )
    return plan


def plan_program(module: IRModule, options: PlanOptions) -> ProgramPlan:
    """Plan every procedure of a linked program in one pass (Section 2).

    Under IPRA, procedures are visited in depth-first postorder of the
    call graph so a closed procedure's callees are always processed first;
    members of recursion cycles are open and need no ordering guarantee.
    """
    result = ProgramPlan(module=module)
    arities = {name: len(fn.params) for name, fn in module.functions.items()}
    arities.update(module.externs)

    if options.ipra:
        cg = build_call_graph(
            module,
            entry=options.entry,
            externally_visible=options.externally_visible,
        )
        result.call_graph = cg
        result.order = dfs_postorder(cg)
    else:
        result.order = list(module.functions)

    modref: Dict[str, object] = {}
    for name in result.order:
        fn = module.functions[name]
        is_open = True
        if options.ipra and result.call_graph is not None:
            is_open = result.call_graph.is_open(name)
        allowed = None
        if options.ipra_globals and options.ipra:
            allowed = cacheable_globals(fn, modref)
        plan = plan_function(
            fn, options, result.summaries, arities, is_open,
            allowed_globals=allowed,
        )
        result.plans[name] = plan
        if plan.summary is not None:
            result.summaries[name] = plan.summary
        if options.ipra_globals:
            modref[name] = subtree_global_refs(fn, modref)
    return result
