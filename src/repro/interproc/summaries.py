"""Register-usage summaries (Section 2-4 of the paper).

A procedure's summary is the information it exports to its callers under
inter-procedural allocation:

* ``used_mask`` -- one bit per register that *calling this procedure may
  destroy*, merged over its entire call subtree (paper: "a flag for each
  register marking it as used or unused ... includes the whole call tree
  rooted at that procedure").  Callee-saved registers the procedure saves
  and restores itself (shrink-wrapped, Section 6) are reported unused.
* ``params`` -- which register carries each incoming parameter (Section 4).
  For closed procedures this is whatever register the callee's allocator
  chose for the parameter variable; for open procedures it is the default
  linkage convention (a0-a3, then the stack).

Open procedures do not really need a summary ("the register allocator can
assume at once that all callee-saved registers are unused but all
caller-saved registers are used"); :func:`default_summary` materialises
exactly that assumption and is also used for indirect calls, externs and
not-yet-processed procedures in recursion cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.target.registers import (
    Convention,
    DEFAULT_CONVENTION,
    Register,
    V0,
)


@dataclass(frozen=True)
class ParamSpec:
    """Where one parameter travels at a call boundary.

    ``reg`` is the carrying register, or ``None`` for a stack-passed
    parameter.  The outgoing-argument area has one slot per argument
    position (register-passed positions simply leave theirs unused), so
    the stack slot of a stack-passed parameter is its position.  ``dead``
    marks parameters the callee provably never reads: the caller still
    evaluates the argument (for side effects) but does not stage it
    anywhere.
    """

    pos: int
    reg: Optional[Register] = None
    dead: bool = False

    @property
    def on_stack(self) -> bool:
        return self.reg is None and not self.dead

    @property
    def stack_slot(self) -> int:
        if not self.on_stack:
            raise ValueError("parameter is not stack-passed")
        return self.pos


def default_param_specs(
    arity: int, convention: Optional[Convention] = None
) -> List[ParamSpec]:
    """The default linkage of ``convention`` (the paper's fixed one when
    omitted): leading parameters in its argument registers, rest on
    stack."""
    param_regs = (convention or DEFAULT_CONVENTION).param_regs
    specs = []
    for k in range(arity):
        if k < len(param_regs):
            specs.append(ParamSpec(pos=k, reg=param_regs[k]))
        else:
            specs.append(ParamSpec(pos=k, reg=None))
    return specs


@dataclass
class ProcSummary:
    """Everything a caller needs to know about calling a procedure."""

    name: str
    closed: bool
    used_mask: int
    params: List[ParamSpec] = field(default_factory=list)
    #: diagnostics: registers this procedure's own candidates occupy
    own_assigned_mask: int = 0
    #: diagnostics: callee-saved registers it saves locally (wrapped)
    saved_locally_mask: int = 0

    def staging_mask(self) -> int:
        """Registers written by the *caller* when staging arguments."""
        m = 0
        for spec in self.params:
            if spec.reg is not None and not spec.dead:
                m |= 1 << spec.reg.index
        return m

    def call_clobber_mask(self) -> int:
        """Registers destroyed by a call to this procedure, as seen from
        immediately before argument staging: subtree usage, plus staging,
        plus the return-value register."""
        return self.used_mask | self.staging_mask() | (1 << V0.index)


def default_summary(
    name: str, arity: int, convention: Optional[Convention] = None
) -> ProcSummary:
    """Summary assumed for open procedures, externs and indirect calls,
    under ``convention`` (the paper's fixed one when omitted)."""
    convention = convention or DEFAULT_CONVENTION
    return ProcSummary(
        name=name,
        closed=False,
        used_mask=convention.default_clobber_mask,
        params=default_param_specs(arity, convention),
    )
