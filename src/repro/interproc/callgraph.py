"""Call graph construction, open/closed classification, DFS ordering.

Section 3 of the paper: a procedure is *open* when any of its callers has
already been processed (cycles in the call graph, i.e. recursion) or is
unknown (externally visible, called indirectly through a pointer, or the
program's entry point, which the operating system calls).  Everything
else is *closed*.

Processing procedures in depth-first (post-) order of the call graph
guarantees every closed procedure's callees are processed before it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.ir.function import IRModule
from repro.ir.instructions import Call


@dataclass
class CallGraph:
    """Direct-call graph over an IR module (usually a linked program)."""

    module: IRModule
    edges: Dict[str, Set[str]] = field(default_factory=dict)      # callees
    redges: Dict[str, Set[str]] = field(default_factory=dict)     # callers
    open_procs: Set[str] = field(default_factory=set)
    entry: str = "main"

    def callees(self, name: str) -> Set[str]:
        return self.edges.get(name, set())

    def callers(self, name: str) -> Set[str]:
        return self.redges.get(name, set())

    def is_open(self, name: str) -> bool:
        return name in self.open_procs

    def is_closed(self, name: str) -> bool:
        return name not in self.open_procs


def _tarjan_sccs(nodes: List[str], edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's strongly-connected components, iterative."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    for root in nodes:
        if root in index:
            continue
        work = [(root, iter(sorted(edges.get(root, ()))))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in edges and succ not in index:
                    # callee without a body (extern); not part of any SCC
                    continue
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.append(w)
                    if w == node:
                        break
                sccs.append(scc)
    return sccs


def build_call_graph(
    module: IRModule,
    entry: str = "main",
    externally_visible: bool = False,
) -> CallGraph:
    """Build the call graph of ``module`` and classify procedures.

    ``externally_visible`` models separate compilation of a single unit:
    when True, *every* procedure may have unknown callers and is therefore
    open (the paper's -O3 avoids this by linking Ucode before allocation).
    """
    cg = CallGraph(module=module, entry=entry)
    names = list(module.functions)
    for name, fn in module.functions.items():
        callees = {
            ins.func for ins in fn.instructions() if isinstance(ins, Call)
        }
        cg.edges[name] = callees
        cg.redges.setdefault(name, set())
        for c in callees:
            cg.redges.setdefault(c, set()).add(name)

    if externally_visible:
        cg.open_procs.update(names)
        return cg

    # the entry point is called by the operating system
    if entry in module.functions:
        cg.open_procs.add(entry)
    # address-taken procedures can be called indirectly
    for name in module.address_taken:
        if name in module.functions:
            cg.open_procs.add(name)
    # procedures calling into other modules do not become open, but any
    # procedure in a recursion cycle does (self loops included)
    for scc in _tarjan_sccs(names, cg.edges):
        if len(scc) > 1:
            cg.open_procs.update(s for s in scc if s in module.functions)
        elif scc[0] in cg.edges.get(scc[0], set()):
            cg.open_procs.add(scc[0])
    return cg


def dfs_postorder(cg: CallGraph) -> List[str]:
    """Depth-first postorder over the call graph: every closed procedure
    appears after all of its callees.

    Roots: the entry point first, then any procedures unreachable from it
    (e.g. reachable only through function pointers), in name order for
    determinism.
    """
    module = cg.module
    order: List[str] = []
    visited: Set[str] = set()

    def visit(root: str) -> None:
        if root not in module.functions or root in visited:
            return
        # iterative DFS emitting postorder
        frames: List[tuple] = [(root, iter(sorted(cg.callees(root))))]
        visited.add(root)
        while frames:
            node, it = frames[-1]
            pushed = False
            for succ in it:
                if succ in module.functions and succ not in visited:
                    visited.add(succ)
                    frames.append((succ, iter(sorted(cg.callees(succ)))))
                    pushed = True
                    break
            if not pushed:
                frames.pop()
                order.append(node)

    visit(cg.entry)
    for name in sorted(module.functions):
        visit(name)
    return order
