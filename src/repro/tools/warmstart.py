"""Warm-start acceptance check: two processes, one artifact store.

Process A compiles the benchmark suite against an empty store; a
*fresh* process B (no in-memory caches, only the disk store) compiles
the same suite and must

* hit the store at a configurable rate (default >= 80% of lookups), and
* produce **bit-identical** executables to process A's, per benchmark
  and per paper configuration.

Both phases really are separate OS processes (``subprocess`` children of
the orchestrator), so nothing can leak between them except the store
directory.  CI runs this as a gate::

    PYTHONPATH=src python -m repro.tools.warmstart --configs base C E

The child protocol (``--phase child``) prints one JSON object:
``{"digests": {"bench:config": sha256}, "seconds": wall-clock compile
seconds, "store": counters, "stages": per-stage hit/miss totals}`` --
:mod:`benchmarks.bench_speed` reuses it to time genuinely cold
processes for the ``store_warm`` scenario.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

from repro.benchsuite.registry import load_benchmarks
from repro.engine.core import Engine
from repro.pipeline.options import PAPER_CONFIGS


def executable_digest(exe) -> str:
    """Content hash of a linked executable image (bit-identity checks)."""
    parts = [repr(i) for i in exe.instrs]
    parts.append(str(exe.entry_pc))
    parts.append(repr(sorted(exe.func_entries.items())))
    parts.append(repr(sorted(exe.data_init.items())))
    parts.append(repr(sorted(exe.preserved_masks.items())))
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()


def compile_suite(
    store_path: Optional[str],
    configs: List[str],
    names: Optional[List[str]] = None,
) -> Dict:
    """Compile every (benchmark, config) pair in this process; returns
    the child-protocol report."""
    benches = load_benchmarks()
    selected = list(names) if names else list(benches)
    digests: Dict[str, str] = {}
    stages: Dict[str, Dict[str, int]] = {}
    store_counters: Optional[Dict] = None
    seconds = 0.0
    for config in configs:
        engine = Engine(PAPER_CONFIGS[config], store_path=store_path)
        for name in selected:
            source = benches[name].source
            t0 = time.perf_counter()
            built = engine.compile(source)
            seconds += time.perf_counter() - t0
            digests[f"{name}:{config}"] = executable_digest(
                built.executable
            )
        for stage, st in engine.stats.stage_totals().items():
            agg = stages.setdefault(stage, {"hits": 0, "misses": 0})
            agg["hits"] += st.hits
            agg["misses"] += st.misses
        if engine.store is not None:
            if store_counters is None:
                store_counters = engine.store.stats.to_dict()
            else:
                for k, v in engine.store.stats.to_dict().items():
                    store_counters[k] += v
    return {
        "digests": digests,
        "seconds": round(seconds, 6),
        "store": store_counters,
        "stages": stages,
    }


def _spawn_child(store: Optional[str], configs: List[str],
                 names: Optional[List[str]]) -> Dict:
    """Run :func:`compile_suite` in a genuinely fresh OS process.

    ``store=None`` compiles storeless (the fully-cold reference the
    speed benchmark compares against).
    """
    cmd = [
        sys.executable, "-m", "repro.tools.warmstart",
        "--phase", "child", "--configs", *configs,
    ]
    if store:
        cmd += ["--store", store]
    if names:
        cmd += ["--names", *names]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))] +
        env.get("PYTHONPATH", "").split(os.pathsep) if p
    )
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"warmstart child failed ({proc.returncode}):\n{proc.stderr}"
        )
    return json.loads(proc.stdout)


def run_warmstart(
    configs: List[str],
    names: Optional[List[str]] = None,
    min_hit_rate: float = 0.8,
    store_dir: Optional[str] = None,
    verbose: bool = True,
) -> List[str]:
    """Run the A/B warm-start check; returns violation messages."""
    violations: List[str] = []
    ctx = (
        tempfile.TemporaryDirectory(prefix="repro-warmstart-")
        if store_dir is None else None
    )
    store = store_dir if store_dir is not None else ctx.name
    try:
        a = _spawn_child(store, configs, names)
        b = _spawn_child(store, configs, names)
    finally:
        if ctx is not None:
            ctx.cleanup()

    if a["digests"] != b["digests"]:
        diff = [
            k for k in a["digests"]
            if a["digests"].get(k) != b["digests"].get(k)
        ]
        violations.append(
            f"warm-started builds differ from process A's for {diff}"
        )
    st = b["store"] or {"hits": 0, "misses": 0}
    lookups = st["hits"] + st["misses"]
    rate = st["hits"] / lookups if lookups else 0.0
    if rate < min_hit_rate:
        violations.append(
            f"process B store hit rate {rate:.1%} below the "
            f"{min_hit_rate:.0%} floor ({st['hits']}/{lookups})"
        )
    if st.get("corruptions"):
        violations.append(
            f"process B detected {st['corruptions']} corrupt entries in "
            "a store process A just wrote"
        )
    if verbose:
        print(
            f"A: {len(a['digests'])} builds in {a['seconds']:.2f}s  "
            f"B: {b['seconds']:.2f}s  hit-rate={rate:.1%}  "
            f"identical={a['digests'] == b['digests']}"
        )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="two-process warm-start identity and hit-rate gate"
    )
    parser.add_argument("--phase", choices=["drive", "child"],
                        default="drive")
    parser.add_argument("--store", default=None,
                        help="store directory (default: a temp dir)")
    parser.add_argument("--configs", nargs="+", default=["C"],
                        choices=sorted(PAPER_CONFIGS))
    parser.add_argument("--names", nargs="*", default=None)
    parser.add_argument("--min-hit-rate", type=float, default=0.8)
    args = parser.parse_args(argv)

    if args.phase == "child":
        report = compile_suite(args.store, args.configs, args.names)
        json.dump(report, sys.stdout)
        return 0

    violations = run_warmstart(
        args.configs, args.names, args.min_hit_rate, args.store
    )
    for v in violations:
        print(f"VIOLATION: {v}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
