"""Diagnostic reports: allocation tables, call-graph DOT, disassembly,
service/store health counters."""

from repro.tools.reports import (
    allocation_report,
    call_graph_dot,
    describe_options,
    disassemble,
    interference_summary,
    program_report,
    service_report,
    store_report,
    tune_report,
)

__all__ = [
    "allocation_report",
    "call_graph_dot",
    "describe_options",
    "disassemble",
    "interference_summary",
    "program_report",
    "service_report",
    "store_report",
    "tune_report",
]
