"""Chaos runner: the benchmark suite under seeded fault injection.

For every benchmark this drives two builds of the same source -- a
plain (non-resilient) reference compile and a resilient compile under a
seeded :class:`~repro.faults.FaultPlan` arming one fault per toolchain
stage (planner, coloring, shrink-wrap, codegen, JIT translation, pool
worker) -- and checks the resilience contract:

* the resilient compile completes with **no unhandled exception**;
* its program produces the **same output** as the reference build
  (degradation is conservative, never wrong);
* every procedure a ``raise`` fault actually hit is reported
  **degraded to the open convention** in ``CompileReport``;
* a compile in which **no fault fired** is **bit-identical** to the
  reference build (the resilience layer is free on the fault-free
  path).

A final phase aims ``kill`` faults at the parallel suite runner's
worker processes and checks the suite still completes with no errored
cells.  Exit status is non-zero on any violation, so CI can run this
as a gate::

    PYTHONPATH=src python -m repro.tools.chaos --seed 0
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import faults
from repro.benchsuite.harness import run_suite
from repro.benchsuite.registry import load_benchmarks
from repro.engine.session import Compiler
from repro.pipeline.driver import _reference_compile_program
from repro.pipeline.options import PAPER_CONFIGS

#: the acceptance stages: one injected failure in each must be survived
CHAOS_SITES = (
    faults.SITE_PLAN,
    faults.SITE_COLORING,
    faults.SITE_SHRINKWRAP,
    faults.SITE_CODEGEN,
    faults.SITE_JIT,
    faults.SITE_WORKER,
)

#: sites whose fault key names the procedure being compiled, so a fired
#: raise there must surface as that procedure's degradation
_PROCEDURE_SITES = (faults.SITE_PLAN, faults.SITE_COLORING,
                    faults.SITE_CODEGEN)


def _snapshot(exe) -> tuple:
    return ([repr(i) for i in exe.instrs], exe.entry_pc, exe.data_init,
            exe.preserved_masks)


def run_chaos(seed: int, config: str, names: Optional[List[str]] = None,
              verbose: bool = True) -> List[str]:
    """Run the chaos sweep; returns a list of violation messages."""
    options = PAPER_CONFIGS[config]
    benches = load_benchmarks()
    selected = list(names) if names else list(benches)
    violations: List[str] = []
    fired_total = 0
    degraded_total = 0

    for i, name in enumerate(selected):
        source = benches[name].source
        reference = _reference_compile_program(source, options)
        ref_out = reference.run(sim_tier="interp").output

        plan = faults.FaultPlan.seeded(seed + i, sites=CHAOS_SITES)
        try:
            with faults.active(plan):
                built = Compiler(options, resilient=True) \
                    .add_sources(source).compile()
                out = built.run().output
        except Exception as exc:
            violations.append(f"{name}: unhandled exception {exc!r}")
            continue

        report = built.report
        fired_total += len(plan.fired)
        degraded_total += len(report.degradations)

        if out != ref_out:
            violations.append(
                f"{name}: degraded output {out} != reference {ref_out}"
            )
        degraded = report.degraded_procedures()
        for site, key, kind in plan.fired:
            if site in _PROCEDURE_SITES and kind == "raise" \
                    and key not in degraded:
                violations.append(
                    f"{name}: fault at {site}:{key} fired but {key} "
                    "is not reported degraded"
                )
        if not plan.fired and not report.degradations:
            if _snapshot(built.executable) != _snapshot(reference.executable):
                violations.append(
                    f"{name}: fault-free resilient build is not "
                    "bit-identical to the reference build"
                )
        if verbose:
            print(
                f"{name:<10s} fired={len(plan.fired):d} "
                f"degraded={len(report.degradations):d} "
                f"retries={report.retries:d} output-ok="
                f"{out == ref_out}"
            )

    # pool-worker phase: kill a suite worker, the suite must finish
    two = selected[:2] if len(selected) >= 2 else selected
    kill_plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SUITE_WORKER, kind="kill",
                         match=f"{two[0]}:{config}", count=1),
    ])
    try:
        with faults.active(kill_plan):
            results = run_suite([config], names=two, jobs=2,
                                task_timeout=120.0)
        errored = {r.benchmark.name: r.errors for r in results if r.errors}
        if errored:
            violations.append(f"suite kill phase: errored cells {errored}")
        elif verbose:
            retries = sum(r.retries for r in results)
            print(f"suite-kill  retries={retries} errors=0")
    except Exception as exc:
        violations.append(f"suite kill phase: unhandled exception {exc!r}")

    if verbose:
        print(
            f"total: {fired_total} faults fired, {degraded_total} "
            f"degradations, {len(violations)} violations"
        )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite under seeded fault injection"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--config", default="C",
                        choices=sorted(PAPER_CONFIGS))
    parser.add_argument("--names", nargs="*", default=None,
                        help="benchmarks to run (default: all)")
    args = parser.parse_args(argv)
    violations = run_chaos(args.seed, args.config, args.names)
    for v in violations:
        print(f"VIOLATION: {v}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
