"""Chaos runner: the benchmark suite under seeded fault injection.

For every benchmark this drives two builds of the same source -- a
plain (non-resilient) reference compile and a resilient compile under a
seeded :class:`~repro.faults.FaultPlan` arming one fault per toolchain
stage (planner, coloring, shrink-wrap, codegen, tier-2 and tier-3 JIT
translation, pool worker) -- and checks the resilience contract.  A
block profile is attached to every resilient build, so its ``auto``
run starts at the tier-3 JIT and a fault there must walk the full
jit3 -> jit -> interp fallback ladder.  The contract:

* the resilient compile completes with **no unhandled exception**;
* its program produces the **same output** as the reference build
  (degradation is conservative, never wrong);
* every procedure a ``raise`` fault actually hit is reported
  **degraded to the open convention** in ``CompileReport``;
* a compile in which **no fault fired** is **bit-identical** to the
  reference build (the resilience layer is free on the fault-free
  path).

A final phase aims ``kill`` faults at the parallel suite runner's
worker processes and checks the suite still completes with no errored
cells.  Exit status is non-zero on any violation, so CI can run this
as a gate::

    PYTHONPATH=src python -m repro.tools.chaos --seed 0
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from repro import faults
from repro.benchsuite.harness import run_suite
from repro.benchsuite.registry import load_benchmarks
from repro.engine.session import Compiler
from repro.pipeline.driver import _reference_compile_program
from repro.pipeline.options import PAPER_CONFIGS
from repro.pipeline.profile import attach_profile, block_profile_of
from repro.service import (
    BreakerPolicy,
    CompileService,
    RetryPolicy,
    ServiceOverloaded,
)
from repro.store.store import ArtifactStore, StoreLockTimeout

#: the acceptance stages: one injected failure in each must be survived
CHAOS_SITES = (
    faults.SITE_PLAN,
    faults.SITE_COLORING,
    faults.SITE_SHRINKWRAP,
    faults.SITE_CODEGEN,
    faults.SITE_JIT,
    faults.SITE_JIT3,
    faults.SITE_WORKER,
)

#: sites whose fault key names the procedure being compiled, so a fired
#: raise there must surface as that procedure's degradation
_PROCEDURE_SITES = (faults.SITE_PLAN, faults.SITE_COLORING,
                    faults.SITE_CODEGEN)


def _snapshot(exe) -> tuple:
    return ([repr(i) for i in exe.instrs], exe.entry_pc, exe.data_init,
            exe.preserved_masks)


def run_chaos(seed: int, config: str, names: Optional[List[str]] = None,
              verbose: bool = True) -> List[str]:
    """Run the chaos sweep; returns a list of violation messages."""
    options = PAPER_CONFIGS[config]
    benches = load_benchmarks()
    selected = list(names) if names else list(benches)
    violations: List[str] = []
    fired_total = 0
    degraded_total = 0

    for i, name in enumerate(selected):
        source = benches[name].source
        reference = _reference_compile_program(source, options)
        ref_out = reference.run(sim_tier="interp").output
        profile = block_profile_of(reference, attach=False)

        plan = faults.FaultPlan.seeded(seed + i, sites=CHAOS_SITES)
        try:
            with faults.active(plan):
                built = Compiler(options, resilient=True) \
                    .add_sources(source).compile()
                attach_profile(built.executable, profile)
                out = built.run().output
        except Exception as exc:
            violations.append(f"{name}: unhandled exception {exc!r}")
            continue

        report = built.report
        fired_total += len(plan.fired)
        degraded_total += len(report.degradations)

        if out != ref_out:
            violations.append(
                f"{name}: degraded output {out} != reference {ref_out}"
            )
        degraded = report.degraded_procedures()
        for site, key, kind in plan.fired:
            if site in _PROCEDURE_SITES and kind == "raise" \
                    and key not in degraded:
                violations.append(
                    f"{name}: fault at {site}:{key} fired but {key} "
                    "is not reported degraded"
                )
        if not plan.fired and not report.degradations:
            if _snapshot(built.executable) != _snapshot(reference.executable):
                violations.append(
                    f"{name}: fault-free resilient build is not "
                    "bit-identical to the reference build"
                )
        if verbose:
            print(
                f"{name:<10s} fired={len(plan.fired):d} "
                f"degraded={len(report.degradations):d} "
                f"retries={report.retries:d} output-ok="
                f"{out == ref_out}"
            )

    # pool-worker phase: kill a suite worker, the suite must finish
    two = selected[:2] if len(selected) >= 2 else selected
    kill_plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SUITE_WORKER, kind="kill",
                         match=f"{two[0]}:{config}", count=1),
    ])
    try:
        with faults.active(kill_plan):
            results = run_suite([config], names=two, jobs=2,
                                task_timeout=120.0)
        errored = {r.benchmark.name: r.errors for r in results if r.errors}
        if errored:
            violations.append(f"suite kill phase: errored cells {errored}")
        elif verbose:
            retries = sum(r.retries for r in results)
            print(f"suite-kill  retries={retries} errors=0")
    except Exception as exc:
        violations.append(f"suite kill phase: unhandled exception {exc!r}")

    if verbose:
        print(
            f"total: {fired_total} faults fired, {degraded_total} "
            f"degradations, {len(violations)} violations"
        )
    return violations


def run_store_chaos(seed: int, config: str,
                    names: Optional[List[str]] = None,
                    verbose: bool = True) -> List[str]:
    """Chaos sweep over the artifact store's fault sites.

    The store's contract is stronger than the resilience layer's: store
    faults must be **completely invisible** -- every build, cold or
    warm, faulted or not, is bit-identical to a storeless reference
    compile, because the store may only ever skip work, never change it.

    Three phases:

    1. **cold + failed writes** -- ``store-write`` raises; artifacts
       simply are not cached, the build must match the reference;
    2. **warm + corrupted reads** -- a fresh session over the now-warm
       store with ``store-read`` bit-rotting payloads; checksums must
       detect every corruption and fall back to recomputation;
    3. **maintenance locking** -- a held lock times out ``gc`` with
       :class:`StoreLockTimeout` (counted, not hung), and a ``hang``
       fault at the lock site merely delays ``verify``.
    """
    options = PAPER_CONFIGS[config]
    benches = load_benchmarks()
    selected = list(names) if names else list(benches)
    violations: List[str] = []

    with tempfile.TemporaryDirectory(prefix="repro-store-chaos-") as tmp:
        refs = {}
        for name in selected:
            refs[name] = _reference_compile_program(
                benches[name].source, options
            )

        # phase 1: cold compiles while every write fails
        write_plan = faults.FaultPlan(specs=[
            faults.FaultSpec(site=faults.SITE_STORE_WRITE, kind="raise",
                             count=None),
        ])
        cold = Compiler(options, store_path=tmp)
        try:
            with faults.active(write_plan):
                for name in selected:
                    built = Compiler(options, store_path=cold.store) \
                        .add_sources(benches[name].source).compile()
                    if _snapshot(built.executable) != \
                            _snapshot(refs[name].executable):
                        violations.append(
                            f"{name}: build under failed store writes is "
                            "not bit-identical to the reference"
                        )
        except Exception as exc:
            violations.append(
                f"store write phase: unhandled exception {exc!r}"
            )
        if cold.store.stats.write_failures == 0:
            violations.append(
                "store write phase: no write fault fired (site unwired?)"
            )
        if verbose:
            print(f"store-write  failures="
                  f"{cold.store.stats.write_failures} ok="
                  f"{not violations}")

        # warm the store for real (no faults), then corrupt its reads
        warm = Compiler(options, store_path=tmp)
        for name in selected:
            Compiler(options, store_path=warm.store) \
                .add_sources(benches[name].source).compile()

        read_plan = faults.FaultPlan(specs=[
            faults.FaultSpec(site=faults.SITE_STORE_READ, kind="corrupt",
                             count=2 + (seed % 3)),
        ])
        fresh = Compiler(options, store_path=tmp)
        try:
            with faults.active(read_plan):
                for name in selected:
                    built = Compiler(options, store_path=fresh.store) \
                        .add_sources(benches[name].source).compile()
                    if _snapshot(built.executable) != \
                            _snapshot(refs[name].executable):
                        violations.append(
                            f"{name}: warm build under corrupted store "
                            "reads is not bit-identical to the reference"
                        )
        except Exception as exc:
            violations.append(
                f"store read phase: unhandled exception {exc!r}"
            )
        fired = len(read_plan.fired)
        detected = fresh.store.stats.corruptions
        if fired and detected < fired:
            violations.append(
                f"store read phase: {fired} corruptions injected but only "
                f"{detected} detected"
            )
        if verbose:
            print(f"store-read   injected={fired} detected={detected}")

        # phase 3: lock contention (held lock -> timeout; hang -> delay)
        store = ArtifactStore(tmp, lock_timeout=0.2)
        lockfile = Path(tmp) / ".lock"
        lockfile.write_text("held")
        try:
            store.gc(max_bytes=0)
            violations.append(
                "store lock phase: gc under a held lock did not time out"
            )
        except StoreLockTimeout:
            pass
        except Exception as exc:
            violations.append(
                f"store lock phase: unexpected exception {exc!r}"
            )
        finally:
            lockfile.unlink()
        hang_plan = faults.FaultPlan(specs=[
            faults.FaultSpec(site=faults.SITE_STORE_LOCK, kind="hang",
                             hang_seconds=0.05, count=1),
        ])
        try:
            with faults.active(hang_plan):
                report = ArtifactStore(tmp).verify(remove=False)
            if report["corrupt"]:
                violations.append(
                    f"store lock phase: verify found stale corruption "
                    f"{report['corrupt_entries']}"
                )
        except Exception as exc:
            violations.append(
                f"store lock phase: verify under hang raised {exc!r}"
            )
        if verbose:
            print(f"store-lock   timeouts={store.stats.lock_timeouts} "
                  f"hangs={len(hang_plan.fired)}")

    if verbose:
        print(f"store total: {len(violations)} violations")
    return violations


def run_service_chaos(seed: int, config: str,
                      names: Optional[List[str]] = None,
                      verbose: bool = True) -> List[str]:
    """Chaos sweep over the compile service's resilience layer.

    Four phases, each against fresh :class:`CompileService` instances:

    1. **fault-free identity** -- with no faults installed, every
       response must be bit-identical to a reference compile with the
       breaker closed, nothing shed, nothing degraded (the resilience
       layer is free on the healthy path);
    2. **transient dispatch faults** -- ``service-deadline`` raises on
       the first dispatch attempts; bounded retry must absorb them and
       still return bit-identical programs;
    3. **admission shedding** -- ``service-queue`` raises for a few
       admissions; exactly those requests fail with the *typed*
       :class:`ServiceOverloaded` (never an unhandled crash) and the
       rest compile normally;
    4. **breaker + degraded serving** -- persistent dispatch failure
       trips the per-fingerprint breaker; while open, requests are
       served *degraded* through the resilient fallback engine and must
       still be bit-identical (fault-free resilient builds are); after
       ``reset_timeout`` a half-open probe on the now-healthy path
       closes the breaker again.
    """
    options = PAPER_CONFIGS[config]
    benches = load_benchmarks()
    selected = list(names) if names else list(benches)
    violations: List[str] = []
    refs = {
        name: _reference_compile_program(benches[name].source, options)
        for name in selected
    }

    def check_identical(phase: str, name: str, result) -> None:
        if _snapshot(result.program.executable) != \
                _snapshot(refs[name].executable):
            violations.append(
                f"{phase}: {name} response is not bit-identical to the "
                "reference build"
            )

    # phase 1: fault-free -- identity, breaker closed, nothing shed
    async def fault_free():
        svc = CompileService(options)
        results = await asyncio.gather(
            *(svc.compile(benches[n].source) for n in selected)
        )
        await svc.join()
        return svc, results

    try:
        svc, results = asyncio.run(fault_free())
        for name, res in zip(selected, results):
            check_identical("service fault-free", name, res)
            if res.degraded:
                violations.append(
                    f"service fault-free: {name} served degraded"
                )
        s = svc.stats
        if s.shed or s.degraded or s.retries or s.breaker_trips \
                or svc.breaker_states():
            violations.append(
                f"service fault-free: resilience machinery engaged on a "
                f"healthy path ({s.to_dict()})"
            )
        if verbose:
            print(f"svc-clean    compiled={s.compiled} "
                  f"batches={s.batches} ok={not violations}")
    except Exception as exc:
        violations.append(
            f"service fault-free phase: unhandled exception {exc!r}"
        )

    # phase 2: transient dispatch faults absorbed by bounded retry
    retry_plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_DEADLINE, kind="raise",
                         count=2),
    ])

    async def retried():
        svc = CompileService(
            options,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.005,
                              seed=seed),
        )
        with faults.active(retry_plan):
            results = await asyncio.gather(
                *(svc.compile(benches[n].source) for n in selected)
            )
            await svc.join()
        return svc, results

    try:
        svc, results = asyncio.run(retried())
        for name, res in zip(selected, results):
            check_identical("service retry", name, res)
        fired = len(retry_plan.fired)
        if not fired:
            violations.append(
                "service retry phase: no dispatch fault fired "
                "(site unwired?)"
            )
        if svc.stats.retries < fired:
            violations.append(
                f"service retry phase: {fired} faults fired but only "
                f"{svc.stats.retries} retries recorded"
            )
        if svc.stats.failed:
            violations.append(
                f"service retry phase: {svc.stats.failed} requests "
                "failed despite retry budget"
            )
        if verbose:
            print(f"svc-retry    fired={fired} "
                  f"retries={svc.stats.retries} "
                  f"failed={svc.stats.failed}")
    except Exception as exc:
        violations.append(
            f"service retry phase: unhandled exception {exc!r}"
        )

    # phase 3: admission control sheds with the typed error
    shed_count = min(2, max(1, len(selected) - 1))
    queue_plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_QUEUE, kind="raise",
                         count=shed_count),
    ])

    async def shedding():
        svc = CompileService(options)
        with faults.active(queue_plan):
            results = await asyncio.gather(
                *(svc.compile(benches[n].source) for n in selected),
                return_exceptions=True,
            )
            await svc.join()
        return svc, results

    try:
        svc, results = asyncio.run(shedding())
        shed = sum(
            1 for r in results if isinstance(r, ServiceOverloaded)
        )
        other = [
            r for r in results
            if isinstance(r, BaseException)
            and not isinstance(r, ServiceOverloaded)
        ]
        if other:
            violations.append(
                f"service shed phase: non-typed failures {other!r}"
            )
        if shed != len(queue_plan.fired):
            violations.append(
                f"service shed phase: {len(queue_plan.fired)} queue "
                f"faults fired but {shed} requests shed"
            )
        if svc.stats.shed != shed:
            violations.append(
                f"service shed phase: stats.shed={svc.stats.shed} "
                f"disagrees with {shed} ServiceOverloaded responses"
            )
        for name, res in zip(selected, results):
            if not isinstance(res, BaseException):
                check_identical("service shed", name, res)
        if verbose:
            print(f"svc-shed     shed={shed} "
                  f"served={len(results) - shed}")
    except Exception as exc:
        violations.append(
            f"service shed phase: unhandled exception {exc!r}"
        )

    # phase 4: breaker trips -> degraded serving -> probe closes it
    breaker_name = selected[0]
    breaker_source = benches[breaker_name].source
    trip_plan = faults.FaultPlan(specs=[
        faults.FaultSpec(site=faults.SITE_SERVICE_DEADLINE, kind="raise",
                         count=2),
    ])

    async def breaker():
        svc = CompileService(
            options,
            retry=None,
            breaker=BreakerPolicy(failure_threshold=2,
                                  reset_timeout=0.2),
        )
        with faults.active(trip_plan):
            failures = 0
            for _ in range(2):
                try:
                    await svc.compile(breaker_source)
                except faults.InjectedFault:
                    failures += 1
            degraded = await svc.compile(breaker_source)
            await asyncio.sleep(0.25)  # past reset_timeout: probe opens
            probed = await svc.compile(breaker_source)
            await svc.join()
        return svc, failures, degraded, probed

    try:
        svc, failures, degraded, probed = asyncio.run(breaker())
        if failures != 2:
            violations.append(
                f"service breaker phase: expected 2 primary failures, "
                f"saw {failures}"
            )
        if not svc.stats.breaker_trips:
            violations.append(
                "service breaker phase: breaker never tripped"
            )
        if not degraded.degraded:
            violations.append(
                "service breaker phase: open breaker did not serve "
                "degraded"
            )
        check_identical("service breaker", breaker_name, degraded)
        if probed.degraded:
            violations.append(
                "service breaker phase: healthy half-open probe still "
                "served degraded"
            )
        check_identical("service breaker", breaker_name, probed)
        if svc.breaker_states():
            violations.append(
                f"service breaker phase: breaker still "
                f"{svc.breaker_states()} after a successful probe"
            )
        if verbose:
            print(f"svc-breaker  trips={svc.stats.breaker_trips} "
                  f"degraded={svc.stats.degraded} "
                  f"recovered={not probed.degraded}")
    except Exception as exc:
        violations.append(
            f"service breaker phase: unhandled exception {exc!r}"
        )

    if verbose:
        print(f"service total: {len(violations)} violations")
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the benchmark suite under seeded fault injection"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--config", default="C",
                        choices=sorted(PAPER_CONFIGS))
    parser.add_argument("--names", nargs="*", default=None,
                        help="benchmarks to run (default: all)")
    parser.add_argument("--store", action="store_true",
                        help="run the artifact-store chaos phases instead "
                             "of the toolchain sweep")
    parser.add_argument("--service", action="store_true",
                        help="run the compile-service resilience phases "
                             "instead of the toolchain sweep")
    args = parser.parse_args(argv)
    if args.store:
        violations = run_store_chaos(args.seed, args.config, args.names)
    elif args.service:
        violations = run_service_chaos(args.seed, args.config, args.names)
    else:
        violations = run_chaos(args.seed, args.config, args.names)
    for v in violations:
        print(f"VIOLATION: {v}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
