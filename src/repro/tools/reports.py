"""Human-readable diagnostic reports over compiled programs.

These are the reproduction's equivalent of a compiler's ``-debug``
listings: allocation tables, interference summaries, call-graph exports
and executable disassembly.  The examples and the CLI build on them; they
are also handy when studying why the allocator made a particular choice.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.interproc.allocator import FnPlan, ProgramPlan
from repro.pipeline.driver import CompiledProgram
from repro.pipeline.linker import Executable
from repro.target.registers import DEFAULT_CONVENTION, registers_in_mask


def allocation_report(plan: FnPlan) -> str:
    """One procedure's allocation decisions as a table."""
    alloc = plan.alloc
    lines = [f"procedure {plan.name} [{plan.mode}]"]
    ranges = alloc.ranges.ranges if alloc.ranges else {}
    rows = []
    for v in sorted(alloc.candidates, key=lambda v: v.name):
        lr = ranges.get(v)
        if lr is None or not lr.blocks:
            continue
        reg = alloc.assignment.get(v)
        rows.append((
            v.name,
            v.kind.value,
            reg.name if reg else "memory",
            len(lr.blocks),
            lr.use_weight,
            lr.def_weight,
            len(lr.calls),
        ))
    if rows:
        lines.append(
            f"  {'value':<12s} {'kind':<7s} {'location':<9s} "
            f"{'blocks':>6s} {'uses':>6s} {'defs':>6s} {'calls':>6s}"
        )
        for name, kind, loc, blocks, uses, defs, calls in rows:
            lines.append(
                f"  {name:<12s} {kind:<7s} {loc:<9s} "
                f"{blocks:>6d} {uses:>6d} {defs:>6d} {calls:>6d}"
            )
    if plan.entry_exit_saves:
        lines.append(
            "  entry/exit saves: "
            + ", ".join(f"${r.name}" for r in plan.entry_exit_saves)
        )
    for idx, placement in sorted(plan.wrapped.items()):
        reg = registers_in_mask(1 << idx)[0]
        lines.append(
            f"  shrink-wrapped ${reg.name}: saves@{sorted(placement.saves)} "
            f"restores@{sorted(placement.restores)}"
        )
    if plan.summary is not None and plan.summary.closed:
        used = ", ".join(
            f"${r.name}" for r in registers_in_mask(plan.summary.used_mask)
        )
        lines.append(f"  summary (subtree may destroy): {used}")
    return "\n".join(lines)


def program_report(prog: CompiledProgram) -> str:
    """Allocation report for every procedure, in processing order."""
    parts = [f"optimisation: {describe_options(prog)}"]
    for name in prog.plan.order:
        parts.append(allocation_report(prog.plan.plans[name]))
    return "\n\n".join(parts)


def describe_options(prog: CompiledProgram) -> str:
    o = prog.options
    bits = [f"-O{o.opt_level}"]
    if o.shrink_wrap:
        bits.append("+shrink-wrap")
    if o.ipra and not o.combine:
        bits.append("-combining")
    if o.ipra_globals:
        bits.append("+modref-globals")
    if o.block_weights is not None:
        bits.append("+profile")
    if o.convention != DEFAULT_CONVENTION:
        conv = o.convention
        bits.append(
            f"({conv.name}: {len(conv.allocatable)} regs, "
            f"{conv.num_arg_regs} reg args)"
        )
    return " ".join(bits)


def tune_report(report: Dict) -> str:
    """Render an autotuner report (the :meth:`TuneResult.to_report`
    dict) as the human-readable search summary: one row per evaluated
    candidate, the winner vs the paper's fixed convention, and each
    program's individually-best convention."""
    lines = [
        f"convention autotune: config {report['config']}, "
        f"budget {report['budget']}, seed {report['seed']}, "
        f"{report['evaluations']} evaluations over "
        f"{len(report['programs'])} programs "
        f"({report['wall_seconds']:.2f}s)",
        f"  {'candidate':<24s} {'round':>5s} {'progs':>5s} "
        f"{'cycles':>14s} {'save/restore':>12s} {'scalar':>10s}",
        "  " + "-" * 74,
    ]
    for cand in report["candidates"]:
        t = cand["totals"]
        name = cand["convention"]["name"]
        if cand["errors"]:
            lines.append(
                f"  {name:<24s} {cand['round']:>5d} "
                f"DISQUALIFIED ({len(cand['errors'])} failures)"
            )
            continue
        lines.append(
            f"  {name:<24s} {cand['round']:>5d} {len(cand['programs']):>5d} "
            f"{t['cycles']:>14,d} {t['save_restore_memops']:>12,d} "
            f"{t['scalar_memops']:>10,d}"
        )
    win = report["winner"]
    red = win["reduction_vs_baseline"]
    lines.append(
        f"winner: {win['convention']['name']}  "
        f"(vs {report['baseline']['convention']['name']}: "
        f"cycles {red['cycles']:+.2f}%, "
        f"save/restore {red['save_restore_memops']:+.2f}%, "
        f"scalar {red['scalar_memops']:+.2f}%)"
    )
    guard = report.get("guard")
    if guard is not None:
        lines.append(
            f"guard [{guard['candidate']}]: "
            + ("holds" if guard["holds"] else "VIOLATED")
        )
    lines.append("per-program optima:")
    for name, cell in sorted(report["per_program_winners"].items()):
        lines.append(
            f"  {name:<10s} {cell['convention']:<24s} "
            f"{cell['cycles']:>12,d} cycles "
            f"({cell['reduction_pct']:+.2f}% vs baseline)"
        )
    return "\n".join(lines)


def call_graph_dot(plan: ProgramPlan) -> str:
    """The program call graph in Graphviz DOT form; open procedures are
    drawn double-circled (they act as save/restore barriers)."""
    lines = ["digraph callgraph {"]
    cg = plan.call_graph
    for name in plan.order:
        shape = "doublecircle" if (cg and cg.is_open(name)) else "ellipse"
        mode = plan.plans[name].mode
        lines.append(f'  "{name}" [shape={shape}, label="{name}\\n{mode}"];')
    if cg is not None:
        for caller in plan.order:
            for callee in sorted(cg.callees(caller)):
                if callee in plan.plans:
                    lines.append(f'  "{caller}" -> "{callee}";')
    lines.append("}")
    return "\n".join(lines)


def disassemble(exe: Executable, function: Optional[str] = None) -> str:
    """Disassemble a linked executable (optionally one function), with
    pc values and resolved branch targets annotated by symbol."""
    by_pc: Dict[int, List[str]] = {}
    for label, pc in exe.labels.items():
        by_pc.setdefault(pc, []).append(label)
    start, end = 0, len(exe.instrs)
    if function is not None:
        start = exe.func_entries[function]
        later = [p for p in exe.func_entries.values() if p > start]
        end = min(later) if later else len(exe.instrs)
    lines = []
    for pc in range(start, end):
        for label in sorted(by_pc.get(pc, ())):
            lines.append(f"{label}:")
        lines.append(f"  {pc:5d}  {exe.instrs[pc].render()}")
    return "\n".join(lines)


def resilience_report(prog: CompiledProgram) -> str:
    """The fault-boundary outcome of a resilient compile: every
    degradation (procedure, stage, fallback rung, error) plus the retry
    and cache-corruption counters.  Programs compiled without
    ``resilient=True`` carry no report."""
    report = prog.report
    if report is None:
        return "no resilience report (compiled without resilient=True)"
    lines = [
        f"degraded procedures: {len(report.degradations)}  "
        f"retries: {report.retries}  "
        f"cache corruptions: {report.cache_corruptions}  "
        f"jit fallbacks: {report.jit_fallbacks}"
    ]
    for d in report.degradations:
        lines.append(
            f"  {d.procedure}: {d.stage} failed -> {d.fallback} ({d.error})"
        )
    return "\n".join(lines)


def suite_fault_summary(results, engine_stats=None) -> str:
    """Per-run fault totals for a benchmark-suite report: worker
    retries and errored cells per benchmark, plus the engine's
    session-wide resilience counters when its stats are given."""
    retries = sum(r.retries for r in results)
    errors = sum(len(r.errors) for r in results)
    lines = [f"suite faults: {retries} worker retries, {errors} failed cells"]
    for r in results:
        if r.retries or r.errors:
            failed = ", ".join(
                f"{cfg}: {err}" for cfg, err in sorted(r.errors.items())
            )
            lines.append(
                f"  {r.benchmark.name}: {r.retries} retries"
                + (f"; failed [{failed}]" if failed else "")
            )
    if engine_stats is not None:
        totals = engine_stats.fault_totals()
        lines.append(
            "engine faults: "
            f"{totals['degraded']} degraded, {totals['retries']} retries, "
            f"{totals['cache_corruptions']} cache corruptions"
        )
    return "\n".join(lines)


def store_report(store) -> str:
    """One :class:`~repro.store.store.ArtifactStore` handle's health
    counters: traffic, the self-healing loop (corruption detection,
    quarantine, orphan reaping) and lock contention."""
    st = store.stats
    lookups = st.hits + st.misses
    rate = st.hits / lookups if lookups else 0.0
    lines = [
        f"store: {st.hits} hits / {st.misses} misses ({rate:.1%}), "
        f"{st.writes} writes ({st.write_failures} failed), "
        f"{st.evictions} evicted",
        f"  healing: {st.corruptions} corruptions detected, "
        f"{st.quarantined} quarantined, {st.reaped} orphan temps "
        f"reaped, {st.scrubs} scrub passes",
        f"  locking: {st.lock_waits} waits, "
        f"{st.lock_timeouts} timeouts",
    ]
    return "\n".join(lines)


def service_report(service) -> str:
    """One :class:`~repro.service.CompileService`'s operating picture:
    request traffic, the resilience counters (retries, sheds, expired
    deadlines, breaker trips, degraded serves) and any breakers
    currently non-closed, plus the store report when a persistent store
    is attached."""
    s = service.stats
    lines = [
        f"service: {s.requests} requests "
        f"({s.deduped} deduped, {s.batches} batches)",
        f"  outcomes: {s.compiled} compiled, {s.failed} failed, "
        f"{s.degraded} degraded, {s.shed} shed",
        f"  deadlines: {s.deadline_expired} expired, "
        f"{s.cancelled} cancelled; retries: {s.retries}",
    ]
    open_states = service.breaker_states()
    if open_states:
        shown = ", ".join(
            f"{fp[:12]}={state}"
            for fp, state in sorted(open_states.items())
        )
        lines.append(
            f"  breakers: {s.breaker_trips} trips; non-closed: {shown}"
        )
    else:
        lines.append(f"  breakers: {s.breaker_trips} trips; all closed")
    if service.store is not None:
        lines.append(
            "  " + store_report(service.store).replace("\n", "\n  ")
        )
    return "\n".join(lines)


def jit3_report(stats_or_info) -> str:
    """The tier-3 trace JIT's translation decisions for one run: trace
    shape, cross-procedure inline/link counts, specialization guards,
    host register syncs elided by linking, and every bailout reason.
    Takes a :class:`~repro.sim.stats.RunStats` (from a ``jit3`` run) or
    its ``jit3`` dict directly."""
    info = getattr(stats_or_info, "jit3", stats_or_info)
    if not info:
        return "no tier-3 data (run with sim_tier='jit3' or a profile)"
    lines = [
        f"traces: {info.get('traces', 0)}  "
        f"longest: {info.get('max_trace_len', 0)} instrs",
        f"inlined calls: {info.get('inlined_calls', 0)}  "
        f"linked returns: {info.get('linked_returns', 0)}  "
        f"guarded returns: {info.get('guarded_returns', 0)}",
        f"linked loops: {info.get('linked_loops', 0)}  "
        f"specialization guards: {info.get('spec_guards', 0)}",
        f"elided host register syncs: {info.get('elided_syncs', 0)}",
    ]
    bailouts = info.get("bailouts") or {}
    if bailouts:
        lines.append("bailouts:")
        for reason, count in sorted(bailouts.items()):
            lines.append(f"  {reason}: {count}")
    else:
        lines.append("bailouts: none")
    return "\n".join(lines)


def interference_summary(plan: FnPlan) -> str:
    """Degree histogram of the interference graph (allocation pressure)."""
    alloc = plan.alloc
    if alloc.ranges is None:
        return f"{plan.name}: no ranges"
    degrees = sorted(
        (len(alloc.ranges.neighbors(v)), v.name)
        for v in alloc.candidates
        if v in alloc.ranges.ranges
    )
    if not degrees:
        return f"{plan.name}: empty interference graph"
    max_deg, max_name = degrees[-1]
    avg = sum(d for d, _ in degrees) / len(degrees)
    return (
        f"{plan.name}: {len(degrees)} ranges, max degree {max_deg} "
        f"({max_name}), mean degree {avg:.1f}"
    )
