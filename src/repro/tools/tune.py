"""CLI front end of the calling-convention autotuner.

Run a search and write the schema-versioned JSON report::

    PYTHONPATH=src python -m repro.tools.tune --budget small \
        --out benchmarks/TUNE_report.json

CI smoke (``--check``): runs the small budget, asserts the search is
sound -- the winner is never worse than the paper's baseline convention
and the strictly-worse-by-construction candidate never beats it -- and
schema-validates the committed report *without* overwriting it (exactly
the ``bench_speed --check`` contract).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.pipeline.options import PAPER_CONFIGS
from repro.tools.reports import tune_report
from repro.tuning.tuner import TUNE_SCHEMA_VERSION, check_report, tune

#: the committed report the CI check validates
REPORT_PATH = Path(__file__).resolve().parents[3] / "benchmarks" / "TUNE_report.json"


def run_check(args) -> int:
    """CI smoke: a small search must be sound, and the committed report
    must match the current schema."""
    result = tune(
        budget="small",
        config=args.config,
        names=args.names,
        jobs=args.jobs,
        sim_tier=args.sim_tier,
        seed=args.seed,
        store_path=args.store,
        on_progress=print if args.verbose else None,
    )
    report = result.to_report()
    errors = check_report(report)
    guard = report.get("guard")
    if guard is None:
        errors.append(
            "small budget did not evaluate the strictly-worse guard "
            "candidate on the full program set"
        )
    for err in errors:
        print(f"CHECK VIOLATION: {err}", file=sys.stderr)
    if not REPORT_PATH.exists():
        print(
            f"CHECK VIOLATION: committed report {REPORT_PATH} is missing "
            f"(generate it with --out {REPORT_PATH})",
            file=sys.stderr,
        )
        return 1
    committed = json.loads(REPORT_PATH.read_text())
    for err in check_report(committed):
        errors.append(f"committed report: {err}")
        print(f"CHECK VIOLATION: committed report: {err}", file=sys.stderr)
    if not errors:
        print(
            f"tune check OK: winner {report['winner']['convention']['name']} "
            f"(schema v{TUNE_SCHEMA_VERSION}, committed report valid)"
        )
    return 1 if errors else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="search calling conventions over the benchmark suite"
    )
    parser.add_argument("--budget", default="small",
                        choices=["small", "medium", "full"],
                        help="candidate-space size (default: small)")
    parser.add_argument("--config", default="C",
                        choices=sorted(PAPER_CONFIGS),
                        help="paper config to tune under (default: C)")
    parser.add_argument("--names", nargs="*", default=None,
                        help="benchmark subset (default: all 13)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="1 = shared incremental engine; >1 = "
                             "supervised process pool per candidate")
    parser.add_argument("--seed", type=int, default=0,
                        help="search seed (same seed => same report)")
    parser.add_argument("--sample", type=int, default=None,
                        help="candidate count for --budget medium")
    parser.add_argument("--sim-tier", default="auto",
                        help="simulator tier for evaluation runs")
    parser.add_argument("--store", default=None,
                        help="artifact-store directory for warm-started "
                             "candidate compiles (jobs=1 only)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: run small budget, assert guards, "
                             "validate the committed report (no overwrite)")
    parser.add_argument("--quiet", dest="verbose", action="store_false",
                        help="suppress per-candidate progress")
    args = parser.parse_args(argv)

    if args.check:
        return run_check(args)

    result = tune(
        budget=args.budget,
        config=args.config,
        names=args.names,
        jobs=args.jobs,
        sim_tier=args.sim_tier,
        seed=args.seed,
        store_path=args.store,
        sample=args.sample,
        on_progress=print if args.verbose else None,
    )
    report = result.to_report()
    errors = check_report(report)
    for err in errors:
        print(f"VIOLATION: {err}", file=sys.stderr)
    print(tune_report(report))
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"report written to {out}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
