"""Crash-recovery gate: SIGKILL a writer mid-publish; the store heals.

The artifact store's write protocol is *atomic publish*: the payload is
written to a shard-local temp file and then ``os.replace``-renamed onto
its content address.  The crash the protocol must survive is therefore
a writer dying **between** those two steps -- the window where a torn
artifact would live if publishing were not atomic.  This harness
manufactures exactly that crash, deterministically:

1. a **victim child process** arms a seeded ``hang`` fault inside the
   publish window (:data:`repro.faults.SITE_STORE_WRITE`, key
   ``publish:<ns>`` with the namespace drawn from the seed) and starts
   compiling the benchmark suite into a shared store;
2. the parent polls the store for the victim's in-flight ``*.tmp`` file
   and, the moment it appears -- the victim is stalled mid-``put`` --
   delivers a real ``SIGKILL``;
3. recovery must then show the store *self-heals*:

   * the reopened store **verifies clean**: no torn blob exists, only
     the orphaned temp the kill left behind;
   * ``scrub`` **reaps the orphan** and quarantines nothing;
   * a fresh process **warm-starts bit-identically**: compiling the
     suite against the survivor store yields executables identical to
     an undisturbed storeless reference compile, with store hits and
     zero corruptions.

CI runs this as a gate::

    PYTHONPATH=src python -m repro.tools.crashrecovery --seed 0
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from repro import faults
from repro.pipeline.options import PAPER_CONFIGS
from repro.store.store import NS_CODEGEN, NS_PLAN, ArtifactStore
from repro.tools.warmstart import _spawn_child, compile_suite

#: namespaces the seed may aim the mid-publish hang at (both are written
#: during every suite compile)
KILL_NAMESPACES = (NS_PLAN, NS_CODEGEN)


def _child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))] +
        env.get("PYTHONPATH", "").split(os.pathsep) if p
    )
    return env


def _spawn_victim(store: str, configs: List[str],
                  names: Optional[List[str]], ns: str) -> subprocess.Popen:
    """Start the child that will stall mid-``put`` of namespace ``ns``."""
    cmd = [
        sys.executable, "-m", "repro.tools.crashrecovery",
        "--phase", "child", "--store", store, "--ns", ns,
        "--configs", *configs,
    ]
    if names:
        cmd += ["--names", *names]
    return subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=_child_env(),
    )


def _victim_main(store: str, configs: List[str],
                 names: Optional[List[str]], ns: str) -> int:
    """Child phase: hang for a long time inside the publish window of
    the first ``ns`` put, waiting for the parent's SIGKILL."""
    plan = faults.FaultPlan(specs=[
        faults.FaultSpec(
            site=faults.SITE_STORE_WRITE, kind="hang",
            match=f"publish:{ns}", hang_seconds=300.0, count=1,
        ),
    ])
    with faults.active(plan):
        report = compile_suite(store, configs, names)
    # reaching here means the fault never fired; tell the parent
    json.dump({"completed": True, "fired": plan.fired,
               "builds": len(report["digests"])}, sys.stdout)
    return 0


def run_crashrecovery(
    seed: int,
    configs: List[str],
    names: Optional[List[str]] = None,
    store_dir: Optional[str] = None,
    kill_timeout: float = 120.0,
    verbose: bool = True,
) -> List[str]:
    """Run the kill -> reopen -> scrub -> warm-start check; returns
    violation messages (empty = the gate passes)."""
    violations: List[str] = []
    ns = random.Random(seed).choice(KILL_NAMESPACES)
    ctx = (
        tempfile.TemporaryDirectory(prefix="repro-crashrec-")
        if store_dir is None else None
    )
    store = store_dir if store_dir is not None else ctx.name
    try:
        victim = _spawn_victim(store, configs, names, ns)
        stalled_tmp: Optional[Path] = None
        deadline = time.monotonic() + kill_timeout
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break
            temps = sorted(Path(store).glob("*/*.tmp"))
            if temps:
                stalled_tmp = temps[0]
                break
            time.sleep(0.01)

        if victim.poll() is not None:
            out, err = victim.communicate()
            violations.append(
                f"victim exited ({victim.returncode}) before the kill "
                f"window opened: hang at publish:{ns} never fired "
                f"(stdout={out!r})"
            )
        elif stalled_tmp is None:
            victim.kill()
            victim.communicate()
            violations.append(
                f"no in-flight temp file appeared within {kill_timeout}s"
            )
        else:
            victim.send_signal(signal.SIGKILL)
            victim.communicate()
            if victim.returncode != -signal.SIGKILL:
                violations.append(
                    f"victim exit status {victim.returncode} is not "
                    f"SIGKILL ({-signal.SIGKILL})"
                )

        orphans = sorted(Path(store).glob("*/*.tmp"))
        if stalled_tmp is not None and not orphans:
            violations.append(
                "SIGKILL mid-publish left no orphaned temp file"
            )
        if verbose:
            print(f"kill        ns={ns} orphaned-temps={len(orphans)}")

        # 1. reopen: the atomic-rename protocol cannot have torn a blob
        survivor = ArtifactStore(store)
        report = survivor.verify(remove=False)
        if report["corrupt"]:
            violations.append(
                f"reopened store has {report['corrupt']} corrupt "
                f"entries after the crash: {report['corrupt_entries']}"
            )
        if verbose:
            print(f"verify      checked={report['checked']} "
                  f"corrupt={report['corrupt']}")

        # 2. scrub: the orphan is reaped, nothing is quarantined
        scrub = survivor.scrub(orphan_age_seconds=0.0, resume=False)
        if scrub["quarantined"]:
            violations.append(
                f"scrub quarantined {scrub['quarantined']} entries in a "
                "store that only ever lost a writer mid-publish"
            )
        if orphans and scrub["reaped"] < len(orphans):
            violations.append(
                f"scrub reaped {scrub['reaped']} of {len(orphans)} "
                "orphaned temps"
            )
        leftover = sorted(Path(store).glob("*/*.tmp"))
        if leftover:
            violations.append(
                f"temp files survived the scrub: "
                f"{[str(p) for p in leftover]}"
            )
        if verbose:
            print(f"scrub       checked={scrub['checked']} "
                  f"reaped={scrub['reaped']} "
                  f"quarantined={scrub['quarantined']}")

        # 3. warm-start identity: the survivor store serves a fresh
        # process artifacts bit-identical to an undisturbed reference
        ref = _spawn_child(None, configs, names)
        warm = _spawn_child(store, configs, names)
        if ref["digests"] != warm["digests"]:
            diff = [
                k for k in ref["digests"]
                if ref["digests"].get(k) != warm["digests"].get(k)
            ]
            violations.append(
                f"warm-start from the crashed store is not bit-identical "
                f"to the reference for {diff}"
            )
        st = warm["store"] or {}
        if st.get("corruptions"):
            violations.append(
                f"warm-start detected {st['corruptions']} corruptions "
                "in the survivor store"
            )
        if not st.get("hits"):
            violations.append(
                "warm-start took no hits from the survivor store (the "
                "victim's completed puts should have survived)"
            )
        if verbose:
            print(
                f"warm-start  builds={len(warm['digests'])} "
                f"hits={st.get('hits', 0)} "
                f"identical={ref['digests'] == warm['digests']}"
            )
    finally:
        if ctx is not None:
            ctx.cleanup()

    if verbose:
        print(f"crash-recovery: {len(violations)} violations")
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="kill-mid-put crash-recovery gate for the artifact "
                    "store"
    )
    parser.add_argument("--phase", choices=["drive", "child"],
                        default="drive")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--store", default=None,
                        help="store directory (default: a temp dir)")
    parser.add_argument("--configs", nargs="+", default=["C"],
                        choices=sorted(PAPER_CONFIGS))
    parser.add_argument("--names", nargs="*", default=None)
    parser.add_argument("--ns", default=NS_PLAN,
                        help="(child) namespace whose publish hangs")
    parser.add_argument("--kill-timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    if args.phase == "child":
        return _victim_main(args.store, args.configs, args.names, args.ns)

    violations = run_crashrecovery(
        args.seed, args.configs, args.names,
        store_dir=args.store, kill_timeout=args.kill_timeout,
    )
    for v in violations:
        print(f"VIOLATION: {v}", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
