"""Control-flow graphs, dominators, and natural loops."""

from repro.cfg.cfg import CFG, build_cfg
from repro.cfg.dominance import (
    dominates,
    dominator_tree_children,
    immediate_dominators,
)
from repro.cfg.loops import Loop, LoopInfo, find_loops, WEIGHT_BASE

__all__ = [
    "CFG",
    "build_cfg",
    "dominates",
    "dominator_tree_children",
    "immediate_dominators",
    "Loop",
    "LoopInfo",
    "find_loops",
    "WEIGHT_BASE",
]
