"""Control-flow graph over IR basic blocks.

The CFG indexes a function's blocks and provides predecessor/successor
maps, reverse postorder, and the exit set.  Dominators and natural loops
live in sibling modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import BasicBlock, IRFunction
from repro.ir.instructions import Ret


@dataclass
class CFG:
    """Indexed control-flow graph for one IR function.

    Blocks are referred to by dense integer ids (``0`` is the entry),
    which keeps the dataflow bit-vector code simple and fast.
    """

    fn: IRFunction
    blocks: List[BasicBlock] = field(default_factory=list)
    index: Dict[str, int] = field(default_factory=dict)
    succs: List[List[int]] = field(default_factory=list)
    preds: List[List[int]] = field(default_factory=list)

    @property
    def entry(self) -> int:
        return 0

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def exits(self) -> List[int]:
        """Blocks ending in a return."""
        return [
            i for i, b in enumerate(self.blocks)
            if isinstance(b.terminator, Ret)
        ]

    def reverse_postorder(self) -> List[int]:
        seen: Set[int] = set()
        order: List[int] = []
        # iterative DFS to avoid recursion limits on long chains
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        seen.add(self.entry)
        while stack:
            node, child = stack[-1]
            succ = self.succs[node]
            if child < len(succ):
                stack[-1] = (node, child + 1)
                nxt = succ[child]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(node)
        order.reverse()
        return order

    def name_of(self, block_id: int) -> str:
        return self.blocks[block_id].name


def build_cfg(fn: IRFunction) -> CFG:
    """Build the CFG of ``fn``.  The function must be verified IR (all
    blocks terminated, all targets defined); unreachable blocks are
    assumed to have been removed."""
    fn.remove_unreachable_blocks()
    cfg = CFG(fn=fn)
    cfg.blocks = list(fn.blocks)
    cfg.index = {b.name: i for i, b in enumerate(cfg.blocks)}
    n = len(cfg.blocks)
    cfg.succs = [[] for _ in range(n)]
    cfg.preds = [[] for _ in range(n)]
    for i, block in enumerate(cfg.blocks):
        for target in block.successors():
            j = cfg.index[target]
            cfg.succs[i].append(j)
            cfg.preds[j].append(i)
    return cfg
