"""Natural-loop detection and loop-nesting depth.

Two clients need loops:

* the register allocator weights references by ``WEIGHT_BASE ** depth``
  (the classic priority-coloring frequency estimate), and
* shrink-wrapping must smear a register's APP attribute over any loop that
  contains a use, so saves/restores never execute once per iteration
  (Section 5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.cfg.cfg import CFG
from repro.cfg.dominance import dominates, immediate_dominators

#: Estimated iteration count per loop level for priority weighting.
WEIGHT_BASE = 10
#: Depth cap so weights stay bounded for pathological nests.
MAX_WEIGHT_DEPTH = 6


@dataclass
class Loop:
    """One natural loop: header plus body (header included)."""

    header: int
    body: Set[int] = field(default_factory=set)


@dataclass
class LoopInfo:
    loops: List[Loop] = field(default_factory=list)
    depth: List[int] = field(default_factory=list)   # per block id

    def weight(self, block_id: int) -> int:
        d = min(self.depth[block_id], MAX_WEIGHT_DEPTH)
        return WEIGHT_BASE ** d


def find_loops(cfg: CFG) -> LoopInfo:
    """Find natural loops from back edges (tail -> dominating header).

    Loops sharing a header are merged, matching the usual definition.
    Irreducible cycles have no back edge under dominance and are simply
    not counted as loops -- safe for both clients (weights stay low and
    shrink-wrap smearing falls back to correctness-by-verification).
    """
    idom = immediate_dominators(cfg)
    by_header: Dict[int, Set[int]] = {}
    for tail in range(cfg.num_blocks):
        for head in cfg.succs[tail]:
            if dominates(idom, head, tail, cfg.entry):
                body = by_header.setdefault(head, {head})
                # walk predecessors backwards from the tail until the header
                work = [tail]
                while work:
                    node = work.pop()
                    if node in body:
                        continue
                    body.add(node)
                    work.extend(cfg.preds[node])

    info = LoopInfo(depth=[0] * cfg.num_blocks)
    for header, body in sorted(by_header.items()):
        info.loops.append(Loop(header=header, body=body))
    for loop in info.loops:
        for b in loop.body:
            info.depth[b] += 1
    return info
