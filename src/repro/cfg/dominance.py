"""Dominator computation (Cooper-Harvey-Kennedy iterative algorithm)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfg.cfg import CFG


def immediate_dominators(cfg: CFG) -> List[Optional[int]]:
    """``idom[b]`` for every block; the entry's idom is itself.

    Unreachable blocks cannot occur (build_cfg removes them).
    """
    rpo = cfg.reverse_postorder()
    order_index = {b: i for i, b in enumerate(rpo)}
    idom: List[Optional[int]] = [None] * cfg.num_blocks
    idom[cfg.entry] = cfg.entry

    def intersect(a: int, b: int) -> int:
        while a != b:
            while order_index[a] > order_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while order_index[b] > order_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for b in rpo:
            if b == cfg.entry:
                continue
            new_idom: Optional[int] = None
            for p in cfg.preds[b]:
                if idom[p] is None:
                    continue
                new_idom = p if new_idom is None else intersect(p, new_idom)
            if new_idom is not None and idom[b] != new_idom:
                idom[b] = new_idom
                changed = True
    return idom


def dominates(idom: List[Optional[int]], a: int, b: int, entry: int = 0) -> bool:
    """True if ``a`` dominates ``b`` (reflexive)."""
    node = b
    while True:
        if node == a:
            return True
        if node == entry:
            return a == entry
        parent = idom[node]
        if parent is None or parent == node:
            return a == node
        node = parent


def dominator_tree_children(idom: List[Optional[int]]) -> Dict[int, List[int]]:
    children: Dict[int, List[int]] = {}
    for b, d in enumerate(idom):
        if d is None or d == b:
            continue
        children.setdefault(d, []).append(b)
    return children
