"""Persistent content-addressed artifact store.

The incremental engine's caches (front-end IR, plan summaries, codegen
artifacts) are content-keyed, so they are safe to share across sessions
and *processes*: the same key can only ever map to what a cold compile
would produce.  :class:`ArtifactStore` promotes them to a sharded
on-disk store so a brand-new process warm-starts from another process's
work (see DESIGN.md section 10 for the layout, key scheme and the
corruption/locking model).
"""

from repro.store.artifacts import StoredPlan
from repro.store.store import (
    ArtifactStore,
    StoreError,
    StoreLockTimeout,
    StoreStats,
    key_digest,
    open_store,
)

__all__ = [
    "ArtifactStore",
    "StoreError",
    "StoreLockTimeout",
    "StoreStats",
    "StoredPlan",
    "key_digest",
    "open_store",
]
