"""What the store holds for each engine cache layer.

=========  =============================================  ==================
namespace  key                                            value
=========  =============================================  ==================
``fe``     (symbol-table sha, chunk sha, optimise flag)   pickled lowered
                                                          :class:`IRFunction`
                                                          + address-taken set
``plan``   :func:`~repro.engine.invalidation.plan_key`    :class:`StoredPlan`
``code``   (plan key, program array symbols)              (AsmFunction,
                                                          preserved mask)
=========  =============================================  ==================

A full :class:`~repro.interproc.allocator.FnPlan` cannot cross a process
boundary -- its :class:`AllocationResult` keys call-site clobber masks
by ``id()`` of live instruction objects, which do not survive pickling.
:class:`StoredPlan` is the cross-process residue: exactly the fields
downstream consumers other than :func:`generate_function` read (the
closed summary for dependants' plan keys, the save sets for cache
fingerprints, the parameter homes for reports).  A ``StoredPlan`` is
therefore only usable when the matching ``code`` artifact is also
available; the engine enforces that pairing at lookup time and replans
from scratch if the pairing ever breaks mid-session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.interproc.allocator import FnPlan
    from repro.interproc.summaries import ParamSpec, ProcSummary
    from repro.shrinkwrap.placement import WrapPlacement
    from repro.target.registers import Register


@dataclass
class StoredPlan:
    """The serialisable residue of one procedure's :class:`FnPlan`."""

    name: str
    mode: str                       # 'intra' | 'open' | 'closed'
    entry_exit_saves: List["Register"] = field(default_factory=list)
    wrapped: Dict[int, "WrapPlacement"] = field(default_factory=dict)
    incoming_params: List["ParamSpec"] = field(default_factory=list)
    summary: Optional["ProcSummary"] = None
    #: a restored plan carries no allocation; codegen must never run on it
    alloc: None = None
    shrink_stats: None = None

    @property
    def saved_mask(self) -> int:
        m = 0
        for r in self.entry_exit_saves:
            m |= 1 << r.index
        for idx in self.wrapped:
            m |= 1 << idx
        return m

    @classmethod
    def from_plan(cls, plan: "FnPlan") -> "StoredPlan":
        return cls(
            name=plan.name,
            mode=plan.mode,
            entry_exit_saves=list(plan.entry_exit_saves),
            wrapped=dict(plan.wrapped),
            incoming_params=list(plan.incoming_params),
            summary=plan.summary,
        )
