"""Sharded, checksummed, content-addressed on-disk artifact store.

Layout (``shards`` fixed at 256)::

    <root>/
      store.json          # {"version": 1, "shards": 256}
      .lock               # advisory lock (gc/verify only)
      00/ .. ff/          # key-prefix shards, created lazily
        <digest>.blob     # one entry

A key is ``(namespace, engine cache key)`` where the engine key is a
nested tuple of primitives (content fingerprints, option fingerprints,
summary signatures -- see :mod:`repro.engine.fingerprint`).  The key is
reduced to a SHA-256 digest of a canonical recursive encoding, so two
processes computing the same fingerprints address the same entry; the
first two hex digits pick the shard.

An entry file is ``MAGIC + sha256(payload) + payload`` with the payload
a pickle of the artifact.  Writes go to a temporary file in the shard
directory and are published with ``os.replace`` -- readers see either
the old complete entry or the new complete entry, never a torn write,
which is the whole concurrency model for readers and writers (no locks;
last writer of identical content wins).  Reads recompute the checksum
and treat any mismatch or unpickling failure as corruption: the entry
is unlinked, counted, and the caller sees a miss -- the same
detect-invalidate-recompute policy as the in-memory
:class:`~repro.engine.resilience.GuardedCache`.

Garbage collection is LRU by file mtime (a hit bumps the entry's mtime)
under a best-effort advisory lock; a stale lock older than
``stale_lock_seconds`` is broken, and a lock that cannot be acquired
within ``lock_timeout`` raises :class:`StoreLockTimeout`.

**Self-healing.**  A corrupt entry is never silently destroyed: both the
read path and :meth:`ArtifactStore.scrub` move it into a ``quarantine/``
area next to the shards, preserving the evidence while vacating the
content address -- the next lookup is a clean miss, the engine
recomputes, and the re-``put`` repairs the store (recompute-on-next-miss).
``scrub`` additionally re-verifies checksums *incrementally* (a persisted
shard cursor lets bounded passes cover the whole store across calls) and
reaps orphaned ``*.tmp`` files left in the shards by writers that were
killed between ``mkstemp`` and ``os.replace``.  A temp file younger than
``orphan_age_seconds`` is presumed to belong to a live writer and is
left alone, so scrubbing never races an in-flight ``put``.

Fault-injection sites (:mod:`repro.faults`): ``store-read`` bit-rots a
payload before the checksum verifies it, ``store-write`` fails a write
(swallowed: the artifact is simply not cached; key ``publish:<ns>``
consults between the temp write and the rename -- the crash-recovery
harness kills a writer there), ``store-lock`` delays or fails lock
acquisition, ``store-scrub`` fails individual scrub checks (absorbed and
counted, the pass continues).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro import faults

MAGIC = b"repro-store:1\n"
STORE_VERSION = 1
SHARDS = 256
#: corrupt blobs are moved here (evidence), never silently destroyed
QUARANTINE_DIR = "quarantine"
#: persisted scrub cursor (next shard index for the incremental pass)
SCRUB_STATE = "scrub.json"

#: store key namespaces (one per engine cache layer)
NS_FRONTEND = "fe"
NS_PLAN = "plan"
NS_CODEGEN = "code"
#: tier-3 JIT trace translations, keyed by
#: (executable fingerprint, profile digest, sim parameters)
NS_JIT3 = "jit3"


class StoreError(RuntimeError):
    """A store operation failed in a way the caller must see."""


class StoreLockTimeout(StoreError):
    """The advisory lock could not be acquired within the timeout."""


# -- canonical key encoding --------------------------------------------------

def _encode_key(value, out: List[bytes]) -> None:
    """Canonical, process-independent encoding of an engine cache key.

    Only the types that actually occur in engine keys are accepted;
    anything else is a programming error, not data to be hashed on a
    best-effort basis.  Exact-type dispatch keeps ``bool`` (whose type
    is not ``int``) distinct from ``int`` and is what makes this hot
    path cheap; the ``isinstance`` tail readmits well-behaved
    subclasses.
    """
    t = type(value)
    if t is str:
        raw = value.encode("utf-8")
        out.append(b"s%d:%s" % (len(raw), raw))
    elif t is int:
        out.append(b"i%d;" % value)
    elif t is tuple or t is list:
        out.append(b"(")
        for item in value:
            _encode_key(item, out)
        out.append(b")")
    elif value is None:
        out.append(b"N")
    elif t is bool:
        out.append(b"T" if value else b"F")
    elif t is bytes:
        out.append(b"b%d:%s" % (len(value), value))
    elif isinstance(value, bool):
        out.append(b"T" if value else b"F")
    elif isinstance(value, int):
        out.append(b"i%d;" % value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s%d:%s" % (len(raw), raw))
    elif isinstance(value, bytes):
        out.append(b"b%d:%s" % (len(value), bytes(value)))
    elif isinstance(value, (tuple, list)):
        out.append(b"(")
        for item in value:
            _encode_key(item, out)
        out.append(b")")
    else:
        raise TypeError(
            f"store keys must be built from primitives, got {value!r}"
        )


def key_digest(namespace: str, key) -> str:
    """SHA-256 hex digest addressing ``key`` within ``namespace``."""
    out: List[bytes] = []
    _encode_key((namespace, key), out)
    return hashlib.sha256(b"".join(out)).hexdigest()


# -- counters ----------------------------------------------------------------

@dataclass
class StoreStats:
    """Cumulative counters for one :class:`ArtifactStore` handle."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_failures: int = 0
    corruptions: int = 0
    evictions: int = 0
    #: corrupt entries moved to ``quarantine/`` instead of destroyed
    quarantined: int = 0
    #: orphaned writer temp files removed by :meth:`ArtifactStore.scrub`
    reaped: int = 0
    #: completed scrub passes
    scrubs: int = 0
    #: ``_acquire_lock`` calls that found the lock held and had to wait
    lock_waits: int = 0
    lock_timeouts: int = 0
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "write_failures": self.write_failures,
            "corruptions": self.corruptions,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "reaped": self.reaped,
            "scrubs": self.scrubs,
            "lock_waits": self.lock_waits,
            "lock_timeouts": self.lock_timeouts,
            "seconds": round(self.seconds, 6),
        }


class ArtifactStore:
    """One process's handle on a shared on-disk store.

    Handles are cheap; any number of processes (and threads within one
    process) may point at the same root concurrently.  Counters are per
    handle, the data is shared.
    """

    def __init__(
        self,
        root: Union[str, Path],
        lock_timeout: float = 10.0,
        stale_lock_seconds: float = 60.0,
    ):
        self.root = Path(root)
        self.lock_timeout = lock_timeout
        self.stale_lock_seconds = stale_lock_seconds
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self.root.mkdir(parents=True, exist_ok=True)
        meta = self.root / "store.json"
        if not meta.exists():
            tmp = meta.with_suffix(".json.tmp%d" % os.getpid())
            tmp.write_text(
                '{"version": %d, "shards": %d}\n' % (STORE_VERSION, SHARDS)
            )
            os.replace(tmp, meta)

    # -- addressing ----------------------------------------------------------

    def _path(self, namespace: str, key) -> str:
        digest = key_digest(namespace, key)
        return os.path.join(str(self.root), digest[:2], digest + ".blob")

    # -- entry I/O -----------------------------------------------------------

    def get(self, namespace: str, key):
        """Checksummed read; ``None`` on miss or detected corruption."""
        t0 = time.perf_counter()
        path = self._path(namespace, key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError:
            self._count("misses", t0)
            return None
        if faults.corrupts(faults.SITE_STORE_READ, namespace):
            blob = blob[:-1] + bytes([blob[-1] ^ 0xFF]) if blob else b"\xff"
        value = self._decode(blob)
        if value is _BAD:
            self._quarantine(Path(path))
            with self._lock:
                self.stats.corruptions += 1
            self._count("misses", t0)
            return None
        try:
            os.utime(path, None)  # LRU touch
        except OSError:
            pass
        self._count("hits", t0)
        return value

    def put(self, namespace: str, key, value) -> bool:
        """Atomic write-rename; failures are counted, never raised."""
        t0 = time.perf_counter()
        path = self._path(namespace, key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest().encode("ascii")
        shard = os.path.dirname(path)
        try:
            faults.check(faults.SITE_STORE_WRITE, namespace)
            os.makedirs(shard, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(MAGIC)
                    fh.write(digest)
                    fh.write(b"\n")
                    fh.write(payload)
                # the kill window: a writer that dies here leaves an
                # orphaned temp file for scrub() to reap
                faults.check(
                    faults.SITE_STORE_WRITE, f"publish:{namespace}"
                )
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            self._count("write_failures", t0)
            return False
        self._count("writes", t0)
        return True

    @staticmethod
    def _decode(blob: bytes):
        if not blob.startswith(MAGIC):
            return _BAD
        head = blob[len(MAGIC):]
        nl = head.find(b"\n")
        if nl != 64:
            return _BAD
        digest, payload = head[:64], head[nl + 1:]
        if hashlib.sha256(payload).hexdigest().encode("ascii") != digest:
            return _BAD
        try:
            return pickle.loads(payload)
        except Exception:
            return _BAD

    def _count(self, counter: str, t0: float) -> None:
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            self.stats.seconds += time.perf_counter() - t0

    # -- maintenance ---------------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                for blob in sorted(shard.glob("*.blob")):
                    yield blob

    def entry_count(self) -> int:
        return sum(1 for _ in self._entries())

    def size_bytes(self) -> int:
        total = 0
        for blob in self._entries():
            try:
                total += blob.stat().st_size
            except OSError:
                pass
        return total

    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    def quarantined_entries(self) -> List[str]:
        """Names of the corrupt blobs currently held as evidence."""
        qdir = self.quarantine_dir()
        if not qdir.is_dir():
            return []
        return sorted(p.name for p in qdir.glob("*.blob"))

    def _quarantine(self, path: Path) -> bool:
        """Move a corrupt blob into ``quarantine/`` -- vacating its
        content address (the next lookup misses and recomputes) while
        preserving the bytes for a post-mortem.  Falls back to a plain
        unlink if the move itself fails; either way the address is
        vacated."""
        qdir = self.quarantine_dir()
        try:
            qdir.mkdir(exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                return False
            return True
        with self._lock:
            self.stats.quarantined += 1
        return True

    def summary(self) -> Dict:
        """Stats for the CLI: layout plus this handle's counters."""
        shards = [
            s for s in self.root.iterdir()
            if s.is_dir() and len(s.name) == 2
        ]
        return {
            "root": str(self.root),
            "version": STORE_VERSION,
            "entries": self.entry_count(),
            "bytes": self.size_bytes(),
            "shards_used": len(shards),
            "quarantined_entries": len(self.quarantined_entries()),
            "counters": self.stats.to_dict(),
        }

    def _acquire_lock(self) -> Path:
        """Advisory lock for gc/verify/scrub (entry I/O is lock-free).

        Contention is observable: an acquisition that finds the lock
        held counts one ``lock_waits`` (however long it then waits), and
        giving up counts one ``lock_timeouts``.
        """
        lock = self.root / ".lock"
        deadline = time.monotonic() + self.lock_timeout
        waited = False
        while True:
            faults.check(faults.SITE_STORE_LOCK, None)
            try:
                fd = os.open(str(lock), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                return lock
            except FileExistsError:
                if not waited:
                    waited = True
                    with self._lock:
                        self.stats.lock_waits += 1
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder released it between open and stat
                if age > self.stale_lock_seconds:
                    try:
                        lock.unlink()
                    except OSError:
                        pass
                    continue
            if time.monotonic() >= deadline:
                with self._lock:
                    self.stats.lock_timeouts += 1
                raise StoreLockTimeout(
                    f"could not acquire {lock} within "
                    f"{self.lock_timeout:.1f}s"
                )
            time.sleep(0.02)

    def gc(self, max_bytes: int) -> Dict:
        """Evict least-recently-used entries until the store fits
        ``max_bytes``.  Returns an eviction report."""
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        lock = self._acquire_lock()
        try:
            stats: List[Tuple[float, int, Path]] = []
            for blob in self._entries():
                try:
                    st = blob.stat()
                except OSError:
                    continue
                stats.append((st.st_mtime, st.st_size, blob))
            total = sum(size for _, size, _ in stats)
            evicted = 0
            freed = 0
            # oldest first
            for _, size, blob in sorted(stats, key=lambda t: t[0]):
                if total - freed <= max_bytes:
                    break
                try:
                    blob.unlink()
                except OSError:
                    continue
                freed += size
                evicted += 1
            with self._lock:
                self.stats.evictions += evicted
            return {
                "max_bytes": max_bytes,
                "before_bytes": total,
                "after_bytes": total - freed,
                "evicted": evicted,
            }
        finally:
            try:
                lock.unlink()
            except OSError:
                pass

    def verify(self, remove: bool = True) -> Dict:
        """Re-checksum every entry; optionally unlink corrupt ones."""
        lock = self._acquire_lock()
        try:
            checked = 0
            corrupt: List[str] = []
            for blob in self._entries():
                try:
                    data = blob.read_bytes()
                except OSError:
                    continue
                checked += 1
                if self._decode(data) is _BAD:
                    corrupt.append(blob.name)
                    if remove:
                        try:
                            blob.unlink()
                        except OSError:
                            pass
            if corrupt:
                with self._lock:
                    self.stats.corruptions += len(corrupt)
            return {
                "checked": checked,
                "corrupt": len(corrupt),
                "removed": len(corrupt) if remove else 0,
                "corrupt_entries": corrupt,
            }
        finally:
            try:
                lock.unlink()
            except OSError:
                pass

    def scrub(
        self,
        max_entries: Optional[int] = None,
        orphan_age_seconds: float = 60.0,
        resume: bool = True,
    ) -> Dict:
        """Self-healing maintenance pass: re-verify checksums, quarantine
        corruption, reap orphaned writer temps.

        The pass walks the 256 shards starting from a cursor persisted
        in ``scrub.json``; with ``max_entries`` set it stops at the
        first shard boundary past that many re-verified entries and
        saves the cursor, so repeated bounded calls cover the whole
        store incrementally.  ``resume=False`` starts from shard ``00``
        regardless.

        Corrupt entries move to ``quarantine/`` (see
        :meth:`_quarantine`); repair is recompute-on-next-miss -- the
        vacated address misses, the engine recomputes and re-puts.
        Temp files older than ``orphan_age_seconds`` are reaped as
        debris of killed writers; younger ones are presumed live and
        left alone (never treat another process's in-flight write as
        garbage).  A failure checking one entry (I/O error, injected
        ``store-scrub`` fault) is counted and the pass continues.
        """
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive or None")
        lock = self._acquire_lock()
        try:
            state_path = self.root / SCRUB_STATE
            start = 0
            if resume:
                try:
                    state = json.loads(state_path.read_text())
                    start = int(state.get("next_shard", 0)) % SHARDS
                except (OSError, ValueError):
                    start = 0
            checked = quarantined = reaped = errors = 0
            scanned = 0
            now = time.time()
            next_shard = start
            for off in range(SHARDS):
                idx = (start + off) % SHARDS
                shard = self.root / format(idx, "02x")
                scanned += 1
                next_shard = (idx + 1) % SHARDS
                if shard.is_dir():
                    for tmp in sorted(shard.glob("*.tmp")):
                        try:
                            age = now - tmp.stat().st_mtime
                        except OSError:
                            continue
                        if age >= orphan_age_seconds:
                            try:
                                tmp.unlink()
                            except OSError:
                                continue
                            reaped += 1
                    for blob in sorted(shard.glob("*.blob")):
                        checked += 1
                        try:
                            faults.check(
                                faults.SITE_STORE_SCRUB, blob.name[:2]
                            )
                            data = blob.read_bytes()
                        except OSError:
                            continue
                        except Exception:
                            errors += 1
                            continue
                        if self._decode(data) is _BAD:
                            if self._quarantine(blob):
                                quarantined += 1
                if max_entries is not None and checked >= max_entries \
                        and off + 1 < SHARDS:
                    break
            else:
                next_shard = start  # full cycle: resume where we began
            # killed writers can also strand metadata temps at the root
            for pattern in ("store.json.tmp*", "scrub.json.tmp*"):
                for tmp in sorted(self.root.glob(pattern)):
                    try:
                        if now - tmp.stat().st_mtime >= orphan_age_seconds:
                            tmp.unlink()
                            reaped += 1
                    except OSError:
                        continue
            try:
                tmp_state = state_path.with_suffix(".json.tmp%d" % os.getpid())
                tmp_state.write_text(
                    json.dumps({"next_shard": next_shard}) + "\n"
                )
                os.replace(tmp_state, state_path)
            except OSError:
                pass  # cursor is an optimisation, not a correctness need
            with self._lock:
                self.stats.corruptions += quarantined
                self.stats.reaped += reaped
                self.stats.scrubs += 1
            return {
                "checked": checked,
                "quarantined": quarantined,
                "reaped": reaped,
                "errors": errors,
                "start_shard": start,
                "shards_scanned": scanned,
                "next_shard": next_shard,
            }
        finally:
            try:
                lock.unlink()
            except OSError:
                pass


class _Bad:
    """Sentinel for an undecodable entry (never a legal stored value)."""

    def __repr__(self):  # pragma: no cover - debug aid
        return "<corrupt store entry>"


_BAD = _Bad()


def open_store(
    path: Optional[Union[str, Path]], **kwargs
) -> Optional[ArtifactStore]:
    """``None``-propagating constructor used by the session APIs."""
    if path is None:
        return None
    if isinstance(path, ArtifactStore):
        return path
    return ArtifactStore(path, **kwargs)
