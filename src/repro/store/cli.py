"""``python -m repro store`` -- maintenance for the artifact store.

Subcommands (all take the store directory as their first argument)::

    repro store stats  PATH            # entry/byte/shard counts
    repro store verify PATH [--keep]   # re-checksum; drop corrupt entries
    repro store gc     PATH --max-bytes N   # LRU-by-mtime eviction
    repro store scrub  PATH [--max-entries N] [--orphan-age S] [--restart]
                                       # quarantine corruption, reap temps

``gc``, ``verify`` and ``scrub`` hold the store's advisory lock while
they scan, so concurrent compilers keep working (readers and writers are
lock-free) but two maintenance passes never race each other.  ``scrub``
is the self-healing pass: corrupt entries move to ``quarantine/``
(evidence preserved; the vacated address repairs itself on the next
miss) and temp files orphaned by killed writers are reaped; with
``--max-entries`` it resumes from a persisted shard cursor, so bounded
nightly passes cover the store incrementally.
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.store.store import ArtifactStore


def _human(n: int) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def store_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro store", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="subcommand", required=True)

    p_stats = sub.add_parser("stats", help="show store size and layout")
    p_stats.add_argument("path", help="store directory")
    p_stats.add_argument("--json", action="store_true", dest="as_json")

    p_verify = sub.add_parser(
        "verify", help="re-checksum every entry, dropping corrupt ones"
    )
    p_verify.add_argument("path", help="store directory")
    p_verify.add_argument(
        "--keep", action="store_true",
        help="report corrupt entries but leave them in place",
    )
    p_verify.add_argument("--json", action="store_true", dest="as_json")

    p_gc = sub.add_parser(
        "gc", help="evict least-recently-used entries down to a byte budget"
    )
    p_gc.add_argument("path", help="store directory")
    p_gc.add_argument(
        "--max-bytes", type=int, required=True,
        help="target store size in bytes",
    )
    p_gc.add_argument("--json", action="store_true", dest="as_json")

    p_scrub = sub.add_parser(
        "scrub",
        help="quarantine corrupt entries and reap orphaned writer temps",
    )
    p_scrub.add_argument("path", help="store directory")
    p_scrub.add_argument(
        "--max-entries", type=int, default=None,
        help="stop after re-verifying this many entries (resumes from a "
             "persisted cursor next call)",
    )
    p_scrub.add_argument(
        "--orphan-age", type=float, default=60.0,
        help="temp files older than this many seconds are reaped "
             "(default 60)",
    )
    p_scrub.add_argument(
        "--restart", action="store_true",
        help="ignore the persisted cursor and start from shard 00",
    )
    p_scrub.add_argument("--json", action="store_true", dest="as_json")

    args = parser.parse_args(argv)
    store = ArtifactStore(args.path)

    if args.subcommand == "stats":
        report = store.summary()
    elif args.subcommand == "verify":
        report = store.verify(remove=not args.keep)
    elif args.subcommand == "scrub":
        report = store.scrub(
            max_entries=args.max_entries,
            orphan_age_seconds=args.orphan_age,
            resume=not args.restart,
        )
    else:  # gc
        report = store.gc(max_bytes=args.max_bytes)

    if args.as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0

    if args.subcommand == "stats":
        print(f"store:   {report['root']} (v{report['version']})")
        print(f"entries: {report['entries']}")
        print(f"bytes:   {report['bytes']} ({_human(report['bytes'])})")
        print(f"shards:  {report['shards_used']} in use")
        if report["quarantined_entries"]:
            print(f"quarantine: {report['quarantined_entries']} entries")
    elif args.subcommand == "scrub":
        print(f"checked:     {report['checked']} entries "
              f"(shards {report['start_shard']:02x}.., "
              f"{report['shards_scanned']} scanned)")
        print(f"quarantined: {report['quarantined']}")
        print(f"reaped:      {report['reaped']} orphaned temp files")
        if report["errors"]:
            print(f"errors:      {report['errors']} (entries skipped)")
    elif args.subcommand == "verify":
        what = "removed" if not args.keep else "found (kept)"
        print(f"checked: {report['checked']}")
        print(f"corrupt: {report['corrupt']} {what}")
    else:
        freed = report["before_bytes"] - report["after_bytes"]
        print(f"evicted: {report['evicted']} entries, "
              f"{freed} bytes freed")
        print(f"kept:    {report['after_bytes']} bytes "
              f"({_human(report['after_bytes'])}, "
              f"budget {report['max_bytes']})")
    return 0
