"""Shrink-wrapping of callee-saved register saves/restores (Section 5)."""

from repro.shrinkwrap.placement import (
    ShrinkWrapResult,
    WrapPlacement,
    entry_exit_placement,
    shrink_wrap,
)

__all__ = [
    "ShrinkWrapResult",
    "WrapPlacement",
    "entry_exit_placement",
    "shrink_wrap",
]
