"""Shrink-wrapping callee-saved saves/restores (Section 5 of the paper).

Given the APP footprint of each register of interest (the blocks where the
register is *busy*: assigned live ranges, plus call sites whose callees
clobber it under IPRA), this module places

    SAVE_i    = ANTIN_i  & ~AVIN_i  &  AND_{j in pred(i)} ~ANTIN_j   (3.5)
    RESTORE_i = AVOUT_i  & ~ANTOUT_i & AND_{j in succ(i)} ~AVOUT_j   (3.6)

with saves at basic-block entries and restores at block exits.  Two
refinements from the paper:

* **loop smearing** -- whenever a register is used inside a loop, its APP
  attribute is propagated over the whole loop so the wrapped region never
  sits inside one (a save/restore per iteration would be disastrous);
* **range extension** -- certain control-flow shapes (the paper's Fig. 2)
  make the equations place a second save while the first is still
  outstanding.  Rather than add new CFG nodes, the APP attribute is
  extended to the offending blocks and the attributes re-solved, repeated
  to a fixed point.

We detect offending blocks with an abstract interpreter over the states
{unsaved, saved, conflict}: any block where a save occurs in the saved
state, a restore or use occurs outside it, or an exit is reached saved,
gets APP extended.  This implements the paper's repair rule and doubles
as a machine-checkable soundness argument (see the property tests); in
the worst case APP covers the whole procedure and the placement
degenerates to save-at-entry / restore-at-exits, which is trivially
correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import faults
from repro.cfg.cfg import CFG
from repro.cfg.loops import LoopInfo
from repro.dataflow.antav import AntAv, solve_ant_av
from repro.dataflow.framework import ConvergenceError


@dataclass
class WrapPlacement:
    """Placement for one register: save at the entry of each block in
    ``saves``, restore at the exit of each block in ``restores``."""

    saves: Set[int] = field(default_factory=set)
    restores: Set[int] = field(default_factory=set)

    @property
    def save_at_entry(self) -> bool:
        return 0 in self.saves


@dataclass
class ShrinkWrapResult:
    """Placements per register index, plus diagnostics."""

    placements: Dict[int, WrapPlacement] = field(default_factory=dict)
    iterations: int = 0
    extended_blocks: int = 0


def _smear_loops(app: List[int], loops: LoopInfo) -> None:
    """Propagate APP over every loop containing any APP block, to a fixed
    point (nested loops can cascade)."""
    changed = True
    while changed:
        changed = False
        for loop in loops.loops:
            mask = 0
            for b in loop.body:
                mask |= app[b]
            for b in loop.body:
                if app[b] | mask != app[b]:
                    app[b] |= mask
                    changed = True


def _compute_save_restore(
    cfg: CFG, antav: AntAv, all_mask: int
) -> Tuple[List[int], List[int]]:
    n = cfg.num_blocks
    save = [0] * n
    restore = [0] * n
    for i in range(n):
        pred_clear = all_mask
        for j in cfg.preds[i]:
            pred_clear &= ~antav.antin[j]
        save[i] = antav.antin[i] & ~antav.avin[i] & pred_clear
        succ_clear = all_mask
        for j in cfg.succs[i]:
            succ_clear &= ~antav.avout[j]
        restore[i] = antav.avout[i] & ~antav.antout[i] & succ_clear
    return save, restore


_UNSAVED, _SAVED, _CONFLICT = 0, 1, 2


def _find_violations(
    cfg: CFG,
    bit: int,
    app: Sequence[int],
    save: Sequence[int],
    restore: Sequence[int],
) -> Set[int]:
    """Blocks where the placement of register ``bit`` misbehaves.

    Forward abstract interpretation with per-block entry states drawn
    from {unsaved, saved, conflict}.  Conflicts only matter where the
    register is touched.
    """
    n = cfg.num_blocks
    state: List[Optional[int]] = [None] * n   # entry state of each block
    bad: Set[int] = set()
    rpo = cfg.reverse_postorder()
    exits = set(cfg.exits())
    entry = cfg.entry

    # A save scheduled at the entry block is emitted in the *prologue*
    # (before the entry label), so it executes exactly once even when a
    # back edge re-enters the entry block; model it as the boundary state.
    boundary = _SAVED if save[entry] & bit else _UNSAVED

    def meet(a: Optional[int], b2: Optional[int]) -> Optional[int]:
        if a is None:
            return b2
        if b2 is None:
            return a
        return a if a == b2 else _CONFLICT

    changed = True
    while changed:
        changed = False
        for b in rpo:
            in_state: Optional[int] = boundary if b == entry else None
            for p in cfg.preds[b]:
                ps = state[p]
                if ps is None:
                    continue
                in_state = meet(
                    in_state,
                    _block_out_state(ps, p, bit, save, restore, entry),
                )
            if in_state is not None and in_state != state[b]:
                state[b] = in_state
                changed = True

    for b in rpo:
        s = state[b]
        if s is None:
            continue
        touches = bool((save[b] | restore[b] | app[b]) & bit)
        if s == _CONFLICT and touches:
            bad.add(b)
            continue
        cur = s
        if save[b] & bit and b != entry:   # the entry save is pre-boundary
            if cur == _SAVED:
                bad.add(b)       # double save
            cur = _SAVED
        if app[b] & bit and cur != _SAVED:
            bad.add(b)           # use not covered by a save
        if restore[b] & bit:
            if cur != _SAVED:
                bad.add(b)       # restore without save
            cur = _UNSAVED
        if b in exits and cur != _UNSAVED:
            # Leaves the procedure saved on some path (a definite SAVED
            # state, or a CONFLICT join such as the paper's Fig. 2 where
            # one predecessor path carries an outstanding save).  Extend
            # the range to this block so the restore migrates here.
            bad.add(b)
    return bad


def _block_out_state(
    in_state: int, b: int, bit: int,
    save: Sequence[int], restore: Sequence[int],
    entry: int = -1,
) -> int:
    # within a block the save (entry) precedes the restore (exit), so a
    # restore determines the out-state, then a save, then the in-state;
    # a save or restore re-synchronises a conflicting in-state.  The
    # entry block's save lives in the prologue (pre-boundary), so it is
    # not re-applied when a back edge re-enters the entry.
    if restore[b] & bit:
        return _UNSAVED
    if save[b] & bit and b != entry:
        return _SAVED
    return in_state


def shrink_wrap(
    cfg: CFG,
    loops: LoopInfo,
    app_blocks: Dict[int, Set[int]],
    smear_loops: bool = True,
    max_iterations: int = 64,
) -> ShrinkWrapResult:
    """Place saves/restores for each register.

    ``app_blocks`` maps register index -> set of busy block ids.  Returns
    one :class:`WrapPlacement` per requested register (registers with an
    empty footprint get an empty placement).
    """
    n = cfg.num_blocks
    result = ShrinkWrapResult()
    if not app_blocks:
        return result
    faults.check(faults.SITE_SHRINKWRAP)

    bits = {reg_index: 1 << reg_index for reg_index in app_blocks}
    all_mask = 0
    for bit in bits.values():
        all_mask |= bit

    app = [0] * n
    for reg_index, blocks in app_blocks.items():
        for b in blocks:
            app[b] |= bits[reg_index]

    degenerate: Set[int] = set()   # registers forced to entry/exit saves
    for iteration in range(max_iterations):
        result.iterations = iteration + 1
        if smear_loops:
            _smear_loops(app, loops)
        antav = solve_ant_av(cfg, app, all_mask)
        save, restore = _compute_save_restore(cfg, antav, all_mask)
        extended = False
        for reg_index, bit in bits.items():
            if reg_index in degenerate:
                continue
            if not any(app[b] & bit for b in range(n)):
                continue
            bad = _find_violations(cfg, bit, app, save, restore)
            progressed = False
            for b in bad:
                if not (app[b] & bit):
                    app[b] |= bit
                    result.extended_blocks += 1
                    progressed = True
                else:
                    # the block already carries APP; widen to its
                    # neighbourhood to force the save upward
                    for p in cfg.preds[b]:
                        if not (app[p] & bit):
                            app[p] |= bit
                            result.extended_blocks += 1
                            progressed = True
            if bad and not progressed:
                # Extension saturated but the equations still cannot
                # place this register (e.g. a back edge into the entry
                # block): fall back to the classic protocol, which is
                # always correct because entry saves sit in the prologue.
                degenerate.add(reg_index)
            extended = extended or progressed
        if not extended:
            break
    else:  # pragma: no cover - bounded by APP growth
        raise ConvergenceError(
            "shrink-wrap range extension", max_iterations,
            f"{n} blocks, {len(bits)} registers, "
            f"{result.extended_blocks} extensions so far",
        )

    exits = set(cfg.exits())
    for reg_index, bit in bits.items():
        placement = WrapPlacement()
        if reg_index in degenerate:
            if any(app[b] & bit for b in range(n)):
                placement.saves.add(cfg.entry)
                placement.restores.update(exits)
            result.placements[reg_index] = placement
            continue
        for b in range(n):
            if save[b] & bit:
                placement.saves.add(b)
            if restore[b] & bit:
                placement.restores.add(b)
        result.placements[reg_index] = placement
    return result


def entry_exit_placement(cfg: CFG) -> WrapPlacement:
    """The classic convention: save at entry, restore at every exit."""
    return WrapPlacement(saves={cfg.entry}, restores=set(cfg.exits()))
