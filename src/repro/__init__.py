"""repro -- a reproduction of Fred C. Chow, "Minimizing Register Usage
Penalty at Procedure Calls" (PLDI 1988).

The package is a complete toy compiler system: the MiniC source language,
a three-address IR, priority-based coloring register allocation, the
paper's one-pass inter-procedural register allocation (IPRA), shrink-
wrapping of callee-saved saves/restores, an R2000-flavoured code
generator, and a cycle-counting simulator reproducing the paper's
pixie-style measurements.

Quick start::

    from repro import compile_and_run, O2, O3_SW

    src = "func main() { print 42; }"
    base = compile_and_run(src, O2)
    opt = compile_and_run(src, O3_SW)
    assert base.output == opt.output

For repeated compiles of an evolving program, hold a :class:`Compiler`
session instead: it caches per-procedure work between compiles and only
redoes the slice of the call graph an edit (or option flip) actually
invalidates, producing bit-identical executables either way.
"""

from repro.engine import (
    Compiler,
    CompileReport,
    DegradationRecord,
    Engine,
    EngineStats,
    ResiliencePolicy,
)
from repro.frontend.errors import OptionsError
from repro.pipeline import (
    CompiledModule,
    CompiledProgram,
    CompilerOptions,
    compile_and_run,
    compile_module,
    compile_program,
    link_modules,
    O0,
    O1,
    O2,
    O2_SW,
    O3,
    O3_SW,
    PAPER_CONFIGS,
    TABLE2_D,
    TABLE2_E,
)
from repro.sim import (
    ContractViolation,
    RunStats,
    SIM_TIERS,
    percent_reduction,
    run_jit,
    run_program,
    simulate,
)
from repro.target.registers import (
    CALLEE_ONLY_7,
    CALLER_ONLY_7,
    Convention,
    ConventionError,
    DEFAULT_CONVENTION,
    split_convention,
    validate_convention,
)

__version__ = "1.0.0"

__all__ = [
    "Compiler",
    "CompiledModule",
    "CompiledProgram",
    "CompilerOptions",
    "CompileReport",
    "DegradationRecord",
    "Engine",
    "EngineStats",
    "OptionsError",
    "ResiliencePolicy",
    "compile_and_run",
    "compile_module",
    "compile_program",
    "link_modules",
    "O0",
    "O1",
    "O2",
    "O2_SW",
    "O3",
    "O3_SW",
    "PAPER_CONFIGS",
    "TABLE2_D",
    "TABLE2_E",
    "ContractViolation",
    "RunStats",
    "SIM_TIERS",
    "percent_reduction",
    "run_jit",
    "run_program",
    "simulate",
    "CALLEE_ONLY_7",
    "CALLER_ONLY_7",
    "Convention",
    "ConventionError",
    "DEFAULT_CONVENTION",
    "split_convention",
    "validate_convention",
    "__version__",
]
