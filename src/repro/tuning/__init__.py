"""Calling-convention autotuning over the first-class Convention API.

The paper fixes one linkage agreement -- 11 caller-saved registers,
9 callee-saved, 4 register arguments -- and measures its save/restore
penalty.  With :class:`~repro.target.registers.Convention` as data, that
agreement becomes a *search variable*: the tuner enumerates (or
successive-halves over) candidate conventions, compiles the benchmark
suite under each through the incremental engine, scores candidates on
the paper's own metrics (dynamic cycles, save/restore memory traffic)
plus compile wall-clock, and reports per-program and global optima
against the paper's fixed convention.

Entry points: :func:`repro.tuning.tune` (library),
``python -m repro.tools.tune`` (CLI).
"""

from repro.tuning.space import (
    LADDER_ORDERS,
    budget_candidates,
    full_space,
    neighbors,
    sample_space,
    small_space,
)
from repro.tuning.tuner import (
    TUNE_SCHEMA_VERSION,
    CandidateResult,
    TuneResult,
    Tuner,
    check_report,
    tune,
)

__all__ = [
    "LADDER_ORDERS",
    "TUNE_SCHEMA_VERSION",
    "CandidateResult",
    "TuneResult",
    "Tuner",
    "budget_candidates",
    "check_report",
    "full_space",
    "neighbors",
    "sample_space",
    "small_space",
    "tune",
]
