"""The calling-convention autotuner.

Search strategy: evaluate a candidate list (from
:mod:`repro.tuning.space`) with **successive halving** -- early rounds
score every candidate on a small probe subset of the benchmark suite,
each round keeps the better half and widens the program set, and the
final round always scores the survivors (plus the paper's baseline
convention) on the full selected suite.  ``--budget small`` skips the
halving and scores its fixed micro-space directly.

Evaluation paths:

* ``jobs == 1`` -- the suite compiles through one shared incremental
  :class:`~repro.engine.core.Engine` via :meth:`Engine.compile_batch`:
  the front-end caches hit across *every* candidate (the sources never
  change), plan/codegen caches are keyed by the candidate's
  ``Convention.key()`` so candidates never collide, and with
  ``store_path=`` the artifact store warm-starts later tuning runs.
* ``jobs > 1`` -- candidates run through
  :func:`repro.benchsuite.run_suite`'s supervised process pool; the
  convention crosses into workers as a plain spec dict.

Every run is deterministic under a fixed seed: candidate order, probe
subsets and ranking tie-breaks derive only from the seed and the
benchmark registry order, and the simulator's metrics are exact counts.
Wall-clock fields are informational and never feed a search decision.

Scoring follows the paper: total dynamic cycles first, then the
save/restore memory penalty (the quantity Chow's techniques minimise),
then total scalar traffic.  A candidate that fails to compile, crashes
a run, or -- worse -- *changes a program's output* is disqualified
outright; output equivalence against the baseline run is checked for
every (candidate, program) cell.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.benchsuite.harness import run_suite
from repro.benchsuite.registry import load_benchmarks
from repro.engine.core import Engine
from repro.engine.stats import EngineStats
from repro.pipeline.options import PAPER_CONFIGS
from repro.sim.stats import RunStats, percent_reduction
from repro.target.registers import (
    Convention,
    DEFAULT_CONVENTION,
    validate_convention,
)
from repro.tuning.space import budget_candidates

#: bump when the report layout changes; ``--check`` validates the
#: committed ``benchmarks/TUNE_report.json`` against this
TUNE_SCHEMA_VERSION = 1

#: metric keys every per-program cell carries
METRICS = ("cycles", "save_restore_memops", "scalar_memops")

#: report keys ``check_report`` requires at TUNE_SCHEMA_VERSION
REQUIRED_KEYS = (
    "schema_version", "config", "budget", "seed", "jobs", "programs",
    "baseline", "candidates", "winner", "per_program_winners",
)


def _metrics(stats: RunStats) -> Dict[str, int]:
    return {
        "cycles": stats.cycles,
        "save_restore_memops": stats.save_restore_memops,
        "scalar_memops": stats.scalar_memops,
    }


@dataclass
class CandidateResult:
    """One convention's evaluation over a set of programs."""

    convention: Convention
    #: program name -> metric dict (missing when the cell errored)
    programs: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: program name -> repr of the failure (compile error, run error, or
    #: an output mismatch against the baseline -- a disqualifier)
    errors: Dict[str, str] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: successive-halving round this evaluation belongs to (1-based)
    round: int = 1

    @property
    def disqualified(self) -> bool:
        return bool(self.errors)

    def totals(self) -> Dict[str, int]:
        return {
            m: sum(cell[m] for cell in self.programs.values())
            for m in METRICS
        }

    def score(self) -> Tuple:
        """Ranking key: sound candidates first, then the paper's metrics
        lexicographically, then the convention key for determinism."""
        t = self.totals()
        return (
            self.disqualified,
            t["cycles"],
            t["save_restore_memops"],
            t["scalar_memops"],
            self.convention.key(),
        )

    def to_dict(self) -> Dict:
        return {
            "convention": self.convention.to_spec(),
            "programs": {k: dict(v) for k, v in sorted(self.programs.items())},
            "totals": self.totals(),
            "errors": dict(sorted(self.errors.items())),
            "wall_seconds": round(self.wall_seconds, 4),
            "round": self.round,
        }


@dataclass
class TuneResult:
    """Everything one tuning run learned."""

    config: str
    budget: str
    seed: int
    jobs: int
    sim_tier: str
    names: List[str]
    baseline: CandidateResult
    #: final-round evaluations (full program set), best first
    finalists: List[CandidateResult] = field(default_factory=list)
    #: every evaluation of every round, in execution order
    evaluations: List[CandidateResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    stats: Optional[EngineStats] = None

    @property
    def winner(self) -> CandidateResult:
        return self.finalists[0]

    def per_program_winners(self) -> Dict[str, Dict]:
        """For each program, the finalist (or baseline) with the fewest
        cycles -- the paper's fixed convention is rarely optimal for
        *every* program even when it wins globally."""
        pool = [self.baseline] + [
            f for f in self.finalists if not f.disqualified
        ]
        out: Dict[str, Dict] = {}
        for name in self.names:
            cells = [
                # baseline wins ties: a candidate must be strictly better
                (
                    c.programs[name]["cycles"],
                    0 if c is self.baseline else 1,
                    c.convention.key(),
                    c,
                )
                for c in pool
                if name in c.programs
            ]
            if not cells:
                continue
            cells.sort(key=lambda t: t[:3])
            best = cells[0][3]
            base = self.baseline.programs.get(name, {}).get("cycles", 0)
            out[name] = {
                "convention": best.convention.name,
                "spec": best.convention.to_spec(),
                "cycles": best.programs[name]["cycles"],
                "baseline_cycles": base,
                "reduction_pct": round(
                    percent_reduction(base, best.programs[name]["cycles"]), 2
                ),
            }
        return out

    def to_report(self) -> Dict:
        base_t = self.baseline.totals()
        win_t = self.winner.totals()
        report = {
            "schema_version": TUNE_SCHEMA_VERSION,
            "config": self.config,
            "budget": self.budget,
            "seed": self.seed,
            "jobs": self.jobs,
            "sim_tier": self.sim_tier,
            "programs": list(self.names),
            "baseline": self.baseline.to_dict(),
            "candidates": [c.to_dict() for c in self.evaluations],
            "winner": {
                **self.winner.to_dict(),
                "reduction_vs_baseline": {
                    m: round(percent_reduction(base_t[m], win_t[m]), 2)
                    for m in METRICS
                },
            },
            "per_program_winners": self.per_program_winners(),
            "evaluations": len(self.evaluations),
            "wall_seconds": round(self.wall_seconds, 4),
        }
        guard = next(
            (
                f for f in self.finalists
                if f.convention.name == "worse-noargregs"
            ),
            None,
        )
        if guard is not None:
            gt = guard.totals()
            report["guard"] = {
                "candidate": guard.convention.name,
                # a strictly-worse convention must never beat the paper's
                "holds": bool(
                    guard.disqualified
                    or (
                        gt["cycles"] >= base_t["cycles"]
                        and gt["scalar_memops"] >= base_t["scalar_memops"]
                    )
                ),
                "totals": gt,
            }
        if self.stats is not None:
            report["engine"] = {
                "compiles": self.stats.compiles,
                "stages": {
                    k: v.to_dict()
                    for k, v in self.stats.stage_totals().items()
                },
            }
        return report


class Tuner:
    """Drives convention search over the benchmark suite."""

    def __init__(
        self,
        config: str = "C",
        names: Optional[Sequence[str]] = None,
        jobs: int = 1,
        sim_tier: str = "auto",
        seed: int = 0,
        store_path=None,
        on_progress: Optional[Callable[[str], None]] = None,
    ):
        if config not in PAPER_CONFIGS:
            raise ValueError(
                f"unknown config {config!r}; one of {sorted(PAPER_CONFIGS)}"
            )
        if jobs <= 0:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        benches = load_benchmarks()
        self.names = list(names) if names is not None else list(benches)
        unknown = sorted(set(self.names) - set(benches))
        if unknown:
            raise ValueError(
                f"unknown benchmarks {unknown}; available: {sorted(benches)}"
            )
        if not self.names:
            raise ValueError("no benchmarks selected")
        self._benches = benches
        self.config = config
        self.options = PAPER_CONFIGS[config]
        self.jobs = jobs
        self.sim_tier = sim_tier
        self.seed = seed
        self.on_progress = on_progress
        self.engine = Engine(self.options, store_path=store_path)
        self.stats = self.engine.stats
        #: program -> baseline output (candidate runs must reproduce it)
        self._ref_outputs: Dict[str, Tuple[int, ...]] = {}

    # -- evaluation ---------------------------------------------------------

    def _log(self, msg: str) -> None:
        if self.on_progress is not None:
            self.on_progress(msg)

    def _record_event(self, kind: str, **payload) -> None:
        self.stats.record_tune({"event": kind, **payload})

    def evaluate(
        self, convention: Convention, names: Sequence[str], round_no: int = 1
    ) -> CandidateResult:
        """Score one candidate over ``names``."""
        validate_convention(convention)
        t0 = time.perf_counter()
        result = CandidateResult(convention=convention, round=round_no)
        if self.jobs == 1:
            self._evaluate_inline(convention, names, result)
        else:
            self._evaluate_pooled(convention, names, result)
        result.wall_seconds = time.perf_counter() - t0
        totals = result.totals()
        self._record_event(
            "evaluate",
            candidate=convention.name,
            key=repr(convention.key()),
            round=round_no,
            programs=len(result.programs),
            errors=len(result.errors),
            cycles=totals["cycles"],
            save_restore_memops=totals["save_restore_memops"],
            wall_seconds=round(result.wall_seconds, 4),
        )
        self._log(
            f"  {convention.name:<24s} cycles={totals['cycles']:>12,d} "
            f"save/restore={totals['save_restore_memops']:>9,d} "
            f"({len(result.programs)}/{len(names)} programs, "
            f"{result.wall_seconds:.2f}s)"
        )
        return result

    def _check_output(
        self, name: str, stats: RunStats, result: CandidateResult
    ) -> bool:
        """Candidate runs must reproduce the baseline output exactly --
        a convention may only move values, never change the program."""
        out = tuple(stats.output)
        ref = self._ref_outputs.setdefault(name, out)
        if out != ref:
            result.errors[name] = (
                f"output mismatch vs baseline ({len(out)} values)"
            )
            return False
        return True

    def _evaluate_inline(
        self,
        convention: Convention,
        names: Sequence[str],
        result: CandidateResult,
    ) -> None:
        options = self.options.with_(convention=convention)
        built = self.engine.compile_batch(
            [self._benches[n].source for n in names], options
        )
        for name, program in zip(names, built):
            if isinstance(program, Exception):
                result.errors[name] = repr(program)
                continue
            try:
                stats = program.run(sim_tier=self.sim_tier)
            except Exception as exc:
                result.errors[name] = repr(exc)
                continue
            if self._check_output(name, stats, result):
                result.programs[name] = _metrics(stats)

    def _evaluate_pooled(
        self,
        convention: Convention,
        names: Sequence[str],
        result: CandidateResult,
    ) -> None:
        suite = run_suite(
            configs=(self.config,) if self.config != "base" else ("base",),
            names=names,
            sim_tier=self.sim_tier,
            jobs=self.jobs,
            convention=convention,
        )
        for bench_result in suite:
            name = bench_result.benchmark.name
            stats = bench_result.stats.get(self.config)
            if stats is None:
                result.errors[name] = bench_result.errors.get(
                    self.config, "cell missing"
                )
                continue
            if self._check_output(name, stats, result):
                result.programs[name] = _metrics(stats)

    # -- search -------------------------------------------------------------

    def _probe_sets(self, n_candidates: int) -> List[List[str]]:
        """Program subsets per halving round: probe on a few programs,
        widen each round, always finish on the full selection.  Probe
        membership is deterministic (registry order)."""
        if n_candidates <= 6 or len(self.names) <= 3:
            return [list(self.names)]
        sets: List[List[str]] = []
        size = 3
        while size < len(self.names):
            sets.append(list(self.names[:size]))
            size *= 3
        sets.append(list(self.names))
        return sets

    def run(
        self,
        budget: str = "small",
        candidates: Optional[Sequence[Convention]] = None,
        sample: Optional[int] = None,
    ) -> TuneResult:
        """Search the candidate list of ``budget`` (or an explicit list)
        and return the ranked result."""
        t0 = time.perf_counter()
        cands = list(
            candidates
            if candidates is not None
            else budget_candidates(budget, self.seed, sample)
        )
        # dedupe on the functional key, preserving first occurrence
        seen = set()
        unique: List[Convention] = []
        for c in cands:
            if c.key() not in seen:
                seen.add(c.key())
                unique.append(c)
        if DEFAULT_CONVENTION.key() not in seen:
            unique.insert(0, DEFAULT_CONVENTION)
        cands = unique

        rounds = self._probe_sets(len(cands))
        result = TuneResult(
            config=self.config,
            budget=budget,
            seed=self.seed,
            jobs=self.jobs,
            sim_tier=self.sim_tier,
            names=list(self.names),
            baseline=None,  # type: ignore[arg-type]  # set below
            stats=self.stats,
        )
        self._record_event(
            "start", budget=budget, candidates=len(cands),
            rounds=len(rounds), programs=len(self.names),
        )

        # The baseline anchors every comparison (and seeds the reference
        # outputs), so it is always scored first, on the full suite.
        self._log(
            f"tuning {len(cands)} candidates over {len(self.names)} "
            f"programs (config {self.config}, budget {budget}, "
            f"seed {self.seed}, jobs {self.jobs})"
        )
        self._log(f"round 0: baseline on {len(self.names)} programs")
        baseline = self.evaluate(
            DEFAULT_CONVENTION, self.names, round_no=0
        )
        if baseline.disqualified:
            raise RuntimeError(
                f"baseline convention failed to evaluate: {baseline.errors}"
            )
        result.baseline = baseline
        result.evaluations.append(baseline)

        survivors = [c for c in cands if c.key() != DEFAULT_CONVENTION.key()]
        final: List[CandidateResult] = []
        for round_no, probe in enumerate(rounds, start=1):
            is_final = round_no == len(rounds)
            self._log(
                f"round {round_no}/{len(rounds)}: {len(survivors)} "
                f"candidates on {len(probe)} programs"
            )
            scored: List[CandidateResult] = []
            for conv in survivors:
                scored.append(self.evaluate(conv, probe, round_no))
            result.evaluations.extend(scored)
            scored.sort(key=CandidateResult.score)
            if is_final:
                final = scored
                break
            keep = max(2, len(scored) // 2)
            survivors = [c.convention for c in scored[:keep]]
            self._record_event(
                "halve", round=round_no, kept=len(survivors),
                dropped=len(scored) - len(survivors),
            )

        # rank the baseline among the finalists: the winner is whichever
        # full-suite evaluation scores best, the paper's convention
        # included
        final.append(baseline)
        final.sort(key=CandidateResult.score)
        result.finalists = final
        result.wall_seconds = time.perf_counter() - t0
        win = result.winner
        self._record_event(
            "done",
            winner=win.convention.name,
            winner_key=repr(win.convention.key()),
            evaluations=len(result.evaluations),
            wall_seconds=round(result.wall_seconds, 4),
        )
        self._log(
            f"winner: {win.convention.describe()} "
            f"({result.wall_seconds:.2f}s, "
            f"{len(result.evaluations)} evaluations)"
        )
        return result


def tune(
    budget: str = "small",
    config: str = "C",
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    sim_tier: str = "auto",
    seed: int = 0,
    store_path=None,
    sample: Optional[int] = None,
    on_progress: Optional[Callable[[str], None]] = None,
) -> TuneResult:
    """One-call convenience wrapper: build a :class:`Tuner` and run it."""
    return Tuner(
        config=config, names=names, jobs=jobs, sim_tier=sim_tier,
        seed=seed, store_path=store_path, on_progress=on_progress,
    ).run(budget=budget, sample=sample)


def check_report(data: Dict) -> List[str]:
    """Schema-validate a tune report (the committed
    ``benchmarks/TUNE_report.json``); returns violation messages."""
    errors: List[str] = []
    if not isinstance(data, dict):
        return ["report is not a JSON object"]
    found = data.get("schema_version")
    if found != TUNE_SCHEMA_VERSION:
        errors.append(
            f"schema_version {found!r} != expected {TUNE_SCHEMA_VERSION} "
            "(regenerate the report)"
        )
    for key in REQUIRED_KEYS:
        if key not in data:
            errors.append(f"report is missing required key {key!r}")
    if errors:
        return errors
    for label in ("baseline", "winner"):
        entry = data[label]
        try:
            validate_convention(
                Convention.from_spec(entry["convention"])
            )
        except Exception as exc:
            errors.append(f"{label} convention spec invalid: {exc!r}")
        for m in METRICS:
            if m not in entry.get("totals", {}):
                errors.append(f"{label} totals missing metric {m!r}")
    if errors:
        return errors
    base = data["baseline"]["totals"]
    win = data["winner"]["totals"]
    if win["cycles"] > base["cycles"]:
        errors.append(
            "winner is worse than the baseline convention "
            f"({win['cycles']} > {base['cycles']} cycles) -- the baseline "
            "is always a finalist, so this cannot happen in a valid run"
        )
    guard = data.get("guard")
    if guard is not None and not guard.get("holds"):
        errors.append(
            "guard violated: the strictly-worse candidate "
            f"{guard.get('candidate')!r} beat the baseline convention"
        )
    for name, cell in data["per_program_winners"].items():
        if cell["cycles"] > cell["baseline_cycles"]:
            errors.append(
                f"per-program winner for {name!r} is worse than baseline"
            )
    return errors
