"""The autotuner's candidate space.

A candidate is a full :class:`~repro.target.registers.Convention` built
by :func:`~repro.target.registers.split_convention` from three axes:

* **split** -- where the canonical allocatable order (a0-a3, t0-t6,
  s0-s8) is cut into caller-saved and callee-saved halves (the paper's
  fixed convention cuts at 11);
* **argument registers** -- how many leading parameters travel in
  registers (0..4; the paper uses 4);
* **ladder order** -- the resilient engine's open-demotion rung order.

Everything here is deterministic: the same seed always yields the same
candidate list in the same order, which is what makes a tuning run
replayable bit-for-bit.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.target.registers import (
    ALLOCATABLE,
    Convention,
    DEFAULT_CONVENTION,
    DEFAULT_LADDER,
    NUM_PARAM_REGS,
    split_convention,
)

#: ladder orderings the tuner may choose between (the reference rung
#: must stay last -- see ``validate_convention``)
LADDER_ORDERS: Tuple[Tuple[str, ...], ...] = (
    DEFAULT_LADDER,
    ("open-noshrinkwrap", "open", "open-noregalloc"),
)


def full_space() -> List[Convention]:
    """Every (ladder, num_arg_regs, split) combination, deterministic
    order.  ``split >= num_arg_regs`` keeps argument registers
    caller-saved (a convention invariant)."""
    out: List[Convention] = []
    for ladder in LADDER_ORDERS:
        for num_arg_regs in range(NUM_PARAM_REGS + 1):
            for split in range(num_arg_regs, len(ALLOCATABLE) + 1):
                out.append(
                    split_convention(split, num_arg_regs, ladder=ladder)
                )
    return out


def small_space() -> List[Convention]:
    """The fixed micro-space of ``--budget small``: the paper's
    convention, a few split/arg perturbations, and one candidate that is
    *strictly worse* by construction (same split, zero register
    arguments: every call stages its arguments through memory).  CI
    asserts the strictly-worse candidate never beats the baseline."""
    return [
        DEFAULT_CONVENTION,
        split_convention(9, 4, name="split-9"),
        split_convention(13, 4, name="split-13"),
        split_convention(11, 0, name="worse-noargregs"),
    ]


def sample_space(k: int, seed: int) -> List[Convention]:
    """A deterministic ``k``-candidate sample of the full space, always
    led by the paper's convention (the comparison anchor)."""
    space = [c for c in full_space() if c != DEFAULT_CONVENTION]
    rng = random.Random(seed)
    k = max(0, min(k - 1, len(space)))
    return [DEFAULT_CONVENTION] + rng.sample(space, k)


def neighbors(conv: Convention) -> List[Convention]:
    """Hill-climbing moves: shift the split by one, shift the argument
    count by one, flip the ladder order."""
    split = bin(conv.caller_mask).count("1")
    out: List[Convention] = []
    for s in (split - 1, split + 1):
        if conv.num_arg_regs <= s <= len(ALLOCATABLE):
            out.append(split_convention(s, conv.num_arg_regs, conv.ladder))
    for a in (conv.num_arg_regs - 1, conv.num_arg_regs + 1):
        if 0 <= a <= min(NUM_PARAM_REGS, split):
            out.append(split_convention(split, a, conv.ladder))
    for ladder in LADDER_ORDERS:
        if ladder != conv.ladder:
            out.append(split_convention(split, conv.num_arg_regs, ladder))
    return out


def budget_candidates(
    budget: str, seed: int, sample: Optional[int] = None
) -> List[Convention]:
    """The candidate list for a named budget.

    ``small``  -- the fixed micro-space (CI smoke; ~4 candidates);
    ``medium`` -- a seeded sample of the full space (default 12),
    successively halved by the tuner;
    ``full``   -- the entire enumerated space, successively halved.
    """
    if budget == "small":
        return small_space()
    if budget == "medium":
        return sample_space(12 if sample is None else sample, seed)
    if budget == "full":
        return full_space()
    raise ValueError(
        f"unknown budget {budget!r}; expected small, medium or full"
    )
