"""An async facade over the incremental engine.

:class:`CompileService` accepts many concurrent compile/run requests
(``await service.compile(sources)``) against one shared
:class:`~repro.engine.core.Engine` -- and therefore one shared set of
in-memory caches and, with ``store_path=...``, one shared persistent
artifact store.  Two mechanisms keep concurrent load cheap:

**Single-flight.**  Requests are keyed by
:func:`~repro.engine.fingerprint.request_fingerprint` (source texts +
full options digest).  While a request is being compiled, every further
request with the same fingerprint awaits the *same* in-flight future
instead of compiling again; its :class:`ServiceResult` comes back with
``deduped=True``.  A request arriving after the flight lands simply
re-enters through the engine caches (which make it nearly free) --
single-flight bounds duplicate *work in flight*, not duplicate lookups.

**Batching.**  Distinct requests that arrive within ``batch_window``
seconds are grouped (per options digest, up to ``max_batch``) and handed
to :meth:`Engine.compile_batch`, which merges their SCC condensation
levels onto one schedule: independent procedures from different requests
plan concurrently on the engine's worker pool, and shared procedures
deduplicate through the session caches.

The engine itself runs on the event loop's default executor, one batch
at a time -- the engine is a session object, not a thread-safe one; the
service is the serialisation point.  Results carry the per-request
:class:`~repro.engine.stats.CompileRecord` (stage seconds, cache and
store hit/miss counts) when the engine produced one, plus a snapshot of
the store's cumulative counters (hits/misses/evictions/corruptions).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.core import Engine, normalize_sources
from repro.engine.fingerprint import options_fingerprint, request_fingerprint
from repro.engine.resilience import ResiliencePolicy
from repro.engine.stats import CompileRecord
from repro.pipeline.driver import CompiledProgram, Source
from repro.pipeline.options import CompilerOptions, O2, validate_options


@dataclass
class ServiceStats:
    """Cumulative counters for one :class:`CompileService`."""

    requests: int = 0
    deduped: int = 0         # requests served by an in-flight duplicate
    batches: int = 0         # Engine.compile_batch round trips
    compiled: int = 0        # requests that produced a program
    failed: int = 0          # requests that raised

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "deduped": self.deduped,
            "batches": self.batches,
            "compiled": self.compiled,
            "failed": self.failed,
        }


@dataclass
class ServiceResult:
    """One request's outcome."""

    program: CompiledProgram
    fingerprint: str
    #: True when this request awaited another request's in-flight compile
    deduped: bool = False
    #: the engine's per-request record (None when attribution was lost to
    #: a faulted batch -- counts are still in ``Engine.stats``)
    record: Optional[CompileRecord] = None
    #: cumulative store counters at completion (None without a store)
    store: Optional[Dict] = None


@dataclass
class _Pending:
    fingerprint: str
    sources: List[Tuple[str, str]]
    options: CompilerOptions
    options_fp: str
    future: "asyncio.Future[ServiceResult]"


class CompileService:
    """Async, batching, deduplicating compile server over one engine.

    Usage::

        service = CompileService(O3_SW, store_path="…/store")
        results = await asyncio.gather(
            *(service.compile(src) for src in sources)
        )

    All coroutine methods must be called from one event loop; the
    blocking engine work runs on the loop's default executor.
    """

    def __init__(
        self,
        options: CompilerOptions = O2,
        *,
        store_path=None,
        max_workers: Optional[int] = None,
        resilient: bool = False,
        policy: Optional[ResiliencePolicy] = None,
        batch_window: float = 0.005,
        max_batch: int = 16,
    ):
        self.engine = Engine(
            validate_options(options),
            max_workers=max_workers,
            resilient=resilient,
            policy=policy,
            store_path=store_path,
        )
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.stats = ServiceStats()
        self._inflight: Dict[str, "asyncio.Future[ServiceResult]"] = {}
        self._pending: List[_Pending] = []
        self._drain_task: Optional[asyncio.Task] = None

    @property
    def store(self):
        return self.engine.store

    def store_counters(self) -> Optional[Dict]:
        """Cumulative artifact-store counters, or ``None`` without one."""
        return (
            self.engine.store.stats.to_dict()
            if self.engine.store is not None else None
        )

    # -- the request path ---------------------------------------------------

    async def compile(
        self,
        sources: Union[Source, Sequence[Source]],
        options: Optional[CompilerOptions] = None,
    ) -> ServiceResult:
        """Compile one request; concurrent identical requests share one
        flight, concurrent distinct requests share one batch."""
        self.stats.requests += 1
        opts = (
            self.engine.options if options is None
            else validate_options(options)
        )
        named = normalize_sources(sources)
        fp = request_fingerprint(named, opts)

        inflight = self._inflight.get(fp)
        if inflight is not None:
            self.stats.deduped += 1
            result = await asyncio.shield(inflight)
            return replace(result, deduped=True)

        future: "asyncio.Future[ServiceResult]" = (
            asyncio.get_running_loop().create_future()
        )
        self._inflight[fp] = future
        self._pending.append(
            _Pending(fp, named, opts, options_fingerprint(opts), future)
        )
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.create_task(self._drain())
        return await future

    async def run(
        self,
        sources: Union[Source, Sequence[Source]],
        options: Optional[CompilerOptions] = None,
        **run_kwargs,
    ):
        """Compile (with dedup/batching) and execute on the simulator."""
        result = await self.compile(sources, options)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: result.program.run(**run_kwargs)
        )

    async def join(self) -> None:
        """Wait until every accepted request has resolved."""
        while self._drain_task is not None and not self._drain_task.done():
            await asyncio.shield(self._drain_task)

    # -- internals ----------------------------------------------------------

    async def _drain(self) -> None:
        """Collect requests for one batch window, group them by options,
        and run each group through the engine; repeats while new requests
        keep arriving."""
        try:
            while self._pending:
                await asyncio.sleep(self.batch_window)
                pending, self._pending = self._pending, []
                groups: Dict[str, List[_Pending]] = {}
                for p in pending:
                    groups.setdefault(p.options_fp, []).append(p)
                for group in groups.values():
                    for start in range(0, len(group), self.max_batch):
                        await self._run_group(
                            group[start:start + self.max_batch]
                        )
        finally:
            self._drain_task = None

    async def _run_group(self, group: List[_Pending]) -> None:
        self.stats.batches += 1
        engine = self.engine
        loop = asyncio.get_running_loop()
        before = len(engine.stats.records)
        try:
            results = await loop.run_in_executor(
                None,
                engine.compile_batch,
                [p.sources for p in group],
                group[0].options,
            )
        except Exception as exc:  # engine-level failure: fail the group
            for p in group:
                self._inflight.pop(p.fingerprint, None)
                self.stats.failed += 1
                if not p.future.done():
                    p.future.set_exception(exc)
            return

        # per-request records appear in request order when nothing
        # faulted; on a faulted batch attribution is lost and results
        # carry record=None (the counts remain in engine.stats)
        new_records = engine.stats.records[before:]
        successes = [r for r in results if not isinstance(r, Exception)]
        records: List[Optional[CompileRecord]] = (
            list(new_records) if len(new_records) == len(successes)
            else [None] * len(successes)
        )
        rec_iter = iter(records)
        store = self.store_counters()
        for p, res in zip(group, results):
            self._inflight.pop(p.fingerprint, None)
            if isinstance(res, Exception):
                self.stats.failed += 1
                if not p.future.done():
                    p.future.set_exception(res)
            else:
                self.stats.compiled += 1
                if not p.future.done():
                    p.future.set_result(ServiceResult(
                        program=res,
                        fingerprint=p.fingerprint,
                        record=next(rec_iter),
                        store=store,
                    ))
