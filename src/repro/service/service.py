"""An async facade over the incremental engine.

:class:`CompileService` accepts many concurrent compile/run requests
(``await service.compile(sources)``) against one shared
:class:`~repro.engine.core.Engine` -- and therefore one shared set of
in-memory caches and, with ``store_path=...``, one shared persistent
artifact store.  Two mechanisms keep concurrent load cheap:

**Single-flight.**  Requests are keyed by
:func:`~repro.engine.fingerprint.request_fingerprint` (source texts +
full options digest).  While a request is being compiled, every further
request with the same fingerprint awaits the *same* in-flight future
instead of compiling again; its :class:`ServiceResult` comes back with
``deduped=True``.  A request arriving after the flight lands simply
re-enters through the engine caches (which make it nearly free) --
single-flight bounds duplicate *work in flight*, not duplicate lookups.

**Batching.**  Distinct requests that arrive within ``batch_window``
seconds are grouped (per options digest, up to ``max_batch``) and handed
to :meth:`Engine.compile_batch`, which merges their SCC condensation
levels onto one schedule: independent procedures from different requests
plan concurrently and shared procedures deduplicate through the session
caches.

On top of those sits the **resilience layer** -- the service-grade
guarantees a front end serving heavy traffic needs:

**Deadlines.**  ``compile(..., deadline=s)`` (or a service-wide
``default_deadline``) bounds how long a waiter blocks: expiry raises a
typed :class:`DeadlineExceeded`.  Cancellation is *cooperative*: a
request whose waiters have all expired is dropped before dispatch, and
a batch already running stops starting new per-request work
(:class:`~repro.engine.core.BatchCancelled` via ``should_cancel``) --
the engine never abandons work mid-procedure, so caches stay coherent.

**Bounded retry.**  Transient failures (anything that is not a
deterministic :class:`~repro.frontend.errors.CompileError`) are retried
up to ``RetryPolicy.max_attempts`` times with exponential backoff and
*deterministic seeded jitter*, so two replicas of the service replaying
the same log back off identically.

**Circuit breaker.**  ``BreakerPolicy.failure_threshold`` consecutive
failures of one fingerprint trip its breaker: while open, requests for
that fingerprint bypass the primary engine entirely and are served
*degraded* through a resilient fallback engine (the open-convention
demotion ladder of :mod:`repro.engine.resilience`) -- a conservative
but sound program beats an error page.  After ``reset_timeout`` the
next request probes the primary path (half-open); success closes the
breaker, failure re-opens it.

**Admission control.**  Once the pending queue passes the ``max_queue``
high-water mark, new requests are shed with a typed
:class:`ServiceOverloaded` instead of growing the queue without bound.

**Graceful drain.**  ``join(drain=True)`` (or :meth:`drain`) stops
admitting (:class:`ServiceClosed`), flushes the in-flight groups, and
-- given a ``deadline`` -- fails the stragglers with
:class:`DeadlineExceeded` rather than stalling shutdown forever.

Fault-injection sites (:mod:`repro.faults`): ``service-deadline``
consults on the executor thread right before batch dispatch (a ``hang``
models a stalled planner, a ``raise`` exercises the retry path);
``service-queue`` consults at admission (a ``raise`` sheds the request
with ``ServiceOverloaded``).

The engine itself runs on the event loop's default executor, one batch
at a time -- the engine is a session object, not a thread-safe one; the
service is the serialisation point.  Results carry the per-request
:class:`~repro.engine.stats.CompileRecord` (stage seconds, cache and
store hit/miss counts) when the engine produced one, plus a snapshot of
the store's cumulative counters (hits/misses/evictions/corruptions).
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.engine.core import BatchCancelled, Engine, normalize_sources
from repro.engine.fingerprint import options_fingerprint, request_fingerprint
from repro.engine.resilience import ResiliencePolicy
from repro.engine.stats import CompileRecord
from repro.frontend.errors import CompileError
from repro.pipeline.driver import CompiledProgram, Source
from repro.pipeline.options import CompilerOptions, O2, validate_options


class ServiceError(RuntimeError):
    """Base class for the service's typed rejections."""


class ServiceOverloaded(ServiceError):
    """The request was shed by admission control (queue past its
    high-water mark, or an injected queue-pressure fault)."""


class ServiceClosed(ServiceError):
    """The service is draining and no longer admits requests."""


class DeadlineExceeded(ServiceError):
    """The request's deadline expired before a result was available.

    The underlying flight may still land and warm the caches; only the
    *waiter* gives up."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    A failed request is re-attempted until ``max_attempts`` total
    attempts are spent; attempt *k* (0-based) backs off
    ``backoff_base * backoff_multiplier**k`` seconds, stretched by up to
    ``jitter`` (a fraction) drawn deterministically from ``seed``, the
    request fingerprint and the attempt number -- reproducible under
    test and across replicas, yet decorrelated across requests.  Only
    *transient* failures retry: a deterministic
    :class:`~repro.frontend.errors.CompileError` (bad source, bad
    options) would fail identically every time.
    """

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.jitter < 0:
            raise ValueError("backoff_base and jitter must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")

    def retryable(self, exc: BaseException) -> bool:
        return not isinstance(
            exc, (CompileError, BatchCancelled, ServiceError)
        )

    def backoff(self, attempt: int, key: str = "") -> float:
        """Delay before re-attempt ``attempt`` (0-based) of ``key``."""
        base = self.backoff_base * (self.backoff_multiplier ** attempt)
        u = random.Random(f"{self.seed}:{key}:{attempt}").random()
        return base * (1.0 + self.jitter * u)


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-fingerprint circuit-breaker knobs."""

    #: consecutive primary-path failures that trip the breaker open
    failure_threshold: int = 3
    #: seconds an open breaker waits before letting a probe through
    reset_timeout: float = 30.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout < 0:
            raise ValueError("reset_timeout must be >= 0")


class _Breaker:
    """One fingerprint's breaker state (exists only after a failure)."""

    __slots__ = ("state", "failures", "opened_at")

    def __init__(self):
        self.state = "closed"      # closed | open | half-open
        self.failures = 0
        self.opened_at = 0.0


@dataclass
class ServiceStats:
    """Cumulative counters for one :class:`CompileService`."""

    requests: int = 0
    deduped: int = 0         # requests served by an in-flight duplicate
    batches: int = 0         # Engine.compile_batch round trips
    compiled: int = 0        # requests that produced a program
    failed: int = 0          # requests that raised
    shed: int = 0            # requests rejected by admission control
    retries: int = 0         # engine attempts re-run after transient faults
    deadline_expired: int = 0  # waiters that gave up at their deadline
    cancelled: int = 0       # requests cooperatively cancelled pre-result
    breaker_trips: int = 0   # circuit breakers tripped open
    degraded: int = 0        # requests served via the resilient fallback

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "deduped": self.deduped,
            "batches": self.batches,
            "compiled": self.compiled,
            "failed": self.failed,
            "shed": self.shed,
            "retries": self.retries,
            "deadline_expired": self.deadline_expired,
            "cancelled": self.cancelled,
            "breaker_trips": self.breaker_trips,
            "degraded": self.degraded,
        }


@dataclass
class ServiceResult:
    """One request's outcome."""

    program: CompiledProgram
    fingerprint: str
    #: True when this request awaited another request's in-flight compile
    deduped: bool = False
    #: True when an open circuit breaker served this request through the
    #: resilient fallback engine (conservative, sound, possibly demoted)
    degraded: bool = False
    #: the engine's per-request record (None when attribution was lost to
    #: a faulted batch -- counts are still in ``Engine.stats``)
    record: Optional[CompileRecord] = None
    #: cumulative store counters at completion (None without a store)
    store: Optional[Dict] = None


@dataclass
class _Pending:
    fingerprint: str
    sources: List[Tuple[str, str]]
    options: CompilerOptions
    options_fp: str
    future: "asyncio.Future[ServiceResult]"
    #: monotonic instant after which every waiter has given up
    #: (``None`` = at least one waiter has no deadline: never cancel)
    expiry: Optional[float] = None


def _retrieve_exception(future: "asyncio.Future") -> None:
    """Mark a future's exception retrieved even when every waiter has
    already abandoned it (deadline expiry), silencing the event loop's
    'exception was never retrieved' warning."""
    if not future.cancelled():
        future.exception()


class CompileService:
    """Async, batching, deduplicating compile server over one engine.

    Usage::

        service = CompileService(O3_SW, store_path="…/store")
        results = await asyncio.gather(
            *(service.compile(src, deadline=5.0) for src in sources)
        )
        await service.join(drain=True, deadline=30.0)

    All coroutine methods must be called from one event loop; the
    blocking engine work runs on the loop's default executor.  ``retry``
    / ``breaker`` default to the module policies; pass ``None`` to
    disable either mechanism.  ``clock`` injects a monotonic time source
    (tests use a fake one to step breaker timeouts).
    """

    def __init__(
        self,
        options: CompilerOptions = O2,
        *,
        store_path=None,
        max_workers: Optional[int] = None,
        resilient: bool = False,
        policy: Optional[ResiliencePolicy] = None,
        batch_window: float = 0.005,
        max_batch: int = 16,
        default_deadline: Optional[float] = None,
        retry: Optional[RetryPolicy] = RetryPolicy(),
        breaker: Optional[BreakerPolicy] = BreakerPolicy(),
        max_queue: int = 256,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.engine = Engine(
            validate_options(options),
            max_workers=max_workers,
            resilient=resilient,
            policy=policy,
            store_path=store_path,
        )
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if default_deadline is not None and default_deadline < 0:
            raise ValueError("default_deadline must be >= 0 or None")
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.default_deadline = default_deadline
        self.retry = retry
        self.breaker = breaker
        self.max_queue = max_queue
        self.stats = ServiceStats()
        self._clock = clock
        self._closed = False
        self._inflight: Dict[str, _Pending] = {}
        self._pending: List[_Pending] = []
        self._drain_task: Optional[asyncio.Task] = None
        self._breakers: Dict[str, _Breaker] = {}
        self._fallback: Optional[Engine] = None
        self._fallback_lock = asyncio.Lock()

    @property
    def store(self):
        return self.engine.store

    @property
    def closed(self) -> bool:
        return self._closed

    def store_counters(self) -> Optional[Dict]:
        """Cumulative artifact-store counters, or ``None`` without one."""
        return (
            self.engine.store.stats.to_dict()
            if self.engine.store is not None else None
        )

    def breaker_states(self) -> Dict[str, str]:
        """Current non-closed breaker states by fingerprint."""
        return {
            fp: b.state for fp, b in self._breakers.items()
            if b.state != "closed"
        }

    # -- the request path ---------------------------------------------------

    async def compile(
        self,
        sources: Union[Source, Sequence[Source]],
        options: Optional[CompilerOptions] = None,
        deadline: Optional[float] = None,
    ) -> ServiceResult:
        """Compile one request; concurrent identical requests share one
        flight, concurrent distinct requests share one batch.

        ``deadline`` (seconds, relative; defaults to the service's
        ``default_deadline``) bounds the wait with
        :class:`DeadlineExceeded`; an overloaded queue sheds with
        :class:`ServiceOverloaded`; a draining service rejects with
        :class:`ServiceClosed`.
        """
        self.stats.requests += 1
        if self._closed:
            raise ServiceClosed(
                "service is draining and no longer admits requests"
            )
        opts = (
            self.engine.options if options is None
            else validate_options(options)
        )
        named = normalize_sources(sources)
        fp = request_fingerprint(named, opts)
        if deadline is None:
            deadline = self.default_deadline

        if self._breaker_is_open(fp):
            return await self._compile_degraded(named, opts, fp, deadline)

        pend = self._inflight.get(fp)
        if pend is not None:
            self.stats.deduped += 1
            if deadline is None:
                pend.expiry = None  # this waiter never gives up
            elif pend.expiry is not None:
                pend.expiry = max(pend.expiry, self._clock() + deadline)
            result = await self._await_result(pend.future, deadline, fp)
            return replace(result, deduped=True)

        try:
            faults.check(faults.SITE_SERVICE_QUEUE, None)
        except faults.InjectedFault as exc:
            self.stats.shed += 1
            raise ServiceOverloaded(
                "request shed (injected queue-pressure fault)"
            ) from exc
        if len(self._pending) >= self.max_queue:
            self.stats.shed += 1
            raise ServiceOverloaded(
                f"request shed: queue depth {len(self._pending)} is at "
                f"the high-water mark ({self.max_queue})"
            )

        future: "asyncio.Future[ServiceResult]" = (
            asyncio.get_running_loop().create_future()
        )
        future.add_done_callback(_retrieve_exception)
        pend = _Pending(
            fp, named, opts, options_fingerprint(opts), future,
            expiry=None if deadline is None else self._clock() + deadline,
        )
        self._inflight[fp] = pend
        self._pending.append(pend)
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.create_task(self._drain())
        return await self._await_result(future, deadline, fp)

    async def run(
        self,
        sources: Union[Source, Sequence[Source]],
        options: Optional[CompilerOptions] = None,
        deadline: Optional[float] = None,
        **run_kwargs,
    ):
        """Compile (with dedup/batching) and execute on the simulator."""
        result = await self.compile(sources, options, deadline)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None, lambda: result.program.run(**run_kwargs)
        )

    async def join(
        self,
        drain: bool = False,
        deadline: Optional[float] = None,
    ) -> None:
        """Wait until every accepted request has resolved.

        ``drain=True`` first stops admitting (subsequent ``compile``
        calls raise :class:`ServiceClosed`); in-flight groups still
        flush.  With a ``deadline``, waiters still unresolved when it
        passes are failed with :class:`DeadlineExceeded` instead of
        stalling shutdown forever (their executor work finishes in the
        background and still warms the caches).
        """
        if drain:
            self._closed = True
        if deadline is None:
            while self._drain_task is not None \
                    and not self._drain_task.done():
                await asyncio.shield(self._drain_task)
            return
        loop = asyncio.get_running_loop()
        stop_at = loop.time() + deadline
        while self._drain_task is not None and not self._drain_task.done():
            remaining = stop_at - loop.time()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(
                    asyncio.shield(self._drain_task), remaining
                )
            except asyncio.TimeoutError:
                break
        if self._drain_task is not None and not self._drain_task.done():
            self._expire_stragglers(deadline)

    async def drain(self, deadline: Optional[float] = None) -> None:
        """``join(drain=True, deadline=deadline)``: graceful shutdown."""
        await self.join(drain=True, deadline=deadline)

    # -- internals ----------------------------------------------------------

    def _expire_stragglers(self, deadline: float) -> None:
        self._pending.clear()
        for fp in list(self._inflight):
            pend = self._inflight.pop(fp)
            if not pend.future.done():
                self.stats.deadline_expired += 1
                pend.future.set_exception(DeadlineExceeded(
                    f"request {fp[:12]} still unresolved after the "
                    f"{deadline:.3f}s drain deadline"
                ))

    async def _await_result(
        self,
        future: "asyncio.Future",
        deadline: Optional[float],
        fp: str,
    ):
        if deadline is None:
            return await asyncio.shield(future)
        try:
            return await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            self.stats.deadline_expired += 1
            raise DeadlineExceeded(
                f"request {fp[:12]} missed its {deadline:.3f}s deadline"
            ) from None

    # -- circuit breaker ----------------------------------------------------

    def _breaker_is_open(self, fp: str) -> bool:
        policy = self.breaker
        if policy is None:
            return False
        b = self._breakers.get(fp)
        if b is None or b.state != "open":
            return False
        if self._clock() - b.opened_at >= policy.reset_timeout:
            b.state = "half-open"  # this request probes the primary path
            return False
        return True

    def _breaker_failure(self, fp: str) -> None:
        policy = self.breaker
        if policy is None:
            return
        b = self._breakers.setdefault(fp, _Breaker())
        b.failures += 1
        if b.state == "half-open" \
                or b.failures >= policy.failure_threshold:
            if b.state != "open":
                b.state = "open"
                self.stats.breaker_trips += 1
            b.opened_at = self._clock()

    def _breaker_success(self, fp: str) -> None:
        if self.breaker is not None:
            self._breakers.pop(fp, None)

    # -- degraded serving ---------------------------------------------------

    def _degraded_engine(self) -> Engine:
        """The resilient fallback engine behind open breakers: its own
        in-memory caches (a poisoned primary session must not leak in)
        but the same persistent store handle."""
        if self._fallback is None:
            self._fallback = Engine(
                self.engine.options,
                max_workers=self.engine.max_workers,
                resilient=True,
                store_path=self.engine.store,
            )
        return self._fallback

    async def _compile_degraded(
        self,
        named: List[Tuple[str, str]],
        opts: CompilerOptions,
        fp: str,
        deadline: Optional[float],
    ) -> ServiceResult:
        self.stats.degraded += 1
        loop = asyncio.get_running_loop()
        engine = self._degraded_engine()

        async def locked():
            # the fallback engine is a session object too: serialise it
            async with self._fallback_lock:
                return await loop.run_in_executor(
                    None, engine.compile, named, opts
                )

        task = asyncio.ensure_future(locked())
        task.add_done_callback(_retrieve_exception)
        try:
            program = await self._await_result(task, deadline, fp)
        except DeadlineExceeded:
            raise
        except Exception:
            self.stats.failed += 1
            raise
        self.stats.compiled += 1
        record = (
            engine.stats.records[-1] if engine.stats.records else None
        )
        return ServiceResult(
            program=program, fingerprint=fp, degraded=True,
            record=record, store=self.store_counters(),
        )

    # -- the batch path -----------------------------------------------------

    async def _drain(self) -> None:
        """Collect requests for one batch window, group them by options,
        and run each group through the engine; repeats while new requests
        keep arriving."""
        try:
            while self._pending:
                await asyncio.sleep(self.batch_window)
                pending, self._pending = self._pending, []
                groups: Dict[str, List[_Pending]] = {}
                for p in pending:
                    groups.setdefault(p.options_fp, []).append(p)
                for group in groups.values():
                    for start in range(0, len(group), self.max_batch):
                        await self._run_group(
                            group[start:start + self.max_batch]
                        )
        finally:
            self._drain_task = None

    async def _run_group(self, group: List[_Pending]) -> None:
        self.stats.batches += 1
        engine = self.engine
        before = len(engine.stats.records)
        failure: Optional[BaseException] = None
        try:
            # cooperative cancellation: drop requests whose waiters have
            # all expired before spending any engine time on them
            live: List[_Pending] = []
            now = self._clock()
            for p in group:
                if p.expiry is not None and now >= p.expiry:
                    self._inflight.pop(p.fingerprint, None)
                    self.stats.cancelled += 1
                    if not p.future.done():
                        p.future.set_exception(DeadlineExceeded(
                            f"request {p.fingerprint[:12]} cancelled "
                            "before dispatch (every waiter expired)"
                        ))
                else:
                    live.append(p)
            if not live:
                return

            results = await self._batch_with_retry(live)

            # per-request records appear in request order when nothing
            # faulted; on a faulted batch attribution is lost and results
            # carry record=None (the counts remain in engine.stats)
            new_records = engine.stats.records[before:]
            successes = [
                r for r in results if not isinstance(r, Exception)
            ]
            records: List[Optional[CompileRecord]] = (
                list(new_records) if len(new_records) == len(successes)
                else [None] * len(successes)
            )
            rec_iter = iter(records)
            store = self.store_counters()
            for p, res in zip(live, results):
                self._inflight.pop(p.fingerprint, None)
                if isinstance(res, BatchCancelled):
                    self.stats.cancelled += 1
                    if not p.future.done():
                        p.future.set_exception(DeadlineExceeded(
                            f"request {p.fingerprint[:12]} cancelled "
                            "mid-batch (every waiter expired)"
                        ))
                elif isinstance(res, Exception):
                    self.stats.failed += 1
                    self._breaker_failure(p.fingerprint)
                    if not p.future.done():
                        p.future.set_exception(res)
                else:
                    self.stats.compiled += 1
                    self._breaker_success(p.fingerprint)
                    if not p.future.done():
                        p.future.set_result(ServiceResult(
                            program=res,
                            fingerprint=p.fingerprint,
                            record=next(rec_iter),
                            store=store,
                        ))
        except BaseException as exc:
            failure = exc
            if not isinstance(exc, Exception):
                raise  # cancellation etc. -- but resolve waiters first
        finally:
            # single-flight leak fix: however the group failed, every
            # waiter is resolved and the inflight table cleared --
            # otherwise deduplicated waiters deadlock forever
            for p in group:
                self._inflight.pop(p.fingerprint, None)
                if not p.future.done():
                    self.stats.failed += 1
                    self._breaker_failure(p.fingerprint)
                    p.future.set_exception(
                        failure if failure is not None else ServiceError(
                            f"request {p.fingerprint[:12]} was dropped "
                            "by its batch without a result"
                        )
                    )

    async def _batch_with_retry(
        self, group: List[_Pending]
    ) -> List[Union[CompiledProgram, Exception]]:
        """Dispatch one group to the engine with the retry policy:
        whole-batch retry when the dispatch itself raises, then bounded
        per-request retries for transient per-request failures."""
        loop = asyncio.get_running_loop()
        engine = self.engine
        sources = [p.sources for p in group]
        opts = group[0].options
        clock = self._clock

        def all_expired() -> bool:
            now = clock()
            return all(
                p.expiry is not None and now >= p.expiry for p in group
            )

        def dispatch():
            faults.check(faults.SITE_SERVICE_DEADLINE, None)
            return engine.compile_batch(
                sources, opts, should_cancel=all_expired
            )

        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        attempt = 0
        while True:
            try:
                results = list(await loop.run_in_executor(None, dispatch))
                break
            except Exception as exc:
                attempt += 1
                if policy is None or attempt >= attempts \
                        or not policy.retryable(exc):
                    raise
                self.stats.retries += 1
                await asyncio.sleep(
                    policy.backoff(attempt - 1, group[0].fingerprint)
                )

        if policy is None:
            return results
        for i, p in enumerate(group):
            tries_used = attempt + 1
            while isinstance(results[i], Exception) \
                    and policy.retryable(results[i]) \
                    and tries_used < attempts:
                if p.expiry is not None and clock() >= p.expiry:
                    break  # nobody is waiting: stop burning attempts
                self.stats.retries += 1
                await asyncio.sleep(
                    policy.backoff(tries_used - 1, p.fingerprint)
                )
                tries_used += 1
                try:
                    results[i] = await loop.run_in_executor(
                        None, engine.compile, p.sources, opts
                    )
                except Exception as exc:
                    results[i] = exc
        return results
