"""Async compile service: a batching, deduplicating front end over
:class:`~repro.engine.core.Engine` with service-grade resilience --
deadlines, bounded retry, per-fingerprint circuit breakers, admission
control and graceful drain (see :mod:`repro.service.service`)."""

from repro.service.service import (
    BreakerPolicy,
    CompileService,
    DeadlineExceeded,
    RetryPolicy,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
    ServiceResult,
    ServiceStats,
)

__all__ = [
    "BreakerPolicy",
    "CompileService",
    "DeadlineExceeded",
    "RetryPolicy",
    "ServiceClosed",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceResult",
    "ServiceStats",
]
