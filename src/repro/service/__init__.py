"""Async compile service: a batching, deduplicating front end over
:class:`~repro.engine.core.Engine` (see :mod:`repro.service.service`)."""

from repro.service.service import (
    CompileService,
    ServiceResult,
    ServiceStats,
)

__all__ = ["CompileService", "ServiceResult", "ServiceStats"]
