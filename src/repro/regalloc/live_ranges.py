"""Live ranges at basic-block granularity (Chow-Hennessy style).

A live range records, for one allocation candidate:

* the set of blocks where the value is live (its APP footprint when a
  register is assigned to it),
* loop-weighted use/def counts (the *benefit* of residing in a register:
  every use avoids a load, every def avoids a store), and
* the call sites whose execution the range spans (the potential *cost*:
  a register clobbered at such a call must be saved/restored around it).

Interference is computed at instruction granularity (a def interferes
with everything live after it), which is slightly finer than the paper's
block-level ranges but standard practice and necessary to keep expression
temporaries from choking the register file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.cfg import CFG
from repro.cfg.loops import LoopInfo
from repro.dataflow.liveness import Liveness, instruction_live_sets
from repro.ir.instructions import IRInstr, Mov
from repro.ir.values import VReg


@dataclass
class RangeCall:
    """A call spanned by a live range."""

    instr: IRInstr          # the Call or CallInd
    block: int
    weight: int


@dataclass
class LiveRange:
    vreg: VReg
    blocks: Set[int] = field(default_factory=set)
    use_weight: int = 0         # loop-weighted count of reads
    def_weight: int = 0         # loop-weighted count of writes
    calls: List[RangeCall] = field(default_factory=list)

    @property
    def span(self) -> int:
        """Live-range size used to normalise priorities (paper: area)."""
        return max(1, len(self.blocks))


@dataclass
class RangeInfo:
    """Live ranges for every candidate plus the interference graph."""

    ranges: Dict[VReg, LiveRange] = field(default_factory=dict)
    adjacency: Dict[VReg, Set[VReg]] = field(default_factory=dict)
    #: every call instruction in the function with (block, weight)
    all_calls: List[RangeCall] = field(default_factory=list)

    def interfere(self, a: VReg, b: VReg) -> None:
        if a == b:
            return
        self.adjacency.setdefault(a, set()).add(b)
        self.adjacency.setdefault(b, set()).add(a)

    def neighbors(self, v: VReg) -> Set[VReg]:
        return self.adjacency.get(v, set())


def build_ranges(
    cfg: CFG,
    liveness: Liveness,
    loops: LoopInfo,
    candidates: Set[VReg],
    block_weights: Optional[Sequence[int]] = None,
) -> RangeInfo:
    """Build live ranges and the interference graph for ``candidates``.

    ``block_weights`` overrides the static loop-depth weights (used by the
    profile-feedback extension); it must give one weight per block id.
    """
    info = RangeInfo()

    def weight(b: int) -> int:
        if block_weights is not None:
            return block_weights[b]
        return loops.weight(b)

    def range_of(v: VReg) -> LiveRange:
        lr = info.ranges.get(v)
        if lr is None:
            lr = LiveRange(vreg=v)
            info.ranges[v] = lr
        return lr

    # Block footprint from liveness: live-in blocks plus def/use blocks.
    for b, block in enumerate(cfg.blocks):
        live_in_here = liveness.live_in[b]
        for v in live_in_here:
            if v in candidates:
                range_of(v).blocks.add(b)
        for ins in block.instrs:
            for v in ins.use_vregs():
                if v in candidates:
                    lr = range_of(v)
                    lr.blocks.add(b)
                    lr.use_weight += weight(b)
            for d in ins.defs():
                if d in candidates:
                    lr = range_of(d)
                    lr.blocks.add(b)
                    lr.def_weight += weight(b)
        for v in block.terminator.use_vregs():
            if v in candidates:
                lr = range_of(v)
                lr.blocks.add(b)
                lr.use_weight += weight(b)

    # Instruction-level interference + spanned calls.
    entry_live = [
        v for v in liveness.live_in[cfg.entry] if v in candidates
    ]
    for i, a in enumerate(entry_live):
        for b2 in entry_live[i + 1:]:
            info.interfere(a, b2)

    for b, block in enumerate(cfg.blocks):
        w = weight(b)
        for ins, live_before, live_after in instruction_live_sets(
            block, liveness.live_out[b]
        ):
            if ins.is_call:
                rc = RangeCall(instr=ins, block=b, weight=w)
                info.all_calls.append(rc)
                defs = set(ins.defs())
                for v in live_after:
                    if v in candidates and v not in defs and v in live_before:
                        range_of(v).calls.append(rc)
            move_src = ins.src if isinstance(ins, Mov) else None
            for d in ins.defs():
                if d not in candidates:
                    continue
                for v in live_after:
                    if v is d or v not in candidates:
                        continue
                    if move_src is not None and v == move_src:
                        continue  # coalescing-friendly: a copy may share
                    info.interfere(d, v)
    info.all_calls.reverse()
    return info
