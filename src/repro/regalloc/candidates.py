"""Which virtual registers are register-allocation candidates.

Locals, parameters and temporaries always are.  Global scalars are
candidates only where register residence is sound without inter-procedural
alias information: in procedures that make no calls at all, the global can
be loaded at entry and stored back at exit with no other procedure able to
observe the window.  (The paper allocates globals to registers "within
procedures in which they appear"; the call-free restriction is our sound
approximation -- see DESIGN.md.  The ``ipra_globals`` extension relaxes it
using subtree mod/ref summaries.)
"""

from __future__ import annotations

from typing import Optional, Set

from repro.ir.function import IRFunction
from repro.ir.values import VKind, VReg


def allocation_candidates(
    fn: IRFunction,
    allowed_globals: Optional[Set[str]] = None,
) -> Set[VReg]:
    """The candidate set for ``fn``.

    In a call-free procedure every global scalar is eligible.  In a
    procedure with calls a global is eligible only when named in
    ``allowed_globals`` -- the mod/ref extension passes the globals that
    provably no callee subtree touches; by default none are.
    """
    call_free = not fn.has_calls()
    out: Set[VReg] = set()
    for v in fn.vregs:
        if v.kind is VKind.GLOBAL and not call_free:
            if allowed_globals is None or v.name not in allowed_globals:
                continue
        out.add(v)
    return out


def candidate_globals(candidates: Set[VReg]) -> Set[VReg]:
    return {v for v in candidates if v.kind is VKind.GLOBAL}
