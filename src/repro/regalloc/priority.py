"""The priority function of priority-based coloring, extended per-register.

Chow-Hennessy priority of a live range is (savings / area): the loop-
weighted memory operations avoided by keeping the value in a register,
normalised by the range's size.  The paper's Section 2 extension computes
a priority for each (live range, register) pair, because under IPRA the
*cost* of a specific register depends on whether callees clobber it at the
calls the range spans:

    priority(v, r) = (benefit(v) + bonus(v, r) - cost(v, r)) / span(v)

* ``benefit``  -- loads/stores avoided by register residence;
* ``bonus``    -- parameter-passing preference (Section 4): choosing the
  register a value must occupy at a call boundary deletes a move;
* ``cost``     -- save/restore pairs around spanned calls that clobber r,
  plus (when the default convention applies) the one-time entry/exit
  save/restore for the first use of a callee-saved register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.regalloc.context import AllocEnv
from repro.regalloc.live_ranges import LiveRange
from repro.ir.values import VKind, VReg
from repro.target.registers import Register

LOAD_COST = 1
STORE_COST = 1
MOVE_COST = 1
SAVE_RESTORE_COST = LOAD_COST + STORE_COST


@dataclass
class PriorityModel:
    """Pre-computed cost-model inputs for one procedure.

    ``entry_weight`` keeps per-invocation costs (entry/exit saves, entry
    parameter stores, global caching) in the same units as the per-block
    reference weights.  With the static loop-depth weights it is 1; with
    profile feedback it is the measured invocation count.
    """

    env: AllocEnv
    #: id(call instr) -> clobber mask
    call_clobbers: Dict[int, int] = field(default_factory=dict)
    #: (vreg, register index) -> accumulated move-elimination bonus
    param_bonus: Dict[Tuple[VReg, int], int] = field(default_factory=dict)
    entry_weight: int = 1

    def benefit(self, lr: LiveRange) -> int:
        """Memory operations avoided if ``lr`` lives in a register."""
        b = LOAD_COST * lr.use_weight + STORE_COST * lr.def_weight
        if lr.vreg.kind is VKind.PARAM:
            # a memory-resident parameter costs one entry store
            b += STORE_COST * self.entry_weight
        if lr.vreg.kind is VKind.GLOBAL:
            # a register-resident global costs an entry load + exit store
            b -= (LOAD_COST + STORE_COST) * self.entry_weight
        return b

    def clobber_cost(self, lr: LiveRange, reg: Register) -> int:
        """Save/restore pairs needed around calls the range spans."""
        bit = 1 << reg.index
        cost = 0
        for rc in lr.calls:
            if self.call_clobbers[id(rc.instr)] & bit:
                cost += SAVE_RESTORE_COST * rc.weight
        return cost

    def bonus(self, lr: LiveRange, reg: Register) -> int:
        return self.param_bonus.get((lr.vreg, reg.index), 0)

    def priority(self, lr: LiveRange, reg: Register, first_use_cost: int) -> float:
        """The (v, r) priority; ``first_use_cost`` is the dynamic entry/exit
        save cost (non-zero only for the first use of a callee-saved
        register when the default convention applies)."""
        net = (
            self.benefit(lr)
            + self.bonus(lr, reg)
            - self.clobber_cost(lr, reg)
            - first_use_cost
        )
        return net / lr.span

    def order_key(self, lr: LiveRange) -> float:
        """Register-independent ordering key: the optimistic priority,
        assuming the cheapest register (no entry cost)."""
        best_cost = min(
            (self.clobber_cost(lr, r) for r in self.env.convention.allocatable),
            default=0,
        )
        best_bonus = max(
            (self.bonus(lr, r) for r in self.env.convention.allocatable),
            default=0,
        )
        return (self.benefit(lr) + best_bonus - best_cost) / lr.span
