"""Allocation environment: what the allocator may assume at call sites.

This is the seam where intra-procedural and inter-procedural allocation
differ.  Under intra-procedural allocation every call clobbers exactly the
default set (all caller-saved registers plus v0) and parameters travel by
the default convention.  Under IPRA, calls to already-processed *closed*
procedures clobber only what their summaries report, and parameters travel
in the callee's recorded registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.interproc.summaries import (
    ParamSpec,
    ProcSummary,
    default_param_specs,
    default_summary,
)
from repro.ir.instructions import Call, CallInd, IRInstr
from repro.ir.values import VReg
from repro.target.registers import (
    Convention,
    RegisterFile,
    V0,
    convention_from_register_file,
)


@dataclass
class AllocEnv:
    """Environment for allocating one procedure.

    ``convention`` is the calling convention in force (save classes,
    argument registers, allocatable pool); ``register_file`` is accepted
    as a deprecated construction alias and always reflects the
    convention's allocatable view after init.  ``summaries`` holds the
    summaries of every already-processed procedure (empty under
    intra-procedural allocation).  ``arities`` maps every known
    procedure name to its parameter count (needed to fabricate default
    summaries for unknown callees).  ``proc_is_open`` says whether the
    procedure being allocated is itself open, which decides whether
    callee-saved registers carry the default save-at-entry obligation.
    """

    convention: Optional[Convention] = None
    ipra: bool = False
    proc_is_open: bool = True
    summaries: Dict[str, ProcSummary] = field(default_factory=dict)
    arities: Dict[str, int] = field(default_factory=dict)
    #: deprecated alias: a RegisterFile here becomes the convention's
    #: allocatable pool under the paper's fixed linkage
    register_file: Optional[RegisterFile] = None

    def __post_init__(self) -> None:
        if self.convention is None:
            if self.register_file is None:
                raise TypeError(
                    "AllocEnv needs a convention (or the deprecated "
                    "register_file alias)"
                )
            self.convention = convention_from_register_file(
                self.register_file
            )
        self.register_file = self.convention.register_file

    def callee_summary(self, instr: IRInstr) -> ProcSummary:
        """The summary in force for a call instruction."""
        if isinstance(instr, Call):
            if self.ipra and instr.func in self.summaries:
                return self.summaries[instr.func]
            return default_summary(
                instr.func,
                self.arities.get(instr.func, len(instr.args)),
                self.convention,
            )
        if isinstance(instr, CallInd):
            return default_summary(
                "<indirect>", len(instr.args), self.convention
            )
        raise TypeError(f"not a call: {instr!r}")

    def clobber_mask(self, instr: IRInstr) -> int:
        """Registers destroyed at a call site, including argument staging
        and the return-value register."""
        return self.callee_summary(instr).call_clobber_mask()

    def param_specs(self, instr: IRInstr) -> List[ParamSpec]:
        return self.callee_summary(instr).params

    @property
    def callee_saved_convention_applies(self) -> bool:
        """True when using a callee-saved register obliges this procedure
        to save and restore it (intra-procedural allocation, or an open
        procedure under IPRA).  Closed procedures under IPRA run all
        registers in caller-saved mode (Section 2): the save obligation
        propagates to an open ancestor instead.
        """
        return not self.ipra or self.proc_is_open


def intra_env(
    file_or_convention, arities: Optional[Dict[str, int]] = None
) -> AllocEnv:
    """Environment for plain intra-procedural (paper -O2) allocation.
    Accepts a :class:`Convention` or (deprecated) a :class:`RegisterFile`.
    """
    convention = (
        file_or_convention
        if isinstance(file_or_convention, Convention)
        else convention_from_register_file(file_or_convention)
    )
    return AllocEnv(
        convention=convention,
        ipra=False,
        proc_is_open=True,
        arities=dict(arities or {}),
    )
