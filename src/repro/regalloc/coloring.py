"""Priority-based coloring (Chow-Hennessy), with the paper's per-register
priority extension.

The allocator:

1. builds live ranges and the interference graph over the candidates;
2. gathers parameter-register preferences from call sites (Section 4);
3. visits candidates in decreasing order of optimistic priority;
4. for each, picks the register with the highest (v, r) priority among
   those not taken by interfering neighbours, with ties broken in favour
   of registers already used in the current call tree (Section 2: "the
   allocator will prefer a register that has already been used in the
   current call tree", minimising registers per call tree -- Fig. 1);
5. leaves the value memory-resident when every available register has
   negative priority (save/restore traffic would exceed the benefit) or
   no register is free (no live-range splitting; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from repro import faults
from repro.cfg.cfg import CFG, build_cfg
from repro.cfg.loops import LoopInfo, find_loops
from repro.dataflow.liveness import Liveness, compute_liveness
from repro.ir.function import IRFunction
from repro.ir.values import VKind, VReg
from repro.regalloc.candidates import allocation_candidates, candidate_globals
from repro.regalloc.context import AllocEnv
from repro.regalloc.live_ranges import RangeInfo, build_ranges
from repro.regalloc.priority import MOVE_COST, PriorityModel, SAVE_RESTORE_COST
from repro.regalloc.result import AllocationResult
from repro.target.registers import Register


@dataclass
class ColoringOptions:
    """Ablation switches for the allocator."""

    #: prefer registers already used in the call tree on priority ties
    prefer_subtree_reg: bool = True
    #: per-block weight override (profile feedback extension): either a
    #: sequence indexed by block id or a mapping from block name to its
    #: measured execution count
    block_weights: Optional[object] = None
    #: globals that may be register-cached across this procedure's calls
    #: (mod/ref extension; None = only call-free procedures cache globals)
    allowed_globals: Optional[Set[str]] = None


def _resolve_block_weights(
    cfg: CFG, weights: Optional[object]
) -> Optional[Sequence[int]]:
    if weights is None:
        return None
    if isinstance(weights, dict):
        return [max(0, int(weights.get(b.name, 0))) for b in cfg.blocks]
    return list(weights)


def _gather_param_bonus(
    model: PriorityModel,
    ranges: RangeInfo,
    env: AllocEnv,
    fn: IRFunction,
) -> None:
    """Fill the (vreg, register) -> bonus map from call-site staging and
    incoming parameter conventions."""
    for rc in ranges.all_calls:
        specs = env.param_specs(rc.instr)
        args = getattr(rc.instr, "args", [])
        for spec, arg in zip(specs, args):
            if spec.reg is None or spec.dead:
                continue
            if isinstance(arg, VReg):
                key = (arg, spec.reg.index)
                model.param_bonus[key] = (
                    model.param_bonus.get(key, 0) + MOVE_COST * rc.weight
                )
    # Incoming parameters: under the default convention the k-th parameter
    # arrives in a_k; occupying exactly that register deletes the entry
    # move.  Closed procedures under IPRA choose the incoming register
    # freely, so no preference is needed there.
    if env.callee_saved_convention_applies or not env.ipra:
        from repro.interproc.summaries import default_param_specs

        for v in fn.param_vregs:
            specs = default_param_specs(len(fn.params), env.convention)
            spec = specs[v.index]
            if spec.reg is not None:
                key = (v, spec.reg.index)
                model.param_bonus[key] = (
                    model.param_bonus.get(key, 0) + MOVE_COST
                )


def allocate_function(
    fn: IRFunction,
    env: AllocEnv,
    options: Optional[ColoringOptions] = None,
    subtree_used_mask: int = 0,
    cfg: Optional[CFG] = None,
) -> AllocationResult:
    """Run priority-based coloring on ``fn`` under environment ``env``.

    ``subtree_used_mask`` is the union of the summaries of this
    procedure's (closed) callees -- the registers already used in the
    current call tree, preferred on ties.
    """
    faults.check(faults.SITE_COLORING, fn.name)
    options = options or ColoringOptions()
    if cfg is None:
        cfg = build_cfg(fn)
    loops = find_loops(cfg)
    candidates = allocation_candidates(fn, options.allowed_globals)
    # A *written* register-candidate global must survive to the exit store;
    # a read-only one just has its natural range from the entry load.
    written = {
        d for block in fn.blocks for ins in block.instrs for d in ins.defs()
    }
    exit_live = sorted(
        (v for v in candidate_globals(candidates) if v in written),
        key=lambda v: v.name,
    )
    liveness = compute_liveness(cfg, exit_live=exit_live)
    ranges = build_ranges(
        cfg, liveness, loops, candidates,
        block_weights=_resolve_block_weights(cfg, options.block_weights),
    )


    resolved_weights = _resolve_block_weights(cfg, options.block_weights)
    entry_weight = 1
    if resolved_weights is not None and resolved_weights:
        entry_weight = max(1, resolved_weights[cfg.entry])
    model = PriorityModel(env=env, entry_weight=entry_weight)
    for rc in ranges.all_calls:
        model.call_clobbers[id(rc.instr)] = env.clobber_mask(rc.instr)
    _gather_param_bonus(model, ranges, env, fn)

    result = AllocationResult(
        fn=fn, cfg=cfg, liveness=liveness, loops=loops,
        candidates=candidates, ranges=ranges,
        call_clobbers=dict(model.call_clobbers),
    )
    for rc in ranges.all_calls:
        result.call_params[id(rc.instr)] = list(env.param_specs(rc.instr))

    # Order candidates by optimistic priority (highest first); note dead
    # ranges (no blocks / zero benefit) are skipped outright.
    order = []
    for v in candidates:
        lr = ranges.ranges.get(v)
        if lr is None or not lr.blocks:
            continue
        if model.benefit(lr) <= 0 and v.kind is not VKind.GLOBAL:
            continue
        order.append((model.order_key(lr), lr))
    order.sort(key=lambda pair: (-pair[0], pair[1].vreg.name))

    used_mask = 0
    save_obligation = env.callee_saved_convention_applies
    callee_mask = env.convention.callee_mask
    regs = env.convention.allocatable

    for _, lr in order:
        v = lr.vreg
        forbidden: Set[int] = set()
        for n in ranges.neighbors(v):
            r = result.assignment.get(n)
            if r is not None:
                forbidden.add(r.index)
        best: Optional[Tuple[float, int, int, int, Register]] = None
        for r in regs:
            if r.index in forbidden:
                continue
            first_use = 0
            if (
                save_obligation
                and (callee_mask >> r.index & 1)
                and not (used_mask & (1 << r.index))
            ):
                first_use = SAVE_RESTORE_COST * model.entry_weight
            prio = model.priority(lr, r, first_use)
            if prio < 0:
                continue
            in_subtree = (
                1 if options.prefer_subtree_reg
                and ((subtree_used_mask | used_mask) & (1 << r.index))
                else 0
            )
            already_used = 1 if used_mask & (1 << r.index) else 0
            key = (prio, in_subtree, already_used, -r.index, r)
            if best is None or key[:4] > best[:4]:
                best = key
        if best is None:
            continue  # memory-resident
        reg = best[4]
        result.assignment[v] = reg
        used_mask |= 1 << reg.index

    result.own_assigned_mask = used_mask
    return result
