"""Priority-based coloring register allocation (Chow-Hennessy), with the
paper's per-register priority extension for IPRA."""

from repro.regalloc.candidates import allocation_candidates, candidate_globals
from repro.regalloc.coloring import ColoringOptions, allocate_function
from repro.regalloc.context import AllocEnv, intra_env
from repro.regalloc.live_ranges import (
    LiveRange,
    RangeCall,
    RangeInfo,
    build_ranges,
)
from repro.regalloc.priority import (
    LOAD_COST,
    MOVE_COST,
    PriorityModel,
    SAVE_RESTORE_COST,
    STORE_COST,
)
from repro.regalloc.result import AllocationResult

__all__ = [
    "allocation_candidates",
    "candidate_globals",
    "ColoringOptions",
    "allocate_function",
    "AllocEnv",
    "intra_env",
    "LiveRange",
    "RangeCall",
    "RangeInfo",
    "build_ranges",
    "LOAD_COST",
    "MOVE_COST",
    "PriorityModel",
    "SAVE_RESTORE_COST",
    "STORE_COST",
    "AllocationResult",
]
