"""Allocation results handed from the allocator to codegen and the IPRA
driver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cfg.cfg import CFG
from repro.cfg.loops import LoopInfo
from repro.dataflow.liveness import Liveness
from repro.interproc.summaries import ParamSpec
from repro.ir.function import IRFunction
from repro.ir.values import VReg
from repro.regalloc.live_ranges import RangeInfo
from repro.target.registers import Register


@dataclass
class AllocationResult:
    """Output of priority-based coloring for one procedure."""

    fn: IRFunction
    cfg: CFG
    liveness: Liveness
    loops: LoopInfo
    #: candidate -> register; candidates missing here are memory-resident
    assignment: Dict[VReg, Register] = field(default_factory=dict)
    candidates: Set[VReg] = field(default_factory=set)
    ranges: Optional[RangeInfo] = None
    #: registers occupied by this procedure's own candidates
    own_assigned_mask: int = 0
    #: id(call instr) -> effective clobber mask at that site
    call_clobbers: Dict[int, int] = field(default_factory=dict)
    #: id(call instr) -> parameter staging for that call's arguments
    call_params: Dict[int, List[ParamSpec]] = field(default_factory=dict)

    def reg_of(self, v: VReg) -> Optional[Register]:
        return self.assignment.get(v)

    def is_memory(self, v: VReg) -> bool:
        return v not in self.assignment

    def busy_blocks(self, reg: Register) -> Set[int]:
        """Blocks where ``reg`` holds a live value of this procedure
        (the register's APP footprint from its assigned ranges)."""
        blocks: Set[int] = set()
        if self.ranges is None:
            return blocks
        for v, r in self.assignment.items():
            if r.index == reg.index:
                lr = self.ranges.ranges.get(v)
                if lr is not None:
                    blocks.update(lr.blocks)
        return blocks
