"""Profile-guided register allocation (the paper's stated future work).

The paper closes its Table 1 analysis with: "we lack information on the
execution frequencies at different levels of the call graph.  Knowledge
of such profile data can enable the register allocator to distribute
saves/restores more optimally ...  The feedback of profile data to the
register allocator is a capability that we plan to add in the future."

This module adds it: a profiling run counts basic-block executions (the
simulator increments a counter at every block-start pc), and the counts
replace the static ``10^loop-depth`` weights in the priority function and
in the shrink-wrap APP weighting, via ``CompilerOptions.block_weights``.

The counts are carried in a :class:`BlockProfile` -- a plain-``dict``
subclass (so it drops into ``block_weights`` unchanged) that also
records the constant call arguments the interpreter observed (the tier-3
JIT's specialization data source) and exposes a stable content digest,
which keys tier-3 translation artifacts in the persistent store and lets
tests reference a profile deterministically.  Profiling a program also
*attaches* the profile to its executable, which is what escalates
``sim_tier="auto"`` runs of that executable to the tier-3 JIT.

Usage::

    profile = collect_block_profile(sources, options)
    tuned = options.with_(block_weights=profile)
    prog = compile_program(sources, tuned)
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.pipeline.driver import CompiledProgram, compile_program, Source
from repro.pipeline.linker import Executable
from repro.pipeline.options import CompilerOptions, O2
from repro.sim.simulator import run_program


class BlockProfile(dict):
    """``function -> {block name -> execution count}``, plus observed
    constant call arguments, behind a stable content digest.

    Subclasses ``dict`` so every existing ``block_weights`` consumer
    (options validation, fingerprints, the allocator's priority
    function) takes it unchanged.  ``call_args[fn]`` is a tuple with one
    slot per argument register: the single constant value that register
    held at every observed call of ``fn``, or ``None`` where the values
    varied (or the function was never called).
    """

    def __init__(
        self,
        counts: Union[Dict[str, Dict[str, int]], Sequence] = (),
        call_args: Optional[Dict[str, Tuple[Optional[int], ...]]] = None,
    ):
        super().__init__(counts)
        self.call_args: Dict[str, Tuple[Optional[int], ...]] = {
            fn: tuple(args) for fn, args in (call_args or {}).items()
        }

    def digest(self) -> str:
        """SHA-256 over a canonical serialisation -- equal profiles get
        equal digests regardless of insertion order or process."""
        payload = json.dumps(
            {
                "counts": {
                    fn: dict(sorted(blocks.items()))
                    for fn, blocks in sorted(self.items())
                },
                "call_args": {
                    fn: list(args)
                    for fn, args in sorted(self.call_args.items())
                },
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_json(self) -> str:
        return json.dumps(
            {
                "counts": {fn: blocks for fn, blocks in self.items()},
                "call_args": {
                    fn: list(args) for fn, args in self.call_args.items()
                },
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "BlockProfile":
        data = json.loads(text)
        return cls(
            counts=data.get("counts", {}),
            call_args={
                fn: tuple(args)
                for fn, args in data.get("call_args", {}).items()
            },
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BlockProfile({dict.__repr__(self)}, "
            f"call_args={self.call_args!r})"
        )


def attach_profile(
    target: Union[CompiledProgram, Executable], profile: BlockProfile
) -> None:
    """Attach ``profile`` to an executable: ``sim_tier="auto"`` runs of
    it then escalate to the tier-3 trace JIT (with the tier-2/interp
    fallback ladder underneath)."""
    exe = getattr(target, "executable", target)
    exe._block_profile = profile  # type: ignore[attr-defined]


def block_profile_of(
    prog: CompiledProgram, attach: bool = True, **run_kwargs
) -> BlockProfile:
    """Run ``prog`` once with block counting and call-argument
    observation; returns the :class:`BlockProfile`, attached to the
    program's executable (see :func:`attach_profile`) unless
    ``attach=False``."""
    exe = prog.executable
    starts: Dict[int, int] = {}
    where: Dict[int, Tuple[str, str]] = {}
    for label, pc in exe.labels.items():
        if "." not in label:
            continue
        fn, _, block = label.partition(".")
        if fn in exe.func_entries:
            starts[pc] = 0
            where[pc] = (fn, block)
    observed: Dict[int, list] = {}
    run_program(exe, block_counts=starts, call_args=observed, **run_kwargs)
    counts: Dict[str, Dict[str, int]] = {}
    for pc, count in starts.items():
        fn, block = where[pc]
        counts.setdefault(fn, {})[block] = count
    call_args = {
        exe.func_at_pc[pc]: tuple(args)
        for pc, args in observed.items()
        if pc in exe.func_at_pc
    }
    profile = BlockProfile(counts, call_args)
    if attach:
        attach_profile(exe, profile)
    return profile


def collect_block_profile(
    sources: Union[Source, Sequence[Source]],
    options: CompilerOptions = O2,
    **run_kwargs,
) -> BlockProfile:
    """Compile at ``options`` (the training build) and profile one run."""
    return block_profile_of(compile_program(sources, options), **run_kwargs)


def profile_guided_options(
    options: CompilerOptions,
    profile: Dict[str, Dict[str, int]],
) -> CompilerOptions:
    """Attach a collected profile to compiler options."""
    return options.with_(block_weights=profile)
