"""Profile-guided register allocation (the paper's stated future work).

The paper closes its Table 1 analysis with: "we lack information on the
execution frequencies at different levels of the call graph.  Knowledge
of such profile data can enable the register allocator to distribute
saves/restores more optimally ...  The feedback of profile data to the
register allocator is a capability that we plan to add in the future."

This module adds it: a profiling run counts basic-block executions (the
simulator increments a counter at every block-start pc), and the counts
replace the static ``10^loop-depth`` weights in the priority function and
in the shrink-wrap APP weighting, via ``CompilerOptions.block_weights``.

Usage::

    profile = collect_block_profile(sources, options)
    tuned = options.with_(block_weights=profile)
    prog = compile_program(sources, tuned)
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

from repro.pipeline.driver import CompiledProgram, compile_program, Source
from repro.pipeline.options import CompilerOptions, O2
from repro.sim.simulator import run_program


def block_profile_of(
    prog: CompiledProgram, **run_kwargs
) -> Dict[str, Dict[str, int]]:
    """Run ``prog`` once with block counting and return
    ``function -> {block name -> execution count}``."""
    exe = prog.executable
    starts: Dict[int, int] = {}
    where: Dict[int, Tuple[str, str]] = {}
    for label, pc in exe.labels.items():
        if "." not in label:
            continue
        fn, _, block = label.partition(".")
        if fn in exe.func_entries:
            starts[pc] = 0
            where[pc] = (fn, block)
    run_program(exe, block_counts=starts, **run_kwargs)
    out: Dict[str, Dict[str, int]] = {}
    for pc, count in starts.items():
        fn, block = where[pc]
        out.setdefault(fn, {})[block] = count
    return out


def collect_block_profile(
    sources: Union[Source, Sequence[Source]],
    options: CompilerOptions = O2,
    **run_kwargs,
) -> Dict[str, Dict[str, int]]:
    """Compile at ``options`` (the training build) and profile one run."""
    return block_profile_of(compile_program(sources, options), **run_kwargs)


def profile_guided_options(
    options: CompilerOptions,
    profile: Dict[str, Dict[str, int]],
) -> CompilerOptions:
    """Attach a collected profile to compiler options."""
    return options.with_(block_weights=profile)
