"""Compiler options mapping onto the paper's configurations.

The paper's measurement matrix (Tables 1 and 2) is spanned by:

================  ============================================
paper config      options
================  ============================================
base (-O2)        ``O2``                  (intra, no shrink-wrap)
A    (-O2 + SW)   ``O2_SW``
B    (-O3)        ``O3``                  (IPRA, no shrink-wrap)
C    (-O3 + SW)   ``O3_SW``
D                 ``O3_SW`` with ``caller_only_file(7)``
E                 ``O3_SW`` with ``callee_only_file(7)``
================  ============================================

Opt levels: 0 = straight translation (no IR optimisation, no register
allocation), 1 = IR optimisation only, 2 = + intra-procedural priority
coloring, 3 = + inter-procedural allocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro.frontend.errors import OptionsError
from repro.target.registers import (
    CALLEE_ONLY_7,
    CALLER_ONLY_7,
    Convention,
    ConventionError,
    DEFAULT_CONVENTION,
    RegisterFile,
    convention_from_register_file,
    validate_convention,
)


@dataclass(frozen=True)
class CompilerOptions:
    opt_level: int = 2
    shrink_wrap: bool = False
    #: deprecated alias for ``convention``: a RegisterFile here becomes
    #: the paper's fixed linkage restricted to the file's registers; after
    #: init it always holds the convention's allocatable view
    register_file: Optional[RegisterFile] = None
    #: Section 6 propagate-vs-wrap combining strategy
    combine: bool = True
    #: Fig. 1 tie-break: prefer registers already used in the call tree
    prefer_subtree_reg: bool = True
    #: never let a shrink-wrapped region sit inside a loop
    smear_loops: bool = True
    #: separate-compilation conservatism: all procedures open
    externally_visible: bool = False
    entry: str = "main"
    #: profile-feedback extension: function -> {block name -> count}
    block_weights: Optional[Dict[str, Dict[str, int]]] = None
    #: mod/ref extension: cache globals in registers across calls whose
    #: subtrees provably never touch them
    ipra_globals: bool = False
    #: the calling convention in force (save classes, argument registers,
    #: allocatable pool, demotion ladder); the autotuner's search variable
    convention: Optional[Convention] = None

    def __post_init__(self) -> None:
        convention = self.convention
        if convention is None:
            if self.register_file is None:
                convention = DEFAULT_CONVENTION
            else:
                convention = convention_from_register_file(
                    self.register_file
                )
        elif not isinstance(convention, Convention):
            # leave the bad value in place for validate_options to report
            return
        elif (
            self.register_file is not None
            and tuple(self.register_file.allocatable)
            != tuple(convention.allocatable)
        ):
            raise OptionsError(
                "convention and register_file disagree on the allocatable "
                "pool; pass only one (register_file is a deprecated alias)"
            )
        object.__setattr__(self, "convention", convention)
        object.__setattr__(self, "register_file", convention.register_file)

    @property
    def ipra(self) -> bool:
        return self.opt_level >= 3

    @property
    def allocate_registers(self) -> bool:
        return self.opt_level >= 2

    @property
    def optimize_ir(self) -> bool:
        return self.opt_level >= 1

    def with_(self, **kwargs) -> "CompilerOptions":
        """Functional update.  Setting one of ``convention`` /
        ``register_file`` clears the other so the replacement wins (the
        two are views of the same choice; ``register_file`` is the
        deprecated spelling)."""
        if "convention" in kwargs and "register_file" not in kwargs:
            kwargs["register_file"] = None
        elif "register_file" in kwargs and "convention" not in kwargs:
            kwargs["convention"] = None
        return replace(self, **kwargs)


def validate_options(options: CompilerOptions) -> CompilerOptions:
    """Eagerly check ``options`` for mistakes that would otherwise surface
    as deep ``KeyError``s during planning.  Returns ``options`` unchanged
    so call sites can validate inline; raises
    :class:`~repro.frontend.errors.OptionsError` on any violation.
    """
    if not isinstance(options, CompilerOptions):
        raise OptionsError(
            f"expected CompilerOptions, got {type(options).__name__}"
        )
    if not isinstance(options.opt_level, int) or isinstance(
        options.opt_level, bool
    ) or not 0 <= options.opt_level <= 3:
        raise OptionsError(
            f"opt_level must be an integer in 0..3, got {options.opt_level!r}"
        )
    if not isinstance(options.register_file, RegisterFile):
        raise OptionsError(
            "register_file must be a RegisterFile, got "
            f"{type(options.register_file).__name__}"
        )
    if not isinstance(options.convention, Convention):
        raise OptionsError(
            "convention must be a Convention, got "
            f"{type(options.convention).__name__}"
        )
    try:
        validate_convention(options.convention)
    except ConventionError as exc:
        raise OptionsError(f"ill-formed convention: {exc}") from exc
    if options.allocate_registers and len(options.convention.allocatable) == 0:
        raise OptionsError(
            "convention has no allocatable registers but opt_level "
            f"{options.opt_level} performs register allocation; "
            "use opt_level <= 1 for an allocation-free build"
        )
    if not isinstance(options.entry, str) or not options.entry:
        raise OptionsError(
            f"entry must be a non-empty function name, got {options.entry!r}"
        )
    if options.block_weights is not None:
        bw = options.block_weights
        if not isinstance(bw, dict):
            raise OptionsError(
                "block_weights must map function name -> "
                "{block name -> count}, got "
                f"{type(bw).__name__}"
            )
        for fname, blocks in bw.items():
            if not isinstance(fname, str) or not isinstance(blocks, dict):
                raise OptionsError(
                    "block_weights must map function name -> "
                    f"{{block name -> count}}; bad entry {fname!r}"
                )
            for bname, count in blocks.items():
                if not isinstance(bname, str) or not isinstance(count, int) \
                        or isinstance(count, bool) or count < 0:
                    raise OptionsError(
                        f"block_weights[{fname!r}][{bname!r}] must be a "
                        f"non-negative integer count, got {count!r}"
                    )
    return options


# The paper's configurations ------------------------------------------------

O0 = CompilerOptions(opt_level=0)
O1 = CompilerOptions(opt_level=1)
O2 = CompilerOptions(opt_level=2, shrink_wrap=False)        # Table 1 baseline
O2_SW = CompilerOptions(opt_level=2, shrink_wrap=True)      # Table 1 col A
O3 = CompilerOptions(opt_level=3, shrink_wrap=False)        # Table 1 col B
O3_SW = CompilerOptions(opt_level=3, shrink_wrap=True)      # Table 1 col C
TABLE2_D = O3_SW.with_(convention=CALLER_ONLY_7)            # Table 2 col D
TABLE2_E = O3_SW.with_(convention=CALLEE_ONLY_7)            # Table 2 col E

PAPER_CONFIGS: Dict[str, CompilerOptions] = {
    "base": O2,
    "A": O2_SW,
    "B": O3,
    "C": O3_SW,
    "D": TABLE2_D,
    "E": TABLE2_E,
}
