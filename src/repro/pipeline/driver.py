"""The whole-program compilation driver.

Whole-program path (the paper's -O3 setting: Ucode is linked before
optimisation):

    sources -> parse/analyze/lower -> IR link -> IR optimise
            -> plan (intra or IPRA, one pass over the call graph)
            -> codegen -> executable link -> simulate

Separate-compilation path: each module is compiled to object code alone
(externs use the default convention; every procedure is open) and the
objects are linked afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle with the engine
    from repro.engine.resilience import CompileReport

from repro.frontend import analyze, parse
from repro.interproc.allocator import (
    FnPlan,
    PlanOptions,
    ProgramPlan,
    plan_program,
)
from repro.ir.function import IRModule
from repro.ir.lowering import lower_module
from repro.ir.optimize import optimize_module
from repro.ir.verify import verify_module
from repro.pipeline.linker import (
    Executable,
    ObjectCode,
    link_executable,
    link_ir_modules,
)
from repro.pipeline.options import CompilerOptions, O2
from repro.sim.stats import RunStats
from repro.target.codegen import generate_function
from repro.target.registers import ALLOCATABLE_MASK

Source = Union[str, Tuple[str, str]]  # source text or (module name, text)


@dataclass
class CompiledProgram:
    """Executable plus everything useful for inspection and tests."""

    executable: Executable
    ir: IRModule
    plan: ProgramPlan
    options: CompilerOptions
    #: resilience outcome of the compile; ``None`` unless the program was
    #: built by a resilient session (``Compiler(resilient=True)``)
    report: Optional["CompileReport"] = None
    #: the building engine's stats sink; tier-3 runs of this program
    #: report their translation decisions into it
    engine_stats: Optional[object] = None

    def run(self, **kwargs) -> RunStats:
        """Simulate the program; ``sim_tier`` selects the engine
        ("auto" picks a translated tier -- tier 3 when a profile is
        attached -- unless contract checking or block profiling needs
        the interpreter)."""
        stats = self.executable.run(**kwargs)
        if self.report is not None and getattr(stats, "sim_fallback", None):
            self.report.jit_fallbacks += 1
        if self.engine_stats is not None and stats.jit3 is not None:
            self.engine_stats.record_jit3(stats.jit3)
        return stats


def _parse_sources(sources: Union[Source, Sequence[Source]]) -> List[IRModule]:
    if isinstance(sources, (str, tuple)):
        sources = [sources]
    modules = []
    for i, src in enumerate(sources):
        if isinstance(src, tuple):
            name, text = src
        else:
            name, text = f"module{i}" if i else "main", src
        modules.append(lower_module(analyze(parse(text, name))))
    return modules


def _plan_options(options: CompilerOptions) -> PlanOptions:
    convention = options.convention
    if not options.allocate_registers:
        convention = convention.with_allocatable(())
    return PlanOptions(
        convention=convention,
        ipra=options.ipra,
        shrink_wrap=options.shrink_wrap,
        combine=options.combine,
        prefer_subtree_reg=options.prefer_subtree_reg,
        smear_loops=options.smear_loops,
        externally_visible=options.externally_visible,
        entry=options.entry,
        block_weights=options.block_weights,
        ipra_globals=options.ipra_globals,
    )


def _preserved_mask(plan: FnPlan) -> int:
    """Registers this procedure's code must leave intact for its caller
    (used by the simulator's dynamic contract checker)."""
    if plan.summary is not None and plan.summary.closed:
        return ALLOCATABLE_MASK & ~plan.summary.used_mask
    return plan.convention.callee_mask


def _codegen_module(
    module: IRModule, plan: ProgramPlan, options: CompilerOptions
) -> ObjectCode:
    obj = ObjectCode(
        globals=dict(module.globals), arrays=dict(module.arrays)
    )
    for name in module.functions:
        fnplan = plan.plans[name]
        obj.functions[name] = generate_function(fnplan, module.arrays)
        obj.preserved_masks[name] = _preserved_mask(fnplan)
    return obj


def _reference_compile_program(
    sources: Union[Source, Sequence[Source]],
    options: CompilerOptions = O2,
) -> CompiledProgram:
    """The original sequential whole-program pipeline, kept as the oracle
    for the incremental engine's bit-identity property (tests compare
    every cached compile against this)."""
    modules = _parse_sources(sources)
    program = link_ir_modules(modules)
    verify_module(program)
    if options.optimize_ir:
        optimize_module(program)
        verify_module(program)
    plan = plan_program(program, _plan_options(options))
    obj = _codegen_module(program, plan, options)
    exe = link_executable([obj], entry=options.entry)
    return CompiledProgram(
        executable=exe, ir=program, plan=plan, options=options
    )


def compile_program(
    sources: Union[Source, Sequence[Source]],
    options: CompilerOptions = O2,
) -> CompiledProgram:
    """Compile one or more MiniC sources as a whole program.

    One-shot wrapper over :class:`repro.Compiler`: a throwaway session
    compiles the sources and is discarded, so nothing is cached between
    calls.  Keep a :class:`~repro.engine.session.Compiler` instead when
    recompiling edited variants of the same program.
    """
    from repro.engine.session import Compiler

    return Compiler(options).add_sources(sources).compile()


@dataclass
class CompiledModule:
    """One separately compiled translation unit."""

    object_code: ObjectCode
    ir: IRModule
    plan: ProgramPlan


def compile_module(source: Source, options: CompilerOptions = O2) -> CompiledModule:
    """Compile a single module in isolation (separate compilation).

    Every procedure is treated as externally visible, hence open; calls to
    externs assume the default convention.  This reproduces the paper's
    incomplete-information regime of Section 3.
    """
    from repro.engine.session import Compiler

    return Compiler(options).compile_module(source)


def link_modules(
    compiled: Sequence[CompiledModule], entry: str = "main"
) -> Executable:
    """Link separately compiled modules into an executable."""
    from repro.engine.session import Compiler

    return Compiler().link(compiled, entry=entry)


def compile_and_run(
    sources: Union[Source, Sequence[Source]],
    options: CompilerOptions = O2,
    **run_kwargs,
) -> RunStats:
    """One-stop helper: compile as a whole program and execute."""
    return compile_program(sources, options).run(**run_kwargs)
