"""Compilation pipeline: options, drivers, linker."""

from repro.pipeline.driver import (
    CompiledModule,
    CompiledProgram,
    compile_and_run,
    compile_module,
    compile_program,
    link_modules,
)
from repro.pipeline.linker import (
    Executable,
    ObjectCode,
    link_executable,
    link_ir_modules,
)
from repro.pipeline.options import (
    CompilerOptions,
    OptionsError,
    O0,
    O1,
    O2,
    O2_SW,
    O3,
    O3_SW,
    PAPER_CONFIGS,
    TABLE2_D,
    TABLE2_E,
)

__all__ = [
    "CompiledModule",
    "CompiledProgram",
    "compile_and_run",
    "compile_module",
    "compile_program",
    "link_modules",
    "Executable",
    "ObjectCode",
    "link_executable",
    "link_ir_modules",
    "CompilerOptions",
    "OptionsError",
    "O0",
    "O1",
    "O2",
    "O2_SW",
    "O3",
    "O3_SW",
    "PAPER_CONFIGS",
    "TABLE2_D",
    "TABLE2_E",
]
