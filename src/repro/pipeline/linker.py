"""Linking.

Two layers, mirroring the paper's compilation setting (Section 7):

* **IR linking** -- the MIPS compiler system links Ucode from separate
  program units *before* optimisation, so the inter-procedural allocator
  sees the whole program.  :func:`link_ir_modules` merges IR modules and
  resolves ``extern`` declarations.
* **Executable linking** -- machine-code functions (possibly from modules
  compiled separately) are laid out, data addresses assigned, and every
  symbolic reference patched.  Address 0 is reserved as a null guard.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend.errors import LinkError
from repro.ir.function import IRModule
from repro.target.isa import AsmFunction, Instr, Opcode


@dataclass
class Executable:
    """A fully linked, runnable program image."""

    instrs: List[Instr] = field(default_factory=list)
    entry_pc: int = 0
    func_entries: Dict[str, int] = field(default_factory=dict)
    #: pc -> function name for the function starting there
    func_at_pc: Dict[int, str] = field(default_factory=dict)
    data_layout: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    data_init: Dict[int, int] = field(default_factory=dict)
    data_size: int = 1  # address 0 reserved
    #: function name -> register mask the function must preserve
    preserved_masks: Dict[str, int] = field(default_factory=dict)
    #: every code label -> pc ("fn" entries and "fn.block" block starts);
    #: used by the block-profile collector
    labels: Dict[str, int] = field(default_factory=dict)

    def label_of_pc(self, pc: int) -> Optional[str]:
        return self.func_at_pc.get(pc)

    def fingerprint(self) -> str:
        """Stable content digest of the linked image (instructions,
        entry, data image, preservation contracts) -- the executable
        half of a tier-3 translation store key.  Cached: the image is
        immutable once linked."""
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            parts = [repr(i) for i in self.instrs]
            parts.append(f"entry={self.entry_pc}")
            parts.append(f"data_size={self.data_size}")
            parts.append(repr(sorted(self.data_init.items())))
            parts.append(repr(sorted(self.preserved_masks.items())))
            cached = hashlib.sha256(
                "\n".join(parts).encode("utf-8")
            ).hexdigest()
            self._fingerprint = cached  # type: ignore[attr-defined]
        return cached

    def run(self, **kwargs):
        """Execute the image and return its
        :class:`~repro.sim.stats.RunStats`.

        Accepts everything :func:`repro.sim.simulate` does, notably
        ``sim_tier`` ("auto"/"interp"/"jit"/"jit3") selecting the
        simulator tier.  Import is deferred: the simulator imports
        this module.
        """
        from repro.sim.jit import simulate

        return simulate(self, **kwargs)


def link_ir_modules(modules: Sequence[IRModule], name: str = "program") -> IRModule:
    """Merge IR modules into one program, resolving externs."""
    out = IRModule(name=name)
    for mod in modules:
        for gname, init in mod.globals.items():
            if gname in out.globals or gname in out.arrays:
                raise LinkError(f"duplicate global symbol {gname!r}")
            out.globals[gname] = init
        for aname, size in mod.arrays.items():
            if aname in out.globals or aname in out.arrays:
                raise LinkError(f"duplicate global symbol {aname!r}")
            out.arrays[aname] = size
        for fn in mod.functions.values():
            if fn.name in out.functions:
                raise LinkError(f"duplicate function {fn.name!r}")
            out.functions[fn.name] = fn
        out.address_taken.update(mod.address_taken)
    # resolve externs: every declared extern must be defined somewhere
    for mod in modules:
        for ename, arity in mod.externs.items():
            target = out.functions.get(ename)
            if target is None:
                raise LinkError(f"unresolved extern function {ename!r}")
            if len(target.params) != arity:
                raise LinkError(
                    f"extern {ename!r} declared with arity {arity}, "
                    f"defined with {len(target.params)}"
                )
    return out


@dataclass
class ObjectCode:
    """Machine code for one compiled module (pre-link)."""

    functions: Dict[str, AsmFunction] = field(default_factory=dict)
    globals: Dict[str, int] = field(default_factory=dict)   # name -> init
    arrays: Dict[str, int] = field(default_factory=dict)    # name -> size
    preserved_masks: Dict[str, int] = field(default_factory=dict)


_BRANCH_OPS = (Opcode.B, Opcode.BEQZ, Opcode.BNEZ, Opcode.JAL)


def link_executable(
    objects: Sequence[ObjectCode], entry: str = "main"
) -> Executable:
    """Link object code into an executable image."""
    exe = Executable()

    # --- data layout (address 0 is the null guard) ---
    addr = 1
    seen: Dict[str, ObjectCode] = {}
    for obj in objects:
        for sym, init in obj.globals.items():
            if sym in exe.data_layout:
                raise LinkError(f"duplicate data symbol {sym!r}")
            exe.data_layout[sym] = (addr, 1)
            if init:
                exe.data_init[addr] = init
            addr += 1
        for sym, size in obj.arrays.items():
            if sym in exe.data_layout:
                raise LinkError(f"duplicate data symbol {sym!r}")
            exe.data_layout[sym] = (addr, size)
            addr += size
    exe.data_size = addr

    # --- code layout: a start stub, then every function ---
    labels: Dict[str, int] = {}
    code: List[Instr] = []
    # stub: call the entry point, then halt
    code.append(Instr(op=Opcode.JAL, label=entry, comment="start"))
    code.append(Instr(op=Opcode.HALT))

    for obj in objects:
        for fname, fn in obj.functions.items():
            if fname in exe.func_entries:
                raise LinkError(f"duplicate function symbol {fname!r}")
            base = len(code)
            exe.func_entries[fname] = base
            exe.func_at_pc[base] = fname
            for i, ins in enumerate(fn.instrs):
                for lab in fn.labels.get(i, ()):
                    if lab in labels:
                        raise LinkError(f"duplicate label {lab!r}")
                    labels[lab] = base + i
                code.append(
                    Instr(
                        op=ins.op, rd=ins.rd, rs=ins.rs, rt=ins.rt,
                        imm=ins.imm, label=ins.label, kind=ins.kind,
                        comment=ins.comment,
                    )
                )
            for lab in fn.labels.get(len(fn.instrs), ()):
                labels[lab] = base + len(fn.instrs)
        exe.preserved_masks.update(obj.preserved_masks)
    labels.update(exe.func_entries)

    if entry not in exe.func_entries:
        raise LinkError(f"entry point {entry!r} not defined")
    exe.entry_pc = 0
    exe.labels = dict(labels)

    # --- relocation ---
    for pc, ins in enumerate(code):
        if ins.label is None:
            continue
        if ins.op in _BRANCH_OPS:
            target = labels.get(ins.label)
            if target is None:
                raise LinkError(f"unresolved code symbol {ins.label!r}")
            ins.imm = target
        elif ins.op is Opcode.LA:
            if ins.label in exe.func_entries:
                ins.imm = exe.func_entries[ins.label]
            elif ins.label in exe.data_layout:
                ins.imm = exe.data_layout[ins.label][0]
            else:
                raise LinkError(f"unresolved symbol {ins.label!r}")
        elif ins.op in (Opcode.LW, Opcode.SW):
            loc = exe.data_layout.get(ins.label)
            if loc is None:
                raise LinkError(f"unresolved data symbol {ins.label!r}")
            ins.imm = (ins.imm or 0) + loc[0]
        else:
            raise LinkError(
                f"relocation on unexpected opcode {ins.op.value}"
            )

    exe.instrs = code
    return exe
