"""Incremental front end: per-procedure parse/lower/optimise caching.

MiniC lowering is a pure function of one procedure's text plus the
module-level symbol table (global/array/extern declarations and the
(name, arity) set of sibling procedures) -- temp and label counters are
per-function, and the IR optimiser is strictly local.  The front-end
cache exploits that:

1. a lexical scanner splits a source into top-level ``func`` chunks and
   the header (everything else, order preserved);
2. each chunk keys a cached lowered-and-optimised
   :class:`~repro.ir.function.IRFunction` by
   ``(symbol-table hash, chunk text hash, optimise flag)``;
3. chunks missing from the cache are compiled through the real front end
   on a *reduced source* -- the header, ``extern func`` declarations for
   every cached sibling, and the missing chunks -- which type-checks and
   lowers exactly like the full module does (name classification and
   arity checking only consult the symbol table, never sibling bodies);
4. the module is assembled from header declarations plus cached
   functions in source order, so data layout and code layout match a
   cold compile bit for bit.

Address-taken procedures are recorded per chunk at analysis time (the
paper's Section 3 needs ``&f`` occurrences *before* dead-code
elimination), so the assembled module's ``address_taken`` set equals the
cold compile's.

The scanner is conservative: any construct it cannot segment confidently
(unterminated comment, unbalanced braces, a stray quote) falls back to a
whole-module parse, which also produces the exact diagnostics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.engine.fingerprint import text_digest
from repro.store.store import NS_FRONTEND as _NS_FRONTEND
from repro.frontend import analyze, parse
from repro.frontend import ast_nodes as ast
from repro.ir.function import IRFunction, IRModule
from repro.ir.lowering import lower_module
from repro.ir.optimize import optimize_function
from repro.ir.verify import verify_module

#: one alternation over everything that can confuse brace counting; the
#: trailing ``/\*`` and ``'`` alternatives catch unterminated forms so the
#: scanner can bail out to a full parse (which raises the proper error)
_SCAN_RE = re.compile(
    r"//[^\n]*"
    r"|/\*.*?\*/"
    r"|'(?:\\.|[^'\\])'"
    r"|[{};]"
    r"|\bfunc\b"
    r"|\bextern\b"
    r"|/\*"
    r"|'",
    re.S,
)

_FUNC_HEAD_RE = re.compile(r"\s*([A-Za-z_]\w*)\s*\(([^)]*)\)")


@dataclass(frozen=True)
class Chunk:
    """One top-level ``func`` declaration's text span."""

    name: str
    arity: int
    text: str


def split_chunks(source: str) -> Optional[Tuple[str, List[Chunk]]]:
    """Split ``source`` into (header text, function chunks), or ``None``
    when the source cannot be segmented confidently."""
    chunks: List[Chunk] = []
    header_parts: List[str] = []
    depth = 0
    in_extern = False
    func_start = -1        # start offset of the current func chunk
    header_pos = 0         # start of the pending header segment
    for m in _SCAN_RE.finditer(source):
        tok = m.group(0)
        if tok.startswith("//") or (tok.startswith("/*") and len(tok) > 2):
            continue
        if tok == "/*" or tok == "'":
            return None  # unterminated comment / stray quote
        if tok.startswith("'"):
            continue
        if tok == "{":
            depth += 1
            continue
        if tok == "}":
            depth -= 1
            if depth < 0:
                return None
            if depth == 0 and func_start >= 0:
                head = _FUNC_HEAD_RE.match(source, func_start + len("func"))
                if head is None:
                    return None
                params = head.group(2).strip()
                arity = len(params.split(",")) if params else 0
                chunks.append(
                    Chunk(head.group(1), arity, source[func_start:m.end()])
                )
                func_start = -1
                header_pos = m.end()
            continue
        if depth > 0:
            continue
        if tok == ";":
            in_extern = False
        elif tok == "extern":
            in_extern = True
        elif tok == "func" and not in_extern:
            if func_start >= 0:
                return None  # previous func never closed its brace
            func_start = m.start()
            header_parts.append(source[header_pos:func_start])
    if depth != 0 or func_start >= 0:
        return None
    header_parts.append(source[header_pos:])
    names = [c.name for c in chunks]
    if len(set(names)) != len(names):
        return None  # duplicate definitions: let the full parse diagnose
    return "".join(header_parts), chunks


def _funcrefs(node, out: set) -> None:
    """Collect ``&name`` occurrences from an AST subtree (analysis-time
    address-taken semantics, before dead code is dropped)."""
    if isinstance(node, ast.FuncRef):
        out.add(node.name)
    for value in vars(node).values():
        if isinstance(value, ast.Node):
            _funcrefs(value, out)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, ast.Node):
                    _funcrefs(item, out)


@dataclass
class _FnEntry:
    fn: IRFunction
    address_taken: FrozenSet[str]


class FrontendCache:
    """Session-lifetime parse/lower/optimise caches.

    With an :class:`~repro.store.ArtifactStore` attached, per-function
    entries are additionally shared across sessions and processes: a
    chunk missing from the in-memory cache is looked up on disk (under
    the same content key) before the real front end runs, and freshly
    lowered chunks are written through.  Restored functions went through
    ``remove_unreachable_blocks`` before they were first published, so
    they splice into a module exactly like in-memory entries.
    """

    def __init__(self, store=None) -> None:
        #: (module name, source sha, optimise) -> assembled IRModule
        self._modules: Dict[Tuple[str, str, bool], IRModule] = {}
        #: (symtab sha, chunk sha, optimise) -> lowered function
        self._functions: Dict[Tuple[str, str, bool], _FnEntry] = {}
        self._store = store
        self.hits = 0
        self.misses = 0
        self.fn_hits = 0
        self.fn_misses = 0

    # -- the one public operation -------------------------------------------

    def lower_source(self, name: str, text: str, optimize: bool) -> IRModule:
        """Parse/analyze/lower (and optionally optimise) one source,
        reusing per-procedure work from previous compiles of the session.
        """
        key = (name, text_digest(text), optimize)
        module = self._modules.get(key)
        if module is not None:
            self.hits += 1
            self.fn_hits += len(module.functions)
            return module
        self.misses += 1
        split = split_chunks(text)
        if split is None:
            module = self._full_front(name, text, optimize)
            self.fn_misses += len(module.functions)
        else:
            module = self._chunked_front(name, split, optimize)
        self._modules[key] = module
        return module

    # -- internals ----------------------------------------------------------

    def _full_front(self, name: str, text: str, optimize: bool) -> IRModule:
        module = lower_module(analyze(parse(text, name)))
        verify_module(module)
        if optimize:
            for fn in module.functions.values():
                optimize_function(fn)
            verify_module(module)
        return module

    def _chunked_front(
        self, name: str, split: Tuple[str, List[Chunk]], optimize: bool
    ) -> IRModule:
        header_text, chunks = split
        symtab = text_digest(
            header_text
            + "\x00"
            + "\x00".join(f"{c.name},{c.arity}" for c in chunks)
        )
        entries: Dict[str, _FnEntry] = {}
        missing: List[Chunk] = []
        for chunk in chunks:
            fkey = (symtab, text_digest(chunk.text), optimize)
            entry = self._functions.get(fkey)
            if entry is None and self._store is not None:
                restored = self._store.get(_NS_FRONTEND, fkey)
                if isinstance(restored, _FnEntry):
                    self._functions[fkey] = restored
                    entry = restored
            if entry is not None:
                self.fn_hits += 1
                entries[chunk.name] = entry
            else:
                self.fn_misses += 1
                missing.append(chunk)

        cached_names = {c.name for c in chunks if c.name in entries}
        reduced = "".join(
            [header_text]
            + [
                f"\nextern func {c.name}({c.arity});"
                for c in chunks
                if c.name in cached_names
            ]
            + ["\n" + c.text for c in missing]
        )
        ast_module = parse(reduced, name)
        minfo = analyze(ast_module)
        lowered = lower_module(minfo)
        verify_module(lowered)

        decl_by_name = {f.name: f for f in ast_module.functions}
        for chunk in missing:
            fn = lowered.functions[chunk.name]
            if optimize:
                optimize_function(fn)
            # fix the CFG point before publishing: later pipeline stages
            # may call remove_unreachable_blocks, which must be a no-op
            fn.remove_unreachable_blocks()
            refs: set = set()
            _funcrefs(decl_by_name[chunk.name], refs)
            entry = _FnEntry(fn=fn, address_taken=frozenset(refs))
            fkey = (symtab, text_digest(chunk.text), optimize)
            self._functions[fkey] = entry
            entries[chunk.name] = entry
            if self._store is not None:
                self._store.put(_NS_FRONTEND, fkey, entry)
        if optimize and missing:
            verify_module(lowered)

        module = IRModule(
            name=name,
            globals=dict(lowered.globals),
            arrays=dict(lowered.arrays),
            externs={
                ename: arity
                for ename, arity in lowered.externs.items()
                if ename not in cached_names
            },
        )
        for chunk in chunks:
            module.add_function(entries[chunk.name].fn)
            module.address_taken.update(entries[chunk.name].address_taken)
        return module
