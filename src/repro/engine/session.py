"""`repro.Compiler`: the session façade over the incremental engine.

One :class:`Compiler` owns one :class:`~repro.engine.core.Engine` and a
named set of sources.  Re-adding a source under an existing name
replaces it, so an edit-and-rebuild loop is::

    c = Compiler(O3_SW)
    c.add_source(text)               # becomes module "main"
    cold = c.compile()
    c.add_source(("main", edited))   # same name: replaces in place
    warm = c.compile()               # only the edited slice recompiles

``warm.executable`` is bit-identical to what a cold whole-program
compile of the edited text produces; the caches only skip work, never
change it.  The legacy one-shot helpers (``compile_program`` and
friends) are thin wrappers that build a throwaway session.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.core import Engine, normalize_sources
from repro.engine.resilience import ResiliencePolicy
from repro.engine.stats import EngineStats
from repro.frontend.errors import OptionsError
from repro.pipeline.driver import (
    CompiledModule,
    CompiledProgram,
    Source,
)
from repro.pipeline.linker import Executable, link_executable
from repro.pipeline.options import CompilerOptions, O2, validate_options
from repro.sim.stats import RunStats


class Compiler:
    """A compilation session with incremental re-compilation.

    All one-shot entry points are expressible through it::

        Compiler(options).add_sources(sources).compile()   # compile_program
        Compiler(options).compile_module(source)           # compile_module
        Compiler().link(modules, entry="main")             # link_modules
        Compiler(options).add_sources(sources).run()       # compile_and_run

    ``resilient=True`` arms the engine's per-procedure fault boundary:
    a procedure whose planning or codegen fails is demoted to the open
    classification (default linkage convention) instead of aborting the
    session, and ``compile().report.degradations`` lists what happened
    (see :mod:`repro.engine.resilience`).  ``policy`` tunes the worker
    watchdogs.  The fault-free path is bit-identical either way.

    ``store_path=...`` attaches a persistent, cross-process artifact
    store under that directory: compiles fall through the in-memory
    caches to disk and write fresh work through, so a brand-new process
    pointed at the same path warm-starts from earlier sessions' work
    (see :mod:`repro.store`).  Warm-started output stays bit-identical
    to a cold compile.
    """

    def __init__(
        self,
        options: CompilerOptions = O2,
        max_workers: Optional[int] = None,
        resilient: bool = False,
        policy: Optional[ResiliencePolicy] = None,
        store_path=None,
    ):
        self._engine = Engine(
            options, max_workers=max_workers,
            resilient=resilient, policy=policy, store_path=store_path,
        )
        self._sources: List[Tuple[str, str]] = []

    # -- configuration ------------------------------------------------------

    @property
    def options(self) -> CompilerOptions:
        return self._engine.options

    def set_options(self, **kwargs) -> "Compiler":
        """Replace option fields for subsequent compiles (chainable).

        Caches survive an option flip: plan keys embed the option
        fingerprint, so switching back re-hits the earlier entries.
        """
        self._engine.options = validate_options(
            self._engine.options.with_(**kwargs)
        )
        return self

    @property
    def stats(self) -> EngineStats:
        return self._engine.stats

    @property
    def store(self):
        """The attached :class:`~repro.store.ArtifactStore`, or ``None``."""
        return self._engine.store

    @property
    def engine(self):
        """The underlying :class:`~repro.engine.core.Engine` (exposed for
        batch front ends such as :class:`repro.service.CompileService`)."""
        return self._engine

    # -- sources ------------------------------------------------------------

    def add_source(self, source: Source) -> "Compiler":
        """Add one source (chainable).  A bare string is named ``main``
        first and ``module<i>`` after; re-using a name replaces that
        source in place."""
        if isinstance(source, tuple):
            name, text = source
        else:
            n = len(self._sources)
            name, text = (f"module{n}" if n else "main"), source
        for i, (existing, _) in enumerate(self._sources):
            if existing == name:
                self._sources[i] = (name, text)
                return self
        self._sources.append((name, text))
        return self

    def add_sources(
        self, sources: Union[Source, Sequence[Source]]
    ) -> "Compiler":
        for named in normalize_sources(sources):
            self.add_source(named)
        return self

    @property
    def sources(self) -> List[Tuple[str, str]]:
        return list(self._sources)

    # -- compilation --------------------------------------------------------

    def compile(
        self, options: Optional[CompilerOptions] = None
    ) -> CompiledProgram:
        """Whole-program compile of the session's sources."""
        if not self._sources:
            raise OptionsError("no sources added to this Compiler session")
        return self._engine.compile(list(self._sources), options)

    def compile_module(
        self, source: Source, options: Optional[CompilerOptions] = None
    ) -> CompiledModule:
        """Separately compile one unit (every procedure open)."""
        return self._engine.compile_module(source, options)

    def link(
        self,
        compiled: Sequence[CompiledModule],
        entry: Optional[str] = None,
    ) -> Executable:
        """Link separately compiled modules into an executable."""
        return link_executable(
            [c.object_code for c in compiled],
            entry=self.options.entry if entry is None else entry,
        )

    def run(self, **run_kwargs) -> RunStats:
        """Compile the session's sources and execute the result."""
        return self.compile().run(**run_kwargs)
