"""Incremental summary-keyed compilation engine.

See :mod:`repro.engine.core` for the cache model and
:mod:`repro.engine.session` for the user-facing :class:`Compiler`.
"""

from repro.engine.core import Engine
from repro.engine.session import Compiler
from repro.engine.stats import CompileRecord, EngineStats, StageStats

__all__ = [
    "Compiler",
    "CompileRecord",
    "Engine",
    "EngineStats",
    "StageStats",
]
