"""Incremental summary-keyed compilation engine.

See :mod:`repro.engine.core` for the cache model,
:mod:`repro.engine.session` for the user-facing :class:`Compiler`, and
:mod:`repro.engine.resilience` for the fault boundary of a resilient
session.
"""

from repro.engine.core import BatchCancelled, Engine
from repro.engine.resilience import (
    CompileReport,
    DegradationRecord,
    ResiliencePolicy,
)
from repro.engine.session import Compiler
from repro.engine.stats import CompileRecord, EngineStats, StageStats

__all__ = [
    "BatchCancelled",
    "Compiler",
    "CompileRecord",
    "CompileReport",
    "DegradationRecord",
    "Engine",
    "EngineStats",
    "ResiliencePolicy",
    "StageStats",
]
