"""The incremental compilation engine.

:class:`Engine` produces the same artifacts as the one-shot driver --
``CompiledProgram`` / ``CompiledModule`` objects, bit-identical
executables -- but memoises every per-procedure stage across compiles of
one session:

===========  =============================================  ============
stage        cache key                                      cached value
===========  =============================================  ============
front end    (symbol table hash, chunk text hash, opt?)     IRFunction
plan         :func:`~repro.engine.invalidation.plan_key`    FnPlan
codegen      (plan key, program array symbols)              AsmFunction
===========  =============================================  ============

Nothing is ever marked stale; a compile recomputes the (cheap) keys and
misses exactly where an input changed.  Editing one procedure's body
re-plans that procedure plus the ancestors whose view of a callee
summary changed -- usually just the chain to the root, and nothing at
all when the edit leaves the summary signature intact.  Flipping a plan
option (say ``shrink_wrap``) changes every plan key but no front-end
key, so parsing and lowering are fully reused.

Planning runs level-by-level over the call graph's SCC condensation
(:mod:`repro.engine.scheduler`); the plan-key model makes each level's
procedures independent, so the levels may run on a thread pool without
affecting output.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.frontend import FrontendCache
from repro.engine.invalidation import (
    PlanKey,
    count_changed,
    effective_summaries,
    plan_key,
)
from repro.engine.scheduler import default_workers, run_levels, scc_levels
from repro.engine.stats import CompileRecord, EngineStats
from repro.frontend.errors import OptionsError
from repro.interproc.allocator import (
    FnPlan,
    PlanOptions,
    ProgramPlan,
    plan_function,
)
from repro.interproc.callgraph import build_call_graph, dfs_postorder
from repro.interproc.modref import cacheable_globals, subtree_global_refs
from repro.ir.function import IRModule
from repro.pipeline.driver import (
    CompiledModule,
    CompiledProgram,
    Source,
    _plan_options,
    _preserved_mask,
)
from repro.pipeline.linker import ObjectCode, link_executable, link_ir_modules
from repro.pipeline.options import CompilerOptions, O2, validate_options
from repro.target.codegen import generate_function
from repro.target.isa import AsmFunction


def normalize_sources(
    sources: Union[Source, Sequence[Source]]
) -> List[Tuple[str, str]]:
    """(name, text) pairs with the driver's historical naming scheme."""
    if isinstance(sources, (str, tuple)):
        sources = [sources]
    named: List[Tuple[str, str]] = []
    for i, src in enumerate(sources):
        if isinstance(src, tuple):
            named.append(src)
        else:
            named.append((f"module{i}" if i else "main", src))
    return named


class Engine:
    """Summary-keyed incremental compiler, one instance per session."""

    def __init__(
        self,
        options: CompilerOptions = O2,
        max_workers: Optional[int] = None,
    ):
        self.options = validate_options(options)
        self.max_workers = (
            default_workers() if max_workers is None else max_workers
        )
        self.stats = EngineStats()
        self._frontend = FrontendCache()
        self._plans: Dict[PlanKey, FnPlan] = {}
        self._codegen: Dict[Tuple, Tuple[AsmFunction, int]] = {}
        self._last_keys: Optional[Dict[str, PlanKey]] = None

    # -- public API ---------------------------------------------------------

    def compile(
        self,
        sources: Union[Source, Sequence[Source]],
        options: Optional[CompilerOptions] = None,
    ) -> CompiledProgram:
        """Whole-program compile, reusing everything an edit left alone."""
        options = self.options if options is None else validate_options(options)
        record = self.stats.begin("program")
        with self.stats.timer(record, "frontend"):
            program = self._lower_and_link(
                normalize_sources(sources), options, record
            )
        if options.entry not in program.functions:
            raise OptionsError(
                f"entry point {options.entry!r} is not defined by the "
                "given sources"
            )

        popts = _plan_options(options)
        with self.stats.timer(record, "plan"):
            plan, keys = self._plan(program, popts, record)
        record.invalidated = count_changed(self._last_keys, keys)
        self._last_keys = keys

        with self.stats.timer(record, "codegen"):
            obj = self._codegen_module(program, plan, keys, record)
        with self.stats.timer(record, "link"):
            exe = link_executable([obj], entry=options.entry)
        record.functions = len(program.functions)
        record.total_seconds = sum(
            s.seconds for s in record.stages.values()
        )
        return CompiledProgram(
            executable=exe, ir=program, plan=plan, options=options
        )

    def compile_module(
        self, source: Source, options: Optional[CompilerOptions] = None
    ) -> CompiledModule:
        """Separate compilation of one unit: every procedure open."""
        options = self.options if options is None else validate_options(options)
        record = self.stats.begin("module")
        ((name, text),) = normalize_sources([source])
        with self.stats.timer(record, "frontend"):
            module = self._frontend.lower_source(
                name, text, options.optimize_ir
            )
            self._drain_frontend_counters(record)
        popts = _plan_options(options.with_(externally_visible=True))
        with self.stats.timer(record, "plan"):
            plan, keys = self._plan(module, popts, record)
        with self.stats.timer(record, "codegen"):
            obj = self._codegen_module(module, plan, keys, record)
        record.functions = len(module.functions)
        record.total_seconds = sum(
            s.seconds for s in record.stages.values()
        )
        return CompiledModule(object_code=obj, ir=module, plan=plan)

    # -- internals ----------------------------------------------------------

    def _drain_frontend_counters(self, record: CompileRecord) -> None:
        fe = self._frontend
        stage = record.stages["frontend"]
        stage.hits += fe.fn_hits
        stage.misses += fe.fn_misses
        fe.fn_hits = fe.fn_misses = 0

    def _lower_and_link(
        self,
        named: List[Tuple[str, str]],
        options: CompilerOptions,
        record: CompileRecord,
    ) -> IRModule:
        modules = [
            self._frontend.lower_source(name, text, options.optimize_ir)
            for name, text in named
        ]
        self._drain_frontend_counters(record)
        return link_ir_modules(modules)

    def _plan(
        self,
        program: IRModule,
        popts: PlanOptions,
        record: CompileRecord,
    ) -> Tuple[ProgramPlan, Dict[str, PlanKey]]:
        """Replicates ``plan_program`` with per-procedure memoisation and
        a level-parallel schedule."""
        result = ProgramPlan(module=program)
        arities = {
            name: len(fn.params) for name, fn in program.functions.items()
        }
        arities.update(program.externs)

        if popts.ipra:
            cg = build_call_graph(
                program,
                entry=popts.entry,
                externally_visible=popts.externally_visible,
            )
            result.call_graph = cg
            result.order = dfs_postorder(cg)
            levels = scc_levels(result.order, cg)
        else:
            cg = None
            result.order = list(program.functions)
            levels = [result.order] if result.order else []
        pos = {name: i for i, name in enumerate(result.order)}

        # mod/ref prepass: mirrors the sequential allocator's accumulation
        # (the modref map never depends on plans, only on IR)
        allowed_map: Dict[str, object] = {}
        if popts.ipra and popts.ipra_globals:
            modref: Dict[str, object] = {}
            for name in result.order:
                fn = program.functions[name]
                allowed_map[name] = cacheable_globals(fn, modref)
                modref[name] = subtree_global_refs(fn, modref)

        #: closed summaries published as their levels complete
        closed: Dict[str, object] = {}

        def task(name: str):
            fn = program.functions[name]
            is_open = cg.is_open(name) if cg is not None else True
            eff = effective_summaries(fn, program, cg, pos, closed)
            allowed = allowed_map.get(name)
            key = plan_key(fn, popts, arities, is_open, eff, allowed)
            plan = self._plans.get(key)
            hit = plan is not None
            if not hit:
                plan = plan_function(
                    fn, popts, eff, arities, is_open, allowed_globals=allowed
                )
                self._plans[key] = plan
            if plan.summary is not None and plan.summary.closed:
                closed[name] = plan.summary
            return key, plan, hit

        outcomes = run_levels(levels, task, self.max_workers)

        keys: Dict[str, PlanKey] = {}
        stage = record.stages["plan"]
        for name in result.order:
            key, plan, hit = outcomes[name]
            keys[name] = key
            result.plans[name] = plan
            if plan.summary is not None:
                result.summaries[name] = plan.summary
            if hit:
                stage.hits += 1
            else:
                stage.misses += 1
        return result, keys

    def _codegen_module(
        self,
        program: IRModule,
        plan: ProgramPlan,
        keys: Dict[str, PlanKey],
        record: CompileRecord,
    ) -> ObjectCode:
        arrays_fp = tuple(sorted(program.arrays.items()))
        obj = ObjectCode(
            globals=dict(program.globals), arrays=dict(program.arrays)
        )
        stage = record.stages["codegen"]
        for name in program.functions:
            ckey = (keys[name], arrays_fp)
            cached = self._codegen.get(ckey)
            if cached is not None:
                stage.hits += 1
                asm, preserved = cached
            else:
                stage.misses += 1
                fnplan = plan.plans[name]
                asm = generate_function(fnplan, program.arrays)
                preserved = _preserved_mask(fnplan)
                self._codegen[ckey] = (asm, preserved)
            obj.functions[name] = asm
            obj.preserved_masks[name] = preserved
        return obj
