"""The incremental compilation engine.

:class:`Engine` produces the same artifacts as the one-shot driver --
``CompiledProgram`` / ``CompiledModule`` objects, bit-identical
executables -- but memoises every per-procedure stage across compiles of
one session:

===========  =============================================  ============
stage        cache key                                      cached value
===========  =============================================  ============
front end    (symbol table hash, chunk text hash, opt?)     IRFunction
plan         :func:`~repro.engine.invalidation.plan_key`    FnPlan
codegen      (plan key, program array symbols)              AsmFunction
===========  =============================================  ============

Nothing is ever marked stale; a compile recomputes the (cheap) keys and
misses exactly where an input changed.  Editing one procedure's body
re-plans that procedure plus the ancestors whose view of a callee
summary changed -- usually just the chain to the root, and nothing at
all when the edit leaves the summary signature intact.  Flipping a plan
option (say ``shrink_wrap``) changes every plan key but no front-end
key, so parsing and lowering are fully reused.

Planning runs level-by-level over the call graph's SCC condensation
(:mod:`repro.engine.scheduler`); the plan-key model makes each level's
procedures independent, so the levels may run on a thread pool without
affecting output.  :meth:`Engine.compile_batch` exploits the same
property across *programs*: the levels of several independent requests
are merged depth-by-depth onto one schedule, so procedures from
different requests plan concurrently and identical procedures
deduplicate through the shared caches.

The plan and codegen caches are :class:`GuardedCache` instances: every
entry carries a content checksum recomputed on lookup, so a corrupted
entry (bit rot, or an injected ``corrupt`` fault) is detected,
invalidated and recomputed instead of silently miscompiling.

With ``store_path=...`` the engine adds a second, *persistent* level
below the in-memory caches: a sharded content-addressed
:class:`~repro.store.ArtifactStore` shared across sessions and
processes.  Lookups fall through memory to disk and write through on a
miss, so a brand-new process warm-starts from another process's work.
A plan restored from disk is a :class:`~repro.store.StoredPlan` stub --
the full ``FnPlan`` cannot cross processes -- and is only ever accepted
together with its matching codegen artifact; if that pairing breaks
mid-session (eviction, corruption), the compile restarts with the
affected procedure pinned to a full from-scratch plan
(:class:`_ReplanWithoutStore`), which keeps every store failure mode
invisible in the output.

A **resilient** engine (``Engine(..., resilient=True)``) additionally
wraps per-procedure planning and codegen in a fault boundary: a failure
demotes that procedure to the *open* classification -- Chow's own
safety valve for procedures that cannot be fully analysed -- and
recompiles it with the default linkage convention down the ladder in
:mod:`repro.engine.resilience`.  Callers then see the callee-saved
barrier summary of an open procedure, so the program stays sound,
merely conservative, and the session stays usable; each demotion is
recorded in the compile's :class:`CompileReport`.  The fault-free path
is bit-identical to a non-resilient compile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from dataclasses import replace as _options_replace
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro import faults
from repro.engine.frontend import FrontendCache
from repro.engine.invalidation import (
    PlanKey,
    count_changed,
    effective_summaries,
    plan_key,
)
from repro.engine.resilience import (
    CompileReport,
    GuardedCache,
    ResiliencePolicy,
)
from repro.engine.scheduler import default_workers, run_levels, scc_levels
from repro.engine.stats import CompileRecord, EngineStats
from repro.frontend.errors import OptionsError
from repro.interproc.allocator import (
    FnPlan,
    PlanOptions,
    ProgramPlan,
    plan_function,
)
from repro.interproc.callgraph import build_call_graph, dfs_postorder
from repro.interproc.modref import cacheable_globals, subtree_global_refs
from repro.ir.function import IRModule
from repro.pipeline.driver import (
    CompiledModule,
    CompiledProgram,
    Source,
    _plan_options,
    _preserved_mask,
)
from repro.pipeline.linker import ObjectCode, link_executable, link_ir_modules
from repro.pipeline.options import CompilerOptions, O2, validate_options
from repro.store.artifacts import StoredPlan
from repro.store.store import NS_CODEGEN, NS_PLAN, open_store
from repro.target.codegen import generate_function
from repro.target.isa import AsmFunction

#: first element of the plan key of a demoted procedure; demoted keys are
#: never stored in the clean caches, only used to re-key dependants
_DEMOTED = "__demoted__"


def normalize_sources(
    sources: Union[Source, Sequence[Source]]
) -> List[Tuple[str, str]]:
    """(name, text) pairs with the driver's historical naming scheme."""
    if isinstance(sources, (str, tuple)):
        sources = [sources]
    named: List[Tuple[str, str]] = []
    for i, src in enumerate(sources):
        if isinstance(src, tuple):
            named.append(src)
        else:
            named.append((f"module{i}" if i else "main", src))
    return named


# -- cache content checksums -------------------------------------------------

def _plan_fingerprint(plan: FnPlan) -> Tuple:
    """Cheap content checksum over the fields downstream stages consume."""
    s = plan.summary
    return (
        plan.name,
        plan.mode,
        plan.saved_mask,
        tuple(sorted(plan.wrapped)),
        tuple(r.index for r in plan.entry_exit_saves),
        tuple(
            (p.pos, None if p.reg is None else p.reg.index, p.dead)
            for p in plan.incoming_params
        ),
        None if s is None else (s.closed, s.used_mask, s.saved_locally_mask),
    )


def _codegen_fingerprint(entry: Tuple[AsmFunction, int]) -> Tuple:
    asm, preserved = entry
    instrs = asm.instrs
    return (
        asm.name,
        len(instrs),
        preserved,
        instrs[0].render() if instrs else None,
        instrs[-1].render() if instrs else None,
    )


# -- the open-demotion ladder ------------------------------------------------
#
# The ladder's rung order is convention data (``Convention.ladder``), so
# an autotuner candidate may reorder it; rung ``k`` (1-based) applies the
# strategy named by ``ladder[k - 1]``.

def _demoted_options(popts: PlanOptions, level: int) -> PlanOptions:
    """Plan options for demotion rung ``level`` of the convention's
    ladder (see resilience module for the tag semantics)."""
    tag = popts.convention.ladder[level - 1]
    if tag == "open":
        return popts
    if tag == "open-noshrinkwrap":
        return _options_replace(popts, shrink_wrap=False)
    # "open-noregalloc": the reference rung -- no allocation at all
    return _options_replace(
        popts,
        shrink_wrap=False,
        convention=popts.convention.with_allocatable(()),
    )


def _plan_demoted(fn, popts, eff, arities, level: int) -> FnPlan:
    """Plan ``fn`` as an open procedure at demotion rung ``level``.

    ``eff`` keeps the true summaries of closed callees in view: even a
    demoted procedure must act as a save barrier for the callee-saved
    registers its closed subtree clobbers -- the demotion is
    conservative, never unsound.
    """
    return plan_function(
        fn, _demoted_options(popts, level), eff, arities, is_open=True
    )


def _first_rung(ladder: Sequence[str], was_closed: bool) -> int:
    """A plain ``open`` rung (replan as open, same options) only helps
    procedures that were closed; anything already open (or intra) skips
    past the leading ``open`` rungs."""
    if was_closed:
        return 1
    for i, tag in enumerate(ladder):
        if tag != "open":
            return i + 1
    return len(ladder)


class BatchCancelled(RuntimeError):
    """A :meth:`Engine.compile_batch` request was cooperatively cancelled
    before its work started (every waiter abandoned it).  Placed in the
    request's result slot; never raised out of the batch call."""

    def __init__(self, message: str = "compile request cancelled"):
        super().__init__(message)


class _DemoteAtCodegen(Exception):
    """Internal: codegen failed for a procedure; replan it demoted."""

    def __init__(self, name: str, level: int):
        self.name = name
        self.level = level
        super().__init__(f"demote {name} to rung {level}")


class _ReplanWithoutStore(Exception):
    """Internal: a store-restored plan stub lost its paired codegen
    artifact (evicted or corrupted mid-session); replan the procedure
    from scratch, bypassing the store for it this compile."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"replan {name} without the artifact store")


@dataclass
class _PlanContext:
    """Everything one planning pass needs, bundled so the per-procedure
    task is reusable by both :meth:`Engine._plan` and the merged-level
    schedule of :meth:`Engine.compile_batch`."""

    program: IRModule
    popts: PlanOptions
    record: CompileRecord
    report: Optional[CompileReport]
    forced: Dict[str, int]
    no_store: Set[str]
    result: ProgramPlan
    arities: Dict[str, int]
    cg: Optional[object]
    pos: Dict[str, int]
    levels: List[List[str]]
    allowed_map: Dict[str, object]
    arrays_fp: Tuple
    #: closed summaries published as their levels complete
    closed: Dict[str, object] = field(default_factory=dict)
    #: procedures demoted this pass (forced, or by the fault boundary)
    demoted: Dict[str, int] = field(default_factory=dict)


class Engine:
    """Summary-keyed incremental compiler, one instance per session.

    ``resilient=True`` arms the per-procedure fault boundary (failures
    demote to the open convention instead of aborting the session) and
    the worker watchdogs configured by ``policy``.  ``store_path``
    attaches a persistent cross-process artifact store (a path, or an
    already-open :class:`~repro.store.ArtifactStore` to share one store
    handle between engines).
    """

    def __init__(
        self,
        options: CompilerOptions = O2,
        max_workers: Optional[int] = None,
        resilient: bool = False,
        policy: Optional[ResiliencePolicy] = None,
        store_path=None,
    ):
        self.options = validate_options(options)
        self.max_workers = (
            default_workers() if max_workers is None else max_workers
        )
        self.resilient = bool(resilient)
        self.policy = (
            policy if policy is not None
            else (ResiliencePolicy() if resilient else None)
        )
        self.store = open_store(store_path)
        self.stats = EngineStats()
        self._frontend = FrontendCache(store=self.store)
        self._plans: GuardedCache = GuardedCache(_plan_fingerprint)
        self._codegen: GuardedCache = GuardedCache(_codegen_fingerprint)
        self._last_keys: Optional[Dict[str, PlanKey]] = None
        self._corruptions_reported = 0
        self._store_seen = (0, 0, 0.0)

    # -- public API ---------------------------------------------------------

    def compile(
        self,
        sources: Union[Source, Sequence[Source]],
        options: Optional[CompilerOptions] = None,
    ) -> CompiledProgram:
        """Whole-program compile, reusing everything an edit left alone."""
        options = self.options if options is None else validate_options(options)
        record = self.stats.begin("program")
        report = CompileReport() if self.resilient else None
        with self.stats.timer(record, "frontend"):
            program = self._lower_and_link(
                normalize_sources(sources), options, record
            )
        if options.entry not in program.functions:
            raise OptionsError(
                f"entry point {options.entry!r} is not defined by the "
                "given sources"
            )

        popts = _plan_options(options)
        plan, keys, obj = self._plan_and_codegen(
            program, popts, record, report
        )
        record.invalidated = count_changed(self._last_keys, keys)
        self._last_keys = keys

        with self.stats.timer(record, "link"):
            exe = link_executable([obj], entry=options.entry)
        if self.store is not None:
            # tier-3 JIT translations of this image round-trip here
            exe._artifact_store = self.store
        record.functions = len(program.functions)
        self._finish_record(record, report)
        return CompiledProgram(
            executable=exe, ir=program, plan=plan, options=options,
            report=report, engine_stats=self.stats,
        )

    def compile_module(
        self, source: Source, options: Optional[CompilerOptions] = None
    ) -> CompiledModule:
        """Separate compilation of one unit: every procedure open."""
        options = self.options if options is None else validate_options(options)
        record = self.stats.begin("module")
        report = CompileReport() if self.resilient else None
        ((name, text),) = normalize_sources([source])
        with self.stats.timer(record, "frontend"):
            module = self._frontend.lower_source(
                name, text, options.optimize_ir
            )
            self._drain_frontend_counters(record)
        popts = _plan_options(options.with_(externally_visible=True))
        plan, keys, obj = self._plan_and_codegen(
            module, popts, record, report
        )
        record.functions = len(module.functions)
        self._finish_record(record, report)
        return CompiledModule(object_code=obj, ir=module, plan=plan)

    def compile_batch(
        self,
        requests: Sequence[Union[Source, Sequence[Source]]],
        options: Optional[CompilerOptions] = None,
        should_cancel=None,
    ) -> List[Union[CompiledProgram, Exception]]:
        """Compile many independent programs through one merged schedule.

        Level *k* of the merged schedule is the union of level *k* of
        every request's SCC condensation, so independent procedures from
        different requests plan concurrently and identical procedures
        (near-duplicate requests, shared library code) deduplicate
        through the session caches.  Failures are per-request: slot *i*
        of the returned list is either the built program or the
        exception that request raised.

        ``should_cancel`` arms cooperative cancellation: a zero-argument
        callable polled at request boundaries (before each sequential
        compile, before the merged planning pass, before each request's
        codegen).  Once it returns true, every not-yet-finished request
        gets a :class:`BatchCancelled` in its result slot instead of
        being compiled -- the engine never abandons work mid-procedure,
        so caches stay coherent, it just stops starting new work.  The
        :class:`~repro.service.CompileService` uses this to stop burning
        planner time on a batch whose waiters have all hit their
        deadlines.

        The merged path covers the common case; a resilient engine (or
        a merged pass tripped by an injected fault or a broken store
        pairing) falls back to compiling the affected requests
        individually through :meth:`compile`, which preserves the exact
        per-program restart semantics.
        """
        options = self.options if options is None else validate_options(options)
        cancelled = (
            (lambda: False) if should_cancel is None else should_cancel
        )
        results: List[Union[CompiledProgram, Exception]] = \
            [None] * len(requests)  # type: ignore[list-item]
        if self.resilient or len(requests) <= 1:
            for i, sources in enumerate(requests):
                if cancelled():
                    results[i] = BatchCancelled()
                    continue
                try:
                    results[i] = self.compile(sources, options)
                except Exception as exc:
                    results[i] = exc
            return results

        popts = _plan_options(options)
        prepared: List[List] = []  # [slot index, record, program, ctx]
        for i, sources in enumerate(requests):
            record = CompileRecord(kind="program")
            try:
                with self.stats.timer(record, "frontend"):
                    program = self._lower_and_link(
                        normalize_sources(sources), options, record
                    )
                if options.entry not in program.functions:
                    raise OptionsError(
                        f"entry point {options.entry!r} is not defined by "
                        "the given sources"
                    )
            except Exception as exc:
                results[i] = exc
                continue
            prepared.append([i, record, program, None])

        try:
            if cancelled():
                for slot in prepared:
                    results[slot[0]] = BatchCancelled()
                return results
            t0 = time.perf_counter()
            for slot in prepared:
                slot[3] = self._plan_context(
                    slot[2], popts, slot[1], None, None, None
                )
            merged: List[List[Tuple[int, str]]] = []
            depth = max((len(s[3].levels) for s in prepared), default=0)
            for d in range(depth):
                level: List[Tuple[int, str]] = []
                for slot in prepared:
                    if d < len(slot[3].levels):
                        level.extend(
                            (slot[0], name) for name in slot[3].levels[d]
                        )
                if level:
                    merged.append(level)
            by_slot = {slot[0]: slot for slot in prepared}
            outcomes = run_levels(
                merged,
                lambda key: self._plan_one(by_slot[key[0]][3], key[1]),
                self.max_workers,
            )
            plan_seconds = time.perf_counter() - t0

            for slot in prepared:
                i, record, program, ctx = slot
                if cancelled():
                    results[i] = BatchCancelled()
                    continue
                record.stages["plan"].seconds += (
                    plan_seconds / len(prepared)
                )
                own = {
                    name: outcomes[(i, name)] for name in ctx.result.order
                }
                plan, keys = self._assemble(ctx, own)
                record.invalidated = count_changed(self._last_keys, keys)
                self._last_keys = keys
                with self.stats.timer(record, "codegen"):
                    obj = self._codegen_module(
                        program, plan, keys, record, None
                    )
                with self.stats.timer(record, "link"):
                    exe = link_executable([obj], entry=options.entry)
                if self.store is not None:
                    exe._artifact_store = self.store
                record.functions = len(program.functions)
                self.stats.records.append(record)
                self._finish_record(record, None)
                results[i] = CompiledProgram(
                    executable=exe, ir=program, plan=plan, options=options,
                    engine_stats=self.stats,
                )
        except Exception:
            # the merged pass tripped (injected fault, store pairing
            # break, a planner bug in one request): finish the remaining
            # requests one at a time with full restart semantics
            for slot in prepared:
                if results[slot[0]] is None:
                    if cancelled():
                        results[slot[0]] = BatchCancelled()
                        continue
                    try:
                        results[slot[0]] = self.compile(
                            requests[slot[0]], options
                        )
                    except Exception as exc:
                        results[slot[0]] = exc
        return results

    # -- internals ----------------------------------------------------------

    def _finish_record(
        self, record: CompileRecord, report: Optional[CompileReport]
    ) -> None:
        total = self._plans.corruptions + self._codegen.corruptions
        record.cache_corruptions = total - self._corruptions_reported
        self._corruptions_reported = total
        if self.store is not None:
            st = self.store.stats
            stage = record.stages["store"]
            hits, misses, seconds = self._store_seen
            stage.hits += st.hits - hits
            stage.misses += st.misses - misses
            stage.seconds += st.seconds - seconds
            self._store_seen = (st.hits, st.misses, st.seconds)
            record.cache_corruptions += st.corruptions
        if report is not None:
            report.cache_corruptions += record.cache_corruptions
            record.degraded = len(report.degradations)
            record.retries = report.retries
        record.total_seconds = sum(
            s.seconds for s in record.stages.values()
        )

    def _drain_frontend_counters(self, record: CompileRecord) -> None:
        fe = self._frontend
        stage = record.stages["frontend"]
        stage.hits += fe.fn_hits
        stage.misses += fe.fn_misses
        fe.fn_hits = fe.fn_misses = 0

    def _lower_and_link(
        self,
        named: List[Tuple[str, str]],
        options: CompilerOptions,
        record: CompileRecord,
    ) -> IRModule:
        modules = [
            self._frontend.lower_source(name, text, options.optimize_ir)
            for name, text in named
        ]
        self._drain_frontend_counters(record)
        return link_ir_modules(modules)

    def _plan_and_codegen(
        self,
        program: IRModule,
        popts: PlanOptions,
        record: CompileRecord,
        report: Optional[CompileReport],
    ) -> Tuple[ProgramPlan, Dict[str, PlanKey], ObjectCode]:
        """Plan then codegen, restarting planning when a resilient
        codegen failure requires a procedure to change convention (its
        callers must re-plan against the open summary) or a
        store-restored plan stub loses its paired codegen artifact.

        Each restart either escalates one procedure's demotion rung or
        permanently pins one procedure to a from-scratch plan, so the
        loop terminates after at most ``functions * (rungs + 1)``
        restarts.
        """
        forced: Dict[str, int] = {}
        no_store: Set[str] = set()
        rungs = len(popts.convention.ladder)
        bound = (rungs + 1) * len(program.functions) + 2
        for _ in range(bound):
            with self.stats.timer(record, "plan"):
                plan, keys = self._plan(
                    program, popts, record, report, forced, no_store
                )
            try:
                with self.stats.timer(record, "codegen"):
                    obj = self._codegen_module(
                        program, plan, keys, record, report, no_store
                    )
            except _ReplanWithoutStore as replan:
                self._plans.drop(keys[replan.name])
                no_store.add(replan.name)
                continue
            except _DemoteAtCodegen as demote:
                # plan-stage demotions stick across the restart so the
                # report and the artifact stay consistent
                for name, key in keys.items():
                    if key[0] is _DEMOTED:
                        forced.setdefault(name, key[2])
                forced[demote.name] = demote.level
                continue
            return plan, keys, obj
        raise RuntimeError(
            "resilient compile failed to stabilise demotions"
        )  # pragma: no cover - loop bound is a safety net

    def _plan_context(
        self,
        program: IRModule,
        popts: PlanOptions,
        record: CompileRecord,
        report: Optional[CompileReport],
        forced: Optional[Dict[str, int]],
        no_store: Optional[Set[str]],
    ) -> _PlanContext:
        """Replicates ``plan_program``'s setup: call graph, postorder,
        level schedule, and the mod/ref prepass."""
        forced = dict(forced) if forced else {}
        result = ProgramPlan(module=program)
        arities = {
            name: len(fn.params) for name, fn in program.functions.items()
        }
        arities.update(program.externs)

        if popts.ipra:
            cg = build_call_graph(
                program,
                entry=popts.entry,
                externally_visible=popts.externally_visible,
            )
            result.call_graph = cg
            result.order = dfs_postorder(cg)
            levels = scc_levels(result.order, cg)
        else:
            cg = None
            result.order = list(program.functions)
            levels = [result.order] if result.order else []
        pos = {name: i for i, name in enumerate(result.order)}

        # mod/ref prepass: mirrors the sequential allocator's accumulation
        # (the modref map never depends on plans, only on IR)
        allowed_map: Dict[str, object] = {}
        if popts.ipra and popts.ipra_globals:
            modref: Dict[str, object] = {}
            for name in result.order:
                fn = program.functions[name]
                allowed_map[name] = cacheable_globals(fn, modref)
                modref[name] = subtree_global_refs(fn, modref)

        return _PlanContext(
            program=program,
            popts=popts,
            record=record,
            report=report,
            forced=forced,
            no_store=set(no_store) if no_store else set(),
            result=result,
            arities=arities,
            cg=cg,
            pos=pos,
            levels=levels,
            allowed_map=allowed_map,
            arrays_fp=tuple(sorted(program.arrays.items())),
            demoted=dict(forced),
        )

    def _plan_one(self, ctx: _PlanContext, name: str):
        """Plan one procedure: memory cache, then the persistent store,
        then :func:`plan_function` (with the resilient demotion ladder
        around it)."""
        fn = ctx.program.functions[name]
        is_open = ctx.cg.is_open(name) if ctx.cg is not None else True
        eff = effective_summaries(
            fn, ctx.program, ctx.cg, ctx.pos, ctx.closed,
            demoted=ctx.demoted, convention=ctx.popts.convention,
        )
        level = ctx.forced.get(name)
        if level is not None:
            plan = _plan_demoted(fn, ctx.popts, eff, ctx.arities, level)
            return (_DEMOTED, name, level), plan, False
        allowed = ctx.allowed_map.get(name)
        key = plan_key(fn, ctx.popts, ctx.arities, is_open, eff, allowed)
        if faults.corrupts(faults.SITE_CACHE_PLAN, name):
            self._plans.corrupt(key)
        plan = self._plans.get(key)
        hit = plan is not None
        if not hit and self.store is not None and name not in ctx.no_store:
            plan = self._plan_from_store(key, ctx.arrays_fp)
            hit = plan is not None
        if not hit:
            try:
                faults.check(faults.SITE_PLAN, name)
                plan = plan_function(
                    fn, ctx.popts, eff, ctx.arities, is_open,
                    allowed_globals=allowed,
                )
            except Exception as exc:
                if ctx.report is None:
                    raise
                plan, level = self._demote(
                    fn, ctx.popts, eff, ctx.arities, is_open, exc,
                    ctx.report,
                )
                ctx.demoted[name] = level
                return (_DEMOTED, name, level), plan, False
            self._plans.put(key, plan)
            if self.store is not None and name not in ctx.no_store:
                self.store.put(NS_PLAN, key, StoredPlan.from_plan(plan))
        if plan.summary is not None and plan.summary.closed:
            ctx.closed[name] = plan.summary
        return key, plan, hit

    def _plan_from_store(self, key: PlanKey, arrays_fp: Tuple):
        """Restore a plan stub from disk -- only together with its
        matching codegen artifact, which is verified and promoted into
        the in-memory codegen cache in the same step (no
        time-of-check/time-of-use window)."""
        stub = self.store.get(NS_PLAN, key)
        if not isinstance(stub, StoredPlan):
            return None
        ckey = (key, arrays_fp)
        if self._codegen.get(ckey) is None:
            entry = self.store.get(NS_CODEGEN, ckey)
            if not (isinstance(entry, tuple) and len(entry) == 2):
                return None
            self._codegen.put(ckey, entry)
        self._plans.put(key, stub)
        return stub

    def _plan(
        self,
        program: IRModule,
        popts: PlanOptions,
        record: CompileRecord,
        report: Optional[CompileReport] = None,
        forced: Optional[Dict[str, int]] = None,
        no_store: Optional[Set[str]] = None,
    ) -> Tuple[ProgramPlan, Dict[str, PlanKey]]:
        """Replicates ``plan_program`` with per-procedure memoisation and
        a level-parallel schedule.

        ``forced`` maps procedure name -> demotion rung for procedures
        that must be planned open regardless of faults (codegen-stage
        demotions being replanned); ``no_store`` names procedures pinned
        to from-scratch plans after a store pairing break.
        """
        ctx = self._plan_context(
            program, popts, record, report, forced, no_store
        )

        def on_retry(name: str) -> None:
            if ctx.report is not None:
                ctx.report.retries += 1

        outcomes = run_levels(
            ctx.levels,
            lambda name: self._plan_one(ctx, name),
            self.max_workers,
            policy=self.policy if self.resilient else None,
            on_retry=on_retry,
        )
        return self._assemble(ctx, outcomes)

    def _assemble(
        self, ctx: _PlanContext, outcomes: Dict[str, Tuple]
    ) -> Tuple[ProgramPlan, Dict[str, PlanKey]]:
        keys: Dict[str, PlanKey] = {}
        stage = ctx.record.stages["plan"]
        for name in ctx.result.order:
            key, plan, hit = outcomes[name]
            keys[name] = key
            ctx.result.plans[name] = plan
            if plan.summary is not None:
                ctx.result.summaries[name] = plan.summary
            if hit:
                stage.hits += 1
            else:
                stage.misses += 1
        return ctx.result, keys

    def _demote(
        self, fn, popts, eff, arities, is_open, exc, report
    ) -> Tuple[FnPlan, int]:
        """Walk the demotion ladder after a planning failure; returns the
        first plan that compiles, or re-raises the original error when
        even the reference convention cannot be planned."""
        ladder = popts.convention.ladder
        was_closed = popts.ipra and not is_open
        for level in range(_first_rung(ladder, was_closed), len(ladder) + 1):
            try:
                plan = _plan_demoted(fn, popts, eff, arities, level)
            except Exception:
                continue
            report.record(fn.name, "plan", exc, ladder[level - 1])
            return plan, level
        raise exc

    def _codegen_module(
        self,
        program: IRModule,
        plan: ProgramPlan,
        keys: Dict[str, PlanKey],
        record: CompileRecord,
        report: Optional[CompileReport] = None,
        no_store: Optional[Set[str]] = None,
    ) -> ObjectCode:
        arrays_fp = tuple(sorted(program.arrays.items()))
        no_store = no_store or set()
        obj = ObjectCode(
            globals=dict(program.globals), arrays=dict(program.arrays)
        )
        stage = record.stages["codegen"]
        for name in program.functions:
            fnplan = plan.plans[name]
            key = keys[name]
            demoted_level = key[2] if key[0] is _DEMOTED else 0
            if demoted_level:
                # demoted artifacts are never cached: a transient fault
                # must not poison the session caches
                stage.misses += 1
                cached = None
            else:
                ckey = (key, arrays_fp)
                if faults.corrupts(faults.SITE_CACHE_CODEGEN, name):
                    self._codegen.corrupt(ckey)
                cached = self._codegen.get(ckey)
                if cached is None and self.store is not None \
                        and name not in no_store:
                    entry = self.store.get(NS_CODEGEN, ckey)
                    if isinstance(entry, tuple) and len(entry) == 2:
                        self._codegen.put(ckey, entry)
                        cached = entry
            if cached is not None:
                stage.hits += 1
                asm, preserved = cached
            else:
                if not demoted_level:
                    stage.misses += 1
                if isinstance(fnplan, StoredPlan):
                    # the stub's paired artifact is gone from both cache
                    # levels: only a from-scratch plan can regenerate it
                    raise _ReplanWithoutStore(name)
                try:
                    faults.check(faults.SITE_CODEGEN, name)
                    asm = generate_function(fnplan, program.arrays)
                except Exception as exc:
                    if report is None:
                        raise
                    ladder = fnplan.convention.ladder
                    next_level = max(
                        demoted_level + 1,
                        _first_rung(ladder, fnplan.mode == "closed"),
                    ) if not demoted_level else demoted_level + 1
                    if next_level > len(ladder):
                        raise
                    report.record(
                        name, "codegen", exc, ladder[next_level - 1]
                    )
                    raise _DemoteAtCodegen(name, next_level) from exc
                preserved = _preserved_mask(fnplan)
                if not demoted_level:
                    self._codegen.put(ckey, (asm, preserved))
                    if self.store is not None and name not in no_store:
                        self.store.put(NS_CODEGEN, ckey, (asm, preserved))
            obj.functions[name] = asm
            obj.preserved_masks[name] = preserved
        return obj
