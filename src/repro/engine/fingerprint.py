"""Stable content fingerprints for the incremental engine.

Every cache in :mod:`repro.engine` is keyed by *content*, never by object
identity or wall-clock state, so a warm cache can only ever return what a
cold compile would have produced:

* source text keys the front-end caches (plain SHA-256 of the text);
* an :class:`~repro.ir.function.IRFunction` is fingerprinted from a full
  structural walk of its blocks and instructions (the cosmetic printer is
  not used: ``repr(VReg)`` drops the kind, which must distinguish a local
  ``x`` from a global ``x``);
* a :class:`~repro.interproc.summaries.ProcSummary` reduces to a flat
  signature tuple -- the paper's "one word of storage" plus parameter
  homes -- which is exactly the information a caller's plan consumed;
* :class:`~repro.interproc.allocator.PlanOptions` reduce to the fields
  that can change an allocation, led by the convention's full functional
  key (*ordered* allocatable contents, save-class masks, argument-register
  count, demotion ladder) so two conventions never collide in any cache.

Fingerprints of IR functions are memoised on the function object itself;
cached functions are immutable once published, so the memo is safe.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields
from typing import Dict, List, Optional, Tuple

from repro.interproc.allocator import PlanOptions
from repro.interproc.summaries import ProcSummary
from repro.ir.function import IRFunction
from repro.ir.values import Const, VReg

_FP_ATTR = "_engine_fingerprint"


def text_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _encode_value(v, out: List[str]) -> None:
    if isinstance(v, VReg):
        out.append(f"V{v.kind.name}\x01{v.name}\x01{v.index}")
    elif isinstance(v, Const):
        out.append(f"C{v.value}")
    elif v is None:
        out.append("~")
    elif isinstance(v, (list, tuple)):
        out.append("[")
        for item in v:
            _encode_value(item, out)
        out.append("]")
    elif isinstance(v, (str, int, bool)):
        out.append(repr(v))
    else:  # pragma: no cover - future IR extensions must be encodable
        raise TypeError(f"unencodable IR operand {v!r}")


def _encode_instr(ins, out: List[str]) -> None:
    out.append(type(ins).__name__)
    for f in fields(ins):
        _encode_value(getattr(ins, f.name), out)


def function_fingerprint(fn: IRFunction) -> str:
    """Content hash of one IR procedure (memoised on the object)."""
    cached = getattr(fn, _FP_ATTR, None)
    if cached is not None:
        return cached
    out: List[str] = [fn.name, repr(fn.params)]
    for name, size in sorted(fn.local_arrays.items()):
        out.append(f"A{name}\x01{size}")
    for block in fn.blocks:
        out.append(f"B{block.name}")
        for ins in block.instrs:
            _encode_instr(ins, out)
        if block.terminator is not None:
            _encode_instr(block.terminator, out)
    digest = hashlib.sha256("\x00".join(out).encode("utf-8")).hexdigest()
    setattr(fn, _FP_ATTR, digest)
    return digest


def summary_signature(summary: ProcSummary) -> Tuple:
    """Everything of a callee's summary that a caller's plan consumed."""
    return (
        summary.closed,
        summary.used_mask,
        summary.own_assigned_mask,
        summary.saved_locally_mask,
        tuple(
            (p.pos, p.reg.index if p.reg is not None else -1, p.dead)
            for p in summary.params
        ),
    )


def plan_options_fingerprint(options: PlanOptions) -> Tuple:
    """The :class:`PlanOptions` fields that can change an allocation.

    ``entry`` and ``externally_visible`` act only through the open/closed
    classification, which plan keys carry separately; ``block_weights``
    is folded in per function by :func:`weights_fingerprint`.
    """
    return (
        options.convention.key(),
        options.ipra,
        options.shrink_wrap,
        options.combine,
        options.prefer_subtree_reg,
        options.smear_loops,
        options.ipra_globals,
    )


def weights_fingerprint(
    block_weights: Optional[Dict[str, Dict[str, int]]], fname: str
) -> Optional[Tuple]:
    if block_weights is None:
        return None
    weights = block_weights.get(fname)
    if weights is None:
        return None
    return tuple(sorted(weights.items()))


def options_fingerprint(options) -> str:
    """Stable digest of a :class:`~repro.pipeline.options.CompilerOptions`.

    Covers every field, including the ones plan keys carry separately
    (``entry``, ``externally_visible``): this digest keys whole *requests*
    (service single-flight, warm-start identity checks), where any field
    difference must be a different request.
    """
    weights = options.block_weights
    parts = [
        str(options.opt_level),
        str(options.shrink_wrap),
        repr(options.convention.key()),
        str(options.combine),
        str(options.prefer_subtree_reg),
        str(options.smear_loops),
        str(options.externally_visible),
        options.entry,
        "~" if weights is None else repr(
            sorted((f, tuple(sorted(w.items()))) for f, w in weights.items())
        ),
        str(options.ipra_globals),
    ]
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()


def request_fingerprint(named_sources, options) -> str:
    """Digest of one compile request: (name, text) pairs plus options.

    This is the single-flight key of :class:`repro.service.CompileService`
    -- two requests with the same fingerprint produce bit-identical
    executables, so one compile may serve both.
    """
    parts = [options_fingerprint(options)]
    for name, text in named_sources:
        parts.append(name)
        parts.append(text_digest(text))
    return hashlib.sha256("\x00".join(parts).encode("utf-8")).hexdigest()
