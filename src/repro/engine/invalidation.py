"""Plan keys: what exactly one procedure's allocation depends on.

There is no invalidation walk in the engine -- a cache entry is never
marked stale.  Instead each compile recomputes every procedure's *plan
key*, the complete tuple of inputs :func:`plan_function` consumes, and
looks it up; an edit anywhere that cannot change a procedure's
allocation produces the same key and hits.  The "invalidation cascade"
reported by :class:`~repro.engine.stats.EngineStats` is simply the
number of procedures whose key differs from the previous compile: the
edited procedures plus every ancestor whose view of a callee summary
changed.

The key reproduces the sequential allocator's visibility rule.  In
:func:`~repro.interproc.allocator.plan_program`, the summary of callee
``c`` is visible while planning ``f`` iff ``c`` was planned earlier --
i.e. iff ``pos[c] < pos[f]`` in the depth-first postorder.  Closed
callees always satisfy that (postorder places callees first; recursion
cycles are open), and an open procedure's published summary is exactly
``default_summary``, computable without planning it.  Encoding
``(callee, arity, signature-or-absent)`` per direct callee therefore
captures both the subtree clobber union and every call-site summary
lookup, independent of execution order -- which is what makes the
level-parallel schedule bit-identical to the sequential pass.
"""

from __future__ import annotations

from typing import Container, Dict, FrozenSet, Optional, Sequence, Set, Tuple

from repro.engine.fingerprint import (
    function_fingerprint,
    plan_options_fingerprint,
    summary_signature,
    weights_fingerprint,
)
from repro.interproc.allocator import PlanOptions
from repro.interproc.callgraph import CallGraph
from repro.interproc.summaries import ProcSummary, default_summary
from repro.ir.function import IRFunction, IRModule

PlanKey = Tuple


def effective_summaries(
    fn: IRFunction,
    module: IRModule,
    cg: Optional[CallGraph],
    pos: Dict[str, int],
    closed_summaries: Dict[str, ProcSummary],
    demoted: Optional[Container[str]] = None,
    convention=None,
) -> Dict[str, ProcSummary]:
    """The summaries ``plan_program`` would have accumulated by the time
    it reaches ``fn``, restricted to ``fn``'s direct callees (the only
    entries :func:`plan_function` ever reads).

    ``demoted`` names procedures a resilient compile has demoted to the
    open convention (see :mod:`repro.engine.resilience`): they publish
    no closed summary, so callers see the default one -- which also
    re-keys every ancestor's plan, keeping demotion out of the clean
    caches.
    """
    eff: Dict[str, ProcSummary] = {}
    if cg is None:
        return eff
    my_pos = pos[fn.name]
    for callee in set(fn.direct_callees()):
        target = module.functions.get(callee)
        if target is None or pos[callee] >= my_pos:
            continue  # extern, or not yet planned in sequential order
        if cg.is_open(callee) or (demoted is not None and callee in demoted):
            eff[callee] = default_summary(
                callee, len(target.params), convention
            )
        else:
            eff[callee] = closed_summaries[callee]
    return eff


def plan_key(
    fn: IRFunction,
    options: PlanOptions,
    arities: Dict[str, int],
    is_open: bool,
    eff: Dict[str, ProcSummary],
    allowed_globals: Optional[Set[str]],
) -> PlanKey:
    """Complete input tuple of ``plan_function`` for ``fn``."""
    callees = tuple(
        (
            callee,
            arities.get(callee, -1),
            summary_signature(eff[callee]) if callee in eff else None,
        )
        for callee in sorted(set(fn.direct_callees()))
    )
    return (
        function_fingerprint(fn),
        is_open,
        plan_options_fingerprint(options),
        weights_fingerprint(options.block_weights, fn.name),
        callees,
        None if allowed_globals is None else tuple(sorted(allowed_globals)),
    )


def count_changed(
    previous: Optional[Dict[str, PlanKey]], current: Dict[str, PlanKey]
) -> int:
    """Cascade size: procedures whose plan key is new or changed."""
    if previous is None:
        return len(current)
    return sum(1 for name, key in current.items() if previous.get(name) != key)
