"""Level-parallel planning schedule over the call graph.

The paper's one-pass allocator walks procedures bottom-up so every
closed callee is summarised before its callers.  That dependency order
is a partial order, not a total one: two procedures whose subtrees do
not overlap can be planned simultaneously.  The schedule condenses the
call graph into SCCs (recursion cycles collapse to one node) and assigns
each SCC the level ``1 + max(level of callee SCCs)``; all procedures of
one level are independent and run concurrently on a thread pool.

Planning is pure Python, so threads buy little on a GIL build -- the
schedule exists because the paper's framework permits it and because it
documents the dependency structure; ``max_workers <= 1`` runs inline.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Sequence, TypeVar

from repro.interproc.callgraph import CallGraph, _tarjan_sccs

T = TypeVar("T")


def default_workers() -> int:
    return max(1, min(8, (os.cpu_count() or 2) - 1))


def scc_levels(order: Sequence[str], cg: CallGraph) -> List[List[str]]:
    """Group ``order`` (a dfs postorder) into dependency levels.

    Returns levels bottom-up; every callee of a procedure in level *k*
    sits in a level < *k* or in the same SCC.  Procedures within one
    level keep their relative postorder position so sequential fallbacks
    and result assembly stay deterministic.
    """
    nodes = list(order)
    in_order = set(nodes)
    edges = {n: {c for c in cg.callees(n) if c in in_order} for n in nodes}
    sccs = _tarjan_sccs(nodes, edges)
    scc_of: Dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for name in scc:
            scc_of[name] = i
    level_of: Dict[int, int] = {}
    for i, scc in enumerate(sccs):        # dependencies-first emission
        lvl = 0
        for name in scc:
            for callee in edges[name]:
                j = scc_of[callee]
                if j != i:
                    lvl = max(lvl, level_of[j] + 1)
        level_of[i] = lvl
    pos = {name: k for k, name in enumerate(nodes)}
    levels: List[List[str]] = [[] for _ in range(max(level_of.values()) + 1)] \
        if level_of else []
    for i, scc in enumerate(sccs):
        levels[level_of[i]].extend(scc)
    for level in levels:
        level.sort(key=pos.__getitem__)
    return levels


def run_levels(
    levels: Sequence[Sequence[str]],
    task: Callable[[str], T],
    max_workers: int,
) -> Dict[str, T]:
    """Run ``task`` for every name, level by level, parallel within a
    level.  Exceptions propagate from the failing task."""
    results: Dict[str, T] = {}
    if max_workers <= 1:
        for level in levels:
            for name in level:
                results[name] = task(name)
        return results
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        for level in levels:
            if len(level) == 1:
                results[level[0]] = task(level[0])
                continue
            for name, result in zip(level, pool.map(task, level)):
                results[name] = result
    return results
