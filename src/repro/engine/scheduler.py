"""Level-parallel planning schedule over the call graph.

The paper's one-pass allocator walks procedures bottom-up so every
closed callee is summarised before its callers.  That dependency order
is a partial order, not a total one: two procedures whose subtrees do
not overlap can be planned simultaneously.  The schedule condenses the
call graph into SCCs (recursion cycles collapse to one node) and assigns
each SCC the level ``1 + max(level of callee SCCs)``; all procedures of
one level are independent and run concurrently on a thread pool.

Planning is pure Python, so threads buy little on a GIL build -- the
schedule exists because the paper's framework permits it and because it
documents the dependency structure; ``max_workers <= 1`` runs inline.

With a :class:`~repro.engine.resilience.ResiliencePolicy`, every pooled
task gets a watchdog: ``policy.task_timeout`` bounds how long the
caller waits on one task, and a timed-out or crashed task is re-run
*inline* in the calling thread -- the sequential fallback -- up to
``policy.max_retries`` times with a linear backoff.  A hung worker
thread cannot be killed, so on timeout the pool is abandoned at
shutdown (``wait=False``) rather than joined.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

from repro import faults
from repro.engine.resilience import ResiliencePolicy
from repro.interproc.callgraph import CallGraph, _tarjan_sccs

T = TypeVar("T")


def default_workers() -> int:
    return max(1, min(8, (os.cpu_count() or 2) - 1))


def scc_levels(order: Sequence[str], cg: CallGraph) -> List[List[str]]:
    """Group ``order`` (a dfs postorder) into dependency levels.

    Returns levels bottom-up; every callee of a procedure in level *k*
    sits in a level < *k* or in the same SCC.  Procedures within one
    level keep their relative postorder position so sequential fallbacks
    and result assembly stay deterministic.
    """
    nodes = list(order)
    in_order = set(nodes)
    edges = {n: {c for c in cg.callees(n) if c in in_order} for n in nodes}
    sccs = _tarjan_sccs(nodes, edges)
    scc_of: Dict[str, int] = {}
    for i, scc in enumerate(sccs):
        for name in scc:
            scc_of[name] = i
    level_of: Dict[int, int] = {}
    for i, scc in enumerate(sccs):        # dependencies-first emission
        lvl = 0
        for name in scc:
            for callee in edges[name]:
                j = scc_of[callee]
                if j != i:
                    lvl = max(lvl, level_of[j] + 1)
        level_of[i] = lvl
    pos = {name: k for k, name in enumerate(nodes)}
    levels: List[List[str]] = [[] for _ in range(max(level_of.values()) + 1)] \
        if level_of else []
    for i, scc in enumerate(sccs):
        levels[level_of[i]].extend(scc)
    for level in levels:
        level.sort(key=pos.__getitem__)
    return levels


def run_levels(
    levels: Sequence[Sequence[str]],
    task: Callable[[str], T],
    max_workers: int,
    policy: Optional[ResiliencePolicy] = None,
    on_retry: Optional[Callable[[str], None]] = None,
) -> Dict[str, T]:
    """Run ``task`` for every name, level by level, parallel within a
    level.

    Without a ``policy``, exceptions propagate from the failing task,
    exactly as before.  With one, a pooled task that times out or raises
    is retried inline (see the module docstring); ``on_retry(name)``
    fires once per retry attempt so the engine can count them.  The
    retry bypasses the :data:`~repro.faults.SITE_WORKER` injection site:
    the inline run *is* the fallback for a faulty worker, not another
    worker.  Exceptions surviving every retry propagate.
    """
    results: Dict[str, T] = {}

    def run_in_worker(name: str) -> T:
        faults.check(faults.SITE_WORKER, name)
        return task(name)

    def retry_inline(name: str, first_error: BaseException) -> T:
        last = first_error
        for attempt in range(1, policy.max_retries + 1):
            if on_retry is not None:
                on_retry(name)
            if policy.backoff_seconds:
                time.sleep(policy.backoff_seconds * attempt)
            try:
                return task(name)
            except Exception as exc:
                last = exc
        raise last

    if max_workers <= 1:
        for level in levels:
            for name in level:
                if policy is None:
                    results[name] = task(name)
                    continue
                try:
                    results[name] = run_in_worker(name)
                except Exception as exc:
                    results[name] = retry_inline(name, exc)
        return results

    pool = ThreadPoolExecutor(max_workers=max_workers)
    join_pool = True
    try:
        for level in levels:
            if len(level) == 1 and policy is None:
                results[level[0]] = task(level[0])
                continue
            worker = task if policy is None else run_in_worker
            futures = {name: pool.submit(worker, name) for name in level}
            timeout = None if policy is None else policy.task_timeout
            for name in level:
                try:
                    results[name] = futures[name].result(timeout=timeout)
                except FutureTimeout as exc:
                    # the thread is stuck; abandon it at shutdown and
                    # fall back to running the task here
                    join_pool = False
                    results[name] = retry_inline(name, exc)
                except Exception as exc:
                    if policy is None:
                        raise
                    results[name] = retry_inline(name, exc)
    finally:
        pool.shutdown(wait=join_pool, cancel_futures=not join_pool)
    return results
