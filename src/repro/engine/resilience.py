"""Resilience policy and per-compile fault reporting.

Chow's *open* classification is itself a graceful-degradation device:
any procedure the allocator cannot fully analyse falls back to the
default linkage convention and stays sound, merely conservative
(PAPER.md section 3).  A resilient :class:`~repro.engine.core.Engine`
extends that safety valve from "cannot analyse" to "analysis crashed":
a per-procedure fault boundary catches failures in planning or codegen
and *demotes* the procedure down an escalating ladder of ever more
conservative strategies, every rung of which presents the default
linkage (an open procedure, a callee-saved barrier) to callers:

====  =======================  ==========================================
rung  fallback tag             strategy
====  =======================  ==========================================
1     ``open``                 replan as an open procedure (closed
                               procedures only -- the failing closed-mode
                               machinery is skipped)
2     ``open-noshrinkwrap``    rung 1 with shrink-wrapping disabled
3     ``open-noregalloc``      rung 2 with an empty register file: no
                               allocation at all, every value memory-
                               resident -- the reference convention
====  =======================  ==========================================

Every rung keeps the *true* summaries of closed callees in view: a
demoted caller must still act as a save barrier for callee-saved
registers its closed subtree clobbers, otherwise the demotion would be
unsound rather than conservative.  A procedure that fails all three
rungs is genuinely uncompilable and the original error propagates.

Demoted plans are never cached: a transient fault must not poison the
session's plan or codegen caches, so the next fault-free compile of the
same key recomputes the clean artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

#: demotion ladder tags, indexed by rung (1-based)
FALLBACK_TAGS = {1: "open", 2: "open-noshrinkwrap", 3: "open-noregalloc"}
MAX_DEMOTION_LEVEL = max(FALLBACK_TAGS)


@dataclass
class DegradationRecord:
    """One procedure demoted to the open convention by a fault."""

    procedure: str
    stage: str        # 'plan' | 'codegen'
    error: str        # repr of the exception that tripped the boundary
    fallback: str     # FALLBACK_TAGS rung that finally succeeded

    def to_dict(self) -> Dict[str, str]:
        return {
            "procedure": self.procedure,
            "stage": self.stage,
            "error": self.error,
            "fallback": self.fallback,
        }


@dataclass
class CompileReport:
    """Resilience outcome of one :meth:`Engine.compile` call."""

    degradations: List[DegradationRecord] = field(default_factory=list)
    #: planner tasks re-run after a worker timeout or failure
    retries: int = 0
    #: cache entries detected corrupt, invalidated and recomputed
    cache_corruptions: int = 0
    #: JIT translations that fell back to the interpreter tier
    jit_fallbacks: int = 0

    def degraded_procedures(self) -> Set[str]:
        return {d.procedure for d in self.degradations}

    def record(
        self, procedure: str, stage: str, error: BaseException, fallback: str
    ) -> None:
        """Record one degradation, deduplicating by (procedure, stage)."""
        for d in self.degradations:
            if d.procedure == procedure and d.stage == stage:
                d.error = repr(error)
                d.fallback = fallback
                return
        self.degradations.append(
            DegradationRecord(procedure, stage, repr(error), fallback)
        )

    def to_dict(self) -> Dict:
        return {
            "degradations": [d.to_dict() for d in self.degradations],
            "retries": self.retries,
            "cache_corruptions": self.cache_corruptions,
            "jit_fallbacks": self.jit_fallbacks,
        }


@dataclass(frozen=True)
class ResiliencePolicy:
    """Watchdog knobs for the resilient engine's worker pools.

    ``task_timeout`` bounds one planner task on the thread pool (``None``
    disables the watchdog); a timed-out or failed task is retried inline
    (the sequential fallback) up to ``max_retries`` times with a linear
    ``backoff_seconds`` pause between attempts.
    """

    task_timeout: Optional[float] = 30.0
    max_retries: int = 2
    backoff_seconds: float = 0.05

    def __post_init__(self):
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive or None")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")


class GuardedCache:
    """A dict cache whose entries carry content checksums.

    ``fingerprint(value)`` must be a cheap pure function over the fields
    that matter; a lookup recomputes it and treats any mismatch (or any
    exception while fingerprinting a rotted object) as corruption: the
    entry is dropped, ``corruptions`` incremented, and the caller simply
    sees a miss -- detect, invalidate, retry.
    """

    def __init__(self, fingerprint):
        self._fingerprint = fingerprint
        self._data: Dict = {}
        self.corruptions = 0

    def get(self, key):
        entry = self._data.get(key)
        if entry is None:
            return None
        value, fp = entry
        try:
            ok = self._fingerprint(value) == fp
        except Exception:
            ok = False
        if not ok:
            del self._data[key]
            self.corruptions += 1
            return None
        return value

    def put(self, key, value) -> None:
        self._data[key] = (value, self._fingerprint(value))

    def drop(self, key) -> None:
        """Evict the entry under ``key`` (used when the engine must not
        re-hit a store-restored stub during a replan restart)."""
        self._data.pop(key, None)

    def corrupt(self, key) -> bool:
        """Fault-injection hook: bit-rot the entry under ``key``."""
        if key in self._data:
            _, fp = self._data[key]
            self._data[key] = (_ROTTED, fp)
            return True
        return False

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data


class _Rotted:
    """Sentinel standing in for a bit-rotted cache value."""

    def __repr__(self):  # pragma: no cover - debug aid
        return "<rotted cache entry>"


_ROTTED = _Rotted()
