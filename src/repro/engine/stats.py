"""Observability for the incremental engine.

Every :meth:`Engine.compile` appends one :class:`CompileRecord` carrying
per-stage wall time and cache hit/miss counts; :class:`EngineStats`
aggregates them and serialises to JSON (the speed benchmark writes the
result next to ``BENCH_speed.json``).

The *invalidation cascade* of a compile is the number of procedures whose
plan key changed since the previous compile of the session -- the edited
procedures plus every ancestor whose merged subtree summary changed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List

#: the ``store`` stage has no pipeline work of its own: its seconds are
#: time spent in on-disk artifact-store I/O and its hits/misses are
#: store-level lookups (a store hit surfaces as a hit in the stage that
#: skipped work *and* here)
STAGES = ("frontend", "plan", "codegen", "link", "store")


@dataclass
class StageStats:
    """Wall time plus cache accounting for one pipeline stage."""

    seconds: float = 0.0
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def add(self, other: "StageStats") -> None:
        self.seconds += other.seconds
        self.hits += other.hits
        self.misses += other.misses

    def to_dict(self) -> Dict[str, float]:
        return {
            "seconds": round(self.seconds, 6),
            "hits": self.hits,
            "misses": self.misses,
        }


@dataclass
class CompileRecord:
    """One :meth:`Engine.compile` / :meth:`Engine.compile_module` call."""

    kind: str = "program"            # 'program' | 'module'
    functions: int = 0
    stages: Dict[str, StageStats] = field(
        default_factory=lambda: {s: StageStats() for s in STAGES}
    )
    #: procedures whose plan key changed since the previous compile
    invalidated: int = 0
    total_seconds: float = 0.0
    #: resilience counters (see :mod:`repro.engine.resilience`)
    degraded: int = 0            # procedures demoted to the open convention
    retries: int = 0             # planner tasks re-run after worker faults
    cache_corruptions: int = 0   # cache entries detected corrupt and redone

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "functions": self.functions,
            "invalidated": self.invalidated,
            "total_seconds": round(self.total_seconds, 6),
            "degraded": self.degraded,
            "retries": self.retries,
            "cache_corruptions": self.cache_corruptions,
            "stages": {k: v.to_dict() for k, v in self.stages.items()},
        }


class _StageTimer:
    def __init__(self, stage: StageStats):
        self._stage = stage

    def __enter__(self):
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self._stage.seconds += time.perf_counter() - self._t0
        return False


@dataclass
class EngineStats:
    """Aggregated observability across a session's compiles."""

    records: List[CompileRecord] = field(default_factory=list)
    #: tier-3 JIT translation decision summaries, one per jit3 run of a
    #: program this engine compiled (see :attr:`RunStats.jit3`)
    jit3_runs: List[Dict] = field(default_factory=list)
    #: convention-autotuner search progress, one event dict per search
    #: step (start / evaluate / halve / done; see :mod:`repro.tuning`)
    tune_events: List[Dict] = field(default_factory=list)

    def begin(self, kind: str = "program") -> CompileRecord:
        record = CompileRecord(kind=kind)
        self.records.append(record)
        return record

    def record_jit3(self, info: Dict) -> None:
        """Record one tier-3 run's translation decisions."""
        self.jit3_runs.append(dict(info))

    def record_tune(self, event: Dict) -> None:
        """Record one autotuner search event."""
        self.tune_events.append(dict(event))

    def timer(self, record: CompileRecord, stage: str) -> _StageTimer:
        return _StageTimer(record.stages[stage])

    # -- aggregates ---------------------------------------------------------

    @property
    def compiles(self) -> int:
        return len(self.records)

    def stage_totals(self) -> Dict[str, StageStats]:
        totals = {s: StageStats() for s in STAGES}
        for record in self.records:
            for s in STAGES:
                totals[s].add(record.stages[s])
        return totals

    def cascade_sizes(self) -> List[int]:
        return [r.invalidated for r in self.records if r.kind == "program"]

    def fault_totals(self) -> Dict[str, int]:
        """Session-wide resilience counters (suite reports surface these
        as per-run fault totals)."""
        return {
            "degraded": sum(r.degraded for r in self.records),
            "retries": sum(r.retries for r in self.records),
            "cache_corruptions": sum(
                r.cache_corruptions for r in self.records
            ),
        }

    def to_dict(self) -> Dict:
        return {
            "compiles": self.compiles,
            "stages": {k: v.to_dict() for k, v in self.stage_totals().items()},
            "invalidation_cascades": self.cascade_sizes(),
            "faults": self.fault_totals(),
            "jit3_runs": [dict(r) for r in self.jit3_runs],
            "tune_events": [dict(e) for e in self.tune_events],
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def write_json(self, path) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
