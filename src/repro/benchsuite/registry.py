"""Benchmark registry.

Benchmarks appear in the paper's Table 1 order (increasing source size).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Benchmark:
    """One benchmark program.

    ``name``/``description`` mirror the paper's Appendix; ``language``
    records which original language the analogue stands in for.
    """

    name: str
    language: str
    description: str
    source: str


_MODULES = [
    "nim",
    "map4",
    "calcc",
    "diff",
    "dhrystone",
    "stanford",
    "pf",
    "awk",
    "tex",
    "ccom",
    "as1",
    "upas",
    "uopt",
]


def load_benchmarks() -> Dict[str, Benchmark]:
    """Import every benchmark module and return them in suite order."""
    out: Dict[str, Benchmark] = {}
    for mod_name in _MODULES:
        module = importlib.import_module(
            f"repro.benchsuite.programs.{mod_name}"
        )
        bench: Benchmark = module.BENCHMARK
        out[bench.name] = bench
    return out


def benchmark_names() -> List[str]:
    return [m if m != "map4" else "map" for m in _MODULES]
