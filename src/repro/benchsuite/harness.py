"""Measurement harness regenerating the paper's Tables 1 and 2.

All comparisons follow the paper: the baseline is -O2 with shrink-wrap
disabled, and each column reports the percentage *reduction* relative to
that baseline, in executed cycles (columns I) and in scalar loads/stores
(columns II).
"""

from __future__ import annotations

from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro import faults
from repro.benchsuite.registry import Benchmark, load_benchmarks
from repro.pipeline.driver import compile_program
from repro.pipeline.options import CompilerOptions, PAPER_CONFIGS
from repro.sim.stats import RunStats, percent_reduction
from repro.target.registers import Convention, validate_convention

TABLE1_CONFIGS = ("A", "B", "C")
TABLE2_CONFIGS = ("D", "E")


@dataclass
class BenchResult:
    """All configuration runs for one benchmark."""

    benchmark: Benchmark
    stats: Dict[str, RunStats] = field(default_factory=dict)
    #: config -> repr of the error that survived every retry (parallel
    #: suite only; a cell listed here has no entry in ``stats``)
    errors: Dict[str, str] = field(default_factory=dict)
    #: cells of this benchmark re-run after a worker crash/hang/timeout
    retries: int = 0

    @property
    def base(self) -> RunStats:
        return self.stats["base"]

    def cycles_per_call(self) -> float:
        return self.base.cycles_per_call

    def cycle_reduction(self, config: str) -> float:
        return percent_reduction(self.base.cycles, self.stats[config].cycles)

    def scalar_reduction(self, config: str) -> float:
        return percent_reduction(
            self.base.scalar_memops, self.stats[config].scalar_memops
        )


def run_benchmark(
    benchmark: Benchmark,
    configs: Iterable[str],
    check_contracts: bool = False,
    overrides: Optional[Dict[str, CompilerOptions]] = None,
    compile_fn=None,
    sim_tier: str = "auto",
    convention: Optional[Convention] = None,
) -> BenchResult:
    """Compile and run one benchmark under the named paper configs
    (plus the baseline, always).  Verifies output equivalence across all
    configurations.

    ``compile_fn(source, options)`` replaces the one-shot
    :func:`compile_program` when given -- pass a session-cached compiler
    so repeated table regenerations share the baseline compiles.
    ``sim_tier`` selects the simulator tier for every run (both tiers
    produce identical statistics; see :func:`repro.sim.simulate`).
    ``convention`` overrides the calling convention of *every* requested
    config (the autotuner's evaluation path); the output-equivalence
    check then also guards the candidate against miscompiles.
    """
    if compile_fn is None:
        compile_fn = compile_program
    if convention is not None:
        validate_convention(convention)
    result = BenchResult(benchmark=benchmark)
    wanted = ["base"] + [c for c in configs if c != "base"]
    for config in wanted:
        options = (overrides or {}).get(config) or PAPER_CONFIGS[config]
        if convention is not None:
            options = options.with_(convention=convention)
        program = compile_fn(benchmark.source, options)
        result.stats[config] = program.run(
            check_contracts=check_contracts, sim_tier=sim_tier
        )
    _check_output_equivalence(result)
    return result


def _check_output_equivalence(result: BenchResult) -> None:
    """Outputs of every *successful* configuration run must agree;
    errored cells (recorded in ``result.errors``) are excluded."""
    outputs = {tuple(s.output) for s in result.stats.values()}
    if len(outputs) > 1:
        raise AssertionError(
            f"{result.benchmark.name}: outputs differ across configurations"
        )


def _run_one(
    bench_name: str,
    config: str,
    check_contracts: bool,
    sim_tier: str,
    convention_spec: Optional[Dict] = None,
) -> Tuple[str, str, RunStats]:
    """Compile and run one (benchmark, config) cell.  Module-level, and
    handed only strings/plain dicts (``convention_spec`` is a
    :meth:`Convention.to_spec` dict), so it pickles cleanly into worker
    processes."""
    benchmark = load_benchmarks()[bench_name]
    options = PAPER_CONFIGS[config]
    if convention_spec is not None:
        options = options.with_(
            convention=validate_convention(
                Convention.from_spec(convention_spec)
            )
        )
    program = compile_program(benchmark.source, options)
    stats = program.run(check_contracts=check_contracts, sim_tier=sim_tier)
    return bench_name, config, stats


def _run_one_worker(
    bench_name: str,
    config: str,
    check_contracts: bool,
    sim_tier: str,
    plan: Optional[faults.FaultPlan],
    convention_spec: Optional[Dict] = None,
) -> Tuple[str, str, RunStats]:
    """Pool-worker wrapper around :func:`_run_one`: installs the
    caller's fault plan (a pickled copy with its own counters -- pin
    cross-process specs with ``match='bench:config'``) and marks the
    process as a worker so ``kill`` faults may fire."""
    with faults.worker_context():
        if plan is not None:
            faults.install(plan)
        try:
            faults.check(
                faults.SITE_SUITE_WORKER, f"{bench_name}:{config}"
            )
            return _run_one(
                bench_name, config, check_contracts, sim_tier,
                convention_spec,
            )
        finally:
            if plan is not None:
                faults.clear()


def run_suite(
    configs: Iterable[str],
    names: Optional[Iterable[str]] = None,
    check_contracts: bool = False,
    sim_tier: str = "auto",
    jobs: int = 1,
    task_timeout: Optional[float] = 120.0,
    max_retries: int = 2,
    convention: Optional[Convention] = None,
) -> List[BenchResult]:
    """Run every selected benchmark under the named configs.

    ``convention`` (a :class:`~repro.target.registers.Convention`)
    overrides every config's calling convention -- the autotuner's
    evaluation path; it crosses into pool workers as a plain spec dict.

    ``jobs`` > 1 fans the independent (benchmark, config) cells out over
    a process pool -- each cell compiles and simulates in its own
    worker, and the results are reassembled (and output-equivalence
    checked) in suite order, so the answer is identical to a serial run.

    The parallel path is supervised: a cell whose worker crashes, hangs
    past ``task_timeout`` seconds, or takes the whole pool down with it
    is resubmitted (to a rebuilt pool when necessary) up to
    ``max_retries`` rounds, then attempted once *inline* in the parent
    -- the sequential fallback.  A cell failing even that is recorded in
    its :attr:`BenchResult.errors` instead of raising, so one poisoned
    cell cannot sink the other results.
    """
    benches = load_benchmarks()
    selected = list(names) if names is not None else list(benches)
    unknown = sorted(set(selected) - set(benches))
    if unknown:
        raise ValueError(
            f"unknown benchmarks {unknown}; available: {sorted(benches)}"
        )
    if not selected:
        raise ValueError(
            "no benchmarks selected: pass names=None for the full suite "
            "or a non-empty list of benchmark names"
        )
    if jobs <= 0:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if convention is not None:
        if not isinstance(convention, Convention):
            raise TypeError(
                "convention must be a Convention, got "
                f"{type(convention).__name__}"
            )
        validate_convention(convention)
    spec = None if convention is None else convention.to_spec()
    if jobs == 1:
        return [
            run_benchmark(
                benches[name], configs, check_contracts,
                sim_tier=sim_tier, convention=convention,
            )
            for name in selected
        ]
    wanted = ["base"] + [c for c in configs if c != "base"]
    cells = [(name, config) for name in selected for config in wanted]
    results = {
        name: BenchResult(benchmark=benches[name]) for name in selected
    }
    plan = faults.current_plan()
    pool = ProcessPoolExecutor(max_workers=min(jobs, len(cells)))
    try:
        pending = list(cells)
        rounds = 0
        while pending:
            futures = {
                cell: pool.submit(
                    _run_one_worker, cell[0], cell[1],
                    check_contracts, sim_tier, plan, spec,
                )
                for cell in pending
            }
            failed: List[Tuple[Tuple[str, str], BaseException]] = []
            rebuild = False
            for cell, future in futures.items():
                try:
                    name, config, stats = future.result(timeout=task_timeout)
                    results[name].stats[config] = stats
                except (FutureTimeout, BrokenExecutor) as exc:
                    # hung worker or crashed pool: the executor is no
                    # longer trustworthy, rebuild it before retrying
                    failed.append((cell, exc))
                    rebuild = True
                except Exception as exc:
                    failed.append((cell, exc))
            if rebuild:
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=min(jobs, len(cells)))
            if not failed:
                break
            rounds += 1
            for (name, _), _exc in failed:
                results[name].retries += 1
            if rounds <= max_retries:
                pending = [cell for cell, _ in failed]
                continue
            # retries exhausted: one inline attempt each, in the parent
            for (name, config), _exc in failed:
                try:
                    _, _, stats = _run_one(
                        name, config, check_contracts, sim_tier, spec
                    )
                    results[name].stats[config] = stats
                except Exception as final_exc:
                    results[name].errors[config] = repr(final_exc)
            pending = []
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    ordered = [results[name] for name in selected]
    for result in ordered:
        _check_output_equivalence(result)
    return ordered


def format_table1(results: List[BenchResult]) -> str:
    """Render Table 1: % reduction in cycles and scalar loads/stores for
    configs A (-O2+SW), B (-O3), C (-O3+SW) vs base (-O2)."""
    lines = [
        "Table 1. Effects of applying the techniques "
        "(vs -O2, shrink-wrap disabled)",
        f"{'program':<10s} {'cyc/call':>8s} |"
        f"{'I.A':>7s} {'I.B':>7s} {'I.C':>7s} |"
        f"{'II.A':>7s} {'II.B':>7s} {'II.C':>7s}",
        "-" * 66,
    ]
    for r in results:
        lines.append(
            f"{r.benchmark.name:<10s} {r.cycles_per_call():>8.0f} |"
            f"{r.cycle_reduction('A'):>6.1f}% {r.cycle_reduction('B'):>6.1f}% "
            f"{r.cycle_reduction('C'):>6.1f}% |"
            f"{r.scalar_reduction('A'):>6.1f}% {r.scalar_reduction('B'):>6.1f}% "
            f"{r.scalar_reduction('C'):>6.1f}%"
        )
    return "\n".join(lines)


def format_table2(results: List[BenchResult]) -> str:
    """Render Table 2: the two register classes under IPRA with only 7
    registers (D = caller-saved only, E = callee-saved only)."""
    lines = [
        "Table 2. Effects of the 2 different register classes "
        "(7 registers, vs full-file -O2 baseline)",
        f"{'program':<10s} |{'I.D':>8s} {'I.E':>8s} |{'II.D':>8s} {'II.E':>8s}",
        "-" * 50,
    ]
    for r in results:
        lines.append(
            f"{r.benchmark.name:<10s} |"
            f"{r.cycle_reduction('D'):>7.1f}% {r.cycle_reduction('E'):>7.1f}% |"
            f"{r.scalar_reduction('D'):>7.1f}% {r.scalar_reduction('E'):>7.1f}%"
        )
    return "\n".join(lines)
