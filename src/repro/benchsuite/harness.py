"""Measurement harness regenerating the paper's Tables 1 and 2.

All comparisons follow the paper: the baseline is -O2 with shrink-wrap
disabled, and each column reports the percentage *reduction* relative to
that baseline, in executed cycles (columns I) and in scalar loads/stores
(columns II).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.benchsuite.registry import Benchmark, load_benchmarks
from repro.pipeline.driver import compile_program
from repro.pipeline.options import CompilerOptions, PAPER_CONFIGS
from repro.sim.stats import RunStats, percent_reduction

TABLE1_CONFIGS = ("A", "B", "C")
TABLE2_CONFIGS = ("D", "E")


@dataclass
class BenchResult:
    """All configuration runs for one benchmark."""

    benchmark: Benchmark
    stats: Dict[str, RunStats] = field(default_factory=dict)

    @property
    def base(self) -> RunStats:
        return self.stats["base"]

    def cycles_per_call(self) -> float:
        return self.base.cycles_per_call

    def cycle_reduction(self, config: str) -> float:
        return percent_reduction(self.base.cycles, self.stats[config].cycles)

    def scalar_reduction(self, config: str) -> float:
        return percent_reduction(
            self.base.scalar_memops, self.stats[config].scalar_memops
        )


def run_benchmark(
    benchmark: Benchmark,
    configs: Iterable[str],
    check_contracts: bool = False,
    overrides: Optional[Dict[str, CompilerOptions]] = None,
    compile_fn=None,
    sim_tier: str = "auto",
) -> BenchResult:
    """Compile and run one benchmark under the named paper configs
    (plus the baseline, always).  Verifies output equivalence across all
    configurations.

    ``compile_fn(source, options)`` replaces the one-shot
    :func:`compile_program` when given -- pass a session-cached compiler
    so repeated table regenerations share the baseline compiles.
    ``sim_tier`` selects the simulator tier for every run (both tiers
    produce identical statistics; see :func:`repro.sim.simulate`).
    """
    if compile_fn is None:
        compile_fn = compile_program
    result = BenchResult(benchmark=benchmark)
    wanted = ["base"] + [c for c in configs if c != "base"]
    for config in wanted:
        options = (overrides or {}).get(config) or PAPER_CONFIGS[config]
        program = compile_fn(benchmark.source, options)
        result.stats[config] = program.run(
            check_contracts=check_contracts, sim_tier=sim_tier
        )
    _check_output_equivalence(result)
    return result


def _check_output_equivalence(result: BenchResult) -> None:
    outputs = {tuple(s.output) for s in result.stats.values()}
    if len(outputs) != 1:
        raise AssertionError(
            f"{result.benchmark.name}: outputs differ across configurations"
        )


def _run_one(
    bench_name: str, config: str, check_contracts: bool, sim_tier: str
) -> Tuple[str, str, RunStats]:
    """Worker for the parallel suite: compile and run one
    (benchmark, config) cell.  Module-level, and handed only strings, so
    it pickles cleanly into worker processes."""
    benchmark = load_benchmarks()[bench_name]
    program = compile_program(benchmark.source, PAPER_CONFIGS[config])
    stats = program.run(check_contracts=check_contracts, sim_tier=sim_tier)
    return bench_name, config, stats


def run_suite(
    configs: Iterable[str],
    names: Optional[Iterable[str]] = None,
    check_contracts: bool = False,
    sim_tier: str = "auto",
    jobs: int = 1,
) -> List[BenchResult]:
    """Run every selected benchmark under the named configs.

    ``jobs`` > 1 fans the independent (benchmark, config) cells out over
    a process pool -- each cell compiles and simulates in its own
    worker, and the results are reassembled (and output-equivalence
    checked) in suite order, so the answer is identical to a serial run.
    """
    benches = load_benchmarks()
    selected = list(names) if names is not None else list(benches)
    if jobs <= 1:
        return [
            run_benchmark(
                benches[name], configs, check_contracts, sim_tier=sim_tier
            )
            for name in selected
        ]
    wanted = ["base"] + [c for c in configs if c != "base"]
    cells = [(name, config) for name in selected for config in wanted]
    results = {
        name: BenchResult(benchmark=benches[name]) for name in selected
    }
    with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
        futures = [
            pool.submit(_run_one, name, config, check_contracts, sim_tier)
            for name, config in cells
        ]
        for future in futures:
            name, config, stats = future.result()
            results[name].stats[config] = stats
    ordered = [results[name] for name in selected]
    for result in ordered:
        _check_output_equivalence(result)
    return ordered


def format_table1(results: List[BenchResult]) -> str:
    """Render Table 1: % reduction in cycles and scalar loads/stores for
    configs A (-O2+SW), B (-O3), C (-O3+SW) vs base (-O2)."""
    lines = [
        "Table 1. Effects of applying the techniques "
        "(vs -O2, shrink-wrap disabled)",
        f"{'program':<10s} {'cyc/call':>8s} |"
        f"{'I.A':>7s} {'I.B':>7s} {'I.C':>7s} |"
        f"{'II.A':>7s} {'II.B':>7s} {'II.C':>7s}",
        "-" * 66,
    ]
    for r in results:
        lines.append(
            f"{r.benchmark.name:<10s} {r.cycles_per_call():>8.0f} |"
            f"{r.cycle_reduction('A'):>6.1f}% {r.cycle_reduction('B'):>6.1f}% "
            f"{r.cycle_reduction('C'):>6.1f}% |"
            f"{r.scalar_reduction('A'):>6.1f}% {r.scalar_reduction('B'):>6.1f}% "
            f"{r.scalar_reduction('C'):>6.1f}%"
        )
    return "\n".join(lines)


def format_table2(results: List[BenchResult]) -> str:
    """Render Table 2: the two register classes under IPRA with only 7
    registers (D = caller-saved only, E = callee-saved only)."""
    lines = [
        "Table 2. Effects of the 2 different register classes "
        "(7 registers, vs full-file -O2 baseline)",
        f"{'program':<10s} |{'I.D':>8s} {'I.E':>8s} |{'II.D':>8s} {'II.E':>8s}",
        "-" * 50,
    ]
    for r in results:
        lines.append(
            f"{r.benchmark.name:<10s} |"
            f"{r.cycle_reduction('D'):>7.1f}% {r.cycle_reduction('E'):>7.1f}% |"
            f"{r.scalar_reduction('D'):>7.1f}% {r.scalar_reduction('E'):>7.1f}%"
        )
    return "\n".join(lines)
