"""tex -- virtex from the TeX typesetting package (paper Appendix).

The core of TeX's paragraph builder: optimal line breaking by dynamic
programming over badness (cubic deviation from the target line width),
with penalties, over synthetic paragraphs of words -- plus a greedy
first-fit pass for comparison, both driven through helper procedures.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Paragraph line breaking with badness minimisation (Knuth-style DP).
var NWORDS = 110;
var LINE_WIDTH = 60;
array wlen[200];               // word lengths
array best[200];               // best[i] = min demerits for words i..N
array brk[200];                // chosen break after word index
var seed = 271828;
var badness_calls = 0;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return (seed / 65536) % limit;
}

func gen_words() {
    var i;
    for (i = 0; i < NWORDS; i = i + 1) {
        wlen[i] = 2 + rnd(9);
    }
}

// width of words i..j-1 with single spaces
func line_width(i, j) {
    var w = 0;
    var k;
    for (k = i; k < j; k = k + 1) {
        w = w + wlen[k];
        if (k > i) { w = w + 1; }
    }
    return w;
}

func cube(x) { return x * x * x; }

func badness(i, j, is_last) {
    badness_calls = badness_calls + 1;
    var w = line_width(i, j);
    if (w > LINE_WIDTH) { return 1000000; }     // overfull: forbidden
    if (is_last) { return 0; }                  // last line is free
    var slack = LINE_WIDTH - w;
    return cube(slack);
}

// DP from the end: best break sequence
func solve() {
    best[NWORDS] = 0;
    var i;
    for (i = NWORDS - 1; i >= 0; i = i - 1) {
        best[i] = 1000000000;
        var j;
        for (j = i + 1; j <= NWORDS; j = j + 1) {
            var b = badness(i, j, j == NWORDS);
            if (b >= 1000000) { break; }
            var total = b + best[j];
            if (total < best[i]) {
                best[i] = total;
                brk[i] = j;
            }
        }
    }
    return best[0];
}

func count_lines() {
    var lines = 0;
    var i = 0;
    while (i < NWORDS) {
        lines = lines + 1;
        i = brk[i];
    }
    return lines;
}

// greedy first-fit for comparison
func greedy() {
    var demerits = 0;
    var i = 0;
    var lines = 0;
    while (i < NWORDS) {
        var j = i + 1;
        while (j < NWORDS && line_width(i, j + 1) <= LINE_WIDTH) {
            j = j + 1;
        }
        demerits = demerits + badness(i, j, j == NWORDS);
        lines = lines + 1;
        i = j;
    }
    return demerits * 1000 + lines;
}

func hyphen_pass() {
    // simulated hyphenation: split every word longer than 8
    var extra = 0;
    var i;
    for (i = 0; i < NWORDS; i = i + 1) {
        if (wlen[i] > 8) {
            wlen[i] = wlen[i] - 3;
            extra = extra + 1;
        }
    }
    return extra;
}

func main() {
    var para;
    var total_opt = 0;
    var total_greedy = 0;
    var total_lines = 0;
    for (para = 0; para < 4; para = para + 1) {
        gen_words();
        total_greedy = total_greedy + greedy();
        total_opt = total_opt + solve();
        total_lines = total_lines + count_lines();
        hyphen_pass();
        total_opt = total_opt + solve();
    }
    print total_opt;
    print total_greedy;
    print total_lines;
    print badness_calls;
}
"""

BENCHMARK = Benchmark(
    name="tex",
    language="Pascal",
    description="virtex from the TeX typesetting package",
    source=SOURCE,
)
