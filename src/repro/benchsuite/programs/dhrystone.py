"""dhrystone -- Reinhold Weicker's synthetic benchmark (paper Appendix).

A faithful-in-spirit MiniC rendition: record manipulation (records as
parallel arrays), enumeration switching, string comparison, nested
procedure calls with value parameters and globals -- the original's
statement mix, scaled to the simulator.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Dhrystone-like synthetic benchmark.
var LOOPS = 1500;

// record fields (two records, like Dhrystone's PtrGlb / PtrGlbNext)
array rec_discr[2];
array rec_enum[2];
array rec_int[2];
array rec_string[60];          // 2 x 30-char strings
var int_glob = 0;
var bool_glob = 0;
var char1_glob = 'A';
var char2_glob = 'B';
array array1_glob[50];
array array2_glob[2500];       // 50 x 50

func func1(ch1, ch2) {
    var ch1_loc = ch1;
    var ch2_loc = ch1_loc;
    if (ch2_loc != ch2) { return 0; }    // Ident1
    return 1;                            // Ident2
}

func func2(stroff1, stroff2) {
    var int_loc = 1;
    var ch_loc = 0;
    while (int_loc <= 1) {
        if (func1(rec_string[stroff1 + int_loc],
                  rec_string[stroff2 + int_loc + 1]) == 0) {
            ch_loc = 'A';
            int_loc = int_loc + 1;
        } else {
            int_loc = int_loc + 1;
        }
    }
    if (ch_loc >= 'W' && ch_loc < 'Z') { int_loc = 7; }
    if (ch_loc == 'R') { return 1; }
    if (strcmp(stroff1, stroff2) > 0) {
        int_loc = int_loc + 7;
        int_glob = int_loc;
        return 1;
    }
    return 0;
}

func strcmp(off1, off2) {
    var i;
    for (i = 0; i < 30; i = i + 1) {
        var a = rec_string[off1 + i];
        var b = rec_string[off2 + i];
        if (a != b) { return a - b; }
    }
    return 0;
}

func func3(enum_par) {
    if (enum_par == 2) { return 1; }     // Ident3
    return 0;
}

func proc1(rec) {
    var next = 1 - rec;
    rec_int[next] = rec_int[rec];
    rec_int[rec] = 5;
    rec_discr[next] = rec_discr[rec];
    proc3(next);
    if (rec_discr[next] == 0) {          // Ident1
        rec_int[next] = 6;
        proc6(rec_enum[rec], next);
        rec_int[next] = rec_int[next] + rec_int[rec];
    } else {
        rec_int[rec] = rec_int[next];
    }
}

func proc2(int_par) {
    var int_loc = int_par + 10;
    var enum_loc = 0;
    while (1) {
        if (char1_glob == 'A') {
            int_loc = int_loc - 1;
            int_par = int_loc - int_glob;
            enum_loc = 1;                // Ident1
        }
        if (enum_loc == 1) { break; }
    }
    return int_par;
}

func proc3(rec) {
    if (rec >= 0) {
        rec_int[rec] = int_glob;
    }
    int_glob = proc7(10, int_glob);
}

func proc4() {
    var bool_loc = char1_glob == 'A';
    bool_glob = bool_loc | bool_glob;
    char2_glob = 'B';
}

func proc5() {
    char1_glob = 'A';
    bool_glob = 0;
}

func proc6(enum_val, rec) {
    rec_enum[rec] = enum_val;
    if (func3(enum_val) == 0) { rec_enum[rec] = 3; }
    if (enum_val == 0) { rec_enum[rec] = 0; }
    else {
        if (enum_val == 1) {
            if (int_glob > 100) { rec_enum[rec] = 0; }
            else { rec_enum[rec] = 3; }
        } else {
            if (enum_val == 2) { rec_enum[rec] = 1; }
        }
    }
}

func proc7(int1, int2) {
    var int_loc = int1 + 2;
    return int2 + int_loc;
}

func proc8(base1, base2, int1, int2) {
    var int_loc = int1 + 5;
    array1_glob[base1 + int_loc] = int2;
    array1_glob[base1 + int_loc + 1] = array1_glob[base1 + int_loc];
    array1_glob[base1 + int_loc + 30] = int_loc;
    var idx;
    for (idx = int_loc; idx <= int_loc + 1; idx = idx + 1) {
        array2_glob[base2 + int_loc * 50 + idx] = int_loc;
    }
    array2_glob[base2 + int_loc * 50 + int_loc - 1] =
        array2_glob[base2 + int_loc * 50 + int_loc - 1] + 1;
    array2_glob[base2 + (int_loc + 20) * 50 + int_loc] =
        array1_glob[base1 + int_loc];
    int_glob = 5;
}

func fill_string(off, tag) {
    var i;
    for (i = 0; i < 30; i = i + 1) {
        rec_string[off + i] = 'A' + (i * tag) % 26;
    }
}

func main() {
    fill_string(0, 1);
    fill_string(30, 1);
    rec_string[30 + 5] = 'Z';            // make the strings differ
    rec_discr[0] = 0;
    rec_enum[0] = 2;
    rec_int[0] = 40;
    var run;
    var checksum = 0;
    for (run = 0; run < LOOPS; run = run + 1) {
        proc5();
        proc4();
        var int1_loc = 2;
        var int2_loc = 3;
        var int3_loc = 0;
        if (func2(0, 30) == 0) { int3_loc = proc7(int1_loc, int2_loc); }
        proc8(0, 0, int1_loc, int3_loc);
        proc1(0);
        var ch_index;
        for (ch_index = 'A'; ch_index <= char2_glob; ch_index = ch_index + 1) {
            if (func1(ch_index, 'C') == 1) { int2_loc = proc2(int1_loc); }
        }
        int2_loc = int2_loc * int1_loc;
        int1_loc = int2_loc / int3_loc;
        int2_loc = 7 * (int2_loc - int3_loc) - int1_loc;
        int1_loc = proc2(int1_loc);
        checksum = (checksum + int1_loc + int2_loc + int_glob) % 1000000;
    }
    print checksum;
    print int_glob;
    print bool_glob;
    print rec_int[0];
    print rec_int[1];
}
"""

BENCHMARK = Benchmark(
    name="dhrystone",
    language="C",
    description="a synthetic benchmark by Reinhold Weicker",
    source=SOURCE,
)
