"""calcc -- a program that manipulates dynamic and variable-length strings
(paper Appendix).

A string-desk-calculator: builds decimal-digit strings in a managed
string pool, implements arbitrary-precision addition/multiplication over
them, string reversal, concatenation and comparison -- all through small
helper procedures, making it heavily call-intensive.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Variable-length decimal strings in a pool, with bignum arithmetic.
array pool[8000];            // character storage
array str_off[200];          // string id -> offset in pool
array str_len[200];          // string id -> length
var pool_top = 0;
var nstrings = 0;

func new_string() {
    var id = nstrings;
    nstrings = nstrings + 1;
    str_off[id] = pool_top;
    str_len[id] = 0;
    return id;
}

func push_char(id, ch) {
    // only valid for the most recently created string
    pool[str_off[id] + str_len[id]] = ch;
    str_len[id] = str_len[id] + 1;
    pool_top = str_off[id] + str_len[id];
    return id;
}

func char_at(id, i) { return pool[str_off[id] + i]; }
func length(id) { return str_len[id]; }

// digits stored least-significant first
func from_int(n) {
    var id = new_string();
    if (n == 0) { push_char(id, 0); return id; }
    while (n > 0) {
        push_char(id, n % 10);
        n = n / 10;
    }
    return id;
}

func to_int(id) {
    var v = 0;
    var i;
    for (i = length(id) - 1; i >= 0; i = i - 1) {
        v = v * 10 + char_at(id, i);
    }
    return v;
}

func big_add(x, y) {
    var id = new_string();
    var carry = 0;
    var i = 0;
    while (i < length(x) || i < length(y) || carry > 0) {
        var d = carry;
        if (i < length(x)) { d = d + char_at(x, i); }
        if (i < length(y)) { d = d + char_at(y, i); }
        push_char(id, d % 10);
        carry = d / 10;
        i = i + 1;
    }
    return id;
}

func big_mul_digit(x, d, shift) {
    var id = new_string();
    var i;
    for (i = 0; i < shift; i = i + 1) { push_char(id, 0); }
    var carry = 0;
    for (i = 0; i < length(x); i = i + 1) {
        var p = char_at(x, i) * d + carry;
        push_char(id, p % 10);
        carry = p / 10;
    }
    while (carry > 0) {
        push_char(id, carry % 10);
        carry = carry / 10;
    }
    if (length(id) == 0) { push_char(id, 0); }
    return id;
}

func big_mul(x, y) {
    var acc = from_int(0);
    var i;
    for (i = 0; i < length(y); i = i + 1) {
        var part = big_mul_digit(x, char_at(y, i), i);
        acc = big_add(acc, part);
    }
    return acc;
}

func compare(x, y) {
    if (length(x) != length(y)) {
        if (length(x) < length(y)) { return -1; }
        return 1;
    }
    var i;
    for (i = length(x) - 1; i >= 0; i = i - 1) {
        var a = char_at(x, i);
        var b = char_at(y, i);
        if (a < b) { return -1; }
        if (a > b) { return 1; }
    }
    return 0;
}

func digit_sum(id) {
    var s = 0;
    var i;
    for (i = 0; i < length(id); i = i + 1) { s = s + char_at(id, i); }
    return s;
}

func reset_pool() {
    pool_top = 0;
    nstrings = 0;
}

func factorial_digit_sum(n) {
    var acc = from_int(1);
    var k;
    for (k = 2; k <= n; k = k + 1) {
        acc = big_mul(acc, from_int(k));
    }
    return digit_sum(acc);
}

func main() {
    // 2^40 by repeated doubling, digit sum
    var two40 = from_int(1);
    var i;
    for (i = 0; i < 40; i = i + 1) {
        two40 = big_add(two40, two40);
    }
    print digit_sum(two40);
    print length(two40);

    reset_pool();
    print factorial_digit_sum(20);

    reset_pool();
    // fibonacci as bignums
    var a = from_int(0);
    var b = from_int(1);
    for (i = 0; i < 60; i = i + 1) {
        var t = big_add(a, b);
        a = b;
        b = t;
    }
    print digit_sum(b);
    print length(b);
    print compare(a, b);
    print to_int(from_int(987654321));
}
"""

BENCHMARK = Benchmark(
    name="calcc",
    language="Pascal",
    description="a program that manipulates dynamic and variable-length strings",
    source=SOURCE,
)
