"""ccom -- the first pass of the MIPS C compiler (paper Appendix).

A miniature C front end: a lexer over generated source text, a recursive-
descent parser for expressions/assignments/if/while, a symbol table, and
code emission to a stack machine -- then the emitted code is executed by
an interpreter loop to produce a checksum.  Tall call graph, very
call-intensive.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// A tiny C compiler first pass + stack-machine execution.
array src[9000];
var src_len = 0;
var pos = 0;                  // lexer cursor
var tok = 0;                  // current token
var tokval = 0;

var T_NUM = 1;
var T_ID = 2;
var T_PLUS = 3;
var T_MINUS = 4;
var T_STAR = 5;
var T_SLASH = 6;
var T_LP = 7;
var T_RP = 8;
var T_ASSIGN = 9;
var T_SEMI = 10;
var T_IF = 11;
var T_WHILE = 12;
var T_LB = 13;
var T_RB = 14;
var T_LT = 15;
var T_EOF = 16;

// emitted code: opcode stream for a stack machine
array code_op[4000];
array code_arg[4000];
var code_len = 0;
var OP_PUSH = 1;
var OP_LOAD = 2;
var OP_STORE = 3;
var OP_ADD = 4;
var OP_SUB = 5;
var OP_MUL = 6;
var OP_DIV = 7;
var OP_LT = 8;
var OP_JZ = 9;
var OP_JMP = 10;
var OP_HALT = 11;

array vars[26];
var seed = 16180;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return (seed / 65536) % limit;
}

func put(ch) { src[src_len] = ch; src_len = src_len + 1; }

func gen_expr(depth) {
    if (depth > 2 || rnd(3) == 0) {
        if (rnd(2) == 0) { put('0' + rnd(10)); }
        else { put('a' + rnd(26)); }
        return 0;
    }
    put('(');
    gen_expr(depth + 1);
    var op = rnd(4);
    if (op == 0) { put('+'); }
    if (op == 1) { put('-'); }
    if (op == 2) { put('*'); }
    if (op == 3) { put('/'); }
    gen_expr(depth + 1);
    put(')');
    return 0;
}

func gen_stmt(depth) {
    var kind = rnd(5);
    if (depth > 2) { kind = 0; }
    if (kind <= 2) {
        put('a' + rnd(26));
        put('=');
        gen_expr(0);
        put(';');
        return 0;
    }
    if (kind == 3) {
        put('i'); put('f'); put('(');
        gen_expr(1);
        put('<');
        gen_expr(1);
        put(')'); put('{');
        gen_stmt(depth + 1);
        gen_stmt(depth + 1);
        put('}');
        return 0;
    }
    // a bounded while: k = small; while (0 < k) { ... k = k - 1; }
    var v = 'a' + rnd(26);
    put(v); put('='); put('0' + 2 + rnd(3)); put(';');
    put('w'); put('h'); put('('); put('0'); put('<'); put(v); put(')');
    put('{');
    gen_stmt(depth + 1);
    put(v); put('='); put(v); put('-'); put('1'); put(';');
    put('}');
    return 0;
}

func next_tok() {
    while (pos < src_len && src[pos] == ' ') { pos = pos + 1; }
    if (pos >= src_len) { tok = T_EOF; return 0; }
    var ch = src[pos];
    if (ch >= '0' && ch <= '9') {
        tokval = 0;
        while (pos < src_len && src[pos] >= '0' && src[pos] <= '9') {
            tokval = tokval * 10 + src[pos] - '0';
            pos = pos + 1;
        }
        tok = T_NUM;
        return 0;
    }
    if (ch == 'i' && pos + 1 < src_len && src[pos+1] == 'f') {
        pos = pos + 2; tok = T_IF; return 0;
    }
    if (ch == 'w' && pos + 1 < src_len && src[pos+1] == 'h') {
        pos = pos + 2; tok = T_WHILE; return 0;
    }
    if (ch >= 'a' && ch <= 'z') {
        tokval = ch - 'a';
        pos = pos + 1;
        tok = T_ID;
        return 0;
    }
    pos = pos + 1;
    if (ch == '+') { tok = T_PLUS; return 0; }
    if (ch == '-') { tok = T_MINUS; return 0; }
    if (ch == '*') { tok = T_STAR; return 0; }
    if (ch == '/') { tok = T_SLASH; return 0; }
    if (ch == '(') { tok = T_LP; return 0; }
    if (ch == ')') { tok = T_RP; return 0; }
    if (ch == '=') { tok = T_ASSIGN; return 0; }
    if (ch == ';') { tok = T_SEMI; return 0; }
    if (ch == '{') { tok = T_LB; return 0; }
    if (ch == '}') { tok = T_RB; return 0; }
    if (ch == '<') { tok = T_LT; return 0; }
    tok = T_EOF;
    return 0;
}

func emit(op, arg) {
    code_op[code_len] = op;
    code_arg[code_len] = arg;
    code_len = code_len + 1;
    return code_len - 1;
}

func patch(at, target) { code_arg[at] = target; }

// expr := primary (('+'|'-'|'*'|'/') primary)*   -- no precedence,
// parenthesised generation makes it unambiguous
func parse_primary() {
    if (tok == T_NUM) { emit(OP_PUSH, tokval); next_tok(); return 0; }
    if (tok == T_ID) { emit(OP_LOAD, tokval); next_tok(); return 0; }
    if (tok == T_LP) {
        next_tok();
        parse_expr();
        next_tok();            // consume ')'
        return 0;
    }
    next_tok();
    return 0;
}

func parse_expr() {
    parse_primary();
    while (tok == T_PLUS || tok == T_MINUS || tok == T_STAR || tok == T_SLASH) {
        var op = tok;
        next_tok();
        parse_primary();
        if (op == T_PLUS) { emit(OP_ADD, 0); }
        if (op == T_MINUS) { emit(OP_SUB, 0); }
        if (op == T_STAR) { emit(OP_MUL, 0); }
        if (op == T_SLASH) { emit(OP_DIV, 0); }
    }
    return 0;
}

func parse_cond() {
    parse_expr();
    next_tok();               // consume '<'
    parse_expr();
    emit(OP_LT, 0);
    return 0;
}

func parse_stmt() {
    if (tok == T_ID) {
        var v = tokval;
        next_tok();            // id
        next_tok();            // '='
        parse_expr();
        next_tok();            // ';'
        emit(OP_STORE, v);
        return 0;
    }
    if (tok == T_IF) {
        next_tok();            // if
        next_tok();            // '('
        parse_cond();
        next_tok();            // ')'
        var jz = emit(OP_JZ, 0);
        parse_block();
        patch(jz, code_len);
        return 0;
    }
    if (tok == T_WHILE) {
        next_tok();            // wh
        next_tok();            // '('
        var top = code_len;
        parse_cond();
        next_tok();            // ')'
        var wjz = emit(OP_JZ, 0);
        parse_block();
        emit(OP_JMP, top);
        patch(wjz, code_len);
        return 0;
    }
    next_tok();
    return 0;
}

func parse_block() {
    next_tok();               // '{'
    while (tok != T_RB && tok != T_EOF) { parse_stmt(); }
    next_tok();               // '}'
    return 0;
}

func parse_program() {
    next_tok();
    while (tok != T_EOF) { parse_stmt(); }
    emit(OP_HALT, 0);
    return 0;
}

// stack-machine interpreter
array stack[200];
func execute() {
    var sp = 0;
    var ip = 0;
    var steps = 0;
    while (steps < 60000) {
        steps = steps + 1;
        var op = code_op[ip];
        var arg = code_arg[ip];
        ip = ip + 1;
        if (op == OP_PUSH) { stack[sp] = arg; sp = sp + 1; }
        else { if (op == OP_LOAD) { stack[sp] = vars[arg]; sp = sp + 1; }
        else { if (op == OP_STORE) { sp = sp - 1; vars[arg] = stack[sp]; }
        else { if (op == OP_ADD) { sp = sp - 1; stack[sp-1] = stack[sp-1] + stack[sp]; }
        else { if (op == OP_SUB) { sp = sp - 1; stack[sp-1] = stack[sp-1] - stack[sp]; }
        else { if (op == OP_MUL) { sp = sp - 1; stack[sp-1] = (stack[sp-1] * stack[sp]) % 65536; }
        else { if (op == OP_DIV) {
            sp = sp - 1;
            if (stack[sp] == 0) { stack[sp-1] = 0; }
            else { stack[sp-1] = stack[sp-1] / stack[sp]; }
        }
        else { if (op == OP_LT) { sp = sp - 1; stack[sp-1] = stack[sp-1] < stack[sp]; }
        else { if (op == OP_JZ) { sp = sp - 1; if (stack[sp] == 0) { ip = arg; } }
        else { if (op == OP_JMP) { ip = arg; }
        else { return steps; } } } } } } } } } }
    }
    return steps;
}

func main() {
    var round;
    var checksum = 0;
    var total_code = 0;
    var total_steps = 0;
    for (round = 0; round < 10; round = round + 1) {
        src_len = 0; pos = 0; code_len = 0;
        var i;
        for (i = 0; i < 8; i = i + 1) { gen_stmt(0); }
        parse_program();
        total_code = total_code + code_len;
        total_steps = total_steps + execute();
        for (i = 0; i < 26; i = i + 1) {
            checksum = (checksum * 31 + vars[i]) % 1000000007;
        }
    }
    print total_code;
    print total_steps;
    print checksum;
}
"""

BENCHMARK = Benchmark(
    name="ccom",
    language="C",
    description="first pass of the MIPS C compiler",
    source=SOURCE,
)
