"""The 13 benchmark programs (paper Appendix), as MiniC analogues.

Each module exports a :class:`~repro.benchsuite.registry.Benchmark`.  The
programs keep the originals' computational character and the suite keeps
the paper's small-to-large, call-intensive ordering; absolute sizes differ
(see DESIGN.md's substitution notes).
"""
