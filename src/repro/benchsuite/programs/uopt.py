"""uopt -- the MIPS Ucode global optimizer (paper Appendix).

The optimizer optimizing (a model of) itself: builds basic blocks and a
control-flow graph from generated quad streams, runs iterative bit-vector
liveness to a fixed point, removes dead assignments, and performs local
common-subexpression elimination -- the same passes Uopt spent its time
in, including its register allocator's liveness machinery.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// A model of the Ucode global optimizer: CFG + liveness + DCE + local CSE.
// Quads: op, dst, src1, src2 over 24 pseudo-registers.
var NQ = 600;
array q_op[700];              // 1=add 2=mul 3=copy 4=cjump(label) 5=label 6=print-use
array q_dst[700];
array q_s1[700];
array q_s2[700];

// basic block structure
array blk_start[200];
array blk_end[200];           // exclusive
array blk_succ1[200];
array blk_succ2[200];
var nblocks = 0;

// dataflow bit vectors (24 regs -> one word each)
array use_set[200];
array def_set[200];
array live_in[200];
array live_out[200];

array label_block[100];       // label id -> block index
var seed = 69314;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return (seed / 65536) % limit;
}

func gen_quads() {
    var i;
    var nlabels = 0;
    for (i = 0; i < NQ; i = i + 1) {
        var k = rnd(12);
        if (k == 0 && nlabels < 90) {
            q_op[i] = 5; q_dst[i] = nlabels;
            nlabels = nlabels + 1;
        } else { if (k == 1 && nlabels > 0) {
            q_op[i] = 4; q_s1[i] = rnd(24); q_dst[i] = rnd(nlabels);
        } else { if (k <= 5) {
            q_op[i] = 1; q_dst[i] = rnd(24); q_s1[i] = rnd(6); q_s2[i] = rnd(6);
        } else { if (k <= 8) {
            q_op[i] = 2; q_dst[i] = rnd(24); q_s1[i] = rnd(6); q_s2[i] = rnd(6);
        } else { if (k <= 10) {
            q_op[i] = 3; q_dst[i] = rnd(24); q_s1[i] = rnd(24);
        } else {
            q_op[i] = 6; q_s1[i] = rnd(24);
        } } } } }
    }
    return nlabels;
}

func is_leader(i) {
    if (i == 0) { return 1; }
    if (q_op[i] == 5) { return 1; }               // label
    if (q_op[i - 1] == 4) { return 1; }           // after branch
    return 0;
}

func find_blocks() {
    nblocks = 0;
    var i;
    for (i = 0; i < NQ; i = i + 1) {
        if (is_leader(i)) {
            if (nblocks > 0) { blk_end[nblocks - 1] = i; }
            blk_start[nblocks] = i;
            nblocks = nblocks + 1;
        }
        if (q_op[i] == 5) { label_block[q_dst[i]] = nblocks - 1; }
    }
    blk_end[nblocks - 1] = NQ;
}

func link_blocks() {
    var b;
    for (b = 0; b < nblocks; b = b + 1) {
        blk_succ1[b] = -1;
        blk_succ2[b] = -1;
        var last = blk_end[b] - 1;
        if (q_op[last] == 4) {
            blk_succ1[b] = label_block[q_dst[last]];
            if (b + 1 < nblocks) { blk_succ2[b] = b + 1; }
        } else {
            if (b + 1 < nblocks) { blk_succ1[b] = b + 1; }
        }
    }
}

func bit(r) { return 1 << r; }

func compute_use_def() {
    var b;
    for (b = 0; b < nblocks; b = b + 1) {
        var u = 0;
        var d = 0;
        var i;
        for (i = blk_start[b]; i < blk_end[b]; i = i + 1) {
            var op = q_op[i];
            if (op == 1 || op == 2) {
                if ((d & bit(q_s1[i])) == 0) { u = u | bit(q_s1[i]); }
                if ((d & bit(q_s2[i])) == 0) { u = u | bit(q_s2[i]); }
                d = d | bit(q_dst[i]);
            }
            if (op == 3) {
                if ((d & bit(q_s1[i])) == 0) { u = u | bit(q_s1[i]); }
                d = d | bit(q_dst[i]);
            }
            if (op == 4 || op == 6) {
                if ((d & bit(q_s1[i])) == 0) { u = u | bit(q_s1[i]); }
            }
        }
        use_set[b] = u;
        def_set[b] = d;
        live_in[b] = 0;
        live_out[b] = 0;
    }
}

// iterative backward liveness to a fixed point
func liveness() {
    var passes = 0;
    var changed = 1;
    while (changed) {
        changed = 0;
        passes = passes + 1;
        var b;
        for (b = nblocks - 1; b >= 0; b = b - 1) {
            var out = 0;
            if (blk_succ1[b] >= 0) { out = out | live_in[blk_succ1[b]]; }
            if (blk_succ2[b] >= 0) { out = out | live_in[blk_succ2[b]]; }
            var in = use_set[b] | (out & ~def_set[b]);
            if (out != live_out[b] || in != live_in[b]) {
                live_out[b] = out;
                live_in[b] = in;
                changed = 1;
            }
        }
    }
    return passes;
}

// remove assignments whose destination is dead at the block end
func dce() {
    var removed = 0;
    var b;
    for (b = 0; b < nblocks; b = b + 1) {
        var live = live_out[b];
        var i;
        for (i = blk_end[b] - 1; i >= blk_start[b]; i = i - 1) {
            var op = q_op[i];
            if (op == 1 || op == 2 || op == 3) {
                if ((live & bit(q_dst[i])) == 0) {
                    q_op[i] = 0;            // nop it out
                    removed = removed + 1;
                } else {
                    live = live & ~bit(q_dst[i]);
                    live = live | bit(q_s1[i]);
                    if (op != 3) { live = live | bit(q_s2[i]); }
                }
            }
            if (op == 4 || op == 6) { live = live | bit(q_s1[i]); }
        }
    }
    return removed;
}

// local CSE: within a block, detect repeated (op, s1, s2) triples
func local_cse() {
    var found = 0;
    var b;
    for (b = 0; b < nblocks; b = b + 1) {
        var i;
        for (i = blk_start[b]; i < blk_end[b]; i = i + 1) {
            var op = q_op[i];
            if (op != 1 && op != 2) { continue; }
            var j;
            for (j = i + 1; j < blk_end[b]; j = j + 1) {
                // stop if operands are redefined
                var jop = q_op[j];
                if (jop == 1 || jop == 2 || jop == 3) {
                    if (jop == op && q_s1[j] == q_s1[i] && q_s2[j] == q_s2[i]) {
                        found = found + 1;
                        q_op[j] = 3;        // replace with copy
                        q_s1[j] = q_dst[i];
                        continue;
                    }
                    if (q_dst[j] == q_s1[i] || q_dst[j] == q_s2[i]
                        || q_dst[j] == q_dst[i]) { break; }
                }
            }
        }
    }
    return found;
}

func checksum() {
    var s = 0;
    var i;
    for (i = 0; i < NQ; i = i + 1) {
        s = (s * 7 + q_op[i] * 4 + q_dst[i] + q_s1[i] * 2 + q_s2[i]) % 1000000007;
    }
    return s;
}

func main() {
    var round;
    var total_removed = 0;
    var total_cse = 0;
    var total_passes = 0;
    for (round = 0; round < 4; round = round + 1) {
        gen_quads();
        find_blocks();
        link_blocks();
        compute_use_def();
        total_passes = total_passes + liveness();
        total_removed = total_removed + dce();
        total_cse = total_cse + local_cse();
    }
    print nblocks;
    print total_passes;
    print total_removed;
    print total_cse;
    print checksum();
}
"""

BENCHMARK = Benchmark(
    name="uopt",
    language="Pascal",
    description="the MIPS Ucode global optimizer, including the register allocator",
    source=SOURCE,
)
