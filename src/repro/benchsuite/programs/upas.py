"""upas -- the first pass of the MIPS Pascal compiler (paper Appendix).

A Pascal-subset front end: scanner over generated program text,
recursive-descent parser with full expression precedence building an AST
into parallel arrays, a declaration symbol table with scope levels, and a
constant-folding tree walk -- a deep, call-heavy pipeline like the real
first pass.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Pascal-subset first pass: scan, parse to AST, fold constants.
array src[12000];
var src_len = 0;
var pos = 0;
var tok = 0;
var tokval = 0;

var T_NUM = 1;  var T_ID = 2;   var T_PLUS = 3;  var T_MINUS = 4;
var T_STAR = 5; var T_DIV = 6;  var T_LP = 7;    var T_RP = 8;
var T_ASSIGN = 9; var T_SEMI = 10; var T_BEGIN = 11; var T_END = 12;
var T_IF = 13;  var T_THEN = 14; var T_ELSE = 15; var T_WHILE = 16;
var T_DO = 17;  var T_VAR = 18;  var T_LT = 19;   var T_EQ = 20;
var T_EOF = 21;

// AST in parallel arrays
var N_NUM = 1;  var N_VAR = 2;  var N_BIN = 3;  var N_ASSIGN = 4;
var N_SEQ = 5;  var N_IF = 6;   var N_WHILE = 7; var N_NOP = 8;
array node_kind[6000];
array node_a[6000];            // operand / left child / var id
array node_b[6000];            // right child
array node_c[6000];            // third child (else) / operator
var nnodes = 1;                // node 0 = nil

// symbol table with scope levels
array scope_name[400];
array scope_level[400];
var scope_top = 0;
var cur_level = 0;
var lookups = 0;

var seed = 14142;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return (seed / 65536) % limit;
}

func put(ch) { src[src_len] = ch; src_len = src_len + 1; }

func putkw(a, b) { put(a); put(b); put(' '); }

// program generator: var decls then nested statements
func gen_expr(depth) {
    if (depth > 3 || rnd(3) == 0) {
        if (rnd(2) == 0) {
            var n = 1 + rnd(99);
            if (n >= 10) { put('0' + n / 10); }
            put('0' + n % 10);
        } else {
            put('a' + rnd(12));
        }
        put(' ');
        return 0;
    }
    put('(');
    gen_expr(depth + 1);
    var op = rnd(4);
    if (op == 0) { put('+'); }
    if (op == 1) { put('-'); }
    if (op == 2) { put('*'); }
    if (op == 3) { put('/'); }
    gen_expr(depth + 1);
    put(')');
    return 0;
}

func gen_stmt(depth) {
    var kind = rnd(6);
    if (depth > 3) { kind = 0; }
    if (kind <= 2) {
        put('a' + rnd(12));
        put(':'); put('=');
        gen_expr(0);
        put(';');
        return 0;
    }
    if (kind == 3) {
        putkw('i','f');
        gen_expr(1);
        put('<');
        gen_expr(1);
        putkw('t','h');
        gen_stmt(depth + 1);
        if (rnd(2) == 0) {
            putkw('e','l');
            gen_stmt(depth + 1);
        }
        put(';');
        return 0;
    }
    if (kind == 4) {
        putkw('w','d');
        gen_expr(1);
        put('<');
        gen_expr(1);
        putkw('d','o');
        gen_stmt(depth + 1);
        put(';');
        return 0;
    }
    putkw('b','g');
    var n = 1 + rnd(3);
    var i;
    for (i = 0; i < n; i = i + 1) { gen_stmt(depth + 1); }
    putkw('e','n');
    put(';');
    return 0;
}

func next_tok() {
    while (pos < src_len && src[pos] == ' ') { pos = pos + 1; }
    if (pos >= src_len) { tok = T_EOF; return 0; }
    var ch = src[pos];
    if (ch >= '0' && ch <= '9') {
        tokval = 0;
        while (pos < src_len && src[pos] >= '0' && src[pos] <= '9') {
            tokval = tokval * 10 + src[pos] - '0';
            pos = pos + 1;
        }
        tok = T_NUM;
        return 0;
    }
    // two-letter keywords
    if (pos + 1 < src_len) {
        var c2 = src[pos + 1];
        if (ch == 'i' && c2 == 'f') { pos = pos + 2; tok = T_IF; return 0; }
        if (ch == 't' && c2 == 'h') { pos = pos + 2; tok = T_THEN; return 0; }
        if (ch == 'e' && c2 == 'l') { pos = pos + 2; tok = T_ELSE; return 0; }
        if (ch == 'w' && c2 == 'd') { pos = pos + 2; tok = T_WHILE; return 0; }
        if (ch == 'd' && c2 == 'o') { pos = pos + 2; tok = T_DO; return 0; }
        if (ch == 'b' && c2 == 'g') { pos = pos + 2; tok = T_BEGIN; return 0; }
        if (ch == 'e' && c2 == 'n') { pos = pos + 2; tok = T_END; return 0; }
        if (ch == ':' && c2 == '=') { pos = pos + 2; tok = T_ASSIGN; return 0; }
    }
    if (ch >= 'a' && ch <= 'z') {
        tokval = ch - 'a';
        pos = pos + 1;
        tok = T_ID;
        return 0;
    }
    pos = pos + 1;
    if (ch == '+') { tok = T_PLUS; return 0; }
    if (ch == '-') { tok = T_MINUS; return 0; }
    if (ch == '*') { tok = T_STAR; return 0; }
    if (ch == '/') { tok = T_DIV; return 0; }
    if (ch == '(') { tok = T_LP; return 0; }
    if (ch == ')') { tok = T_RP; return 0; }
    if (ch == ';') { tok = T_SEMI; return 0; }
    if (ch == '<') { tok = T_LT; return 0; }
    if (ch == '=') { tok = T_EQ; return 0; }
    tok = T_EOF;
    return 0;
}

func new_node(kind, a, b, c) {
    node_kind[nnodes] = kind;
    node_a[nnodes] = a;
    node_b[nnodes] = b;
    node_c[nnodes] = c;
    nnodes = nnodes + 1;
    return nnodes - 1;
}

func declare(name) {
    scope_name[scope_top] = name;
    scope_level[scope_top] = cur_level;
    scope_top = scope_top + 1;
}

func resolve(name) {
    var i;
    for (i = scope_top - 1; i >= 0; i = i - 1) {
        lookups = lookups + 1;
        if (scope_name[i] == name) { return i; }
    }
    declare(name);            // implicit declaration at current level
    return scope_top - 1;
}

func parse_factor() {
    if (tok == T_NUM) {
        var n = new_node(N_NUM, tokval, 0, 0);
        next_tok();
        return n;
    }
    if (tok == T_ID) {
        var slot = resolve(tokval);
        next_tok();
        return new_node(N_VAR, slot, 0, 0);
    }
    if (tok == T_LP) {
        next_tok();
        var e = parse_expr();
        next_tok();            // ')'
        return e;
    }
    next_tok();
    return new_node(N_NUM, 0, 0, 0);
}

func parse_term() {
    var left = parse_factor();
    while (tok == T_STAR || tok == T_DIV) {
        var op = tok;
        next_tok();
        var right = parse_factor();
        left = new_node(N_BIN, left, right, op);
    }
    return left;
}

func parse_expr() {
    var left = parse_term();
    while (tok == T_PLUS || tok == T_MINUS) {
        var op = tok;
        next_tok();
        var right = parse_term();
        left = new_node(N_BIN, left, right, op);
    }
    return left;
}

func parse_cond() {
    var l = parse_expr();
    var op = tok;
    next_tok();               // '<' or '='
    var r = parse_expr();
    return new_node(N_BIN, l, r, op);
}

func parse_stmt() {
    if (tok == T_ID) {
        var slot = resolve(tokval);
        next_tok();            // id
        next_tok();            // ':='
        var e = parse_expr();
        if (tok == T_SEMI) { next_tok(); }
        return new_node(N_ASSIGN, slot, e, 0);
    }
    if (tok == T_IF) {
        next_tok();
        var c = parse_cond();
        next_tok();            // then
        var t = parse_stmt();
        var els = 0;
        if (tok == T_ELSE) {
            next_tok();
            els = parse_stmt();
        }
        if (tok == T_SEMI) { next_tok(); }
        return new_node(N_IF, c, t, els);
    }
    if (tok == T_WHILE) {
        next_tok();
        var wc = parse_cond();
        next_tok();            // do
        var body = parse_stmt();
        if (tok == T_SEMI) { next_tok(); }
        return new_node(N_WHILE, wc, body, 0);
    }
    if (tok == T_BEGIN) {
        next_tok();
        cur_level = cur_level + 1;
        var seq = 0;
        while (tok != T_END && tok != T_EOF) {
            var s = parse_stmt();
            seq = new_node(N_SEQ, seq, s, 0);
        }
        next_tok();            // end
        if (tok == T_SEMI) { next_tok(); }
        // pop scope entries of this level
        while (scope_top > 0 && scope_level[scope_top - 1] == cur_level) {
            scope_top = scope_top - 1;
        }
        cur_level = cur_level - 1;
        return seq;
    }
    next_tok();
    return new_node(N_NOP, 0, 0, 0);
}

// constant folding over the AST; returns number of folded nodes
var folded = 0;

func fold(n) {
    if (n == 0) { return 0; }
    var kind = node_kind[n];
    if (kind == N_BIN) {
        fold(node_a[n]);
        fold(node_b[n]);
        if (node_kind[node_a[n]] == N_NUM && node_kind[node_b[n]] == N_NUM) {
            var x = node_a[node_a[n]];
            var y = node_a[node_b[n]];
            var op = node_c[n];
            var v = 0;
            if (op == T_PLUS) { v = x + y; }
            if (op == T_MINUS) { v = x - y; }
            if (op == T_STAR) { v = (x * y) % 100000; }
            if (op == T_DIV) { if (y != 0) { v = x / y; } }
            if (op == T_LT) { v = x < y; }
            if (op == T_EQ) { v = x == y; }
            node_kind[n] = N_NUM;
            node_a[n] = v;
            folded = folded + 1;
        }
        return 0;
    }
    if (kind == N_ASSIGN) { fold(node_b[n]); return 0; }
    if (kind == N_SEQ) { fold(node_a[n]); fold(node_b[n]); return 0; }
    if (kind == N_IF) {
        fold(node_a[n]); fold(node_b[n]); fold(node_c[n]);
        return 0;
    }
    if (kind == N_WHILE) { fold(node_a[n]); fold(node_b[n]); return 0; }
    return 0;
}

func count_kind(n, kind) {
    if (n == 0) { return 0; }
    var c = 0;
    if (node_kind[n] == kind) { c = 1; }
    var k = node_kind[n];
    if (k == N_BIN || k == N_SEQ || k == N_IF || k == N_WHILE) {
        c = c + count_kind(node_a[n], kind) + count_kind(node_b[n], kind);
        if (k == N_IF) { c = c + count_kind(node_c[n], kind); }
    }
    if (k == N_ASSIGN) { c = c + count_kind(node_b[n], kind); }
    return c;
}

func main() {
    putkw('b','g');
    var k;
    for (k = 0; k < 25; k = k + 1) { gen_stmt(0); }
    putkw('e','n');
    print src_len;
    next_tok();
    var root = parse_stmt();
    print nnodes;
    print lookups;
    fold(root);
    print folded;
    print count_kind(root, N_NUM);
    print count_kind(root, N_BIN);
}
"""

BENCHMARK = Benchmark(
    name="upas",
    language="Pascal",
    description="first pass of the MIPS Pascal compiler",
    source=SOURCE,
)
