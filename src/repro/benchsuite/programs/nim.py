"""nim -- a program to play the game of Nim (paper Appendix).

Three-heap Nim played by full game-tree search with memoisation, then
optimal self-play from many starting positions.  Small and extremely
call-intensive, like the Stanford course original.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Three-heap Nim: game-tree search with memoisation, then self-play.
var HEAP = 8;                 // heap size bound (positions 0..8)
array memo[1000];             // (a*10+b)*10+c -> 0 unknown, 1 win, 2 loss
var nodes = 0;                // search statistics
var games = 0;
var first_wins = 0;

func encode(a, b, c) {
    return (a * 10 + b) * 10 + c;
}

// 1 if the player to move wins from (a,b,c)
func wins(a, b, c) {
    var key = encode(a, b, c);
    var m = memo[key];
    if (m != 0) {
        return m == 1;
    }
    nodes = nodes + 1;
    if (a == 0 && b == 0 && c == 0) {
        memo[key] = 2;        // no move: current player loses
        return 0;
    }
    var take;
    for (take = 1; take <= a; take = take + 1) {
        if (!wins(a - take, b, c)) { memo[key] = 1; return 1; }
    }
    for (take = 1; take <= b; take = take + 1) {
        if (!wins(a, b - take, c)) { memo[key] = 1; return 1; }
    }
    for (take = 1; take <= c; take = take + 1) {
        if (!wins(a, b, c - take)) { memo[key] = 1; return 1; }
    }
    memo[key] = 2;
    return 0;
}

array move_a[1];
array move_b[1];
array move_c[1];

// find a winning move (or take one from the largest heap)
func choose(a, b, c) {
    var take;
    for (take = 1; take <= a; take = take + 1) {
        if (!wins(a - take, b, c)) {
            move_a[0] = a - take; move_b[0] = b; move_c[0] = c;
            return 1;
        }
    }
    for (take = 1; take <= b; take = take + 1) {
        if (!wins(a, b - take, c)) {
            move_a[0] = a; move_b[0] = b - take; move_c[0] = c;
            return 1;
        }
    }
    for (take = 1; take <= c; take = take + 1) {
        if (!wins(a, b, c - take)) {
            move_a[0] = a; move_b[0] = b; move_c[0] = c - take;
            return 1;
        }
    }
    // losing position: remove one token from the biggest heap
    if (a >= b && a >= c) { move_a[0] = a - 1; move_b[0] = b; move_c[0] = c; }
    else {
        if (b >= c) { move_a[0] = a; move_b[0] = b - 1; move_c[0] = c; }
        else { move_a[0] = a; move_b[0] = b; move_c[0] = c - 1; }
    }
    return 0;
}

// optimal self-play from (a,b,c); returns 1 if the first player wins
func play(a, b, c) {
    var turn = 0;             // 0 = first player to move
    while (a + b + c > 0) {
        choose(a, b, c);
        a = move_a[0]; b = move_b[0]; c = move_c[0];
        turn = 1 - turn;
    }
    // the player who made the last move (took the last token) wins
    return turn == 1;
}

func main() {
    var a; var b; var c;
    for (a = 0; a < HEAP; a = a + 1) {
        for (b = 0; b < HEAP; b = b + 1) {
            for (c = 0; c < HEAP; c = c + 1) {
                games = games + 1;
                if (play(a, b, c)) { first_wins = first_wins + 1; }
            }
        }
    }
    print nodes;
    print games;
    print first_wins;
    // cross-check: grundy theory says first player wins iff a^b^c != 0
    var mism = 0;
    for (a = 0; a < HEAP; a = a + 1) {
        for (b = 0; b < HEAP; b = b + 1) {
            for (c = 0; c < HEAP; c = c + 1) {
                var theory = (a ^ b ^ c) != 0;
                if (theory != wins(a, b, c)) { mism = mism + 1; }
            }
        }
    }
    print mism;
}
"""

BENCHMARK = Benchmark(
    name="nim",
    language="Pascal",
    description="a program to play the game of Nim",
    source=SOURCE,
)
