"""map -- a program to find a 4-coloring for a map (paper Appendix).

Backtracking search for 4-colorings of a synthetic planar-style region
adjacency graph, with a feasibility helper called at every assignment --
the classic course exercise's call pattern.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// 4-coloring of a map by backtracking.
var N = 14;                     // number of regions
array adj[200];                 // N x N adjacency matrix
array color[20];                // region -> 0..3, -1 unassigned
var solutions = 0;
var probes = 0;
var seed = 12345;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    var v = seed / 65536;
    return v % limit;
}

func edge(a, b) {
    adj[a * N + b] = 1;
    adj[b * N + a] = 1;
}

// chain + random chords: planar-ish, connected, irregular
func build_map() {
    var i;
    for (i = 0; i + 1 < N; i = i + 1) { edge(i, i + 1); }
    edge(0, N - 1);
    var chords = N * 2;
    for (i = 0; i < chords; i = i + 1) {
        var a = rnd(N);
        var b = rnd(N);
        if (a != b) { edge(a, b); }
    }
}

func feasible(region, c) {
    probes = probes + 1;
    var j;
    for (j = 0; j < N; j = j + 1) {
        if (adj[region * N + j] == 1 && color[j] == c) { return 0; }
    }
    return 1;
}

func solve(region) {
    if (region == N) {
        solutions = solutions + 1;
        return 0;
    }
    var c;
    var found = 0;
    for (c = 0; c < 4; c = c + 1) {
        if (feasible(region, c)) {
            color[region] = c;
            if (solve(region + 1)) { found = 1; }
            color[region] = -1;
            if (solutions >= 1000) { return found; }
        }
    }
    return found;
}

func first_coloring(region) {
    if (region == N) { return 1; }
    var c;
    for (c = 0; c < 4; c = c + 1) {
        if (feasible(region, c)) {
            color[region] = c;
            if (first_coloring(region + 1)) { return 1; }
            color[region] = -1;
        }
    }
    return 0;
}

func checksum() {
    var s = 0;
    var i;
    for (i = 0; i < N; i = i + 1) { s = s * 5 + color[i] + 1; }
    return s % 1000000007;
}

func main() {
    build_map();
    var i;
    for (i = 0; i < N; i = i + 1) { color[i] = -1; }
    if (first_coloring(0)) {
        print checksum();
    } else {
        print -1;
    }
    for (i = 0; i < N; i = i + 1) { color[i] = -1; }
    solve(0);
    print solutions;
    print probes;
}
"""

BENCHMARK = Benchmark(
    name="map",
    language="Pascal",
    description="a program to find a 4-coloring for a map",
    source=SOURCE,
)
