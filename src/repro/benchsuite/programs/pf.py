"""pf -- a Pascal pretty-printer written by Larry Weber (paper Appendix).

Tokenises a synthetic Pascal-ish character stream and re-emits it with
canonical spacing and block indentation, producing a checksum of the
emitted characters.  Token dispatch and emission run through small
procedures, as the original did.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Pascal pretty-printer: tokenize, then re-emit with indentation.
array src[4000];              // input characters
var src_len = 0;
array toks[2000];             // token codes
array tokv[2000];             // token values (identifier hash / number)
var ntoks = 0;

// token codes
var T_ID = 1;
var T_NUM = 2;
var T_BEGIN = 3;
var T_END = 4;
var T_IF = 5;
var T_THEN = 6;
var T_ELSE = 7;
var T_WHILE = 8;
var T_DO = 9;
var T_ASSIGN = 10;            // :=
var T_SEMI = 11;
var T_PLUS = 12;
var T_STAR = 13;
var T_LP = 14;
var T_RP = 15;
var T_LT = 16;

var out_col = 0;
var out_line = 0;
var indent = 0;
var check = 0;

var seed = 4242;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return (seed / 65536) % limit;
}

func put_src(ch) {
    src[src_len] = ch;
    src_len = src_len + 1;
}

func put_word(a, b, c, d, e) {
    if (a != 0) { put_src(a); }
    if (b != 0) { put_src(b); }
    if (c != 0) { put_src(c); }
    if (d != 0) { put_src(d); }
    if (e != 0) { put_src(e); }
    put_src(' ');
}

// emit one random statement into the source buffer
func gen_stmt(depth) {
    var kind = rnd(4);
    if (depth > 3) { kind = 0; }
    if (kind == 0) {
        // x := n + y * 2 ;
        put_src('a' + rnd(26));
        put_src(':'); put_src('=');
        put_src('0' + rnd(10));
        put_src('+');
        put_src('a' + rnd(26));
        put_src('*');
        put_src('0' + rnd(10));
        put_src(';');
        return 1;
    }
    if (kind == 1) {
        put_word('b','e','g','i','n');
        var n = 1 + rnd(3);
        var i;
        var stmts = 0;
        for (i = 0; i < n; i = i + 1) { stmts = stmts + gen_stmt(depth + 1); }
        put_word('e','n','d',0,0);
        put_src(';');
        return stmts;
    }
    if (kind == 2) {
        put_word('i','f',0,0,0);
        put_src('a' + rnd(26));
        put_src('<');
        put_src('0' + rnd(10));
        put_word(0,0,0,0,0);
        put_word('t','h','e','n',0);
        return gen_stmt(depth + 1);
    }
    put_word('w','h','i','l','e');
    put_src('a' + rnd(26));
    put_src('<');
    put_src('0' + rnd(10));
    put_word(0,0,0,0,0);
    put_word('d','o',0,0,0);
    return gen_stmt(depth + 1);
}

func is_alpha(ch) { return ch >= 'a' && ch <= 'z'; }
func is_digit(ch) { return ch >= '0' && ch <= '9'; }

func add_tok(code, v) {
    toks[ntoks] = code;
    tokv[ntoks] = v;
    ntoks = ntoks + 1;
}

func keyword(h, len) {
    // recognise keywords by hash+length (collision-free for our set)
    if (len == 5 && h == 'b'+'e'+'g'+'i'+'n') { return T_BEGIN; }
    if (len == 3 && h == 'e'+'n'+'d') { return T_END; }
    if (len == 2 && h == 'i'+'f') { return T_IF; }
    if (len == 4 && h == 't'+'h'+'e'+'n') { return T_THEN; }
    if (len == 4 && h == 'e'+'l'+'s'+'e') { return T_ELSE; }
    if (len == 5 && h == 'w'+'h'+'i'+'l'+'e') { return T_WHILE; }
    if (len == 2 && h == 'd'+'o') { return T_DO; }
    return 0;
}

func scan() {
    var i = 0;
    while (i < src_len) {
        var ch = src[i];
        if (ch == ' ') { i = i + 1; }
        else { if (is_alpha(ch)) {
            var h = 0;
            var len = 0;
            while (i < src_len && is_alpha(src[i])) {
                h = h + src[i];
                len = len + 1;
                i = i + 1;
            }
            var kw = keyword(h, len);
            if (kw != 0) { add_tok(kw, 0); }
            else { add_tok(T_ID, h); }
        } else { if (is_digit(ch)) {
            var v = 0;
            while (i < src_len && is_digit(src[i])) {
                v = v * 10 + src[i] - '0';
                i = i + 1;
            }
            add_tok(T_NUM, v);
        } else { if (ch == ':' && i + 1 < src_len && src[i+1] == '=') {
            add_tok(T_ASSIGN, 0);
            i = i + 2;
        } else {
            if (ch == ';') { add_tok(T_SEMI, 0); }
            if (ch == '+') { add_tok(T_PLUS, 0); }
            if (ch == '*') { add_tok(T_STAR, 0); }
            if (ch == '(') { add_tok(T_LP, 0); }
            if (ch == ')') { add_tok(T_RP, 0); }
            if (ch == '<') { add_tok(T_LT, 0); }
            i = i + 1;
        } } }
        }
    }
}

func emit_char(ch) {
    check = (check * 31 + ch + out_col) % 1000000007;
    out_col = out_col + 1;
}

func newline() {
    emit_char(10);
    out_line = out_line + 1;
    out_col = 0;
    var i;
    for (i = 0; i < indent * 2; i = i + 1) { emit_char(' '); }
}

func emit_word(code, v) {
    if (code == T_ID) { emit_char('a' + v % 26); return 0; }
    if (code == T_NUM) {
        if (v >= 10) { emit_char('0' + v / 10 % 10); }
        emit_char('0' + v % 10);
        return 0;
    }
    if (code == T_BEGIN) { emit_char('B'); return 0; }
    if (code == T_END) { emit_char('E'); return 0; }
    if (code == T_IF) { emit_char('I'); return 0; }
    if (code == T_THEN) { emit_char('T'); return 0; }
    if (code == T_WHILE) { emit_char('W'); return 0; }
    if (code == T_DO) { emit_char('D'); return 0; }
    if (code == T_ASSIGN) { emit_char(':'); emit_char('='); return 0; }
    if (code == T_SEMI) { emit_char(';'); return 0; }
    if (code == T_PLUS) { emit_char('+'); return 0; }
    if (code == T_STAR) { emit_char('*'); return 0; }
    if (code == T_LT) { emit_char('<'); return 0; }
    emit_char('?');
    return 0;
}

func pretty() {
    var i;
    for (i = 0; i < ntoks; i = i + 1) {
        var code = toks[i];
        if (code == T_BEGIN) {
            newline();
            emit_word(code, 0);
            indent = indent + 1;
            newline();
        } else { if (code == T_END) {
            indent = indent - 1;
            newline();
            emit_word(code, 0);
        } else { if (code == T_SEMI) {
            emit_word(code, 0);
            newline();
        } else {
            emit_word(code, tokv[i]);
            emit_char(' ');
        } } }
    }
}

func main() {
    put_word('b','e','g','i','n');
    var stmts = 0;
    var k;
    for (k = 0; k < 10; k = k + 1) {
        stmts = stmts + gen_stmt(1);
    }
    put_word('e','n','d',0,0);
    print src_len;
    scan();
    print ntoks;
    print stmts;
    pretty();
    print out_line;
    print check;
}
"""

BENCHMARK = Benchmark(
    name="pf",
    language="Pascal",
    description="a Pascal pretty-printer written by Larry Weber",
    source=SOURCE,
)
