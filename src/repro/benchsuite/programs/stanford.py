"""stanford -- the benchmark suite collected by John Hennessy (paper
Appendix).

The classic small-program collection: Perm, Towers, Queens, Intmm,
Bubble, Quick and Tree-insert, each printing a checksum, sized for the
simulator.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Stanford integer suite: perm, towers, queens, intmm, bubble, quick, tree.
var seed = 74755;

func rnd() {
    seed = (seed * 1309 + 13849) % 65536;
    return seed;
}

// ---------------- Perm ----------------
array permarray[12];
var pctr = 0;

func swap_perm(i, j) {
    var t = permarray[i];
    permarray[i] = permarray[j];
    permarray[j] = t;
}

func permute(n) {
    pctr = pctr + 1;
    if (n != 1) {
        permute(n - 1);
        var k;
        for (k = n - 1; k >= 1; k = k - 1) {
            swap_perm(n - 1, k - 1);
            permute(n - 1);
            swap_perm(n - 1, k - 1);
        }
    }
}

func do_perm() {
    var i;
    for (i = 0; i < 7; i = i + 1) { permarray[i] = i; }
    pctr = 0;
    permute(7);
    return pctr;
}

// ---------------- Towers ----------------
array stackp[4];               // top disc index per peg
array cellcont[40];            // linked cells: disc size
array cellnext[40];
var freelist = 0;
var movesdone = 0;

func tower_error(code) { print 0 - code; return 0; }

func makenull(s) { stackp[s] = 0; }

func getelement() {
    if (freelist == 0) { return tower_error(1); }
    var temp = freelist;
    freelist = cellnext[freelist];
    return temp;
}

func tower_push(i, s) {
    if (stackp[s] > 0 && cellcont[stackp[s]] <= i) {
        return tower_error(2);
    }
    var el = getelement();
    cellnext[el] = stackp[s];
    cellcont[el] = i;
    stackp[s] = el;
    return 1;
}

func init_peg(s, n) {
    makenull(s);
    var discctr;
    for (discctr = n; discctr >= 1; discctr = discctr - 1) {
        tower_push(discctr, s);
    }
}

func tower_pop(s) {
    if (stackp[s] == 0) { return tower_error(3); }
    var el = stackp[s];
    var v = cellcont[el];
    stackp[s] = cellnext[el];
    cellnext[el] = freelist;
    freelist = el;
    return v;
}

func tower_move(s1, s2) {
    tower_push(tower_pop(s1), s2);
    movesdone = movesdone + 1;
}

func towers(i, j, k) {
    if (k == 1) { tower_move(i, j); }
    else {
        var other = 6 - i - j;
        towers(i, other, k - 1);
        tower_move(i, j);
        towers(other, j, k - 1);
    }
}

func do_towers() {
    var i;
    freelist = 0;
    for (i = 1; i < 40; i = i + 1) {
        cellnext[i] = freelist;
        freelist = i;
    }
    init_peg(1, 10);
    makenull(2);
    makenull(3);
    movesdone = 0;
    towers(1, 2, 10);
    return movesdone;
}

// ---------------- Queens ----------------
array qa[10];                  // column free
array qb[20];                  // diagonal 1 free
array qc[20];                  // diagonal 2 free
array qx[10];
var qcount = 0;

func queens_try(row) {
    var col;
    for (col = 0; col < 8; col = col + 1) {
        if (qa[col] && qb[row + col] && qc[row - col + 7]) {
            qx[row] = col;
            qa[col] = 0;
            qb[row + col] = 0;
            qc[row - col + 7] = 0;
            if (row == 7) { qcount = qcount + 1; }
            else { queens_try(row + 1); }
            qa[col] = 1;
            qb[row + col] = 1;
            qc[row - col + 7] = 1;
        }
    }
}

func do_queens() {
    var i;
    for (i = 0; i < 10; i = i + 1) { qa[i] = 1; }
    for (i = 0; i < 20; i = i + 1) { qb[i] = 1; qc[i] = 1; }
    qcount = 0;
    queens_try(0);
    return qcount;
}

// ---------------- Intmm ----------------
var MM = 12;
array ima[144];
array imb[144];
array imr[144];

func init_matrix(base_is_a) {
    var i; var j;
    for (i = 0; i < MM; i = i + 1) {
        for (j = 0; j < MM; j = j + 1) {
            var v = (rnd() % 120) - 60;
            if (base_is_a) { ima[i * MM + j] = v; }
            else { imb[i * MM + j] = v; }
        }
    }
}

func inner_product(row, col) {
    var s = 0;
    var k;
    for (k = 0; k < MM; k = k + 1) {
        s = s + ima[row * MM + k] * imb[k * MM + col];
    }
    return s;
}

func do_intmm() {
    init_matrix(1);
    init_matrix(0);
    var i; var j;
    for (i = 0; i < MM; i = i + 1) {
        for (j = 0; j < MM; j = j + 1) {
            imr[i * MM + j] = inner_product(i, j);
        }
    }
    var trace = 0;
    for (i = 0; i < MM; i = i + 1) { trace = trace + imr[i * MM + i]; }
    return trace;
}

// ---------------- Bubble & Quick ----------------
var SORTN = 120;
array sortlist[130];

func init_list() {
    var i;
    var littlest = 100000;
    var biggest = -100000;
    for (i = 0; i < SORTN; i = i + 1) {
        var v = rnd() % 10000 - 5000;
        sortlist[i] = v;
        if (v < littlest) { littlest = v; }
        if (v > biggest) { biggest = v; }
    }
    return biggest - littlest;
}

func do_bubble() {
    var spread = init_list();
    var top = SORTN - 1;
    while (top > 0) {
        var i;
        for (i = 0; i < top; i = i + 1) {
            if (sortlist[i] > sortlist[i + 1]) {
                var t = sortlist[i];
                sortlist[i] = sortlist[i + 1];
                sortlist[i + 1] = t;
            }
        }
        top = top - 1;
    }
    return sortlist[0] + sortlist[SORTN - 1] + spread;
}

func quicksort(lo, hi) {
    var i = lo;
    var j = hi;
    var pivot = sortlist[(lo + hi) / 2];
    while (i <= j) {
        while (sortlist[i] < pivot) { i = i + 1; }
        while (pivot < sortlist[j]) { j = j - 1; }
        if (i <= j) {
            var t = sortlist[i];
            sortlist[i] = sortlist[j];
            sortlist[j] = t;
            i = i + 1;
            j = j - 1;
        }
    }
    if (lo < j) { quicksort(lo, j); }
    if (i < hi) { quicksort(i, hi); }
}

func do_quick() {
    var spread = init_list();
    quicksort(0, SORTN - 1);
    var sorted = 1;
    var i;
    for (i = 0; i + 1 < SORTN; i = i + 1) {
        if (sortlist[i] > sortlist[i + 1]) { sorted = 0; }
    }
    return sortlist[0] + sortlist[SORTN - 1] + spread + sorted;
}

// ---------------- Trees (binary search tree insert) ----------------
array tval[300];
array tleft[300];
array tright[300];
var tnodes = 0;

func tree_insert(node, v) {
    if (v < tval[node]) {
        if (tleft[node] == 0) {
            tnodes = tnodes + 1;
            tval[tnodes] = v;
            tleft[tnodes] = 0;
            tright[tnodes] = 0;
            tleft[node] = tnodes;
        } else {
            tree_insert(tleft[node], v);
        }
    } else {
        if (tright[node] == 0) {
            tnodes = tnodes + 1;
            tval[tnodes] = v;
            tleft[tnodes] = 0;
            tright[tnodes] = 0;
            tright[node] = tnodes;
        } else {
            tree_insert(tright[node], v);
        }
    }
}

func tree_depth(node) {
    if (node == 0) { return 0; }
    var l = tree_depth(tleft[node]);
    var r = tree_depth(tright[node]);
    if (l > r) { return l + 1; }
    return r + 1;
}

func do_trees() {
    tnodes = 1;
    tval[1] = rnd() % 10000;
    tleft[1] = 0;
    tright[1] = 0;
    var i;
    for (i = 0; i < 200; i = i + 1) {
        tree_insert(1, rnd() % 10000);
    }
    return tree_depth(1) * 1000 + tnodes;
}

func main() {
    print do_perm();
    print do_towers();
    print do_queens();
    print do_intmm();
    print do_bubble();
    print do_quick();
    print do_trees();
}
"""

BENCHMARK = Benchmark(
    name="stanford",
    language="Pascal",
    description="a benchmark suite collected by John Hennessy",
    source=SOURCE,
)
