"""as1 -- the MIPS assembler/reorganizer (paper Appendix).

A two-pass assembler for a toy RISC: pass one scans generated assembly
token streams and collects label addresses into a hashed symbol table;
pass two encodes instructions (resolving label operands) and then a
"reorganizer" pass fills load-delay and branch-delay slots by swapping
independent neighbours, as the MIPS as1 did.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Two-pass assembler + delay-slot reorganizer.
// Instruction stream: (opcode, a, b, c) quads; labels are pseudo-ops.
var N_INSTR = 700;
array in_op[800];
array in_a[800];
array in_b[800];
array in_c[800];

var I_LABEL = 1;              // a = label id
var I_ADD = 2;                // a,b,c regs
var I_LOAD = 3;               // a reg <- mem(b reg)
var I_STORE = 4;              // mem(b reg) <- a reg
var I_BRANCH = 5;             // if a reg, goto label b
var I_JUMP = 6;               // goto label b
var I_NOP = 7;

// hashed symbol table: label id -> address
var HASHSZ = 512;
array sym_key[512];
array sym_val[512];
var sym_probes = 0;

array out_word[900];
var out_len = 0;

var seed = 57721;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return (seed / 65536) % limit;
}

func gen_input() {
    var i;
    var next_label = 0;
    for (i = 0; i < N_INSTR; i = i + 1) {
        var k = rnd(10);
        if (k == 0 && next_label < 60) {
            in_op[i] = I_LABEL;
            in_a[i] = next_label;
            next_label = next_label + 1;
        } else { if (k <= 4) {
            in_op[i] = I_ADD;
            in_a[i] = rnd(16); in_b[i] = rnd(16); in_c[i] = rnd(16);
        } else { if (k <= 6) {
            in_op[i] = I_LOAD;
            in_a[i] = rnd(16); in_b[i] = rnd(16);
        } else { if (k == 7) {
            in_op[i] = I_STORE;
            in_a[i] = rnd(16); in_b[i] = rnd(16);
        } else { if (k == 8 && next_label > 0) {
            in_op[i] = I_BRANCH;
            in_a[i] = rnd(16); in_b[i] = rnd(next_label);
        } else {
            in_op[i] = I_ADD;
            in_a[i] = rnd(16); in_b[i] = rnd(16); in_c[i] = rnd(16);
        } } } } }
    }
}

func hash_slot(key) {
    var h = (key * 2654435761) % HASHSZ;
    if (h < 0) { h = h + HASHSZ; }
    return h;
}

func sym_define(key, val) {
    var h = hash_slot(key);
    while (sym_key[h] != 0 && sym_key[h] != key + 1) {
        sym_probes = sym_probes + 1;
        h = (h + 1) % HASHSZ;
    }
    sym_key[h] = key + 1;
    sym_val[h] = val;
}

func sym_lookup(key) {
    var h = hash_slot(key);
    while (sym_key[h] != 0) {
        sym_probes = sym_probes + 1;
        if (sym_key[h] == key + 1) { return sym_val[h]; }
        h = (h + 1) % HASHSZ;
    }
    return -1;
}

// pass 1: assign addresses to labels (labels emit no code)
func pass1() {
    var addr = 0;
    var i;
    for (i = 0; i < N_INSTR; i = i + 1) {
        if (in_op[i] == I_LABEL) {
            sym_define(in_a[i], addr);
        } else {
            addr = addr + 1;
        }
    }
    return addr;
}

func encode(op, a, b, c) {
    return ((op * 16 + a) * 16 + b) * 4096 + (c % 4096);
}

// pass 2: emit encoded words with resolved label operands
func pass2() {
    var i;
    for (i = 0; i < N_INSTR; i = i + 1) {
        var op = in_op[i];
        if (op == I_LABEL) { continue; }
        var c = in_c[i];
        if (op == I_BRANCH || op == I_JUMP) {
            c = sym_lookup(in_b[i]);
            if (c < 0) { c = 0; }
        }
        out_word[out_len] = encode(op, in_a[i] % 16, in_b[i] % 16, c);
        out_len = out_len + 1;
    }
}

func word_op(w) { return (w / 4096) / 256; }
func word_a(w) { return (w / 4096) / 16 % 16; }
func word_b(w) { return (w / 4096) % 16; }

func reads_reg(w, r) {
    var op = word_op(w);
    if (op == I_ADD) { return word_b(w) == r || (w % 4096) % 16 == r; }
    if (op == I_LOAD) { return word_b(w) == r; }
    if (op == I_STORE) { return word_a(w) == r || word_b(w) == r; }
    if (op == I_BRANCH) { return word_a(w) == r; }
    return 0;
}

func writes_reg(w) {
    var op = word_op(w);
    if (op == I_ADD || op == I_LOAD) { return word_a(w); }
    return -1;
}

func is_branchy(w) {
    var op = word_op(w);
    return op == I_BRANCH || op == I_JUMP;
}

// reorganizer: after each load, if the next instruction reads the loaded
// register, try to swap in a later independent instruction (delay slot)
func reorganize() {
    var swaps = 0;
    var i;
    for (i = 0; i + 2 < out_len; i = i + 1) {
        var w = out_word[i];
        if (word_op(w) != I_LOAD) { continue; }
        var dest = word_a(w);
        var nxt = out_word[i + 1];
        if (!reads_reg(nxt, dest) || is_branchy(nxt)) { continue; }
        // look ahead for an independent instruction to pull in
        var j;
        for (j = i + 2; j < out_len && j < i + 6; j = j + 1) {
            var cand = out_word[j];
            if (is_branchy(cand)) { break; }
            var cw = writes_reg(cand);
            if (reads_reg(cand, dest)) { continue; }
            if (cw >= 0 && (reads_reg(nxt, cw) || cw == dest)) { continue; }
            // swap cand to position i+1, shifting the rest down
            var k;
            for (k = j; k > i + 1; k = k - 1) {
                out_word[k] = out_word[k - 1];
            }
            out_word[i + 1] = cand;
            swaps = swaps + 1;
            break;
        }
    }
    return swaps;
}

func checksum() {
    var s = 0;
    var i;
    for (i = 0; i < out_len; i = i + 1) {
        s = (s * 131 + out_word[i]) % 1000000007;
    }
    return s;
}

func main() {
    gen_input();
    var code_size = pass1();
    pass2();
    print code_size;
    print out_len;
    print sym_probes;
    var swaps = reorganize();
    print swaps;
    print checksum();
}
"""

BENCHMARK = Benchmark(
    name="as1",
    language="Pascal/C",
    description="the MIPS assembler/reorganizer",
    source=SOURCE,
)
