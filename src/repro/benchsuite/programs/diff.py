"""diff -- the UNIX file comparison utility (paper Appendix).

LCS-based comparison of two synthetic "files" (arrays of line hashes
derived from a deterministic generator plus systematic edits), with a
dynamic-programming table, backtracking edit-script extraction, and a
hunk counter -- the same algorithmic core as diff(1).
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// LCS diff over arrays of line hashes.
var NA = 90;
var NB = 95;
array filea[100];
array fileb[100];
array lcs[10000];              // (NA+1) x (NB+1) DP table
array script[400];             // edit script: +line / -line tags
var script_len = 0;
var seed = 999;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return (seed / 65536) % limit;
}

func line_hash(doc, i) {
    // synthetic line content hash
    return (doc * 131 + i * 31 + (i % 7) * 17) % 1000;
}

func build_files() {
    var i;
    for (i = 0; i < NA; i = i + 1) { filea[i] = line_hash(1, i); }
    var j = 0;
    for (i = 0; i < NA && j < NB; i = i + 1) {
        var r = rnd(10);
        if (r < 7) {
            fileb[j] = filea[i];          // unchanged line
            j = j + 1;
        } else {
            if (r < 9) {
                fileb[j] = line_hash(2, i);  // replaced line
                j = j + 1;
            }
            // r == 9: line deleted from b
        }
        if (rnd(10) == 0 && j < NB) {
            fileb[j] = line_hash(3, i);      // inserted line
            j = j + 1;
        }
    }
    while (j < NB) {
        fileb[j] = line_hash(4, j);
        j = j + 1;
    }
}

func cell(i, j) { return lcs[i * (NB + 1) + j]; }

func set_cell(i, j, v) { lcs[i * (NB + 1) + j] = v; }

func max2(a, b) {
    if (a > b) { return a; }
    return b;
}

func fill_table() {
    var i; var j;
    for (i = 0; i <= NA; i = i + 1) { set_cell(i, 0, 0); }
    for (j = 0; j <= NB; j = j + 1) { set_cell(0, j, 0); }
    for (i = 1; i <= NA; i = i + 1) {
        for (j = 1; j <= NB; j = j + 1) {
            if (filea[i - 1] == fileb[j - 1]) {
                set_cell(i, j, cell(i - 1, j - 1) + 1);
            } else {
                set_cell(i, j, max2(cell(i - 1, j), cell(i, j - 1)));
            }
        }
    }
    return cell(NA, NB);
}

func emit(tag, line) {
    script[script_len] = tag * 1000 + line;
    script_len = script_len + 1;
}

// recursive backtrack over the DP table, emitting the edit script
func backtrack(i, j) {
    if (i > 0 && j > 0 && filea[i - 1] == fileb[j - 1]) {
        backtrack(i - 1, j - 1);
        return;
    }
    if (j > 0 && (i == 0 || cell(i, j - 1) >= cell(i - 1, j))) {
        backtrack(i, j - 1);
        emit(1, j - 1);        // insert b[j-1]
        return;
    }
    if (i > 0) {
        backtrack(i - 1, j);
        emit(2, i - 1);        // delete a[i-1]
    }
}

func count_hunks() {
    var hunks = 0;
    var prev_tag = 0;
    var k;
    for (k = 0; k < script_len; k = k + 1) {
        var tag = script[k] / 1000;
        if (tag != prev_tag) { hunks = hunks + 1; }
        prev_tag = tag;
    }
    return hunks;
}

func script_checksum() {
    var s = 0;
    var k;
    for (k = 0; k < script_len; k = k + 1) {
        s = (s * 31 + script[k]) % 1000000007;
    }
    return s;
}

func main() {
    build_files();
    var common = fill_table();
    print common;
    backtrack(NA, NB);
    print script_len;
    print count_hunks();
    print script_checksum();
}
"""

BENCHMARK = Benchmark(
    name="diff",
    language="C",
    description="the UNIX file comparison utility",
    source=SOURCE,
)
