"""awk -- the Awk pattern processing and scanning utility (paper Appendix).

Scans synthetic text lines, matches them against a small set of patterns
(literals with ``.`` and ``*`` wildcards via recursive matching), splits
matching lines into fields, and accumulates per-pattern actions -- the
scan/match/act structure of awk.
"""

from repro.benchsuite.registry import Benchmark

SOURCE = r"""
// Pattern scanning and processing.
array text[12000];             // all lines, NUL-separated
array line_start[400];
var nlines = 0;
var text_len = 0;

array pattern[80];             // 4 patterns x 20 chars, NUL-terminated
array pat_hits[4];
array pat_sum[4];
var seed = 31415;

func rnd(limit) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return (seed / 65536) % limit;
}

func put(ch) {
    text[text_len] = ch;
    text_len = text_len + 1;
}

func gen_word(kind) {
    if (kind == 0) { put('c'); put('a'); put('t'); return 0; }
    if (kind == 1) { put('c'); put('u'); put('t'); return 0; }
    if (kind == 2) { put('d'); put('o'); put('g'); return 0; }
    if (kind == 3) {
        var n = 1 + rnd(3);
        var i;
        for (i = 0; i < n; i = i + 1) { put('0' + rnd(10)); }
        return 0;
    }
    var len = 2 + rnd(5);
    var j;
    for (j = 0; j < len; j = j + 1) { put('a' + rnd(26)); }
    return 0;
}

func gen_lines() {
    var li;
    for (li = 0; li < 220; li = li + 1) {
        line_start[nlines] = text_len;
        nlines = nlines + 1;
        var words = 2 + rnd(5);
        var w;
        for (w = 0; w < words; w = w + 1) {
            if (w > 0) { put(' '); }
            gen_word(rnd(6));
        }
        put(0);
    }
}

func set_pattern(p, a, b, c, d, e) {
    var off = p * 20;
    pattern[off] = a;
    pattern[off + 1] = b;
    pattern[off + 2] = c;
    pattern[off + 3] = d;
    pattern[off + 4] = e;
}

// recursive regex match: '.' any char, '*' zero-or-more of previous
func match_here(poff, toff) {
    var pc = pattern[poff];
    if (pc == 0) { return 1; }
    if (pattern[poff + 1] == '*') {
        return match_star(pc, poff + 2, toff);
    }
    var tc = text[toff];
    if (tc != 0 && (pc == '.' || pc == tc)) {
        return match_here(poff + 1, toff + 1);
    }
    return 0;
}

func match_star(pc, poff, toff) {
    // try zero occurrences first, then eat matching chars
    while (1) {
        if (match_here(poff, toff)) { return 1; }
        var tc = text[toff];
        if (tc == 0 || (pc != '.' && pc != tc)) { return 0; }
        toff = toff + 1;
    }
    return 0;
}

func match_line(p, start) {
    var off = start;
    while (1) {
        if (match_here(p * 20, off)) { return 1; }
        if (text[off] == 0) { return 0; }
        off = off + 1;
    }
    return 0;
}

func is_digit(ch) { return ch >= '0' && ch <= '9'; }

// split a line into fields and sum its numeric fields
func sum_numeric_fields(start) {
    var off = start;
    var total = 0;
    while (text[off] != 0) {
        while (text[off] == ' ') { off = off + 1; }
        if (text[off] == 0) { break; }
        var allnum = 1;
        var v = 0;
        while (text[off] != 0 && text[off] != ' ') {
            if (is_digit(text[off])) { v = v * 10 + text[off] - '0'; }
            else { allnum = 0; }
            off = off + 1;
        }
        if (allnum) { total = total + v; }
    }
    return total;
}

func run_patterns() {
    var li;
    for (li = 0; li < nlines; li = li + 1) {
        var start = line_start[li];
        var p;
        for (p = 0; p < 4; p = p + 1) {
            if (match_line(p, start)) {
                pat_hits[p] = pat_hits[p] + 1;
                pat_sum[p] = pat_sum[p] + sum_numeric_fields(start);
            }
        }
    }
}

func main() {
    gen_lines();
    set_pattern(0, 'c', '.', 't', 0, 0);      // c.t
    set_pattern(1, 'd', 'o', 'g', 0, 0);      // dog
    set_pattern(2, 'a', '*', 'b', 0, 0);      // a*b
    set_pattern(3, '.', '*', '7', 0, 0);      // .*7 (any line with a 7)
    run_patterns();
    print nlines;
    var p;
    for (p = 0; p < 4; p = p + 1) {
        print pat_hits[p];
        print pat_sum[p];
    }
}
"""

BENCHMARK = Benchmark(
    name="awk",
    language="C",
    description="the Awk pattern processing and scanning utility from UNIX",
    source=SOURCE,
)
