"""Command-line report generator.

Usage::

    python -m repro.benchsuite.report table1 [names...]
    python -m repro.benchsuite.report table2 [names...]
    python -m repro.benchsuite.report extensions [names...]
    python -m repro.benchsuite.report all
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional

from repro.benchsuite.harness import (
    format_table1,
    format_table2,
    run_suite,
    TABLE1_CONFIGS,
    TABLE2_CONFIGS,
)
from repro.benchsuite.registry import load_benchmarks
from repro.pipeline.driver import compile_program
from repro.pipeline.options import O3_SW
from repro.pipeline.profile import collect_block_profile, profile_guided_options
from repro.sim.stats import percent_reduction


def format_extensions(names=None) -> str:
    """Extra table: scalar-traffic reduction of the two extensions over
    plain -O3+SW, on the benchmark suite."""
    benches = load_benchmarks()
    selected = list(names) if names else list(benches)
    lines = [
        "Extensions: % further reduction in scalar loads/stores vs -O3+SW",
        f"{'program':<10s} {'modref':>9s} {'profile':>9s}",
        "-" * 30,
    ]
    for name in selected:
        src = benches[name].source
        base = compile_program(src, O3_SW).run()
        modref = compile_program(
            src, O3_SW.with_(ipra_globals=True)
        ).run()
        profile = collect_block_profile(src, O3_SW)
        tuned = compile_program(
            src, profile_guided_options(O3_SW, profile)
        ).run()
        assert base.output == modref.output == tuned.output
        lines.append(
            f"{name:<10s} "
            f"{percent_reduction(base.scalar_memops, modref.scalar_memops):>8.1f}% "
            f"{percent_reduction(base.scalar_memops, tuned.scalar_memops):>8.1f}%"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    which = args[0] if args else "all"
    names = args[1:] or None
    t0 = time.time()
    if which in ("table1", "all"):
        results = run_suite(TABLE1_CONFIGS, names)
        print(format_table1(results))
        print()
    if which in ("table2", "all"):
        results = run_suite(TABLE2_CONFIGS, names)
        print(format_table2(results))
        print()
    if which in ("extensions",):
        print(format_extensions(names))
        print()
    print(f"[generated in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
