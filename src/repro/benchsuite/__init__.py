"""The paper's 13-benchmark suite and the Table 1 / Table 2 harness."""

from repro.benchsuite.harness import (
    BenchResult,
    format_table1,
    format_table2,
    run_benchmark,
    run_suite,
    TABLE1_CONFIGS,
    TABLE2_CONFIGS,
)
from repro.benchsuite.registry import Benchmark, benchmark_names, load_benchmarks

__all__ = [
    "BenchResult",
    "format_table1",
    "format_table2",
    "run_benchmark",
    "run_suite",
    "TABLE1_CONFIGS",
    "TABLE2_CONFIGS",
    "Benchmark",
    "benchmark_names",
    "load_benchmarks",
]
