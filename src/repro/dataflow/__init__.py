"""Iterative dataflow: generic framework, liveness, ANT/AV."""

from repro.dataflow.antav import AntAv, solve_ant_av
from repro.dataflow.framework import DataflowProblem, solve
from repro.dataflow.liveness import (
    Liveness,
    compute_liveness,
    instruction_live_sets,
    live_across_calls,
)

__all__ = [
    "AntAv",
    "solve_ant_av",
    "DataflowProblem",
    "solve",
    "Liveness",
    "compute_liveness",
    "instruction_live_sets",
    "live_across_calls",
]
