"""Anticipability (ANT) and availability (AV) of register uses.

These are the paper's equations (3.1)-(3.4), solved over int bitmasks (one
bit per machine register, the paper's "word of storage"):

    ANTOUT_i = false                      if i is an exit
             = AND_{j in succ(i)} ANTIN_j  otherwise            (3.1)
    ANTIN_i  = APP_i  OR  ANTOUT_i                              (3.2)
    AVIN_i   = false                      if i is the entry
             = AND_{j in pred(i)} AVOUT_j  otherwise            (3.3)
    AVOUT_i  = APP_i  OR  AVIN_i                                (3.4)

The paper's (3.3) reads "if i is an exit", an evident typo: availability
accumulates along forward paths so its boundary is the entry block
(cf. Morel-Renvoise); we implement the corrected form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cfg.cfg import CFG
from repro.dataflow.framework import DataflowProblem, solve


@dataclass
class AntAv:
    """Solved ANT/AV attributes, one bitmask per block."""

    antin: List[int]
    antout: List[int]
    avin: List[int]
    avout: List[int]


def solve_ant_av(cfg: CFG, app: Sequence[int], all_mask: int) -> AntAv:
    """Solve the four attributes for APP masks ``app`` over ``cfg``.

    ``all_mask`` is the top element (all registers of interest).
    """
    app = list(app)

    # ANT: backward, meet = AND, boundary (at exits) = 0
    def ant_transfer(b: int, antout: int) -> int:
        return app[b] | antout

    ant_problem: DataflowProblem[int] = DataflowProblem(
        forward=False,
        top=all_mask,
        boundary=0,
        meet=lambda a, b: a & b,
        transfer=ant_transfer,
    )
    antin, antout = solve(cfg, ant_problem)

    # AV: forward, meet = AND, boundary (at entry) = 0
    def av_transfer(b: int, avin: int) -> int:
        return app[b] | avin

    av_problem: DataflowProblem[int] = DataflowProblem(
        forward=True,
        top=all_mask,
        boundary=0,
        meet=lambda a, b: a & b,
        transfer=av_transfer,
    )
    avin, avout = solve(cfg, av_problem)

    return AntAv(antin=antin, antout=antout, avin=avin, avout=avout)
