"""Liveness of virtual registers.

Block-level live-in/live-out sets drive live-range construction; the
backward per-instruction walk (:func:`instruction_live_sets`) drives
interference edges and the code generator's caller-save decisions.

Global scalars that are register-allocation candidates (call-free
procedures -- see ``repro.regalloc.candidates``) are pinned live at every
exit and treated as defined at entry, modelling the load-at-entry /
store-at-exit strategy for register-resident globals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Sequence, Set, Tuple

from repro.cfg.cfg import CFG
from repro.dataflow.framework import DataflowProblem, solve
from repro.ir.function import BasicBlock
from repro.ir.instructions import IRInstr
from repro.ir.values import VReg


@dataclass
class Liveness:
    cfg: CFG
    live_in: List[FrozenSet[VReg]] = field(default_factory=list)
    live_out: List[FrozenSet[VReg]] = field(default_factory=list)
    use: List[FrozenSet[VReg]] = field(default_factory=list)
    defs: List[FrozenSet[VReg]] = field(default_factory=list)


def _block_use_def(block: BasicBlock) -> Tuple[Set[VReg], Set[VReg]]:
    """Upward-exposed uses and defs of one block."""
    use: Set[VReg] = set()
    defs: Set[VReg] = set()
    for ins in block.instrs:
        for v in ins.use_vregs():
            if v not in defs:
                use.add(v)
        for d in ins.defs():
            defs.add(d)
    for v in block.terminator.use_vregs():
        if v not in defs:
            use.add(v)
    return use, defs


def compute_liveness(
    cfg: CFG, exit_live: Sequence[VReg] = ()
) -> Liveness:
    """Backward liveness over ``cfg``.

    ``exit_live`` names vregs considered live at every return (used for
    register-candidate globals, which must survive to the exit store).
    """
    n = cfg.num_blocks
    use_sets: List[FrozenSet[VReg]] = []
    def_sets: List[FrozenSet[VReg]] = []
    for block in cfg.blocks:
        u, d = _block_use_def(block)
        use_sets.append(frozenset(u))
        def_sets.append(frozenset(d))

    boundary = frozenset(exit_live)

    def transfer(b: int, out_val: FrozenSet[VReg]) -> FrozenSet[VReg]:
        return use_sets[b] | (out_val - def_sets[b])

    problem: DataflowProblem[FrozenSet[VReg]] = DataflowProblem(
        forward=False,
        top=frozenset(),
        boundary=boundary,
        meet=lambda a, b: a | b,
        transfer=transfer,
    )
    in_vals, out_vals = solve(cfg, problem)
    return Liveness(
        cfg=cfg,
        live_in=in_vals,
        live_out=out_vals,
        use=use_sets,
        defs=def_sets,
    )


def instruction_live_sets(
    block: BasicBlock, live_out: FrozenSet[VReg]
) -> Iterator[Tuple[IRInstr, Set[VReg], Set[VReg]]]:
    """Yield ``(instr, live_before, live_after)`` for each instruction of
    ``block`` in *reverse* order, starting from the block's live-out set.

    The terminator's uses are folded into the initial live set.
    """
    live: Set[VReg] = set(live_out)
    live.update(block.terminator.use_vregs())
    for ins in reversed(block.instrs):
        live_after = set(live)
        for d in ins.defs():
            live.discard(d)
        live.update(ins.use_vregs())
        yield ins, set(live), live_after


def live_across_calls(
    cfg: CFG, liveness: Liveness
) -> Dict[int, List[Tuple[IRInstr, Set[VReg]]]]:
    """Per block: each call instruction with the set of vregs live across
    it (live after the call, excluding the call's own result)."""
    result: Dict[int, List[Tuple[IRInstr, Set[VReg]]]] = {}
    for b, block in enumerate(cfg.blocks):
        calls: List[Tuple[IRInstr, Set[VReg]]] = []
        for ins, live_before, live_after in instruction_live_sets(
            block, liveness.live_out[b]
        ):
            if ins.is_call:
                across = live_after - set(ins.defs())
                # a value is live *across* only if it also existed before
                across &= live_before | set()
                calls.append((ins, across))
        if calls:
            calls.reverse()
            result[b] = calls
    return result
