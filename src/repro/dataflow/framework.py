"""A small generic iterative dataflow framework.

Problems are described by direction, meet, transfer and boundary values.
Values may be any lattice elements with equality -- Python sets for
liveness, int bitmasks for the shrink-wrap ANT/AV problems.

The solver is a classic worklist algorithm: blocks are seeded in reverse
postorder (forward problems) or its reverse (backward problems) and a
block is re-evaluated only when the value feeding it changed.  On an
acyclic graph every transfer function runs exactly once; with loops the
work is O(edges * lattice height) rather than O(passes * blocks) of a
full-sweep round-robin solver.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Generic, List, Tuple, TypeVar

from repro.cfg.cfg import CFG

T = TypeVar("T")


class ConvergenceError(RuntimeError):
    """An iterative solver exhausted its iteration budget.

    Raised instead of looping forever when a fixed point is not reached
    -- for the dataflow solver that means a non-monotone problem
    specification, for shrink-wrapping a range extension that keeps
    oscillating.  The message carries the solver name, the budget spent
    and any extra diagnostic so the failure is actionable rather than a
    silent hang.
    """

    def __init__(self, solver: str, iterations: int, detail: str = ""):
        self.solver = solver
        self.iterations = iterations
        self.detail = detail
        message = (
            f"{solver} failed to converge after {iterations} iterations"
        )
        if detail:
            message += f" ({detail})"
        super().__init__(message)


@dataclass
class DataflowProblem(Generic[T]):
    """Specification of an iterative dataflow problem.

    ``transfer(block_id, in_value) -> out_value`` must be monotone.
    ``meet`` combines edge values; ``top`` is the initial optimistic value
    and ``boundary`` the value at the entry (forward) or exits (backward).
    """

    forward: bool
    top: T
    boundary: T
    meet: Callable[[T, T], T]
    transfer: Callable[[int, T], T]


def solve(cfg: CFG, problem: DataflowProblem[T]) -> Tuple[List[T], List[T]]:
    """Solve to fixed point; returns (in_values, out_values) per block.

    For backward problems the "in" of a block is its value at block entry
    and "out" at block exit, same as forward -- only the propagation
    direction differs.

    Blocks unreachable from the entry are not visited and keep ``top`` on
    both sides.
    """
    n = cfg.num_blocks
    top = problem.top
    meet = problem.meet
    transfer = problem.transfer
    in_vals: List[T] = [top] * n
    out_vals: List[T] = [top] * n

    rpo = cfg.reverse_postorder()
    order = rpo if problem.forward else list(reversed(rpo))
    known = set(order)
    exits = set(cfg.exits())

    work = deque(order)
    on_list = [False] * n
    for b in order:
        on_list[b] = True

    # Monotone transfers over a finite lattice terminate; the cap only
    # guards against a non-monotone problem specification.
    budget = (4 * n + 8) * max(n, 1) + len(order)
    spent = budget

    if problem.forward:
        preds, succs = cfg.preds, cfg.succs
        entry = cfg.entry
        while work:
            budget -= 1
            if budget < 0:  # pragma: no cover - safety net
                raise ConvergenceError(
                    "dataflow (forward)", spent,
                    f"{n} blocks; non-monotone transfer?",
                )
            b = work.popleft()
            on_list[b] = False
            if b == entry:
                new_in = problem.boundary
            else:
                new_in = top
                for p in preds[b]:
                    new_in = meet(new_in, out_vals[p])
            new_out = transfer(b, new_in)
            in_vals[b] = new_in
            if new_out != out_vals[b]:
                out_vals[b] = new_out
                for s in succs[b]:
                    if not on_list[s] and s in known:
                        on_list[s] = True
                        work.append(s)
    else:
        preds, succs = cfg.preds, cfg.succs
        while work:
            budget -= 1
            if budget < 0:  # pragma: no cover - safety net
                raise ConvergenceError(
                    "dataflow (backward)", spent,
                    f"{n} blocks; non-monotone transfer?",
                )
            b = work.popleft()
            on_list[b] = False
            if b in exits and not succs[b]:
                new_out = problem.boundary
            else:
                new_out = top
                for s in succs[b]:
                    new_out = meet(new_out, in_vals[s])
                if b in exits:
                    new_out = meet(new_out, problem.boundary)
            new_in = transfer(b, new_out)
            out_vals[b] = new_out
            if new_in != in_vals[b]:
                in_vals[b] = new_in
                for p in preds[b]:
                    if not on_list[p] and p in known:
                        on_list[p] = True
                        work.append(p)
    return in_vals, out_vals
