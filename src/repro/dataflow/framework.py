"""A small generic iterative dataflow framework.

Problems are described by direction, meet, transfer and boundary values.
Values may be any lattice elements with equality -- Python sets for
liveness, int bitmasks for the shrink-wrap ANT/AV problems.  The solver
iterates to a fixed point in reverse postorder (forward problems) or its
reverse (backward problems), which converges in a handful of passes for
reducible flow graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, List, Tuple, TypeVar

from repro.cfg.cfg import CFG

T = TypeVar("T")


@dataclass
class DataflowProblem(Generic[T]):
    """Specification of an iterative dataflow problem.

    ``transfer(block_id, in_value) -> out_value`` must be monotone.
    ``meet`` combines edge values; ``top`` is the initial optimistic value
    and ``boundary`` the value at the entry (forward) or exits (backward).
    """

    forward: bool
    top: T
    boundary: T
    meet: Callable[[T, T], T]
    transfer: Callable[[int, T], T]


def solve(cfg: CFG, problem: DataflowProblem[T]) -> Tuple[List[T], List[T]]:
    """Solve to fixed point; returns (in_values, out_values) per block.

    For backward problems the "in" of a block is its value at block entry
    and "out" at block exit, same as forward -- only the propagation
    direction differs.
    """
    n = cfg.num_blocks
    in_vals: List[T] = [problem.top] * n
    out_vals: List[T] = [problem.top] * n
    rpo = cfg.reverse_postorder()
    order = rpo if problem.forward else list(reversed(rpo))
    exits = set(cfg.exits())

    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > 4 * n + 8:  # pragma: no cover - safety net
            raise RuntimeError("dataflow failed to converge")
        for b in order:
            if problem.forward:
                if b == cfg.entry:
                    new_in = problem.boundary
                else:
                    preds = cfg.preds[b]
                    new_in = problem.top
                    for p in preds:
                        new_in = problem.meet(new_in, out_vals[p])
                new_out = problem.transfer(b, new_in)
                if new_in != in_vals[b] or new_out != out_vals[b]:
                    in_vals[b] = new_in
                    out_vals[b] = new_out
                    changed = True
            else:
                if b in exits and not cfg.succs[b]:
                    new_out = problem.boundary
                else:
                    new_out = problem.top
                    for s in cfg.succs[b]:
                        new_out = problem.meet(new_out, in_vals[s])
                    if b in exits:
                        new_out = problem.meet(new_out, problem.boundary)
                new_in = problem.transfer(b, new_out)
                if new_in != in_vals[b] or new_out != out_vals[b]:
                    in_vals[b] = new_in
                    out_vals[b] = new_out
                    changed = True
    return in_vals, out_vals
