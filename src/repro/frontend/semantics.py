"""Semantic analysis for MiniC.

Resolves names, checks arities and duplicate definitions, classifies calls
as direct or indirect, and records which procedures have their address
taken (the seed of the paper's *open procedure* classification: an
address-taken procedure can be called indirectly, so its register usage can
never be summarised for its callers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import SemanticError


@dataclass
class FunctionInfo:
    """Resolved facts about one procedure."""

    name: str
    params: List[str]
    locals: List[str] = field(default_factory=list)       # excludes params
    local_arrays: Dict[str, int] = field(default_factory=dict)
    direct_callees: Set[str] = field(default_factory=set)
    has_indirect_call: bool = False
    decl: Optional[ast.FuncDecl] = None

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass
class ModuleInfo:
    """Resolved facts about one compilation unit."""

    name: str
    module: ast.Module
    globals: Dict[str, int] = field(default_factory=dict)   # name -> init
    arrays: Dict[str, int] = field(default_factory=dict)    # name -> size
    externs: Dict[str, int] = field(default_factory=dict)   # name -> arity
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    address_taken: Set[str] = field(default_factory=set)

    def function_arity(self, name: str) -> Optional[int]:
        if name in self.functions:
            return self.functions[name].arity
        if name in self.externs:
            return self.externs[name]
        return None


class _FunctionChecker:
    """Walks one function body resolving names against the module scope."""

    def __init__(self, minfo: ModuleInfo, finfo: FunctionInfo):
        self.minfo = minfo
        self.finfo = finfo
        self.scope: Set[str] = set(finfo.params)
        self.loop_depth = 0

    def err(self, msg: str, node: ast.Node) -> SemanticError:
        return SemanticError(f"in func {self.finfo.name}: {msg}", node.line)

    # -- declarations --------------------------------------------------------

    def declare_local(self, node: ast.LocalVar) -> None:
        name = node.name
        if name in self.scope or name in self.finfo.local_arrays:
            raise self.err(f"duplicate local {name!r}", node)
        self.scope.add(name)
        self.finfo.locals.append(name)

    def declare_local_array(self, node: ast.LocalArray) -> None:
        name = node.name
        if name in self.scope or name in self.finfo.local_arrays:
            raise self.err(f"duplicate local {name!r}", node)
        if node.size <= 0:
            raise self.err(f"array {name!r} must have positive size", node)
        self.finfo.local_arrays[name] = node.size

    # -- name classification -------------------------------------------------

    def is_scalar(self, name: str) -> bool:
        return name in self.scope or name in self.minfo.globals

    def is_array(self, name: str) -> bool:
        return name in self.finfo.local_arrays or name in self.minfo.arrays

    def is_function(self, name: str) -> bool:
        return name in self.minfo.functions or name in self.minfo.externs

    # -- statements ----------------------------------------------------------

    def check_block(self, block: ast.Block) -> None:
        for stmt in block.stmts:
            self.check_stmt(stmt)

    def check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.LocalVar):
            if stmt.init is not None:
                self.check_expr(stmt.init)
            self.declare_local(stmt)
        elif isinstance(stmt, ast.LocalArray):
            self.declare_local_array(stmt)
        elif isinstance(stmt, ast.Assign):
            if not self.is_scalar(stmt.name):
                if self.is_array(stmt.name):
                    raise self.err(
                        f"cannot assign to array {stmt.name!r} without index",
                        stmt,
                    )
                raise self.err(f"undefined variable {stmt.name!r}", stmt)
            self.check_expr(stmt.value)
        elif isinstance(stmt, ast.ArrayAssign):
            if not self.is_array(stmt.name):
                raise self.err(f"undefined array {stmt.name!r}", stmt)
            self.check_expr(stmt.index)
            self.check_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self.check_expr(stmt.cond)
            self.check_block(stmt.then)
            if stmt.orelse is not None:
                self.check_stmt(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.check_expr(stmt.cond)
            self.loop_depth += 1
            self.check_block(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self.check_stmt(stmt.init)
            if stmt.cond is not None:
                self.check_expr(stmt.cond)
            self.loop_depth += 1
            self.check_block(stmt.body)
            if stmt.step is not None:
                self.check_stmt(stmt.step)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.check_expr(stmt.value)
        elif isinstance(stmt, ast.Print):
            self.check_expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                kw = "break" if isinstance(stmt, ast.Break) else "continue"
                raise self.err(f"{kw} outside of a loop", stmt)
        elif isinstance(stmt, ast.Block):
            self.check_block(stmt)
        else:  # pragma: no cover - exhaustive
            raise AssertionError(f"unknown statement {stmt!r}")

    # -- expressions ---------------------------------------------------------

    def check_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.IntLit):
            return
        if isinstance(expr, ast.VarRef):
            if not self.is_scalar(expr.name):
                if self.is_array(expr.name):
                    raise self.err(
                        f"array {expr.name!r} used without index", expr
                    )
                if self.is_function(expr.name):
                    raise self.err(
                        f"function {expr.name!r} used as a value; use "
                        f"&{expr.name}", expr
                    )
                raise self.err(f"undefined variable {expr.name!r}", expr)
            return
        if isinstance(expr, ast.Index):
            if not self.is_array(expr.name):
                raise self.err(f"undefined array {expr.name!r}", expr)
            self.check_expr(expr.index)
            return
        if isinstance(expr, ast.UnOp):
            self.check_expr(expr.operand)
            return
        if isinstance(expr, ast.BinOp):
            self.check_expr(expr.left)
            self.check_expr(expr.right)
            return
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self.check_expr(arg)
            name = expr.callee
            if self.is_scalar(name):
                expr.indirect = True
                self.finfo.has_indirect_call = True
                return
            arity = self.minfo.function_arity(name)
            if arity is None:
                raise self.err(f"call to undefined function {name!r}", expr)
            if arity != len(expr.args):
                raise self.err(
                    f"function {name!r} expects {arity} argument(s), "
                    f"got {len(expr.args)}", expr
                )
            self.finfo.direct_callees.add(name)
            return
        if isinstance(expr, ast.FuncRef):
            if not self.is_function(expr.name):
                raise self.err(
                    f"&{expr.name}: {expr.name!r} is not a function", expr
                )
            self.minfo.address_taken.add(expr.name)
            return
        raise AssertionError(f"unknown expression {expr!r}")  # pragma: no cover


def analyze(module: ast.Module) -> ModuleInfo:
    """Check ``module`` and return its resolved :class:`ModuleInfo`.

    Raises :class:`~repro.frontend.errors.SemanticError` on any violation.
    """
    minfo = ModuleInfo(name=module.name, module=module)
    taken: Set[str] = set()

    for g in module.globals:
        if g.name in taken:
            raise SemanticError(f"duplicate global {g.name!r}", g.line)
        taken.add(g.name)
        minfo.globals[g.name] = g.init
    for a in module.arrays:
        if a.name in taken:
            raise SemanticError(f"duplicate global {a.name!r}", a.line)
        if a.size <= 0:
            raise SemanticError(
                f"array {a.name!r} must have positive size", a.line
            )
        taken.add(a.name)
        minfo.arrays[a.name] = a.size
    for e in module.externs:
        if e.name in taken:
            raise SemanticError(f"duplicate declaration {e.name!r}", e.line)
        taken.add(e.name)
        minfo.externs[e.name] = e.arity
    for f in module.functions:
        if f.name in taken:
            raise SemanticError(f"duplicate function {f.name!r}", f.line)
        taken.add(f.name)
        if len(set(f.params)) != len(f.params):
            raise SemanticError(
                f"duplicate parameter name in {f.name!r}", f.line
            )
        minfo.functions[f.name] = FunctionInfo(
            name=f.name, params=list(f.params), decl=f
        )

    for f in module.functions:
        checker = _FunctionChecker(minfo, minfo.functions[f.name])
        checker.check_block(f.body)

    return minfo
