"""Diagnostics for the MiniC front end."""

from __future__ import annotations


class CompileError(Exception):
    """Base class for all user-facing compilation errors."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.message = message
        self.line = line
        self.col = col
        loc = f"{line}:{col}: " if line else ""
        super().__init__(f"{loc}{message}")


class LexError(CompileError):
    """Invalid character or malformed token."""


class ParseError(CompileError):
    """Syntactically invalid program."""


class SemanticError(CompileError):
    """Well-formed syntax with an invalid meaning (undefined names, arity
    mismatches, duplicate definitions, ...)."""


class LinkError(CompileError):
    """Unresolved or duplicate symbols when linking modules."""


class OptionsError(CompileError):
    """Invalid :class:`~repro.pipeline.options.CompilerOptions` (bad opt
    level, empty register file at an allocating opt level, unknown entry
    point, malformed block weights, ...) caught eagerly instead of
    surfacing as a ``KeyError`` deep inside planning."""
